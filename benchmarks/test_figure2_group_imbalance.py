"""Benchmark: regenerate Figure 2 (Group Imbalance heatmaps).

Paper: under the bug two nodes run one-or-zero threads per core while the
others are overloaded (2a); the per-core load view (2b) shows the R
threads' huge load hiding the idle cores; the fix restores balance (2c)
and make completes 13% faster.
"""

import pytest

from repro.experiments.figure2 import render_figure2, run_figure2
from repro.experiments.harness import quick_scale


@pytest.mark.benchmark(group="figure2")
def test_figure2(benchmark, report):
    scale = quick_scale(0.5)
    result = benchmark.pedantic(
        lambda: run_figure2(scale=scale), rounds=1, iterations=1
    )
    report(
        "Figure 2 reproduction (make 64 + 2 R)",
        render_figure2(result, bins=96, svg_dir="benchmarks/output"),
    )
    benchmark.extra_info["make_improvement_pct"] = round(
        result.make_improvement_pct, 1
    )
    benchmark.extra_info["idle_r_node_core_s"] = {
        "buggy": round(result.buggy.idle_node_core_seconds, 2),
        "fixed": round(result.fixed.idle_node_core_seconds, 2),
    }
    # Shape: the fix fills the R nodes' idle cores and speeds up make.
    assert (
        result.buggy.idle_node_core_seconds
        > 2 * result.fixed.idle_node_core_seconds
    )
    assert result.make_improvement_pct < -5.0

"""Benchmark: regenerate Table 3 (Missing Scheduling Domains bug).

Paper: after a core disable/re-enable, 64-thread NAS apps run on one node
instead of eight -- 4x to 138x slower (lu worst).  Reproduction target:
every app well beyond the raw 1/8th-CPU loss for the sync-heavy codes,
with lu the extreme.
"""

import pytest

from repro.experiments.harness import quick_scale
from repro.experiments.table3 import format_table3, run_table3


@pytest.mark.benchmark(group="table3")
def test_table3(benchmark, report):
    scale = quick_scale(0.2)
    rows = benchmark.pedantic(
        lambda: run_table3(scale=scale), rounds=1, iterations=1
    )
    report("Table 3 reproduction", format_table3(rows))

    factors = {row.app: row.speedup for row in rows}
    benchmark.extra_info["speedups"] = {
        app: round(f, 2) for app, f in factors.items()
    }
    for app, factor in factors.items():
        assert factor > 3.0, f"{app} should suffer badly ({factor:.1f}x)"
    # lu's spin-pipeline makes it the extreme case, beyond the 8x CPU loss.
    assert factors["lu"] == max(factors.values())
    assert factors["lu"] > 8.0
    # Several synchronization-heavy apps exceed the raw 8x CPU loss.
    beyond_cpu_loss = sum(1 for f in factors.values() if f > 8.0)
    assert beyond_cpu_loss >= 3

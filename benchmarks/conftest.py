"""Shared benchmark configuration.

Every benchmark regenerates one table or figure from the paper and prints
it.  Absolute simulator numbers are not comparable to the paper's
testbed; the reproduced artifact is the *shape* (who wins, rough factors).

Scales can be reduced for quick runs:  REPRO_SCALE=0.05 pytest benchmarks/
"""

from __future__ import annotations

import pytest


def banner(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)


@pytest.fixture
def report():
    """Print a reproduced table under a banner (flushes around capture)."""

    def _report(title: str, body: str) -> None:
        banner(title)
        print(body)

    return _report

"""Benchmark: regenerate Figure 3 (Overload-on-Wakeup during TPC-H).

Paper: database threads repeatedly wake on busy cores while other cores
idle for long stretches; the system eventually recovers when balancing
happens to pick a long-term idle core.  Reproduction targets: the
busy-wakeup fraction collapses with the fix, and invariant-violation
episodes shrink.
"""

import pytest

from repro.experiments.figure3 import render_figure3, run_figure3
from repro.experiments.harness import quick_scale


@pytest.mark.benchmark(group="figure3")
def test_figure3(benchmark, report):
    scale = quick_scale(1.0)
    result = benchmark.pedantic(
        lambda: run_figure3(scale=scale), rounds=1, iterations=1
    )
    report(
        "Figure 3 reproduction (TPC-H wakeup placement)",
        render_figure3(result, bins=96, svg_dir="benchmarks/output"),
    )
    benchmark.extra_info["busy_wakeup_fraction"] = {
        "buggy": round(result.buggy.busy_wakeup_fraction, 3),
        "fixed": round(result.fixed.busy_wakeup_fraction, 3),
    }
    assert (
        result.buggy.busy_wakeup_fraction
        > 1.5 * result.fixed.busy_wakeup_fraction
    )

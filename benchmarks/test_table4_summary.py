"""Benchmark: regenerate Table 4 (bug summary) with measured impacts.

Runs a fast representative scenario per bug and reports this
reproduction's measured maximum impact next to the paper's.
"""

import pytest

from repro.core.bugs import BUGS
from repro.experiments.harness import quick_scale
from repro.experiments.table1 import run_table1
from repro.experiments.table3 import run_table3
from repro.experiments.table4 import format_table4
from repro.experiments.figure2 import run_figure2
from repro.experiments.figure3 import run_database_traced
from repro.experiments.harness import ExperimentConfig
from repro.sched.features import SchedFeatures


def _measure_all(scale: float) -> dict:
    measured = {}

    # Group Imbalance: make+R completion improvement.
    fig2 = run_figure2(scale=min(scale * 2, 1.0))
    measured["Group Imbalance"] = (
        f"{-fig2.make_improvement_pct:.0f}% (make)"
    )

    # Scheduling Group Construction: worst NAS factor (lu).
    t1 = run_table1(scale=scale, apps=["lu"])
    measured["Scheduling Group Construction"] = f"{t1[0].speedup:.0f}x (lu)"

    # Overload-on-Wakeup: Q18 completion delta.
    base = SchedFeatures().without_autogroup()
    buggy = run_database_traced(
        ExperimentConfig(base, seed=42, scale=1.0), queries=4
    )
    fixed = run_database_traced(
        ExperimentConfig(
            base.with_fixes("overload_on_wakeup"), seed=42, scale=1.0
        ),
        queries=4,
    )
    delta = (buggy.span_us - fixed.span_us) / buggy.span_us * 100
    measured["Overload-on-Wakeup"] = f"{delta:.0f}% (TPC-H)"

    # Missing Scheduling Domains: worst NAS factor (lu).
    t3 = run_table3(scale=scale, apps=["lu"])
    measured["Missing Scheduling Domains"] = f"{t3[0].speedup:.0f}x (lu)"
    return measured


@pytest.mark.benchmark(group="table4")
def test_table4(benchmark, report):
    scale = quick_scale(0.2)
    measured = benchmark.pedantic(
        lambda: _measure_all(scale), rounds=1, iterations=1
    )
    report(
        "Table 4 reproduction (bug registry + measured impacts)",
        format_table4(measured_max=measured),
    )
    benchmark.extra_info["measured"] = measured
    assert set(measured) == {b.name for b in BUGS}

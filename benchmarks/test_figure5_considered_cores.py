"""Benchmark: regenerate Figure 5 (Missing Scheduling Domains view).

Paper: after the hotplug cycle, Core 0's load-balancing calls (every 4 ms)
only ever consider its SMT sibling and its own node, never the overloaded
node.  Reproduction target: the observer's considered-core coverage is
1/8th of the machine under the bug and reaches across nodes with the fix.
"""

import pytest

from repro.experiments.figure5 import render_figure5, run_figure5


@pytest.mark.benchmark(group="figure5")
def test_figure5(benchmark, report):
    result = benchmark.pedantic(run_figure5, rounds=1, iterations=1)
    report(
        "Figure 5 reproduction (considered cores after hotplug)",
        render_figure5(result, svg_dir="benchmarks/output"),
    )
    benchmark.extra_info["coverage"] = {
        "buggy": round(result.buggy.coverage, 3),
        "fixed": round(result.fixed.coverage, 3),
    }
    assert result.buggy.coverage <= 0.15  # one node of eight
    assert result.fixed.coverage >= 0.5
    assert result.buggy.balancing_calls > 10  # calls happen, all futile

"""Benchmark: the sanity checker's overhead claim (Section 4.1).

Paper: under 0.5% overhead at S = 1 s with up to 10,000 threads, and the
checker is observation-only.  Simulator analog: attaching the checker
must not change the schedule at all, and its wall-clock cost must stay
small relative to the run.
"""

import pytest

from repro.experiments.harness import quick_scale
from repro.experiments.overhead import format_overhead, run_overhead


@pytest.mark.benchmark(group="overhead")
def test_checker_overhead(benchmark, report):
    scale = quick_scale(1.0)
    threads = max(64, int(512 * scale))
    result = benchmark.pedantic(
        lambda: run_overhead(threads=threads, run_virtual_s=1.0),
        rounds=1,
        iterations=1,
    )
    report("Sanity-checker overhead (Section 4.1)", format_overhead(result))
    benchmark.extra_info["wall_overhead"] = round(
        result.wall_overhead_fraction, 4
    )
    benchmark.extra_info["threads"] = result.threads
    # Observation-only: identical virtual behavior.
    assert result.behavior_identical
    # Wall overhead stays modest (generous bound: timing noise on shared
    # machines).  The paper's claim is < 0.5% on real hardware.
    assert result.wall_overhead_fraction < 0.5

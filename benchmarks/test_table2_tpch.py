"""Benchmark: regenerate Table 2 (TPC-H under bug-fix combinations).

Paper: fixing Overload-on-Wakeup improves TPC-H request 18 by 22.2% and
the full benchmark by 13.2%; the Group Imbalance fix adds a little more.
Reproduction target: all fixes help, the wakeup fix dominating.
"""

import pytest

from repro.experiments.harness import quick_scale
from repro.experiments.table2 import format_table2, run_table2


@pytest.mark.benchmark(group="table2")
def test_table2(benchmark, report):
    scale = quick_scale(1.0)
    runs = 3 if scale >= 0.5 else 1
    rows = benchmark.pedantic(
        lambda: run_table2(scale=scale, runs=runs), rounds=1, iterations=1
    )
    report("Table 2 reproduction", format_table2(rows))

    by_config = {row.config: row for row in rows}
    benchmark.extra_info["q18_improvements_pct"] = {
        c: (None if r.q18.improvement_pct is None
            else round(r.q18.improvement_pct, 1))
        for c, r in by_config.items()
    }
    oow = by_config["Overload-on-Wakeup"]
    both = by_config["Both"]
    # The wakeup fix speeds up Q18 measurably; "both" keeps the gain.
    assert oow.q18.improvement_pct < -3.0
    assert both.q18.improvement_pct < -3.0
    # The full benchmark benefits from the wakeup fix as well.
    assert oow.full.improvement_pct < 0.0

"""Ablation benchmarks: which scheduler mechanism buys what.

DESIGN.md calls out several design choices in the reproduction; these
ablations quantify each one on a fixed scenario:

* **NOHZ idle balancing** -- without the kick, tickless idle cores are
  never balanced on behalf of, and a freshly-overloaded node stays
  overloaded far longer;
* **newidle balancing** -- without it, a core going idle cannot pull work
  immediately and waits for the periodic balancer;
* **the migration-cost gate** -- the kernel's refusal to newidle-balance
  short-term-idle cores is what lets the Overload-on-Wakeup bug live; with
  the gate removed (cost=0), the buggy wakeup path loses most of its bite;
* **the invariant-guarded modular scheduler** (the paper's Section 5
  proposal) -- with only the *buggy* cache-affinity module plugged in, the
  guard alone keeps the machine work-conserving.
"""

from dataclasses import replace

import pytest

from repro.experiments.report import Table
from repro.modular import CacheAffinityModule, ModularSystem
from repro.sched.features import SchedFeatures
from repro.sim.system import System
from repro.sim.timebase import MS, SEC
from repro.stats.metrics import IdleOverloadSampler
from repro.topology import two_nodes
from repro.workloads.base import Run, Sleep, TaskSpec


def hog(name, allowed=None):
    def factory():
        def program():
            while True:
                yield Run(5 * MS)
        return program()
    return TaskSpec(name, factory, allowed_cpus=allowed)


def sleepy(cycles=400):
    def factory():
        def program():
            for _ in range(cycles):
                yield Run(1 * MS)
                yield Sleep(1 * MS)
        return program()
    return TaskSpec("sleepy", factory)


def _spread_latency(features, seed=11) -> float:
    """ms until 8 threads started on one node first cover both nodes."""
    system = System(two_nodes(cores_per_node=4), features, seed=seed)
    tasks = [system.spawn(hog(f"t{i}"), parent_cpu=0) for i in range(8)]
    deadline = 2 * SEC
    state = {"covered_at": None}

    def watch(now):
        if state["covered_at"] is not None:
            return
        node1 = sum(
            1 for t in tasks
            if t.cpu is not None and t.cpu >= 4
        )
        if node1 >= 3:
            state["covered_at"] = now

    system.tick_hooks.append(watch)
    system.run_for(deadline)
    covered = state["covered_at"]
    return (covered if covered is not None else deadline) / 1000.0


def _wakeup_pileup_fraction(features, seed=6, guarded=False) -> float:
    """Fraction of a sleeper's wakeups landing on busy cores.

    Periodic balancing is slowed to isolate the wakeup path; with
    ``guarded=True`` the Section-5 modular core (buggy cache module only)
    makes the placement instead.
    """
    features = replace(features, balance_base_us=10 * SEC)
    if guarded:
        system = ModularSystem(
            two_nodes(cores_per_node=4), features,
            modules=[CacheAffinityModule(node_restricted=True)], seed=seed,
        )
    else:
        system = System(two_nodes(cores_per_node=4), features, seed=seed)
    for i in range(4):
        system.spawn(hog(f"hog{i}", frozenset({i})), on_cpu=i)
    # A brief pinned filler overloads cpu 0 so one (fruitless) balancing
    # round runs and arms the slowed-down stamps past the horizon.
    filler_spec = hog("filler", frozenset({0}))

    def bounded_filler():
        def program():
            yield Run(5 * MS)
        return program()

    filler_spec = TaskSpec("filler", bounded_filler,
                           allowed_cpus=frozenset({0}))
    system.spawn(filler_spec, on_cpu=0)
    system.run_for(10 * MS)
    task = system.spawn(sleepy(), on_cpu=0)
    system.run_for(1 * SEC)
    return task.stats.wakeups_on_busy_core / max(task.stats.wakeups, 1)


def _recovery_violation_fraction(features, seed=13) -> float:
    """Violation fraction when recovery can only come from newidle pulls.

    Node 0 is overloaded with hogs; node 1 runs sleepers whose run/sleep
    cycling creates short idle windows -- exactly the windows newidle
    balancing may or may not exploit.  NOHZ is disabled to isolate it.
    """
    features = replace(features, nohz_idle_balance_enabled=False)
    system = System(two_nodes(cores_per_node=4), features, seed=seed)
    sampler = IdleOverloadSampler()
    sampler.attach(system)
    for i in range(10):
        system.spawn(hog(f"hog{i}"), parent_cpu=0)
    for i in range(4):
        system.spawn(sleepy(cycles=500), on_cpu=4 + i)
    system.run_for(1 * SEC)
    return sampler.violation_fraction


@pytest.mark.benchmark(group="ablations")
def test_ablations(benchmark, report):
    base = SchedFeatures().without_autogroup()

    def run_all():
        results = {}
        # 1. NOHZ idle balancing: can long-term idle cores ever be used?
        results["spread_ms_mainline"] = _spread_latency(base)
        results["spread_ms_no_nohz"] = _spread_latency(
            replace(base, nohz_idle_balance_enabled=False)
        )
        # 2. newidle balancing and its migration-cost gate, isolated from
        # NOHZ: short idle windows on the receiving node.
        results["violfrac_newidle_on"] = _recovery_violation_fraction(base)
        results["violfrac_newidle_off"] = _recovery_violation_fraction(
            replace(base, newidle_balance_enabled=False)
        )
        results["violfrac_cost0"] = _recovery_violation_fraction(
            replace(base, migration_cost_us=0)
        )
        # 3. the wakeup bug with balancing quiesced...
        results["pileup_unguarded"] = _wakeup_pileup_fraction(base)
        # ...and the Section-5 modular guard with only the buggy cache
        # module plugged in.
        results["pileup_guarded_buggy_module"] = _wakeup_pileup_fraction(
            base, guarded=True
        )
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    table = Table(
        "Ablations: mechanism contributions",
        ["metric", "value"],
    )
    for key, value in results.items():
        table.add_row(key, f"{value:.3f}")
    table.add_note(
        "spread_ms: time for 8 threads forked on node 0 to cover node 1; "
        "pileup: sleeper wakeups landing on busy cores"
    )
    report("Ablation results", table.render())
    benchmark.extra_info.update(
        {k: round(v, 3) for k, v in results.items()}
    )

    # Without NOHZ, never-woken idle cores are unreachable.
    assert results["spread_ms_no_nohz"] > 10 * results["spread_ms_mainline"]
    # newidle pulls reduce idle-while-overloaded time; removing the
    # migration-cost gate helps at least as much as stock newidle.
    assert results["violfrac_newidle_off"] >= results["violfrac_newidle_on"]
    assert results["violfrac_cost0"] <= results["violfrac_newidle_on"]
    # The buggy wakeup path strands the sleeper on busy cores...
    assert results["pileup_unguarded"] > 0.5
    # ...but the Section-5 guard neutralizes the same buggy policy.
    assert results["pileup_guarded_buggy_module"] < 0.1

"""Benchmark: regenerate Table 5, Figure 1 and Figure 4 (machine model).

Descriptive artifacts: the experimental machine's spec sheet, the domain
hierarchy of the first core, and the asymmetric interconnect with the
exact published one-hop neighborhoods.
"""

import pytest

from repro.experiments.figures_topology import (
    format_bulldozer_domains,
    format_figure1,
    format_figure4,
    format_table5,
)
from repro.topology import amd_bulldozer_64


@pytest.mark.benchmark(group="topology")
def test_topology_artifacts(benchmark, report):
    def build():
        return (
            format_table5(),
            format_figure1(),
            format_figure4(),
            format_bulldozer_domains(0),
        )

    table5, fig1, fig4, domains = benchmark.pedantic(
        build, rounds=1, iterations=1
    )
    report("Table 5 reproduction (hardware)", table5)
    report("Figure 1 reproduction (domain hierarchy)", fig1)
    report("Figure 4 reproduction (interconnect)", fig4)
    report("Bulldozer domains of cpu 0", domains)

    topo = amd_bulldozer_64()
    assert topo.num_cpus == 64
    assert topo.interconnect.neighbors(0) == frozenset({1, 2, 4, 6})
    assert topo.interconnect.neighbors(3) == frozenset({1, 2, 4, 5, 7})
    assert topo.interconnect.distance(1, 2) == 2
    assert "NUMA-2hop" in domains

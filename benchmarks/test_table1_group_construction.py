"""Benchmark: regenerate Table 1 (Scheduling Group Construction bug).

Paper: NAS applications pinned to nodes 1 and 2 run up to 27x slower with
the bug (lu the extreme).  Reproduction target: every app slower with the
bug, lu by far the most.
"""

import pytest

from repro.experiments.harness import quick_scale
from repro.experiments.table1 import (
    PAPER_SPEEDUPS,
    format_table1,
    run_table1,
)


@pytest.mark.benchmark(group="table1")
def test_table1(benchmark, report):
    scale = quick_scale(0.2)
    rows = benchmark.pedantic(
        lambda: run_table1(scale=scale), rounds=1, iterations=1
    )
    report("Table 1 reproduction", format_table1(rows))

    factors = {row.app: row.speedup for row in rows}
    benchmark.extra_info["speedups"] = {
        app: round(f, 2) for app, f in factors.items()
    }
    # Shape assertions: everything suffers, lu is the extreme outlier.
    for app, factor in factors.items():
        assert factor > 1.0, f"{app} should be slower with the bug"
    assert factors["lu"] == max(factors.values())
    assert factors["lu"] > 8.0
    # The mildest apps in the paper stay mild here.
    assert factors["ep"] < 4.0
    # Rank correlation with the paper's factors (coarse).
    paper_order = sorted(PAPER_SPEEDUPS, key=PAPER_SPEEDUPS.get)
    ours_order = sorted(factors, key=factors.get)
    assert paper_order[-1] == ours_order[-1] == "lu"

"""Benchmark: the fast-path layer's speedup claim (``repro bench``).

The committed BENCH_sim.json trajectory records the full-length numbers;
this smoke run exercises every registered macro-benchmark at --quick
scale with the fast/baseline comparison on, prints the table, and pins
the non-timing half of the claim: both modes simulate the identical
schedule (same virtual horizon, same event and migration counts, same
digest).  Wall-clock ratios are reported, not asserted -- shared CI
runners make timing assertions flaky by construction.
"""

import pytest

from repro.perf import benchmark_names, format_results, run_benchmark


@pytest.mark.benchmark(group="perf")
@pytest.mark.parametrize("name", benchmark_names())
def test_bench_quick_compare(benchmark, report, name):
    result = benchmark.pedantic(
        lambda: run_benchmark(name, quick=True, compare=True),
        rounds=1,
        iterations=1,
    )
    report(f"repro bench {name} (--quick --compare)",
           format_results([result]))
    benchmark.extra_info["speedup"] = round(result.speedup or 0.0, 2)
    benchmark.extra_info["events_per_sec"] = round(
        result.fast.events_per_sec
    )
    # Identical schedules in both modes; only wall-clock may differ.
    assert result.digest_match is True
    assert result.fast.sim_us == result.baseline.sim_us
    assert result.fast.events_fired == result.baseline.events_fired
    assert result.fast.balance_calls == result.baseline.balance_calls
    assert result.fast.migrations == result.baseline.migrations

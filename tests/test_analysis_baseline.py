"""Baseline (grandfather file) round-trip and validation tests."""

import json

import pytest

from repro.analysis import Baseline, BaselineError, Finding, run_lint
from repro.analysis.baseline import BASELINE_VERSION


def _finding(rule="det-wallclock", path="src/repro/sched/x.py", line=7,
             snippet="t = time.time()"):
    return Finding(rule, path, line, 0, "wall clock read", snippet=snippet)


def test_round_trip_suppresses_same_findings(tmp_path):
    findings = [_finding(), _finding(rule="flag-discipline", line=9,
                                     snippet="buggy = True")]
    baseline_file = tmp_path / "lint-baseline.json"
    Baseline.from_findings(findings).save(baseline_file)

    loaded = Baseline.load(baseline_file)
    new, suppressed = loaded.split(findings)
    assert new == []
    assert suppressed == findings


def test_baseline_survives_line_shift(tmp_path):
    baseline_file = tmp_path / "b.json"
    Baseline.from_findings([_finding(line=7)]).save(baseline_file)
    # Same violation after unrelated edits pushed it 30 lines down.
    shifted = _finding(line=37)
    new, suppressed = Baseline.load(baseline_file).split([shifted])
    assert new == []
    assert suppressed == [shifted]


def test_new_findings_pass_through(tmp_path):
    baseline_file = tmp_path / "b.json"
    Baseline.from_findings([_finding()]).save(baseline_file)
    fresh = _finding(snippet="t2 = time.time()")
    new, suppressed = Baseline.load(baseline_file).split([fresh])
    assert new == [fresh]
    assert suppressed == []


def test_entries_carry_human_context(tmp_path):
    baseline_file = tmp_path / "b.json"
    Baseline.from_findings([_finding()]).save(baseline_file)
    payload = json.loads(baseline_file.read_text())
    assert payload["version"] == BASELINE_VERSION
    (entry,) = payload["entries"]
    assert entry["rule"] == "det-wallclock"
    assert entry["path"] == "src/repro/sched/x.py"
    assert entry["snippet"] == "t = time.time()"
    assert entry["fingerprint"] == _finding().fingerprint()


def test_load_rejects_bad_json(tmp_path):
    bad = tmp_path / "b.json"
    bad.write_text("{not json")
    with pytest.raises(BaselineError):
        Baseline.load(bad)


def test_load_rejects_missing_file(tmp_path):
    with pytest.raises(BaselineError):
        Baseline.load(tmp_path / "absent.json")


def test_load_rejects_wrong_version(tmp_path):
    bad = tmp_path / "b.json"
    bad.write_text(json.dumps({"version": 99, "entries": []}))
    with pytest.raises(BaselineError):
        Baseline.load(bad)


def test_write_baseline_noqa_round_trip(tmp_path):
    """Baseline and inline noqa compose without double-counting.

    A file carries two violations, one excused at the source line with
    ``# repro: noqa[...]``.  ``--write-baseline`` must grandfather only
    the *active* one (the noqa'd finding is already excused where it
    stands); the re-run is then clean, and a genuinely fresh violation
    still fails the gate.
    """
    target = tmp_path / "drifty.py"
    target.write_text(
        "import random\n"
        "\n"
        "a = random.random()\n"
        "b = random.random()  # repro: noqa[det-unseeded-random]\n"
    )
    baseline_file = tmp_path / "lint-baseline.json"

    code = run_lint(
        paths=[str(target)],
        baseline_path=str(baseline_file),
        write_baseline=True,
        out=lambda _line: None,
    )
    assert code == 0
    payload = json.loads(baseline_file.read_text())
    # Only the active finding is grandfathered.
    assert len(payload["entries"]) == 1
    assert "a = random.random()" in payload["entries"][0]["snippet"]

    lines = []
    code = run_lint(
        paths=[str(target)],
        fmt="json",
        baseline_path=str(baseline_file),
        out=lines.append,
    )
    assert code == 0
    report = json.loads("\n".join(lines))
    assert report["counts"] == {"new": 0, "baseline": 1, "noqa": 1}

    # A fresh, unexcused violation still fails the gate.
    target.write_text(target.read_text() + "c = random.random()\n")
    code = run_lint(
        paths=[str(target)],
        baseline_path=str(baseline_file),
        out=lambda _line: None,
    )
    assert code == 1


def test_load_rejects_non_list_entries(tmp_path):
    bad = tmp_path / "b.json"
    bad.write_text(
        json.dumps({"version": BASELINE_VERSION, "entries": {}})
    )
    with pytest.raises(BaselineError):
        Baseline.load(bad)

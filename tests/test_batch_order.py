"""Same-timestamp event-batch ordering: batched == unbatched, provably.

The vectorized core's event loop extracts whole same-timestamp cohorts
and dispatches them in one pass (``EventLoop._drain_batched``).  Its
correctness claim is total: the *entire trace event stream* -- not just
aggregate counters -- must be byte-identical to event-at-a-time
draining.  These tests pin that claim across two seeds, reusing the
replay-diff machinery (:func:`repro.slo.replay.diff_events`) so a
failure names the first divergent event instead of just "digests
differ".
"""

import pytest

from repro.perf.bench import _hog, _sleeper
from repro.sched.features import SchedFeatures
from repro.sim.engine import EventLoop
from repro.sim.system import System
from repro.sim.timebase import MS
from repro.slo.replay import diff_events, serialize_buffer
from repro.topology import two_nodes
from repro.viz.events import TraceBuffer, TraceProbe


def _traced_stream(seed: int, batch: bool):
    """One vectorized run's serialized trace, with drain mode forced.

    Both runs use the identical feature set (the vectorized core); only
    the loop's drain strategy is flipped, so any divergence is
    attributable to cohort extraction alone.
    """
    features = SchedFeatures().with_vectorized(True)
    system = System(two_nodes(4, smt_width=2), features, seed=seed)
    assert system.loop._batch is True  # vectorized => batched by default
    system.loop._batch = batch
    buffer = TraceBuffer()
    system.attach_probe(TraceProbe(buffer=buffer, record_load=False))
    for i in range(6):
        system.spawn(_hog(f"hog{i}"), parent_cpu=(i * 3) % 8)
    for i in range(4):
        system.spawn(_sleeper(f"sleep{i}"), parent_cpu=(i * 5) % 8)
    system.run_for(50 * MS)
    return serialize_buffer(buffer)


@pytest.mark.parametrize("seed", [7, 1234])
def test_batched_drain_trace_stream_identical(seed):
    batched = _traced_stream(seed, batch=True)
    unbatched = _traced_stream(seed, batch=False)
    divergence = diff_events(batched, unbatched)
    if divergence is not None:
        got = batched[divergence] if divergence < len(batched) else None
        want = (
            unbatched[divergence] if divergence < len(unbatched) else None
        )
        pytest.fail(
            f"seed {seed}: first divergence at event {divergence}: "
            f"batched={got!r} unbatched={want!r}"
        )
    assert len(batched) > 0  # the run actually produced a schedule


def test_cancel_after_victim_fired_is_noop_in_both_modes():
    # The canceller sits *after* its victim in seq order: the victim has
    # already fired by the time the cancel lands, in both drain modes.
    def run(batch):
        loop = EventLoop(batch=batch)
        fired = []
        victim = loop.schedule(10, lambda: fired.append("victim"))
        loop.schedule(10, lambda: victim.cancel())
        loop.run_until(30)
        return fired, loop.events_fired, loop.pending()

    batched = run(True)
    unbatched = run(False)
    assert batched == unbatched
    assert batched[0] == ["victim"]


def test_cohort_cancel_before_victim_fires():
    # Canceller sits *before* its victim in seq order within the same
    # cohort: the victim was already extracted from the heap (batched
    # mode) but must still not fire, and the live accounting must not
    # drift (the ``popped`` flag path in ``_note_cancel``).
    def run(batch):
        loop = EventLoop(batch=batch)
        fired = []
        holder = {}
        loop.schedule(10, lambda: holder["victim"].cancel())
        holder["victim"] = loop.schedule(
            10, lambda: fired.append("victim")
        )
        loop.schedule(10, lambda: fired.append("tail"))
        loop.run_until(30)
        return fired, loop.events_fired, loop.pending()

    batched = run(True)
    unbatched = run(False)
    assert batched == unbatched
    assert batched[0] == ["tail"]
    assert batched[2] == 0  # no live-counter drift from the popped path


def test_followon_work_at_current_timestamp_orders_identically():
    # Callbacks scheduling zero-delay work join a follow-on cohort with
    # higher seq numbers -- order must match event-at-a-time draining.
    def run(batch):
        loop = EventLoop(batch=batch)
        fired = []
        loop.schedule(
            10, lambda: (fired.append("a"), loop.schedule(
                0, lambda: fired.append("a-child")
            ))
        )
        loop.schedule(10, lambda: fired.append("b"))
        loop.run_until(30)
        return fired

    assert run(True) == run(False) == ["a", "b", "a-child"]

"""The runtime effect sanitizer: observed writes vs declared summaries.

Mirrors the coherence sanitizer's test shape from PR 4: a clean soak
over a real scenario (zero divergences -- the static summaries are
sound for everything the demos execute), a tampered-index run proving
the detector actually fires, and patch-hygiene checks.
"""

import pytest

from repro.analysis.effectcheck import (
    CHECKED_CLASSES,
    EffectCheckSession,
    EffectDivergence,
)

#: The engine build walks and summarizes the whole tree (~seconds);
#: share one across tests -- sessions only read it.
_ENGINE = None


def make_session():
    global _ENGINE
    if _ENGINE is None:
        from repro.analysis.effectcheck import installed_files
        from repro.analysis.effects import EffectEngine

        _ENGINE = EffectEngine(installed_files())
    return EffectCheckSession(engine=_ENGINE)


def short_scenario_run(session, duration_us=100_000):
    from repro.experiments.scenarios import build_bug_scenario

    # Build *inside* the session so constructor writes are checked too.
    with session:
        scenario = build_bug_scenario("group-imbalance", "buggy")
        scenario.run(duration_us)
    return session


def test_clean_soak_verifies_writes():
    session = short_scenario_run(make_session())
    assert session.verified > 0
    assert session.divergences == [], [
        d.format() for d in session.divergences
    ]
    session.check()  # must not raise
    assert "0 divergences" in session.summary()


def test_unindexed_frames_are_skipped_not_judged():
    from repro.sched.runqueue import RunQueue

    session = make_session()
    rq = RunQueue(0)
    with session:
        # This test file is not in the static index: the write must be
        # skipped (the sanitizer judges the declared world only).
        rq.test_probe = 1
    assert session.skipped >= 1
    assert session.divergences == []


def test_tampered_summary_is_detected():
    session = make_session()
    # Erase RunQueue.__init__'s declared writes: the first constructed
    # runqueue now writes attributes its (tampered) summary never
    # declared, which is exactly the divergence shape the sanitizer
    # exists to catch.
    qual = "repro.sched.runqueue.RunQueue.__init__"
    assert qual in session._declared
    session._declared[qual] = set()
    short_scenario_run(session, duration_us=10_000)
    assert session.divergences, "tampered summary went undetected"
    assert session.divergences[0].function == qual
    with pytest.raises(EffectDivergence) as excinfo:
        session.check()
    assert "does not declare that write" in str(excinfo.value)


def test_uninstall_restores_classes():
    import importlib

    originals = {}
    for module_name, cls_name in CHECKED_CLASSES:
        cls = getattr(importlib.import_module(module_name), cls_name)
        originals[cls] = cls.__setattr__
    session = make_session()
    with session:
        for cls in originals:
            assert cls.__setattr__ is not originals[cls]
    for cls, original in originals.items():
        assert cls.__setattr__ is original


def test_install_is_idempotent():
    session = make_session()
    session.install()
    patched = {
        cls: cls.__setattr__ for cls, _, _ in session._patched
    }
    session.install()  # second install must not re-wrap
    try:
        for cls, wrapper in patched.items():
            assert cls.__setattr__ is wrapper
    finally:
        session.uninstall()

"""Scenario-registry tests: TOML parsing (both parsers), spec
compilation, and a small end-to-end run through the pooled orchestrator."""

from pathlib import Path

import pytest

from repro.slo._toml import TOMLError, parse_toml, parse_toml_fallback
from repro.slo.registry import (
    compile_specs,
    find_scenarios,
    load_registry,
    load_scenario,
    record_spec,
    run_registry,
    shipped_scenario_paths,
)

TINY = """
[scenario]
name = "tiny"
title = "Tiny overload scenario"
trial = "repro.slo.trial:bug_slo_trial"
variants = ["buggy", "fixed"]
seeds = [42]
duration_ms = 50

[scenario.params]
bug = "overload-on-wakeup"
latency_deadline_us = "1023"

[slo]
max_idle_overload = 1.0
"""


@pytest.fixture
def tiny_path(tmp_path):
    path = tmp_path / "tiny.toml"
    path.write_text(TINY)
    return path


# ---------------------------------------------------------------- parsing


def test_shipped_registry_loads():
    scenarios = load_registry()
    names = [s.name for s in scenarios]
    assert names == sorted(names)
    assert "group-imbalance" in names
    assert "mixed-soak" in names
    for scenario in scenarios:
        assert ":" in scenario.trial
        assert scenario.seeds and scenario.variants
        # Every shipped scenario declares at least one SLO bound.
        assert scenario.thresholds.to_json()


def test_fallback_parser_agrees_with_tomllib_on_shipped_files():
    pytest.importorskip("tomllib")
    for path in shipped_scenario_paths():
        text = Path(path).read_text()
        assert parse_toml_fallback(text) == parse_toml(text), path


def test_fallback_parser_subset_semantics():
    doc = parse_toml_fallback(TINY)
    assert doc["scenario"]["name"] == "tiny"
    assert doc["scenario"]["seeds"] == [42]
    assert doc["scenario"]["params"]["latency_deadline_us"] == "1023"
    assert doc["slo"]["max_idle_overload"] == 1.0


def test_fallback_parser_rejects_garbage():
    with pytest.raises(TOMLError):
        parse_toml_fallback("not toml at all")
    with pytest.raises(TOMLError):
        parse_toml_fallback('[scenario]\nname = "a"\nname = "b"\n')


def test_load_scenario_validates_structure(tmp_path):
    bad = tmp_path / "bad.toml"
    bad.write_text('[scenario]\nname = "x"\n')
    with pytest.raises(ValueError, match="missing 'trial'"):
        load_scenario(bad)
    bad.write_text('[scenario]\nname = "x"\ntrial = "no-colon"\n')
    with pytest.raises(ValueError, match="module:function"):
        load_scenario(bad)


def test_load_registry_rejects_duplicate_names(tmp_path, tiny_path):
    twin = tmp_path / "twin.toml"
    twin.write_text(TINY)
    with pytest.raises(ValueError, match="duplicate scenario name"):
        load_registry([tiny_path, twin])


def test_find_scenarios_unknown_name(tiny_path):
    scenarios = load_registry([tiny_path])
    with pytest.raises(ValueError, match="unknown scenario"):
        find_scenarios(scenarios, ["nope"])
    assert find_scenarios(scenarios, ["tiny"]) == scenarios


# ------------------------------------------------------------ compilation


def test_compile_specs_variant_seed_grid(tiny_path):
    scenario = load_scenario(tiny_path)
    specs = compile_specs(scenario)
    assert len(specs) == 2  # 2 variants x 1 seed
    variants = [dict(s.params).get("variant") for s in specs]
    assert variants == ["buggy", "fixed"]
    for spec in specs:
        params = dict(spec.params)
        assert params["bug"] == "overload-on-wakeup"
        assert params["duration_ms"] == "50"
        assert spec.cache
    # Compilation is deterministic: fingerprints are stable.
    again = compile_specs(scenario)
    assert [s.fingerprint() for s in specs] == [
        s.fingerprint() for s in again
    ]


def test_compile_specs_record_disables_cache(tiny_path):
    scenario = load_scenario(tiny_path)
    for spec in compile_specs(scenario, record=True):
        assert dict(spec.params)["record"] == "1"
        assert not spec.cache


def test_record_spec_flips_cache_policy(tiny_path):
    scenario = load_scenario(tiny_path)
    spec = compile_specs(scenario)[0]
    recording = record_spec(spec)
    assert dict(recording.params)["record"] == "1"
    assert not recording.cache
    assert recording.scenario == spec.scenario


# ------------------------------------------------------------- end-to-end


def test_run_registry_reports_verdicts(tiny_path):
    scenarios = load_registry([tiny_path])
    report, run = run_registry(scenarios, cache=None)
    assert len(run.outcomes) == 2
    assert report.verdicts() == {"tiny/buggy": True, "tiny/fixed": True}
    for scenario_report in report.scenarios:
        assert scenario_report.per_seed, scenario_report.key
        (seed, m) = scenario_report.per_seed[0]
        assert seed == 42
        assert m.samples > 0
        assert scenario_report.schedule_digests


def test_run_registry_parallel_matches_serial(tiny_path):
    scenarios = load_registry([tiny_path])
    serial, serial_run = run_registry(scenarios, jobs=1, cache=None)
    pooled, pooled_run = run_registry(scenarios, jobs=2, cache=None)
    assert serial_run.digests() == pooled_run.digests()
    assert serial.to_json() == pooled.to_json()

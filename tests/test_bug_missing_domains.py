"""End-to-end reproduction of the Missing Scheduling Domains bug
(Section 3.4).

After a core is disabled and re-enabled via the /proc interface, the
cross-node domain regeneration step is dropped: threads stay on the node
where they were created, no matter how many there are.
"""

from repro.core.invariant import has_violation
from repro.core.sanity_checker import SanityChecker
from repro.sched.features import SchedFeatures
from repro.sim.system import System
from repro.sim.timebase import MS
from repro.stats.metrics import IdleOverloadSampler, node_busy_times
from repro.topology import two_nodes

from tests.conftest import hog_spec

BUGGY = SchedFeatures().without_autogroup()
FIXED = SchedFeatures().with_fixes("missing_domains").without_autogroup()
RUN_US = 300 * MS


def run_after_hotplug(features, nr_threads=8, hotplug=True, seed=4):
    system = System(two_nodes(cores_per_node=4), features, seed=seed)
    if hotplug:
        system.hotplug_cpu(2, False)
        system.hotplug_cpu(2, True)
    sampler = IdleOverloadSampler()
    sampler.attach(system)
    tasks = [
        system.spawn(hog_spec(f"t{i}"), parent_cpu=0)
        for i in range(nr_threads)
    ]
    system.run_for(RUN_US)
    return system, sampler, tasks


def test_bug_pins_everything_to_one_node():
    system, sampler, _ = run_after_hotplug(BUGGY)
    busy = node_busy_times(system)
    assert busy[0] >= 3.9 * RUN_US
    assert busy[1] == 0
    assert sampler.violation_fraction > 0.9
    assert has_violation(system.scheduler, system.now)


def test_fix_restores_numa_balancing():
    system, sampler, _ = run_after_hotplug(FIXED)
    busy = node_busy_times(system)
    assert busy[1] >= 3.0 * RUN_US
    assert sampler.violation_fraction < 0.2


def test_no_hotplug_no_bug():
    """Without a hotplug cycle the buggy kernel balances normally."""
    system, sampler, _ = run_after_hotplug(BUGGY, hotplug=False)
    busy = node_busy_times(system)
    assert busy[1] >= 3.0 * RUN_US
    assert sampler.violation_fraction < 0.2


def test_disabling_a_remote_core_still_triggers():
    """The paper: threads are confined 'even if the node they run on is
    not the same as that on which the core was disabled'."""
    system = System(two_nodes(cores_per_node=4), BUGGY, seed=4)
    system.hotplug_cpu(7, False)  # a node-1 core
    system.hotplug_cpu(7, True)
    for i in range(8):
        system.spawn(hog_spec(f"t{i}"), parent_cpu=0)
    system.run_for(RUN_US)
    busy = node_busy_times(system)
    assert busy[1] == 0


def test_sanity_checker_catches_it():
    system = System(two_nodes(cores_per_node=4), BUGGY, seed=4)
    system.hotplug_cpu(2, False)
    system.hotplug_cpu(2, True)
    checker = SanityChecker(
        check_interval_us=50 * MS, monitor_window_us=30 * MS
    )
    checker.attach(system)
    for i in range(8):
        system.spawn(hog_spec(f"t{i}"), parent_cpu=0)
    system.run_for(RUN_US)
    assert checker.bug_detected
    # Once detected, the profile shows every balancing call concluding
    # "balanced" (the domains that could fix it no longer exist).
    assert checker.reports[0].profile_failed_fraction == 1.0


def test_throughput_improvement_factor():
    _, _, tasks_buggy = run_after_hotplug(BUGGY)
    _, _, tasks_fixed = run_after_hotplug(FIXED)
    runtime_buggy = sum(t.stats.total_runtime_us for t in tasks_buggy)
    runtime_fixed = sum(t.stats.total_runtime_us for t in tasks_fixed)
    # 8 threads on 4 vs 8 cores: ~2x more CPU time with the fix.
    assert runtime_fixed >= 1.7 * runtime_buggy

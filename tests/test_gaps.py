"""Tests for the straggler-gap analyzer (Figure 3's narrative)."""

import pytest

from repro.viz.events import NrRunningEvent, TraceBuffer
from repro.viz.gaps import (
    ActivityGap,
    activity_series,
    analyze_gaps,
    find_gaps,
)


def trace_of(*events):
    buf = TraceBuffer(1000)
    for e in events:
        buf.append(e)
    return buf


def test_activity_series_counts_active_cores():
    trace = trace_of(
        NrRunningEvent(0, 0, 1),
        NrRunningEvent(10, 1, 2),
        NrRunningEvent(20, 0, 0),
        NrRunningEvent(30, 1, 0),
    )
    assert activity_series(trace, 2) == [(0, 1), (10, 2), (20, 1), (30, 0)]


def test_activity_series_merges_same_timestamp():
    trace = trace_of(
        NrRunningEvent(5, 0, 1),
        NrRunningEvent(5, 1, 1),
    )
    assert activity_series(trace, 2) == [(5, 2)]


def test_no_gap_when_steady():
    trace = trace_of(
        NrRunningEvent(0, 0, 1),
        NrRunningEvent(0, 1, 1),
        NrRunningEvent(100_000, 0, 1),
    )
    assert find_gaps(trace, 2) == []


def test_gap_detected_when_activity_collapses():
    events = [NrRunningEvent(0, c, 1) for c in range(4)]
    # All four cores go quiet at t=10ms, resume at t=15ms.
    events += [NrRunningEvent(10_000, c, 0) for c in range(4)]
    events += [NrRunningEvent(15_000, c, 1) for c in range(4)]
    gaps = find_gaps(trace_of(*events), 4, min_duration_us=1000)
    assert len(gaps) == 1
    gap = gaps[0]
    assert gap.start_us == 10_000
    assert gap.end_us == 15_000
    assert gap.duration_us == 5_000
    assert gap.min_active_cores == 0


def test_short_blips_filtered():
    events = [NrRunningEvent(0, c, 1) for c in range(4)]
    events += [NrRunningEvent(10_000, c, 0) for c in range(4)]
    events += [NrRunningEvent(10_200, c, 1) for c in range(4)]
    assert find_gaps(trace_of(*events), 4, min_duration_us=1000) == []


def test_empty_trace():
    assert find_gaps(trace_of(), 4) == []
    report = analyze_gaps(trace_of(), 4, span_us=0)
    assert report.gap_time_fraction == 0.0
    assert report.mean_recovery_us == 0.0


def test_analyze_gaps_combines_episodes():
    # Sustained imbalance: cpu0 overloaded, cpu1 idle for 10ms.
    trace = trace_of(
        NrRunningEvent(0, 0, 2),
        NrRunningEvent(0, 1, 0),
        NrRunningEvent(10_000, 1, 1),
    )
    report = analyze_gaps(trace, 2, span_us=20_000, episode_min_us=2_000)
    assert len(report.episodes) == 1
    assert report.mean_recovery_us == pytest.approx(10_000)
    assert "episode" in report.describe()


def test_gap_report_fraction():
    report_gaps = [ActivityGap(0, 5_000, 0), ActivityGap(10_000, 15_000, 1)]
    from repro.viz.gaps import GapReport

    report = GapReport(gaps=report_gaps, episodes=[], span_us=100_000)
    assert report.gap_time_fraction == pytest.approx(0.1)


def test_gaps_shrink_with_wakeup_fix():
    """End to end: the buggy DB run shows more straggler-gap time."""
    from repro.experiments.figure3 import run_database_traced
    from repro.experiments.harness import ExperimentConfig
    from repro.sched.features import SchedFeatures

    results = {}
    base = SchedFeatures().without_autogroup()
    for label, features in (
        ("buggy", base),
        ("fixed", base.with_fixes("overload_on_wakeup")),
    ):
        run = run_database_traced(
            ExperimentConfig(features, seed=42, scale=0.5), queries=4
        )
        report = analyze_gaps(run.trace, run.num_cpus, run.span_us)
        results[label] = report
    # Both runs have natural inter-round gaps; the buggy one's imbalance
    # episodes are at least as numerous/long.
    assert (
        sum(e.duration_us for e in results["buggy"].episodes)
        >= sum(e.duration_us for e in results["fixed"].episodes)
    )

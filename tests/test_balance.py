"""Tests for the load balancer (the paper's Algorithm 1)."""

import pytest

from repro.sched import balance as lb
from repro.sched.features import SchedFeatures
from repro.sched.scheduler import Scheduler
from repro.sched.task import Task
from repro.topology import single_node, two_nodes

BUGGY = SchedFeatures().without_autogroup()
GI_FIXED = SchedFeatures().with_fixes("group_imbalance").without_autogroup()


def make_sched(features=BUGGY, topo=None):
    return Scheduler(topo or two_nodes(cores_per_node=4), features)


def add_queued(sched, cpu_id, name=None, nice=0, allowed=None):
    """Enqueue a runnable (not running) task."""
    task = Task(name or f"q{cpu_id}", nice=nice, allowed_cpus=allowed)
    sched.register_task(task)
    sched.cpu(cpu_id).rq.enqueue(task, 0)
    return task


def add_running(sched, cpu_id, name=None, nice=0):
    task = Task(name or f"r{cpu_id}", nice=nice)
    sched.register_task(task)
    rq = sched.cpu(cpu_id).rq
    rq.enqueue(task, 0)
    rq.take(task, 0)
    rq.set_current(task, 0)
    sched.cpu(cpu_id).mark_busy(0)
    return task


class TestGroupStats:
    def test_stats_aggregate_loads(self):
        sched = make_sched()
        add_running(sched, 0)
        add_queued(sched, 0)
        domain = sched.domain_builder.domains_of(0)[-1]
        local = domain.local_group(0)
        stats = lb.compute_group_stats(sched, local, 0)
        assert stats.nr_running == 2
        assert stats.capacity == 4
        assert stats.max_load > stats.min_load == 0.0
        assert stats.avg_load == pytest.approx(stats.max_load / 4)

    def test_overloaded_flag(self):
        sched = make_sched()
        for _ in range(5):
            add_queued(sched, 0)
        domain = sched.domain_builder.domains_of(0)[-1]
        stats = lb.compute_group_stats(sched, domain.local_group(0), 0)
        assert stats.overloaded  # 5 tasks > 4 cpus

    def test_imbalanced_flag(self):
        sched = make_sched()
        add_queued(sched, 0)
        add_queued(sched, 0)
        domain = sched.domain_builder.domains_of(0)[-1]
        stats = lb.compute_group_stats(sched, domain.local_group(0), 0)
        assert stats.imbalanced  # 2 on one cpu, 0 on another

    def test_offline_cpus_excluded(self):
        sched = make_sched()
        sched.set_cpu_online(1, False, 0)
        domain = sched.domain_builder.domains_of(0)[-1]
        stats = lb.compute_group_stats(sched, domain.local_group(0), 0)
        assert 1 not in stats.cpus


class TestGroupMetric:
    def test_buggy_uses_average(self):
        sched = make_sched(BUGGY)
        add_running(sched, 0)
        domain = sched.domain_builder.domains_of(0)[-1]
        stats = lb.compute_group_stats(sched, domain.local_group(0), 0)
        assert lb.group_metric(sched, stats) == stats.avg_load

    def test_fixed_uses_minimum(self):
        sched = make_sched(GI_FIXED)
        add_running(sched, 0)
        domain = sched.domain_builder.domains_of(0)[-1]
        stats = lb.compute_group_stats(sched, domain.local_group(0), 0)
        assert lb.group_metric(sched, stats) == stats.min_load == 0.0


class TestFindBusiestGroup:
    def test_balanced_when_equal(self):
        sched = make_sched()
        domain = sched.domain_builder.domains_of(0)[-1]
        busiest, local = lb.find_busiest_group(sched, domain, 0, 0)
        assert busiest is None
        assert local is not None

    def test_group_imbalance_scenario(self):
        """The Section 3.1 pathology, reduced: a high-load thread on the
        local node masks its idle cores under the average metric; the
        minimum metric sees through it."""
        topo = two_nodes(cores_per_node=4)
        for features, expect_steal in ((BUGGY, False), (GI_FIXED, True)):
            sched = make_sched(features, two_nodes(cores_per_node=4))
            # Local node: one huge thread (nice -15), three idle cores.
            add_running(sched, 0, nice=-15)
            # Remote node: two normal threads per core (overloaded).
            for cpu in range(4, 8):
                add_running(sched, cpu)
                add_queued(sched, cpu)
            domain = sched.domain_builder.domains_of(1)[-1]
            busiest, _ = lb.find_busiest_group(sched, domain, 1, 0)
            assert (busiest is not None) == expect_steal

    def test_overloaded_group_preferred(self):
        sched = make_sched()
        # Node 1: overloaded (6 tasks on 4 cpus).
        for cpu in range(4, 8):
            add_running(sched, cpu)
        add_queued(sched, 4)
        add_queued(sched, 5)
        domain = sched.domain_builder.domains_of(0)[-1]
        busiest, _ = lb.find_busiest_group(sched, domain, 0, 0)
        assert busiest is not None
        assert busiest.overloaded


class TestPickBusiestCpu:
    def test_prefers_highest_load_with_queued_work(self):
        sched = make_sched()
        add_running(sched, 4)
        add_queued(sched, 4)
        add_running(sched, 5)
        domain = sched.domain_builder.domains_of(0)[-1]
        stats = lb.compute_group_stats(
            sched, domain.groups[1], 0
        )
        assert lb.pick_busiest_cpu(sched, stats, frozenset(), 0) == 4

    def test_skips_cpu_without_queued_tasks(self):
        sched = make_sched()
        add_running(sched, 4)  # running only: not stealable
        domain = sched.domain_builder.domains_of(0)[-1]
        stats = lb.compute_group_stats(sched, domain.groups[1], 0)
        assert lb.pick_busiest_cpu(sched, stats, frozenset(), 0) is None

    def test_skips_mid_dispatch_cpu(self):
        """A queue with one task and no runner is mid-dispatch, not
        overloaded."""
        sched = make_sched()
        add_queued(sched, 4)
        domain = sched.domain_builder.domains_of(0)[-1]
        stats = lb.compute_group_stats(sched, domain.groups[1], 0)
        assert lb.pick_busiest_cpu(sched, stats, frozenset(), 0) is None

    def test_mid_dispatch_with_two_queued_is_fair_game(self):
        sched = make_sched()
        add_queued(sched, 4)
        add_queued(sched, 4)
        domain = sched.domain_builder.domains_of(0)[-1]
        stats = lb.compute_group_stats(sched, domain.groups[1], 0)
        assert lb.pick_busiest_cpu(sched, stats, frozenset(), 0) == 4

    def test_excluded_cpus_skipped(self):
        sched = make_sched()
        add_running(sched, 4)
        add_queued(sched, 4)
        domain = sched.domain_builder.domains_of(0)[-1]
        stats = lb.compute_group_stats(sched, domain.groups[1], 0)
        assert (
            lb.pick_busiest_cpu(sched, stats, frozenset({4}), 0) is None
        )


class TestMoveTasks:
    def test_moves_to_idle_destination(self):
        sched = make_sched()
        add_running(sched, 0)
        task = add_queued(sched, 0)
        moved = lb.move_tasks(sched, 0, 2, 0, "test", budget=2048.0)
        assert moved == 1
        assert task.cpu == 2
        assert task.stats.migrations == 1

    def test_respects_affinity(self):
        """Algorithm 1 lines 20-22: pinned tasks cannot move."""
        sched = make_sched()
        add_running(sched, 0)
        add_queued(sched, 0, allowed=frozenset({0, 1}))
        assert lb.move_tasks(sched, 0, 4, 0, "test", budget=2048.0) == 0

    def test_does_not_overshoot(self):
        sched = make_sched()
        add_running(sched, 0)
        for _ in range(3):
            add_queued(sched, 0)
        lb.move_tasks(sched, 0, 2, 0, "test", budget=4096.0)
        # Destination never ends up busier than the source.
        assert (
            sched.cpu(2).rq.nr_running <= sched.cpu(0).rq.nr_running + 1
        )


class TestBalanceDomainTasksets:
    def test_excludes_pinned_cpu_and_tries_next(self):
        """The taskset retry: busiest cpu's tasks are pinned; the next
        busiest cpu of the group must be tried."""
        sched = make_sched()
        # cpu4: heavy but pinned to node 1.  cpu5: movable work.
        add_running(sched, 4, nice=-10)
        add_queued(sched, 4, allowed=frozenset(range(4, 8)), name="pinned")
        add_queued(sched, 4, allowed=frozenset(range(4, 8)), name="pinned2")
        add_running(sched, 5)
        add_queued(sched, 5, name="movable")
        add_queued(sched, 5, name="movable2")
        domain = sched.domain_builder.domains_of(0)[-1]
        moved = lb.balance_domain(sched, domain, 0, 0)
        assert moved >= 1
        movable = sched.tasks
        assert any(
            t.name.startswith("movable") and t.cpu == 0
            for t in movable.values()
        )


class TestDesignatedCpu:
    def test_first_idle_of_local_group(self):
        sched = make_sched()
        add_running(sched, 0)
        domain = sched.domain_builder.domains_of(0)[-1]
        # Local group of cpu 0 = node 0; first idle is cpu 1.
        assert lb.designated_cpu(sched, domain, 0) == 1

    def test_first_cpu_when_all_busy(self):
        sched = make_sched()
        for cpu in range(4):
            add_running(sched, cpu)
        domain = sched.domain_builder.domains_of(2)[-1]
        assert lb.designated_cpu(sched, domain, 2) == 0

    def test_unknown_cpu_returns_sentinel(self):
        sched = make_sched()
        domain = sched.domain_builder.domains_of(0)[0]
        assert lb.designated_cpu(sched, domain, 7) == -1


class TestPeriodicBalance:
    def test_respects_interval(self):
        sched = make_sched(topo=single_node(2))
        add_running(sched, 0)
        add_queued(sched, 0)
        add_running(sched, 1)
        add_queued(sched, 1)
        # cpu0 is designated (first of its group) and balances at t=0...
        moved_first = lb.periodic_balance(sched, 0, 0)
        # ...but not again before the interval elapsed.
        add_queued(sched, 1)
        assert lb.periodic_balance(sched, 0, 100) == 0
        assert lb.periodic_balance(sched, 0, 100, force=True) >= 0
        del moved_first

    def test_steals_to_idle_designated(self):
        sched = make_sched(topo=single_node(2))
        add_running(sched, 0)
        task = add_queued(sched, 0)
        # Levels first become due one interval after boot.
        moved = lb.periodic_balance(sched, 1, 10_000)
        assert moved == 1
        assert task.cpu == 1
        assert 1 in sched.pending_dispatch


class TestNewidleBalance:
    def test_pulls_from_overloaded_neighbor(self):
        sched = make_sched(topo=single_node(2))
        add_running(sched, 0)
        task = add_queued(sched, 0)
        moved = lb.newidle_balance(sched, 1, 0)
        assert moved == 1
        assert task.cpu == 1


class TestNohz:
    def test_kick_target_is_lowest_tickless_idle(self):
        sched = make_sched()
        add_running(sched, 0)
        assert lb.nohz_kick_target(sched) == 1

    def test_no_target_when_all_busy(self):
        sched = make_sched(topo=single_node(2))
        add_running(sched, 0)
        add_running(sched, 1)
        assert lb.nohz_kick_target(sched) is None

    def test_idle_balance_on_behalf(self):
        sched = make_sched(topo=single_node(4))
        add_running(sched, 0)
        for _ in range(3):
            add_queued(sched, 0)
        moved = lb.nohz_idle_balance(sched, 1, 10_000)
        assert moved >= 2  # spread to several idle cpus
        assert sched.cpu(1).nohz_balancer

"""Property-based tests for the interconnect graph and heatmap math."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.topology.interconnect import Interconnect, hop_levels
from repro.viz.events import NrRunningEvent, TraceBuffer
from repro.viz.heatmap import HeatmapBuilder


@st.composite
def connected_graphs(draw):
    """A random connected graph: a spanning path plus random extra edges."""
    n = draw(st.integers(min_value=2, max_value=10))
    links = [(i, i + 1) for i in range(n - 1)]
    extra = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n - 1),
                st.integers(min_value=0, max_value=n - 1),
            ),
            max_size=12,
        )
    )
    for a, b in extra:
        if a != b:
            links.append((a, b))
    return Interconnect(n, links)


@settings(max_examples=100, deadline=None)
@given(graph=connected_graphs())
def test_distance_is_a_metric(graph):
    n = graph.num_nodes
    matrix = graph.distance_matrix()
    for a in range(n):
        assert matrix[a][a] == 0
        for b in range(n):
            # Symmetry.
            assert matrix[a][b] == matrix[b][a]
            assert matrix[a][b] >= (0 if a == b else 1)
            # Triangle inequality.
            for c in range(n):
                assert matrix[a][b] <= matrix[a][c] + matrix[c][b]


@settings(max_examples=100, deadline=None)
@given(graph=connected_graphs())
def test_nodes_within_is_monotone(graph):
    diameter = graph.diameter()
    for node in range(graph.num_nodes):
        previous = frozenset({node})
        for hops in range(diameter + 1):
            current = graph.nodes_within(node, hops)
            assert previous <= current
            previous = current
        assert previous == frozenset(range(graph.num_nodes))


@settings(max_examples=100, deadline=None)
@given(graph=connected_graphs())
def test_hop_levels_cover_diameter(graph):
    levels = list(hop_levels(graph))
    if graph.num_nodes > 1:
        assert levels[0] == 1
        assert levels[-1] == graph.diameter()
        assert levels == sorted(set(levels))


@st.composite
def step_functions(draw):
    """A random nr_running step function on one cpu."""
    events = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=100_000),
                st.integers(min_value=0, max_value=8),
            ),
            min_size=1,
            max_size=20,
        )
    )
    events.sort()
    # Deduplicate timestamps (last write wins, like the tracer).
    return [NrRunningEvent(t, 0, v) for t, v in events]


@settings(max_examples=100, deadline=None)
@given(events=step_functions(), bins=st.integers(min_value=1, max_value=16))
def test_heatmap_bin_values_bounded_by_extremes(events, bins):
    trace = TraceBuffer(100)
    for e in events:
        trace.append(e)
    builder = HeatmapBuilder(1, 0, 100_001, bins=bins)
    row = builder.from_trace(trace)[0]
    values = [e.nr_running for e in events] + [0]
    assert all(min(values) - 1e-9 <= v <= max(values) + 1e-9 for v in row)


@settings(max_examples=50, deadline=None)
@given(value=st.integers(min_value=0, max_value=10),
       bins=st.integers(min_value=1, max_value=12))
def test_heatmap_constant_function_exact(value, bins):
    trace = TraceBuffer(10)
    trace.append(NrRunningEvent(0, 0, value))
    builder = HeatmapBuilder(1, 0, 50_000, bins=bins)
    row = builder.from_trace(trace)[0]
    assert all(abs(v - value) < 1e-9 for v in row)

"""Replay round-trip tests: record -> replay must be byte-identical
(schedule digest and event stream) across seeds and topologies, and a
perturbed recording must name the first divergent event."""

import json
from pathlib import Path

import pytest

from repro.perf.orchestrator import TrialSpec
from repro.slo.replay import (
    FORMAT_NAME,
    FORMAT_VERSION,
    read_trace,
    record_trace,
    replay_trace,
    run_recording,
    trace_filename,
    write_trace,
)

#: Two bug scenarios on two distinct topologies: overload-on-wakeup runs
#: on two_nodes(4), group-construction on the 64-core AMD Bulldozer.
SCENARIOS = ("overload-on-wakeup", "group-construction")
SEEDS = (42, 1051)


def bug_spec(bug: str, seed: int, duration_ms: int = 50) -> TrialSpec:
    return TrialSpec(
        kind="repro.slo.trial:bug_slo_trial",
        scenario=bug,
        seed=seed,
        params=(
            ("bug", bug),
            ("duration_ms", str(duration_ms)),
            ("latency_deadline_us", "1023"),
            ("variant", "buggy"),
        ),
        cache=False,
    )


@pytest.mark.parametrize("bug", SCENARIOS)
@pytest.mark.parametrize("seed", SEEDS)
def test_record_replay_roundtrip_is_identical(tmp_path, bug, seed):
    spec = bug_spec(bug, seed)
    path = tmp_path / trace_filename(spec)
    result = record_trace(spec, path)
    trace = read_trace(path)
    assert trace.schedule_digest == result.schedule_digest
    assert len(trace.events) > 0

    diff = replay_trace(path)
    assert not diff.divergent, diff.format()
    assert diff.digest_match
    assert diff.metric_deltas == {}
    assert diff.first_divergence is None
    assert "identical" in diff.format()


def test_recording_bytes_are_deterministic(tmp_path):
    spec = bug_spec("overload-on-wakeup", 42)
    first = tmp_path / "a.jsonl"
    second = tmp_path / "b.jsonl"
    record_trace(spec, first)
    record_trace(spec, second)
    assert first.read_bytes() == second.read_bytes()


def test_perturbed_trace_names_first_divergent_event(tmp_path):
    spec = bug_spec("overload-on-wakeup", 42)
    path = tmp_path / trace_filename(spec)
    record_trace(spec, path)

    lines = path.read_text().splitlines()
    target = 10  # event index; line 0 is the header
    event = json.loads(lines[1 + target])
    # Flip an integer field -- schedule facts, so the replay must notice.
    int_keys = [
        k for k, v in event.items()
        if isinstance(v, int) and not isinstance(v, bool)
    ]
    assert int_keys, f"event has no integer field to perturb: {event}"
    event[int_keys[0]] += 1
    lines[1 + target] = json.dumps(event, sort_keys=True)
    path.write_text("\n".join(lines) + "\n")

    diff = replay_trace(path)
    assert diff.divergent
    assert diff.first_divergence == target
    assert diff.recorded_event is not None
    assert diff.replayed_event is not None
    assert f"first divergent event: #{target}" in diff.format()
    # The header digest was untouched, so only the stream diverges.
    assert diff.digest_match


def test_read_trace_rejects_foreign_and_truncated_files(tmp_path):
    path = tmp_path / "x.jsonl"
    path.write_text(json.dumps({"format": "something-else", "version": 1}) + "\n")
    with pytest.raises(ValueError, match="not a repro-slo-trace"):
        read_trace(path)

    path.write_text(
        json.dumps({"format": FORMAT_NAME, "version": FORMAT_VERSION + 1})
        + "\n"
    )
    with pytest.raises(ValueError, match="format version"):
        read_trace(path)

    spec = bug_spec("overload-on-wakeup", 42, duration_ms=10)
    result, events = run_recording(spec)
    write_trace(path, spec, result, events)
    truncated = path.read_text().splitlines()[:-1]
    path.write_text("\n".join(truncated) + "\n")
    with pytest.raises(ValueError, match="truncated"):
        read_trace(path)

    path.write_text("")
    with pytest.raises(ValueError, match="empty"):
        read_trace(path)


def test_trace_header_carries_spec_identity(tmp_path):
    spec = bug_spec("group-construction", 1051, duration_ms=10)
    path = tmp_path / trace_filename(spec)
    assert path.name == "group-construction__buggy__s1051.trace.jsonl"
    record_trace(spec, path)
    trace = read_trace(path)
    rebuilt = trace.spec
    assert rebuilt.scenario == spec.scenario
    assert rebuilt.seed == spec.seed
    assert dict(rebuilt.params)["bug"] == "group-construction"
    assert not rebuilt.cache

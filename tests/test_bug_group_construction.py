"""End-to-end reproduction of the Scheduling Group Construction bug
(Section 3.2).

An application pinned (taskset) to two nodes that are two hops apart on
the paper's machine (nodes 1 and 2), with threads created on node 1, never
spreads to node 2: the machine-level groups -- built from core 0's
perspective -- contain both nodes, so their average loads always match.
"""

from repro.core.invariant import has_violation
from repro.sched.features import SchedFeatures
from repro.sim.system import System
from repro.sim.timebase import MS
from repro.stats.metrics import IdleOverloadSampler
from repro.topology import amd_bulldozer_64

from tests.conftest import hog_spec

BUGGY = SchedFeatures().without_autogroup()
FIXED = SchedFeatures().with_fixes("group_construction").without_autogroup()
RUN_US = 400 * MS


def run_pinned(features, nr_threads=16, seed=3):
    topo = amd_bulldozer_64()
    allowed = topo.cpus_of_nodes([1, 2])
    system = System(topo, features, seed=seed)
    sampler = IdleOverloadSampler()
    sampler.attach(system)
    tasks = [
        system.spawn(
            hog_spec(f"t{i}", allowed_cpus=allowed),
            parent_cpu=min(topo.cpus_of_node(1)),
        )
        for i in range(nr_threads)
    ]
    system.run_for(RUN_US)
    node_busy = {
        n: sum(
            system.scheduler.cpus[c].busy_time_us
            for c in topo.cpus_of_node(n)
        )
        for n in range(8)
    }
    return system, sampler, tasks, node_busy


def test_bug_confines_app_to_one_node():
    system, sampler, _, node_busy = run_pinned(BUGGY)
    assert node_busy[1] >= 7.9 * RUN_US  # node 1 saturated
    assert node_busy[2] == 0  # node 2 never used
    assert sampler.violation_fraction > 0.9
    assert has_violation(system.scheduler, system.now)


def test_fix_spreads_across_both_nodes():
    system, sampler, _, node_busy = run_pinned(FIXED)
    assert node_busy[2] >= 6.0 * RUN_US
    assert node_busy[1] >= 6.0 * RUN_US
    assert sampler.violation_fraction < 0.2


def test_unpinned_nodes_never_used():
    """The taskset is honored under both configurations."""
    for features in (BUGGY, FIXED):
        _, _, _, node_busy = run_pinned(features)
        for node in (0, 3, 4, 5, 6, 7):
            assert node_busy[node] == 0, (features, node)


def test_throughput_doubles_with_fix():
    _, _, tasks_buggy, _ = run_pinned(BUGGY)
    _, _, tasks_fixed, _ = run_pinned(FIXED)
    runtime_buggy = sum(t.stats.total_runtime_us for t in tasks_buggy)
    runtime_fixed = sum(t.stats.total_runtime_us for t in tasks_fixed)
    assert runtime_fixed >= 1.8 * runtime_buggy


def test_bug_needs_two_hop_pinning():
    """Pinning to nodes one hop apart (0 and 1) does not trigger the bug:
    the one-hop domain of a node-0 core covers both nodes with
    single-node groups."""
    topo = amd_bulldozer_64()
    allowed = topo.cpus_of_nodes([0, 1])
    system = System(topo, BUGGY, seed=3)
    sampler = IdleOverloadSampler()
    sampler.attach(system)
    for i in range(16):
        system.spawn(
            hog_spec(f"t{i}", allowed_cpus=allowed),
            parent_cpu=0,
        )
    system.run_for(RUN_US)
    node_busy_1 = sum(
        system.scheduler.cpus[c].busy_time_us
        for c in topo.cpus_of_node(1)
    )
    assert node_busy_1 >= 6.0 * RUN_US
    assert sampler.violation_fraction < 0.2

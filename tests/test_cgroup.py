"""Tests for cgroups and the autogroup feature."""

import pytest

from repro.sched.cgroup import Autogroup, CGroup, CGroupManager
from repro.sched.task import Task


def make_task(name="t"):
    return Task(name)


def test_root_group_never_divides():
    manager = CGroupManager()
    task = make_task()
    manager.attach(task)
    assert task.cgroup is manager.root
    assert manager.root.load_divisor == 1
    manager.attach(make_task())
    assert manager.root.load_divisor == 1


def test_group_divisor_tracks_membership():
    manager = CGroupManager()
    group = manager.create_group("g")
    tasks = [make_task(f"t{i}") for i in range(4)]
    for t in tasks:
        manager.attach(t, group)
    assert group.nr_threads == 4
    assert group.load_divisor == 4
    manager.detach(tasks[0])
    assert group.load_divisor == 3


def test_empty_group_divisor_is_one():
    manager = CGroupManager()
    group = manager.create_group("empty")
    assert group.load_divisor == 1


def test_duplicate_group_name_rejected():
    manager = CGroupManager()
    manager.create_group("g")
    with pytest.raises(ValueError):
        manager.create_group("g")


def test_autogroup_per_tty():
    manager = CGroupManager()
    g1 = manager.autogroup_for_tty("tty1")
    g2 = manager.autogroup_for_tty("tty2")
    assert g1 is not g2
    assert isinstance(g1, Autogroup)
    assert g1.tty == "tty1"
    assert manager.autogroup_for_tty("tty1") is g1


def test_autogroup_disabled_falls_back_to_root():
    manager = CGroupManager(autogroup_enabled=False)
    assert manager.autogroup_for_tty("tty1") is manager.root


def test_attach_moves_between_groups():
    manager = CGroupManager()
    a = manager.create_group("a")
    b = manager.create_group("b")
    task = make_task()
    manager.attach(task, a)
    manager.attach(task, b)
    assert a.nr_threads == 0
    assert b.nr_threads == 1
    assert task.cgroup is b


def test_detach_clears_cgroup():
    manager = CGroupManager()
    task = make_task()
    manager.attach(task)
    manager.detach(task)
    assert task.cgroup is None
    # Detaching twice is harmless.
    manager.detach(task)


def test_group_lookup():
    manager = CGroupManager()
    manager.create_group("x")
    assert manager.group("x").name == "x"
    assert manager.group("root") is manager.root
    with pytest.raises(KeyError):
        manager.group("missing")
    names = {g.name for g in manager.groups()}
    assert {"root", "x"} <= names


def test_autogroup_appears_in_groups():
    manager = CGroupManager()
    manager.autogroup_for_tty("ttyZ")
    assert any(g.name == "autogroup:ttyZ" for g in manager.groups())


def test_repr():
    group = CGroup("g")
    assert "g" in repr(group)
    assert "threads=0" in repr(group)


class TestV43Metric:
    """The Linux 4.3 load-metric rework (paper Section 3.5)."""

    def test_unknown_metric_rejected(self):
        with pytest.raises(ValueError):
            CGroup("g", metric="v99")

    def test_v43_divisor_smooths_membership_changes(self):
        group = CGroup("g", metric="v43")
        tasks = [make_task(f"t{i}") for i in range(8)]
        for t in tasks:
            group.add(t)
        after_adds = group.load_divisor
        assert 1.0 <= after_adds < 8  # still converging
        # Keep touching membership: converges toward 8.
        for _ in range(20):
            group.discard(tasks[0])
            group.add(tasks[0])
        assert group.load_divisor > after_adds

    def test_classic_divisor_is_instantaneous(self):
        group = CGroup("g", metric="classic")
        for i in range(8):
            group.add(make_task(f"t{i}"))
        assert group.load_divisor == 8

    def test_manager_propagates_metric(self):
        manager = CGroupManager(metric="v43")
        assert manager.create_group("x").metric == "v43"
        assert manager.autogroup_for_tty("t1").metric == "v43"

    def test_root_never_divides_even_v43(self):
        manager = CGroupManager(metric="v43")
        for i in range(5):
            manager.attach(make_task(f"t{i}"))
        assert manager.root.load_divisor == 1

"""End-to-end reproduction of the Group Imbalance bug (Section 3.1).

A high-load single-threaded job (R) on one node inflates that node's
*average* load, hiding its idle cores from the balancer; a many-threaded
autogroup (make) overloads the other node.  Comparing group *minimum*
loads (the paper's fix) restores work conservation.
"""

from repro.core.invariant import has_violation
from repro.sched.features import SchedFeatures
from repro.sim.system import System
from repro.sim.timebase import MS, SEC
from repro.stats.metrics import IdleOverloadSampler, node_busy_times
from repro.topology import two_nodes
from repro.workloads.cpubound import r_process

from tests.conftest import hog_spec

RUN_US = 1 * SEC


def run_scenario(features):
    """One R thread on node 1, a 16-thread 'make' autogroup on node 0."""
    system = System(two_nodes(cores_per_node=4), features, seed=2)
    sampler = IdleOverloadSampler()
    sampler.attach(system)
    system.spawn(r_process("R1", tty="tty-r"), on_cpu=4)
    make = [
        system.spawn(hog_spec(f"mk{i}", tty="tty-make"), on_cpu=1)
        for i in range(16)
    ]
    system.run_for(RUN_US)
    return system, sampler, make


def test_bug_leaves_r_node_cores_idle():
    system, sampler, _ = run_scenario(SchedFeatures())
    busy = node_busy_times(system)
    # Node 1 hosts only the R thread: ~1 of 4 cores busy.
    assert busy[1] <= 1.2 * RUN_US
    assert busy[0] >= 3.9 * RUN_US
    assert sampler.violation_fraction > 0.9
    assert has_violation(system.scheduler, system.now)


def test_fix_fills_the_idle_cores():
    system, sampler, _ = run_scenario(
        SchedFeatures().with_fixes("group_imbalance")
    )
    busy = node_busy_times(system)
    assert busy[1] >= 3.8 * RUN_US  # all four cores of the R node busy
    assert sampler.violation_fraction < 0.1


def test_fix_does_not_cause_migration_pingpong():
    """The paper: 'this fix does not result in an increased number of
    migrations between scheduling groups'."""
    _, _, make_buggy = run_scenario(SchedFeatures())
    _, _, make_fixed = run_scenario(
        SchedFeatures().with_fixes("group_imbalance")
    )
    migs_buggy = sum(t.stats.migrations for t in make_buggy)
    migs_fixed = sum(t.stats.migrations for t in make_fixed)
    # The fix moves threads over once; it must not thrash afterwards.
    assert migs_fixed < migs_buggy + 60


def test_make_throughput_improves_with_fix():
    """The work-conserving fix gives make the idle cores' cycles."""
    _, _, make_buggy = run_scenario(SchedFeatures())
    _, _, make_fixed = run_scenario(
        SchedFeatures().with_fixes("group_imbalance")
    )
    runtime_buggy = sum(t.stats.total_runtime_us for t in make_buggy)
    runtime_fixed = sum(t.stats.total_runtime_us for t in make_fixed)
    assert runtime_fixed > runtime_buggy * 1.3


def test_r_thread_unharmed_by_fix():
    """The paper: 'the completion time of the two R processes did not
    change' -- the R thread keeps its full core."""
    for features in (
        SchedFeatures(),
        SchedFeatures().with_fixes("group_imbalance"),
    ):
        system = System(two_nodes(cores_per_node=4), features, seed=2)
        r = system.spawn(r_process("R1", tty="tty-r"), on_cpu=4)
        for i in range(16):
            system.spawn(hog_spec(f"mk{i}", tty="tty-make"), on_cpu=1)
        system.run_for(500 * MS)
        assert r.stats.total_runtime_us >= 0.95 * 500 * MS


def test_bug_survives_v43_load_metric():
    """Paper Section 3.5: Linux 4.3's reworked load metric was reported
    to 'significantly reduce complexity', but the Group Imbalance bug is
    still present -- confirmed with the same tools here."""
    system, sampler, _ = run_scenario(
        SchedFeatures().with_v43_load_metric()
    )
    busy = node_busy_times(system)
    # The R node stays well below full (cores idle while node 0 overloads).
    assert busy[1] <= 2.5 * RUN_US
    assert sampler.violation_fraction > 0.8


def test_v43_metric_plus_min_fix_works():
    """The min-load comparison fixes the bug under either metric."""
    system, sampler, _ = run_scenario(
        SchedFeatures().with_v43_load_metric().with_fixes("group_imbalance")
    )
    busy = node_busy_times(system)
    assert busy[1] >= 3.5 * RUN_US
    assert sampler.violation_fraction < 0.15


def test_bug_requires_autogroups():
    """Without autogroups all threads weigh the same and the average
    metric balances fine: the bug needs the load-metric asymmetry."""
    system = System(
        two_nodes(cores_per_node=4),
        SchedFeatures().without_autogroup(),
        seed=2,
    )
    sampler = IdleOverloadSampler()
    sampler.attach(system)
    system.spawn(r_process("R1", tty="tty-r"), on_cpu=4)
    for i in range(16):
        system.spawn(hog_spec(f"mk{i}", tty="tty-make"), on_cpu=1)
    system.run_for(500 * MS)
    assert sampler.violation_fraction < 0.1

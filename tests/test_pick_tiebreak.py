"""Pick-index tie-breaking: equal-vruntime picks in exact rbtree order.

The pick index's ordering contract is the rbtree's composite
``(vruntime, tid)`` insertion key, so equal-vruntime tasks must pick in
tid order on every path that can answer a pick: the rbtree itself (the
scalar reference), the cached-min probe, the in-frame scalar argmin
(below the backend crossover), and both backend ``argmin_pairs``
kernels.  These tests drain adversarial tie-heavy populations through
each path and cross-check against the tree; a full traced run then
proves the whole scheduler picks identically across the scalar and
vectorized variants, with the replay differ naming the first divergent
event on failure.  Coherence under requeue / migrate / hotplug rides on
the sanitizer's per-pick leftmost cross-check.
"""

import hashlib

import pytest

from repro.sched import vec
from repro.sched.pickindex import PickIndex
from repro.sched.rbtree import RBTree
from repro.sched.runqueue import RunQueue
from repro.sched.features import SchedFeatures
from repro.sched.task import Task
from repro.sim.system import System
from repro.sim.timebase import MS
from repro.slo.replay import diff_events, serialize_buffer
from repro.topology import two_nodes
from repro.viz.events import TraceBuffer, TraceProbe

_BACKENDS = ["python"] + (["numpy"] if vec.HAVE_NUMPY else [])


def _task(tid):
    return Task(name=f"t{tid}", program=None, tid=tid)


def _population(n, ties):
    """n tasks over ``ties`` distinct vruntimes, tids shuffled
    deterministically so insertion order fights the pick order."""
    tasks = []
    for i in range(n):
        tid = (i * 7919) % (n * 13) + 1  # coprime stride: unique, shuffled
        tasks.append((i % ties, tid, _task(tid)))
    return tasks


def _drain(index, tree):
    """Pop tasks from both structures in pick order; assert agreement."""
    order = []
    while len(index):
        picked = index.peek()
        pair = tree.leftmost()
        assert pair is not None
        assert picked is pair[1], (
            f"index picked tid {picked.tid} vr {picked.vruntime}, "
            f"tree leftmost tid {pair[1].tid} vr {pair[0][0]}"
        )
        order.append(picked)
        index.remove(picked.tid)
        tree.remove(pair[0])
    assert tree.leftmost() is None
    return order


@pytest.mark.parametrize("backend", _BACKENDS)
@pytest.mark.parametrize("n,ties", [(12, 3), (200, 5), (96, 1)])
def test_equal_vruntime_drain_matches_rbtree_order(backend, n, ties):
    # n=12 stays under bulk_min (in-frame scalar argmin); n=200 forces
    # the backend argmin kernel on the early recomputes; ties=1 makes
    # every key a tie, so tid alone decides every single pick.
    ops = vec.make_ops(backend)
    index = PickIndex(ops)
    tree = RBTree()
    for vr, tid, task in _population(n, ties):
        task.vruntime = vr
        index.insert(vr, tid, task)
        tree.insert((vr, tid), task)
    order = _drain(index, tree)
    keys = [(t.vruntime, t.tid) for t in order]
    assert keys == sorted(keys)
    assert len(order) == n


@pytest.mark.parametrize("backend", _BACKENDS)
def test_stale_cached_min_recompute_preserves_tie_order(backend):
    # Removing the cached minimum leaves the probe stale; the recompute
    # must re-break the remaining all-equal keys by tid, both below and
    # above the crossover.
    ops = vec.make_ops(backend)
    for n in (8, 150):
        index = PickIndex(ops)
        tids = [(i * 31) % (n * 3) + 1 for i in range(n)]
        assert len(set(tids)) == n
        for tid in tids:
            index.insert(5, tid, _task(tid))
        for expected in sorted(tids):
            picked = index.peek()
            assert picked.tid == expected
            index.remove(picked.tid)  # invalidates the cached min
        assert index.peek() is None


def test_requeue_moves_tie_position_exactly_like_tree():
    # A requeue (vruntime change of a queued task) re-sorts both
    # structures; with the sanitizer on, every pick cross-checks the
    # index against the tree's leftmost and raises on any drift.
    rq = RunQueue(cpu_id=0, sanitize=True)
    rq.pidx = PickIndex(vec.make_ops("python"))
    tasks = [_task(tid) for tid in (3, 1, 2, 5, 4)]
    for task in tasks:
        task.vruntime = 10
        rq.enqueue(task, now=0)
    assert rq.pick_next() is tasks[1]  # tid 1 wins the 5-way tie
    # Push tid 1 to the back, pull tid 4 to the front, re-tie tid 5.
    rq.requeue(tasks[1], 20, now=0)
    rq.requeue(tasks[4], 1, now=0)
    assert rq.pick_next() is tasks[4]
    rq.take(tasks[4], now=0)
    assert rq.pick_next() is tasks[2]  # the (10, 2) tie resumes
    # put_prev / set_current round trip lands back in tie order too.
    rq.take(tasks[2], now=0)
    rq.set_current(tasks[2], now=0)
    rq.put_prev(tasks[2], now=0)
    assert rq.pick_next() is tasks[2]
    drained = []
    while rq.pick_next() is not None:
        drained.append(rq.take(rq.pick_next(), now=0).tid)
    assert drained == [2, 3, 5, 1]


def _traced_stream(variant, seed=13):
    transform = {
        "fast": lambda f: f.with_fastpath(True),
        "vec": lambda f: f.with_vectorized(True),
        "vec-fallback": lambda f: f.with_vectorized(True, backend="python"),
    }[variant]
    system = System(two_nodes(4, smt_width=2), transform(SchedFeatures()),
                    seed=seed)
    buffer = TraceBuffer()
    system.attach_probe(TraceProbe(buffer=buffer, record_load=False))
    from repro.perf.bench import _hog, _sleeper

    for i in range(6):
        system.spawn(_hog(f"hog{i}"), parent_cpu=(i * 3) % 8)
    for i in range(4):
        system.spawn(_sleeper(f"sleep{i}"), parent_cpu=(i * 5) % 8)
    system.run_for(40 * MS)
    return serialize_buffer(buffer)


def _digest(stream):
    h = hashlib.sha256()
    for event in stream:
        h.update(repr(event).encode())
    return h.hexdigest()


def test_pick_paths_schedule_identically_across_variants():
    # The end-to-end tie-order claim: scalar rbtree picks (fast), the
    # pick index over the numpy kernel (vec), and the pick index over
    # the pure-python kernel (vec-fallback) must produce byte-identical
    # trace streams.  On failure the replay differ names the first
    # divergent event -- the actionable form of "digests differ".
    reference = _traced_stream("fast")
    assert len(reference) > 0
    for variant in ("vec", "vec-fallback"):
        stream = _traced_stream(variant)
        divergence = diff_events(stream, reference)
        if divergence is not None:
            got = stream[divergence] if divergence < len(stream) else None
            want = (
                reference[divergence]
                if divergence < len(reference) else None
            )
            pytest.fail(
                f"{variant}: first divergence at event {divergence}: "
                f"{variant}={got!r} fast={want!r}"
            )
        assert _digest(stream) == _digest(reference)


def test_pick_index_coherent_under_migration_and_hotplug():
    # A sanitized vectorized soak with a mid-run hotplug cycle: every
    # pick cross-checks index-vs-tree, so any coherence break under the
    # migration drain or the offline/online rebuild raises.
    features = SchedFeatures().with_vectorized(True).with_sanitizer(True)
    system = System(two_nodes(4, smt_width=2), features, seed=17)
    from repro.perf.bench import _hog, _sleeper

    for i in range(8):
        system.spawn(_hog(f"hog{i}"), parent_cpu=i % 8)
    for i in range(4):
        system.spawn(_sleeper(f"sleep{i}"), parent_cpu=(i * 5) % 8)
    system.run_for(10 * MS)
    system.hotplug_cpu(2, False)  # drains cpu 2's queue via take()
    system.run_for(10 * MS)
    system.hotplug_cpu(2, True)
    system.run_for(10 * MS)
    assert system.loop.events_fired > 0
    # Terminal structural check: every index mirrors its tree exactly.
    for cpu in system.scheduler.cpus:
        rq = cpu.rq
        assert rq.pidx is not None
        tree_tids = sorted(t.tid for _, t in rq._tree.items()) \
            if hasattr(rq._tree, "items") else None
        if tree_tids is not None:
            assert sorted(rq.pidx._tids) == tree_tids
        assert len(rq.pidx) == rq.nr_queued
        assert rq.pick_next() is (
            rq._tree.leftmost()[1] if rq.nr_queued else None
        )

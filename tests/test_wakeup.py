"""Tests for wakeup and fork placement (select_task_rq)."""

from repro.sched.features import SchedFeatures
from repro.sched.scheduler import Scheduler
from repro.sched.task import Task, TaskState
from repro.sched.wakeup import (
    find_idlest_cpu,
    select_task_rq_fork,
    select_task_rq_wake,
)
from repro.topology import two_nodes

BUGGY = SchedFeatures().without_autogroup()
FIXED = SchedFeatures().with_fixes("overload_on_wakeup").without_autogroup()


def make_sched(features=BUGGY):
    # Two nodes x 4 cores: node 0 = cpus 0-3, node 1 = cpus 4-7.
    return Scheduler(two_nodes(cores_per_node=4), features)


def occupy(sched, cpu_id, name=None):
    """Put a running task on a CPU."""
    task = Task(name or f"occ{cpu_id}")
    sched.register_task(task)
    sched.cpu(cpu_id).rq.enqueue(task, 0)
    sched.cpu(cpu_id).rq.take(task, 0)
    sched.cpu(cpu_id).rq.set_current(task, 0)
    sched.cpu(cpu_id).mark_busy(0)
    return task


def sleeper(sched, prev_cpu, name="sleeper"):
    task = Task(name)
    sched.register_task(task)
    task.prev_cpu = prev_cpu
    task.state = TaskState.SLEEPING
    return task


class TestMainlineWake:
    def test_waker_same_node_considers_only_that_node(self):
        """The Overload-on-Wakeup trigger: all of node 0 busy, node 1
        idle, waker and sleeper both on node 0 -> wake on a busy core."""
        sched = make_sched()
        for cpu in range(4):
            occupy(sched, cpu)
        task = sleeper(sched, prev_cpu=1)
        target = select_task_rq_wake(sched, task, waker_cpu=0, now=0)
        assert target in range(4)  # never node 1, despite 4 idle cores

    def test_prev_core_preferred_when_idle(self):
        sched = make_sched()
        occupy(sched, 0)
        task = sleeper(sched, prev_cpu=2)
        assert select_task_rq_wake(sched, task, waker_cpu=0, now=0) == 2

    def test_idle_core_in_node_chosen_over_busy_prev(self):
        sched = make_sched()
        occupy(sched, 1)
        task = sleeper(sched, prev_cpu=1)
        target = select_task_rq_wake(sched, task, waker_cpu=0, now=0)
        assert target in {0, 2, 3}

    def test_cross_node_waker_uses_wake_affine(self):
        sched = make_sched()
        # Node 0 loaded, node 1 (waker side) empty.
        for cpu in range(4):
            occupy(sched, cpu)
        task = sleeper(sched, prev_cpu=0)
        target = select_task_rq_wake(sched, task, waker_cpu=4, now=0)
        assert target in range(4, 8)  # pulled to the waker's idle node

    def test_affinity_respected(self):
        sched = make_sched()
        task = sleeper(sched, prev_cpu=0)
        task.set_affinity(frozenset({5, 6}))
        target = select_task_rq_wake(sched, task, waker_cpu=0, now=0)
        assert target in {5, 6}

    def test_timer_wake_without_waker_uses_prev(self):
        sched = make_sched()
        task = sleeper(sched, prev_cpu=3)
        assert select_task_rq_wake(sched, task, waker_cpu=None, now=0) == 3


class TestFixedWake:
    def test_prev_core_when_idle(self):
        sched = make_sched(FIXED)
        task = sleeper(sched, prev_cpu=2)
        assert select_task_rq_wake(sched, task, waker_cpu=0, now=0) == 2

    def test_longest_idle_core_when_prev_busy(self):
        sched = make_sched(FIXED)
        for cpu in range(4):
            occupy(sched, cpu)
        # Make cpu 6 the longest-idle core.
        sched.cpu(6).idle_since_us = 0
        for cpu in (4, 5, 7):
            sched.cpu(cpu).idle_since_us = 50_000
        task = sleeper(sched, prev_cpu=1)
        assert select_task_rq_wake(sched, task, waker_cpu=0, now=100_000) == 6

    def test_falls_back_to_mainline_when_no_idle_cores(self):
        sched = make_sched(FIXED)
        for cpu in range(8):
            occupy(sched, cpu)
        task = sleeper(sched, prev_cpu=1)
        target = select_task_rq_wake(sched, task, waker_cpu=0, now=0)
        assert target in range(4)  # mainline same-node behavior

    def test_power_aware_policy_disables_fix(self):
        """The paper only enforces the fix when the power policy forbids
        low-power states."""
        from dataclasses import replace

        features = replace(FIXED, power_aware_wakeup=True)
        sched = make_sched(features)
        for cpu in range(4):
            occupy(sched, cpu)
        task = sleeper(sched, prev_cpu=1)
        target = select_task_rq_wake(sched, task, waker_cpu=0, now=0)
        assert target in range(4)  # bug behavior despite the fix flag

    def test_longest_idle_respects_affinity(self):
        sched = make_sched(FIXED)
        for cpu in range(4):
            occupy(sched, cpu)
        sched.cpu(4).idle_since_us = 0
        task = sleeper(sched, prev_cpu=1)
        task.set_affinity(frozenset({1, 7}))
        assert select_task_rq_wake(sched, task, waker_cpu=0, now=1000) == 7


class TestForkPlacement:
    def test_child_stays_on_parent_node(self):
        """No SD_BALANCE_FORK on NUMA levels: children stay local even
        when another node is emptier."""
        sched = make_sched()
        for cpu in range(4):
            occupy(sched, cpu)
        child = Task("child")
        sched.register_task(child)
        target = select_task_rq_fork(sched, child, parent_cpu=0, now=0)
        assert target in range(4)

    def test_child_takes_idlest_core_of_node(self):
        sched = make_sched()
        occupy(sched, 0)
        occupy(sched, 1)
        child = Task("child")
        sched.register_task(child)
        target = select_task_rq_fork(sched, child, parent_cpu=0, now=0)
        assert target in {2, 3}

    def test_offline_parent_cpu_falls_back(self):
        sched = make_sched()
        sched.set_cpu_online(0, False, 0)
        child = Task("child")
        sched.register_task(child)
        target = select_task_rq_fork(sched, child, parent_cpu=0, now=0)
        assert sched.cpu(target).online

    def test_affinity_enforced_even_off_node(self):
        sched = make_sched()
        child = Task("child", allowed_cpus=frozenset({6}))
        sched.register_task(child)
        assert select_task_rq_fork(sched, child, parent_cpu=0, now=0) == 6


class TestFindIdlestCpu:
    def test_full_walk_reaches_remote_idle_node(self):
        sched = make_sched()
        for cpu in range(4):
            occupy(sched, cpu)
        task = Task("t")
        sched.register_task(task)
        target = find_idlest_cpu(sched, task, 0, 0, numa_levels=True)
        assert target in range(4, 8)

    def test_intra_node_walk_stays_local(self):
        sched = make_sched()
        for cpu in range(4):
            occupy(sched, cpu)
        task = Task("t")
        sched.register_task(task)
        target = find_idlest_cpu(sched, task, 0, 0, numa_levels=False)
        assert target in range(4)


def test_wake_probe_reports_considered_cores():
    from repro.viz.events import ConsideredEvent, TraceProbe

    probe = TraceProbe()
    sched = Scheduler(
        two_nodes(cores_per_node=4), BUGGY, probe=probe
    )
    task = sleeper(sched, prev_cpu=1)
    select_task_rq_wake(sched, task, waker_cpu=0, now=0)
    events = probe.buffer.of_type(ConsideredEvent)
    assert any(e.op == "select_idle_sibling" for e in events)
    sibling_event = [e for e in events if e.op == "select_idle_sibling"][0]
    # Only node 0's cores were examined.
    assert sibling_event.considered <= frozenset(range(4))

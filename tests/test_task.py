"""Tests for tasks: state, affinity, load."""

import pytest

from repro.sched.cgroup import CGroupManager
from repro.sched.task import Task, TaskState, reset_tid_counter
from repro.sched.weights import NICE_0_WEIGHT, weight_for_nice


def test_new_task_defaults():
    task = Task("t")
    assert task.state is TaskState.NEW
    assert task.nice == 0
    assert task.weight == NICE_0_WEIGHT
    assert task.vruntime == 0
    assert task.cpu is None
    assert task.prev_cpu is None
    assert task.alive
    assert not task.on_rq


def test_weight_follows_nice():
    assert Task("hi", nice=-5).weight == weight_for_nice(-5)
    assert Task("lo", nice=10).weight == weight_for_nice(10)


def test_tids_unique_and_resettable():
    reset_tid_counter(100)
    a = Task("a")
    b = Task("b")
    assert (a.tid, b.tid) == (100, 101)
    reset_tid_counter()
    assert Task("c").tid == 1


def test_affinity_default_allows_all():
    task = Task("t")
    assert task.can_run_on(0)
    assert task.can_run_on(63)


def test_affinity_mask():
    task = Task("t", allowed_cpus=frozenset({1, 2}))
    assert task.can_run_on(1)
    assert not task.can_run_on(0)


def test_set_affinity():
    task = Task("t")
    task.set_affinity(frozenset({3}))
    assert not task.can_run_on(0)
    task.set_affinity(None)
    assert task.can_run_on(0)
    with pytest.raises(ValueError):
        task.set_affinity(frozenset())


def test_load_uses_cgroup_divisor():
    manager = CGroupManager()
    group = manager.create_group("g")
    tasks = [Task(f"t{i}") for i in range(4)]
    for t in tasks:
        manager.attach(t, group)
    # Full utilization at t=0, divisor 4.
    assert tasks[0].load() == pytest.approx(1024 / 4)


def test_load_without_cgroup():
    task = Task("t")
    assert task.load() == pytest.approx(1024)


def test_load_decays_with_time_when_not_running():
    task = Task("t", now=0)
    task.state = TaskState.SLEEPING
    later = task.load(now=100_000)
    assert later < 1024


def test_on_rq_states():
    task = Task("t")
    task.state = TaskState.RUNNABLE
    assert task.on_rq
    task.state = TaskState.RUNNING
    assert task.on_rq
    task.state = TaskState.BLOCKED
    assert not task.on_rq


def test_exited_not_alive():
    task = Task("t")
    task.state = TaskState.EXITED
    assert not task.alive


def test_repr_contains_name_and_state():
    task = Task("mytask")
    assert "mytask" in repr(task)
    assert "new" in repr(task)

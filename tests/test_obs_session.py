"""ObsSession + MetricsRecorder against live simulated runs."""

import pytest

from repro.obs import ObsSession
from repro.obs.tracepoints import TracepointRegistry
from repro.sim.system import System
from repro.sim.timebase import MS
from repro.topology.presets import single_node, two_nodes
from repro.workloads.base import Run, Sleep, TaskSpec


def _sleeper(name, rounds=5, run_us=2 * MS, sleep_us=1 * MS):
    def factory():
        def program():
            for _ in range(rounds):
                yield Run(run_us)
                yield Sleep(sleep_us)

        return program()

    return TaskSpec(name, factory)


def _run_observed(trace=False, tasks=6, duration_us=200 * MS):
    system = System(single_node(cores=4))
    obs = ObsSession.attach_to(
        system, trace=trace, registry=TracepointRegistry()
    )
    for i in range(tasks):
        system.spawn(_sleeper(f"t{i}"))
    system.run_for(duration_us)
    obs.close()
    return system, obs


class TestSessionLifecycle:
    def test_attach_to_wires_probe_and_close_detaches(self):
        system, obs = _run_observed()
        switches = obs.metrics.get("sched_switches_total")
        before = switches.total()
        # After close, further simulation must not be recorded.
        system.run_for(50 * MS)
        assert switches.total() == before

    def test_close_is_idempotent(self):
        _, obs = _run_observed()
        obs.close()

    def test_write_chrome_trace_requires_trace_mode(self):
        _, obs = _run_observed(trace=False)
        with pytest.raises(RuntimeError):
            obs.write_chrome_trace("/tmp/never-written.json")

    def test_private_registries_do_not_cross_talk(self):
        system_a = System(single_node(cores=2))
        system_b = System(single_node(cores=2))
        obs_a = ObsSession.attach_to(system_a, registry=TracepointRegistry())
        obs_b = ObsSession.attach_to(system_b, registry=TracepointRegistry())
        system_a.spawn(_sleeper("a"))
        system_a.run_for(50 * MS)
        obs_a.close()
        obs_b.close()
        assert obs_a.metrics.get("sched_forks_total").total() == 1
        assert obs_b.metrics.get("sched_forks_total").total() == 0


class TestRecorderMetrics:
    def test_wakeup_latency_recorded_for_every_switch_in_after_wakeup(self):
        _, obs = _run_observed()
        latency = obs.recorder.wakeup_latency
        assert latency.count() > 0
        # Forks arm a sample too (sched_wakeup_new analog): at least one
        # sample per spawned task.
        assert latency.count() >= 6

    def test_switch_and_fork_exit_counters(self):
        _, obs = _run_observed()
        m = obs.metrics
        assert m.get("sched_forks_total").total() == 6
        assert m.get("sched_exits_total").total() == 6
        assert m.get("sched_switches_total").total() > 0

    def test_wakeups_split_by_landing(self):
        _, obs = _run_observed()
        wakeups = obs.metrics.get("sched_wakeups_total")
        assert wakeups.total() > 0
        landings = {k for key in wakeups.label_keys() for k in dict(key)}
        assert landings == {"landing"}

    def test_balance_outcomes_by_domain(self):
        system = System(two_nodes(cores_per_node=2))
        obs = ObsSession.attach_to(system, registry=TracepointRegistry())
        for i in range(8):
            system.spawn(_sleeper(f"t{i}", rounds=20))
        system.run_for(300 * MS)
        obs.close()
        balance = obs.metrics.get("sched_balance_total")
        assert balance.total() > 0
        domains = {dict(key)["domain"] for key in balance.label_keys()}
        assert domains  # per-domain labels present (MC and/or NUMA levels)

    def test_idle_gaps_recorded(self):
        _, obs = _run_observed()
        gaps = obs.metrics.get("sched_idle_gap_us")
        assert gaps.count() > 0

    def test_latency_line_renders(self):
        _, obs = _run_observed()
        assert "wakeup-to-run latency" in obs.recorder.latency_line()
        assert "p99=" in obs.recorder.latency_line()

    def test_double_attach_rejected(self):
        from repro.obs.recorder import MetricsRecorder

        recorder = MetricsRecorder()
        reg = TracepointRegistry()
        recorder.attach(reg)
        with pytest.raises(RuntimeError):
            recorder.attach(reg)
        recorder.detach()
        recorder.attach(reg)  # re-attach after detach is fine
        recorder.detach()


class TestHarnessObsPath:
    def test_build_system_attaches_session(self):
        from repro.experiments.harness import ExperimentConfig
        from repro.sched.features import SchedFeatures

        config = ExperimentConfig(SchedFeatures(), obs=True)
        system = config.build_system()
        assert system.obs is not None
        plain = ExperimentConfig(SchedFeatures()).build_system()
        assert plain.obs is None

    def test_with_obs_copy(self):
        from repro.experiments.harness import ExperimentConfig
        from repro.sched.features import SchedFeatures

        config = ExperimentConfig(SchedFeatures())
        assert config.with_obs().obs and not config.obs

    def test_table1_obs_rows_carry_latency(self):
        from repro.experiments.table1 import format_table1, run_table1

        rows = run_table1(scale=0.02, apps=["cg"], obs=True)
        (row,) = rows
        assert row.bug_wakeup_p99_us is not None
        assert row.fix_wakeup_p99_us is not None
        assert row.bug_wakeup_p99_us >= row.bug_wakeup_p50_us
        table = format_table1(rows)
        assert "wake p50/p99" in table

    def test_table1_without_obs_has_no_latency_columns(self):
        from repro.experiments.table1 import format_table1, run_table1

        rows = run_table1(scale=0.02, apps=["cg"])
        assert rows[0].bug_wakeup_p99_us is None
        assert "wake p50/p99" not in format_table1(rows)

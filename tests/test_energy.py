"""Tests for the energy-accounting model."""

import pytest

from repro.sched.features import SchedFeatures
from repro.sim.system import System
from repro.sim.timebase import MS, SEC
from repro.stats.energy import (
    EnergyReport,
    PowerModel,
    energy_waste_vs,
    measure_energy,
)
from repro.topology import single_node, two_nodes
from repro.workloads.base import LockAcquire, LockRelease, Run, TaskSpec
from repro.workloads.sync import SpinLock

from tests.conftest import hog_spec


def test_power_model_validation():
    with pytest.raises(ValueError):
        PowerModel(busy_core_w=1.0, idle_core_w=2.0).validate()
    with pytest.raises(ValueError):
        PowerModel(idle_core_w=-1.0).validate()
    PowerModel().validate()


def test_idle_machine_burns_idle_plus_package():
    system = System(single_node(2), seed=1)
    system.run_for(1 * SEC)
    model = PowerModel(busy_core_w=5.0, idle_core_w=1.0,
                       package_w_per_node=10.0)
    report = measure_energy(system, model=model)
    # 2 idle core-seconds * 1 W + 1 s * 10 W package.
    assert report.total_joules == pytest.approx(12.0, rel=0.01)
    assert report.busy_core_seconds == 0.0
    assert report.spin_joules == 0.0


def test_busy_machine_energy():
    system = System(single_node(2), seed=1)
    tasks = [system.spawn(hog_spec(f"h{i}", total_us=1 * SEC), on_cpu=i)
             for i in range(2)]
    system.run_until_done(tasks, 3 * SEC)
    model = PowerModel(busy_core_w=5.0, idle_core_w=1.0,
                       package_w_per_node=0.0)
    report = measure_energy(system, model=model)
    assert report.busy_core_seconds == pytest.approx(2.0, rel=0.02)
    assert report.total_joules == pytest.approx(10.0, rel=0.05)


def test_spin_energy_attributed():
    system = System(single_node(2), seed=1)
    lock = SpinLock()

    def holder():
        def program():
            yield LockAcquire(lock)
            yield Run(20 * MS)
            yield LockRelease(lock)
        return program()

    def waiter():
        def program():
            yield Run(1 * MS)
            yield LockAcquire(lock)
            yield LockRelease(lock)
        return program()

    tasks = [
        system.spawn(TaskSpec("h", holder), on_cpu=0),
        system.spawn(TaskSpec("w", waiter), on_cpu=1),
    ]
    system.run_until_done(tasks, 1 * SEC)
    report = measure_energy(system)
    assert report.spin_core_seconds >= 0.015
    assert report.spin_joules > 0
    assert 0 < report.spin_waste_fraction < 1


def test_bug_wastes_energy_for_same_work():
    """Same work, buggy vs fixed: the bug burns more joules (longer
    makespan -> more package + idle energy)."""
    reports = {}
    for fixes, label in ((None, "buggy"), ("missing_domains", "fixed")):
        features = SchedFeatures().without_autogroup()
        if fixes:
            features = features.with_fixes(fixes)
        system = System(two_nodes(cores_per_node=2), features, seed=2)
        system.hotplug_cpu(1, False)
        system.hotplug_cpu(1, True)
        tasks = [
            system.spawn(hog_spec(f"t{i}", total_us=100 * MS), parent_cpu=0)
            for i in range(4)
        ]
        system.run_until_done(tasks, 10 * SEC)
        reports[label] = measure_energy(system, tasks)
    assert reports["buggy"].total_joules > reports["fixed"].total_joules
    waste = energy_waste_vs(reports["buggy"], reports["fixed"])
    assert waste > 0.1  # a tenth of the energy, wasted


def test_energy_waste_vs_edge_cases():
    empty = EnergyReport(0, 0, 0, 0, 0.0, 0.0)
    assert energy_waste_vs(empty, empty) == 0.0
    assert empty.spin_waste_fraction == 0.0


def test_describe():
    report = EnergyReport(1.0, 2.0, 1.0, 0.5, 30.0, 3.0)
    text = report.describe()
    assert "30.0 J" in text
    assert "10.0%" in text

"""Tests for the hot-path cost & allocation analyzer.

Three layers:

* unit tests over the symbolic polynomial algebra (render, scalarize,
  baseline domination) -- the vocabulary every report field is built from;
* escape-classification tests over small synthetic trees, pinning the
  memo-guard heuristic (pre-guard allocation is per-call, post-guard is
  amortized, ``__init__`` is init-only);
* real-tree invariants: every shipped hot root's inferred allocation
  class matches its declaration in ``repro.sched.allocdecl``, the scalar
  residue ranking names the CFS pick/tick path, and the report is a
  deterministic pure function of the tree.
"""

import ast
import json

from repro.analysis.costmodel import (
    CostModel,
    cost_report,
    dominated,
    render_poly,
    scalarize,
)
from repro.analysis.effects import EffectEngine
from repro.sched.allocdecl import CONSERVATIVE, DECLARED_ALLOC

# ------------------------------------------------------------ polynomials


def test_render_poly_orders_terms_by_degree_then_name():
    # Big-O rendering: coefficients are dropped, degree-major order.
    poly = {(): 1, ("tasks",): 1, ("cpus", "tasks"): 2, ("cpus",): 1}
    assert render_poly(poly) == "O(cpus*tasks + cpus + tasks + 1)"


def test_render_poly_empty_is_constant():
    assert render_poly({}) == "O(1)"


def test_scalarize_uses_domain_sizes():
    # tasks=64, cpus=64 under the default sizes.
    assert scalarize({("tasks",): 1}) == 64
    assert scalarize({("cpus", "tasks"): 1, (): 3}) == 64 * 64 + 3
    assert scalarize({("tasks",): 2}, sizes={"tasks": 10}) == 20


def test_dominated_is_multiset_inclusion():
    base = [["cpus", "tasks"], []]
    assert dominated((), base)
    assert dominated(("tasks",), base)
    assert dominated(("cpus", "tasks"), base)
    # A squared factor is NOT covered by a single linear factor.
    assert not dominated(("tasks", "tasks"), base)
    assert not dominated(("heap",), base)


# ------------------------------------------------ escape classification

TOY = '''
class RunQueue:
    def __init__(self):
        self._cached_load = None
        self._table = {}

    def load(self, now):
        if self._cached_load is not None:
            return self._cached_load
        self._cached_load = sum([1, 2, 3])
        return self._cached_load

    def eager(self, now):
        box = [now, now]
        if self._cached_load is not None:
            return self._cached_load
        return box[0]
'''


def toy_model():
    engine = EffectEngine([("repro.sched.toy", "<toy>", ast.parse(TOY))])
    return CostModel(engine)


def q(name):
    return f"repro.sched.toy.{name}"


def test_init_sites_are_init_only():
    model = toy_model()
    scan = model.scan(q("RunQueue.__init__"))
    assert scan is not None
    assert {s.escape for s in scan.sites} == {"init-only"}


def test_post_guard_allocation_is_amortized():
    model = toy_model()
    scan = model.scan(q("RunQueue.load"))
    assert scan is not None
    assert scan.guard_line is not None
    assert [s.escape for s in scan.sites] == ["amortized"]


def test_pre_guard_allocation_is_per_call():
    model = toy_model()
    scan = model.scan(q("RunQueue.eager"))
    assert scan is not None
    assert [s.escape for s in scan.sites] == ["per-call"]


# ------------------------------------------------------------ real tree


def shipped_engine():
    from repro.analysis.effectcheck import installed_files

    return EffectEngine(installed_files())


def test_shipped_roots_match_declarations():
    """Static inference agrees with every shipped allocation declaration.

    Exceptions are structural, not slack: CONSERVATIVE labels declare a
    rank at or above the inference on purpose (kernel internals the
    tracker can't attribute), and vec-find-busiest carries the one
    intentional-churn site suppressed inline in vecstate.py.
    """
    rank = {"alloc-free": 0, "amortized": 1, "allocating": 2}
    model = CostModel(shipped_engine())
    roots = model.hot_roots()
    assert set(roots) == set(DECLARED_ALLOC)
    for label, qual in sorted(roots.items()):
        cert = model.certify(label, qual)
        assert cert is not None, label
        declared = DECLARED_ALLOC[label]
        if label in CONSERVATIVE:
            assert rank[declared] >= rank[cert.alloc_class], label
        elif label == "vec-find-busiest":
            # The noqa'd _singleton_stats GroupStats freelist seed.
            assert cert.alloc_class == "allocating"
        else:
            assert cert.alloc_class == declared, (
                label,
                declared,
                cert.alloc_class,
            )


def test_shipped_alloc_free_roots_have_no_sites():
    model = CostModel(shipped_engine())
    roots = model.hot_roots()
    for label, declared in DECLARED_ALLOC.items():
        if declared != "alloc-free":
            continue
        cert = model.certify(label, roots[label])
        certifiable = [
            r for r in cert.records
            if r.site.certifiable and r.site.escape != "init-only"
        ]
        assert certifiable == [], (label, certifiable)


def test_residue_ranking_names_cfs_pick_path():
    # The acceptance criterion: the scalar-residue table must surface
    # the CFS tick/pick path as the dominant unvectorized cost.
    report = cost_report(shipped_engine())
    by_rank = {row["rank"]: row["function"] for row in
               report["scalar_residue"]}
    assert by_rank[1].endswith("Scheduler.tick")
    quals = set(by_rank.values())
    assert any(fn.endswith("Scheduler.pick_next_task") for fn in quals)
    assert any(fn.endswith("EventLoop.run_until") for fn in quals)
    # The sanitizer and the vec kernels are residue-excluded (the
    # scalar entry point VecState.begin legitimately remains: it is the
    # per-tick sync cost the scheduler pays from the scalar side).
    assert not any(".sanitizer." in fn for fn in quals)
    assert not any(fn.endswith("_fold_entry") for fn in quals)
    assert not any("_NumpyOps" in fn or "_PythonOps" in fn for fn in quals)


#: The tottime seconds these functions carried in the scalar-era
#: profile harvest (the pre-batched-kernel ``COST_baseline.json``).
#: Frozen here as the reference point the refreshed vec-profile
#: weights are measured against.
_SCALAR_ERA_WEIGHTS = {
    "repro.sched.scheduler.Scheduler.tick": 1.373,
    "repro.sim.engine.EventLoop.run_until": 4.629,
    "repro.sched.balance.balance_domain": 1.718,
    "repro.sched.scheduler.Scheduler.pick_next_task": 1.501,
    "repro.sched.balance.find_busiest_group": 1.469,
    "repro.sched.balance.newidle_balance": 1.237,
}


def test_refreshed_vec_weights_demote_cfs_path():
    """The committed weights are a vec-run harvest, not scalar-era data.

    After the batched tick/pick kernels, the CFS-path functions the
    scalar-era profile named as dominant must carry strictly smaller
    residue scores under the committed (soak64 vec) weights, and the
    headline movers must change rank: ``Scheduler.tick`` loses rank 1
    to its own scalar glue (``_tick_vec``, the honest new residue) and
    the event loop's ``run_until`` -- now a thin dispatch into the
    batched drain -- falls out of the top ranks entirely.
    """
    from pathlib import Path

    path = Path(__file__).resolve().parents[1] / "COST_baseline.json"
    committed = json.loads(path.read_text())
    engine = shipped_engine()
    old = cost_report(
        engine, baseline={"profile_weights": _SCALAR_ERA_WEIGHTS}
    )["scalar_residue"]
    new = cost_report(engine, baseline=committed)["scalar_residue"]

    def row(rows, qual):
        match = [r for r in rows if r["function"] == qual]
        assert match, f"{qual} missing from residue"
        return match[0]

    for qual in _SCALAR_ERA_WEIGHTS:
        old_score = float(str(row(old, qual)["score"]))
        new_score = float(str(row(new, qual)["score"]))
        assert new_score < old_score, (qual, old_score, new_score)
    assert new[0]["function"].endswith("Scheduler._tick_vec")
    tick = "repro.sched.scheduler.Scheduler.tick"
    assert row(new, tick)["rank"] > row(old, tick)["rank"] == 1
    run_until = "repro.sim.engine.EventLoop.run_until"
    assert row(new, run_until)["rank"] > 20 > row(old, run_until)["rank"]
    # The committed evidence itself says the kernel absorbed the tick:
    # the per-tick scalar glue now outweighs the whole scalar tick body.
    weights = committed["profile_weights"]
    glue = "repro.sched.scheduler.Scheduler._tick_vec"
    assert weights[tick] < weights[glue]


def test_cost_report_is_deterministic():
    a = cost_report(shipped_engine())
    b = cost_report(shipped_engine())
    assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)


def test_cost_report_shape():
    report = cost_report(shipped_engine())
    assert report["version"] == 1
    assert report["summary"]["roots"] == len(DECLARED_ALLOC)
    for label, info in report["roots"].items():
        assert info["declared"] == DECLARED_ALLOC[label]
        for key in ("worst", "steady", "worst_terms", "steady_terms"):
            assert key in info["cost"], (label, key)
        for site in info["allocation_sites"]:
            assert site["escape"] in ("per-call", "amortized")
            assert site["chain"], (label, site)  # provenance never empty


def test_cost_report_identical_under_both_vec_backends():
    """REPRO_NO_NUMPY=1 must not change a byte of the cost report.

    The analyzer reads syntax, not the running process -- both numpy
    and pure-python kernel bodies are always in the tree, so backend
    selection (an import-time env check elsewhere in the package) must
    be invisible here.  Run in subprocesses so the env var actually
    takes effect at import time.
    """
    import os
    import subprocess
    import sys

    prog = (
        "import json\n"
        "from repro.analysis.effectcheck import installed_files\n"
        "from repro.analysis.effects import EffectEngine\n"
        "from repro.analysis.costmodel import cost_report\n"
        "rep = cost_report(EffectEngine(installed_files()))\n"
        "print(json.dumps(rep, indent=2, sort_keys=True))\n"
    )
    outputs = []
    for no_numpy in ("0", "1"):
        env = dict(os.environ)
        env["REPRO_NO_NUMPY"] = no_numpy
        proc = subprocess.run(
            [sys.executable, "-c", prog],
            capture_output=True,
            text=True,
            env=env,
            check=True,
        )
        outputs.append(proc.stdout)
    assert outputs[0] == outputs[1]
    assert '"vec-kernel-numpy"' in outputs[0]
    assert '"vec-kernel-python"' in outputs[0]


def test_committed_cost_baseline_matches_fresh_analysis():
    """Drift gate: COST_baseline.json is regenerated, never hand-edited.

    Every root's committed cost terms, declared class, and inferred
    class must match a fresh analysis exactly.  When a cost change is
    intentional, re-run ``repro lint src/repro --write-cost-baseline``
    and justify the new bound in the PR; this test keeps the committed
    document from rotting silently.
    """
    from pathlib import Path

    from repro.analysis.rules.cost import (
        build_cost_baseline,
        load_cost_baseline,
    )

    path = Path(__file__).resolve().parents[1] / "COST_baseline.json"
    committed = load_cost_baseline(str(path))
    assert committed is not None, "COST_baseline.json missing at repo root"
    fresh = build_cost_baseline(
        cost_report(shipped_engine(), baseline=committed),
        previous=committed,
    )
    assert fresh == committed
    # The weights backing the residue ranking were actually harvested.
    weights = committed["profile_weights"]
    assert isinstance(weights, dict) and weights
    assert "repro.sched.scheduler.Scheduler.tick" in weights

"""Tests for the online sanity checker (Section 4.1)."""

import pytest

from repro.core.sanity_checker import SanityChecker
from repro.sched.features import SchedFeatures
from repro.sim.system import System
from repro.sim.timebase import MS
from repro.topology import single_node, two_nodes
from repro.workloads.base import Run, Sleep, TaskSpec

from tests.conftest import hog_spec


def pinned_overload_system():
    """Two cores; two hogs pinned to cpu 0 -> permanent violation."""
    system = System(single_node(2), SchedFeatures().without_autogroup(),
                    seed=1)
    pin = frozenset({0})
    for i in range(2):
        system.spawn(hog_spec(f"h{i}", allowed_cpus=pin), on_cpu=0)
    return system


def test_checker_flags_persistent_violation():
    # Pinned tasks do NOT violate (can_steal is affinity-aware), so use
    # the missing-domains bug to create a real stuck state instead.
    system = System(
        two_nodes(cores_per_node=2),
        SchedFeatures().without_autogroup(),
        seed=1,
    )
    system.hotplug_cpu(1, False)
    system.hotplug_cpu(1, True)
    checker = SanityChecker(
        check_interval_us=50 * MS, monitor_window_us=30 * MS
    )
    checker.attach(system)
    for i in range(4):
        system.spawn(hog_spec(f"h{i}"), parent_cpu=0)
    system.run_for(500 * MS)
    assert checker.bug_detected
    report = checker.reports[0]
    assert report.violations
    assert report.profile_summary  # profiling ran after detection
    assert report.profile_failed_fraction == 1.0
    assert "invariant violated" in report.describe()


def test_checker_ignores_transient_violations():
    """A healthy scheduler recovers within the window: no report."""
    system = System(
        single_node(4), SchedFeatures().without_autogroup(), seed=1
    )
    checker = SanityChecker(
        check_interval_us=20 * MS, monitor_window_us=50 * MS
    )
    checker.attach(system)

    def bursty(i):
        def factory():
            def program():
                for _ in range(100):
                    yield Run(3 * MS)
                    yield Sleep(2 * MS)
            return program()
        return TaskSpec(f"b{i}", factory)

    for i in range(6):
        system.spawn(bursty(i), parent_cpu=0)
    system.run_for(800 * MS)
    assert checker.checks_performed > 10
    assert not checker.bug_detected
    # Any violations seen were classified transient, not bugs.
    assert checker.transient_violations == checker.violations_seen


def test_checker_quiet_on_idle_system():
    system = System(single_node(2), seed=1)
    checker = SanityChecker(check_interval_us=10 * MS)
    checker.attach(system)
    system.run_for(100 * MS)
    assert checker.checks_performed >= 9
    assert checker.violations_seen == 0


def test_checker_detach_stops_checking():
    system = System(single_node(2), seed=1)
    checker = SanityChecker(check_interval_us=10 * MS)
    checker.attach(system)
    system.run_for(50 * MS)
    seen = checker.checks_performed
    checker.detach()
    system.run_for(50 * MS)
    assert checker.checks_performed == seen


def test_checker_double_attach_rejected():
    system = System(single_node(2), seed=1)
    checker = SanityChecker()
    checker.attach(system)
    with pytest.raises(RuntimeError):
        checker.attach(system)


def test_checker_interval_validation():
    with pytest.raises(ValueError):
        SanityChecker(check_interval_us=0)
    with pytest.raises(ValueError):
        SanityChecker(monitor_window_us=-1)


def test_monitor_summary_counts_activity():
    system = System(
        two_nodes(cores_per_node=2),
        SchedFeatures().without_autogroup(),
        seed=1,
    )
    system.hotplug_cpu(1, False)
    system.hotplug_cpu(1, True)
    checker = SanityChecker(
        check_interval_us=30 * MS, monitor_window_us=20 * MS
    )
    checker.attach(system)

    def churner(i):
        def factory():
            def program():
                for _ in range(200):
                    yield Run(2 * MS)
                    yield Sleep(1 * MS)
            return program()
        return TaskSpec(f"c{i}", factory)

    for i in range(6):
        system.spawn(churner(i), parent_cpu=0)
    system.run_for(400 * MS)
    if checker.reports:
        assert checker.reports[0].monitor.wakeups > 0


def test_summary_line():
    checker = SanityChecker()
    assert "0 confirmed bug(s)" in checker.summary()


def test_save_reports_roundtrip(tmp_path):
    import json

    system = System(
        two_nodes(cores_per_node=2),
        SchedFeatures().without_autogroup(),
        seed=1,
    )
    system.hotplug_cpu(1, False)
    system.hotplug_cpu(1, True)
    checker = SanityChecker(
        check_interval_us=50 * MS, monitor_window_us=30 * MS
    )
    checker.attach(system)
    for i in range(4):
        system.spawn(hog_spec(f"h{i}"), parent_cpu=0)
    system.run_for(300 * MS)
    assert checker.bug_detected
    path = tmp_path / "reports.jsonl"
    written = checker.save_reports(str(path))
    assert written == len(checker.reports)
    lines = [json.loads(line) for line in path.read_text().splitlines()]
    assert len(lines) == written
    first = lines[0]
    assert first["detected_at_us"] == checker.reports[0].detected_at_us
    assert first["violations"]
    assert "profile_failed_fraction" in first


def test_save_reports_empty(tmp_path):
    checker = SanityChecker()
    path = tmp_path / "empty.jsonl"
    assert checker.save_reports(str(path)) == 0
    assert path.read_text() == ""

"""Tests for SVG primitives, considered-cores plots, and timelines."""

from repro.viz.considered import (
    considered_core_sets,
    coverage_fraction,
    render_ascii_considered,
    render_svg_considered,
)
from repro.viz.events import (
    ConsideredEvent,
    MigrationEvent,
    NrRunningEvent,
    TraceBuffer,
    WakeupEvent,
)
from repro.viz.svg import SvgCanvas, gray_color, heat_color, lerp_color, rgb
from repro.viz.timeline import (
    migration_counts,
    render_task_timeline,
    task_placements,
    wakeup_busy_fraction,
)


def trace_of(*events):
    buf = TraceBuffer(1000)
    for e in events:
        buf.append(e)
    return buf


# -- svg ---------------------------------------------------------------------


def test_rgb_formatting():
    assert rgb((1, 2, 3)) == "rgb(1,2,3)"


def test_lerp_color_endpoints_and_clamp():
    a, b = (0, 0, 0), (100, 200, 50)
    assert lerp_color(a, b, 0.0) == a
    assert lerp_color(a, b, 1.0) == b
    assert lerp_color(a, b, -1.0) == a
    assert lerp_color(a, b, 2.0) == b
    assert lerp_color(a, b, 0.5) == (50, 100, 25)


def test_heat_color_ramp():
    assert heat_color(0.0) == (255, 255, 255)  # idle is white
    assert heat_color(1.0) == (189, 0, 38)
    mid = heat_color(0.5)
    assert mid != heat_color(0.0) and mid != heat_color(1.0)


def test_gray_color_ramp():
    assert gray_color(0.0) == (255, 255, 255)
    assert gray_color(1.0) == (0, 0, 0)


def test_canvas_document():
    canvas = SvgCanvas(100, 50)
    canvas.rect(0, 0, 10, 10, "red")
    canvas.line(0, 0, 10, 10)
    canvas.text(5, 5, "a<b&c>d")
    canvas.color_legend(80, 0, 40, heat_color, "lo", "hi")
    svg = canvas.to_svg()
    assert svg.startswith("<svg")
    assert "a&lt;b&amp;c&gt;d" in svg
    assert 'width="100"' in svg


def test_canvas_save(tmp_path):
    canvas = SvgCanvas(10, 10)
    path = tmp_path / "out.svg"
    canvas.save(str(path))
    assert path.read_text().startswith("<svg")


# -- considered --------------------------------------------------------------


def test_considered_core_sets_filters():
    trace = trace_of(
        ConsideredEvent(1, 0, "load_balance", frozenset({0, 1})),
        ConsideredEvent(2, 1, "load_balance", frozenset({2})),
        ConsideredEvent(3, 0, "select_idle_sibling", frozenset({3})),
    )
    events = considered_core_sets(trace, 0, "load_balance")
    assert len(events) == 1
    assert events[0].considered == frozenset({0, 1})
    assert len(considered_core_sets(trace, 0)) == 2


def test_coverage_fraction():
    events = [
        ConsideredEvent(1, 0, "lb", frozenset({0, 1})),
        ConsideredEvent(2, 0, "lb", frozenset({1, 2})),
    ]
    assert coverage_fraction(events, 8) == 3 / 8
    assert coverage_fraction([], 8) == 0.0
    assert coverage_fraction(events, 0) == 0.0


def test_render_ascii_considered():
    trace = trace_of(
        ConsideredEvent(1000, 0, "load_balance", frozenset({0, 1})),
    )
    text = render_ascii_considered(trace, 0, 4)
    assert "##.." in text
    assert "cpu 0" in text


def test_render_svg_considered():
    trace = trace_of(
        NrRunningEvent(0, 0, 2),
        ConsideredEvent(500_000, 0, "load_balance", frozenset({0, 1})),
    )
    svg = render_svg_considered(
        trace, 0, 4, 0, 1_000_000, cores_per_node=2, title="f5"
    )
    assert svg.startswith("<svg")
    assert "f5" in svg


# -- timeline ----------------------------------------------------------------


def test_task_placements_merges_wakeups_and_migrations():
    trace = trace_of(
        WakeupEvent(100, 7, 2, None, True),
        MigrationEvent(200, 7, 2, 5, "balance"),
        WakeupEvent(300, 7, 5, 1, False),
    )
    placements = task_placements(trace)
    assert placements[7] == [(100, 2), (200, 5), (300, 5)]


def test_migration_counts():
    trace = trace_of(
        MigrationEvent(1, 7, 0, 1, "r"),
        MigrationEvent(2, 7, 1, 0, "r"),
        MigrationEvent(3, 9, 0, 1, "r"),
    )
    assert migration_counts(trace) == {7: 2, 9: 1}


def test_wakeup_busy_fraction():
    trace = trace_of(
        WakeupEvent(1, 7, 0, None, True),
        WakeupEvent(2, 7, 0, None, False),
        WakeupEvent(3, 7, 0, None, False),
    )
    assert wakeup_busy_fraction(trace) == 2 / 3
    assert wakeup_busy_fraction(trace_of()) == 0.0


def test_render_task_timeline():
    trace = trace_of(
        WakeupEvent(0, 7, 2, None, True),
        WakeupEvent(1000, 7, 13, None, True),
    )
    text = render_task_timeline(trace, 7)
    assert "tid     7" in text
    assert "2" in text and "3" in text  # cores mod 10
    assert "^" in text  # migration marker


def test_render_task_timeline_unknown_task():
    assert "no placement events" in render_task_timeline(trace_of(), 99)

"""Tests for the discrete-event loop."""

import pytest

from repro.sim.engine import EventLoop, SimulationError
from repro.sim.timebase import format_time


def test_events_fire_in_time_order():
    loop = EventLoop()
    fired = []
    loop.schedule(30, lambda: fired.append("c"))
    loop.schedule(10, lambda: fired.append("a"))
    loop.schedule(20, lambda: fired.append("b"))
    loop.run_until(100)
    assert fired == ["a", "b", "c"]
    assert loop.now == 100


def test_same_time_events_fire_in_scheduling_order():
    loop = EventLoop()
    fired = []
    for tag in "abc":
        loop.schedule(5, lambda tag=tag: fired.append(tag))
    loop.run_until(5)
    assert fired == ["a", "b", "c"]


def test_zero_delay_event_runs():
    loop = EventLoop()
    fired = []
    loop.schedule(0, lambda: fired.append(1))
    loop.run_until(0)
    assert fired == [1]


def test_negative_delay_rejected():
    loop = EventLoop()
    with pytest.raises(SimulationError):
        loop.schedule(-1, lambda: None)


def test_schedule_at_in_past_rejected():
    loop = EventLoop()
    loop.run_until(50)
    with pytest.raises(SimulationError):
        loop.schedule_at(40, lambda: None)


def test_run_until_backwards_rejected():
    loop = EventLoop()
    loop.run_until(10)
    with pytest.raises(SimulationError):
        loop.run_until(5)


def test_cancel_prevents_firing():
    loop = EventLoop()
    fired = []
    handle = loop.schedule(10, lambda: fired.append(1))
    handle.cancel()
    assert handle.cancelled
    loop.run_until(20)
    assert fired == []


def test_cancel_is_idempotent():
    loop = EventLoop()
    handle = loop.schedule(10, lambda: None)
    handle.cancel()
    handle.cancel()
    assert handle.cancelled


def test_events_scheduled_during_run_fire():
    loop = EventLoop()
    fired = []

    def first():
        fired.append("first")
        loop.schedule(5, lambda: fired.append("second"))

    loop.schedule(10, first)
    loop.run_until(20)
    assert fired == ["first", "second"]


def test_event_beyond_deadline_stays_queued():
    loop = EventLoop()
    fired = []
    loop.schedule(100, lambda: fired.append(1))
    loop.run_until(50)
    assert fired == []
    assert loop.pending() == 1
    loop.run_until(100)
    assert fired == [1]


def test_events_fired_counter():
    loop = EventLoop()
    for _ in range(3):
        loop.schedule(1, lambda: None)
    loop.run_until(1)
    assert loop.events_fired == 3


def test_run_while_stops_on_condition():
    loop = EventLoop()
    state = {"stop": False}
    loop.schedule(10, lambda: state.update(stop=True))
    loop.schedule(20, lambda: None)
    satisfied = loop.run_while(lambda: not state["stop"], 100)
    assert satisfied
    assert loop.now == 10  # stopped at the event that flipped the flag


def test_run_while_deadline():
    loop = EventLoop()
    loop.schedule(10, lambda: None)
    satisfied = loop.run_while(lambda: True, 50)
    assert not satisfied
    assert loop.now == 50


def test_run_while_already_satisfied():
    loop = EventLoop()
    assert loop.run_while(lambda: False, 100)
    assert loop.now == 0


def test_run_while_bad_interval():
    loop = EventLoop()
    with pytest.raises(SimulationError):
        loop.run_while(lambda: True, 10, check_interval=0)


def test_handle_when():
    loop = EventLoop()
    handle = loop.schedule(25, lambda: None)
    assert handle.when == 25


def test_repr():
    loop = EventLoop()
    loop.schedule(5, lambda: None)
    assert "pending=1" in repr(loop)


def test_format_time():
    assert format_time(1) == "1us"
    assert format_time(1500) == "1.500ms"
    assert format_time(2_500_000) == "2.500s"
    assert format_time(-1500) == "-1.500ms"


# --------------------------------------------------- compaction accounting


def test_timer_churn_workload_forces_one_compaction():
    """The workload shape ``EventLoop._note_cancel``'s threshold note
    points at: a sleeper population whose wake timers are mostly
    cancelled before firing (early wakeups racing the timeout).

    The committed benchmarks legitimately report ``heap_compactions ==
    0`` -- their steady-state heaps stay small (one phase-end per busy
    CPU plus sleeper timers) and cancelled entries are popped within
    microseconds, so lazy cancels never outnumber live entries at the
    64-entry floor.  This test builds the heap past the floor and
    cancels a two-thirds majority *before* any pop, which must trigger
    the compaction pass -- and compaction must be invisible to the
    schedule.
    """
    loop = EventLoop()
    fired = []
    timers = [
        loop.schedule(1_000 + i, lambda i=i: fired.append(i), label="timer")
        for i in range(96)
    ]
    assert loop.heap_size() >= 64  # past the _COMPACT_MIN_HEAP floor
    for i, handle in enumerate(timers):
        if i % 3 != 0:  # two of every three sleepers wake early
            handle.cancel()
    assert loop.compactions >= 1
    assert loop.pending() == 32
    # The compacted heap dropped the garbage (some sub-threshold
    # remainder is legal -- compaction fires at majority, not at one).
    assert loop.heap_size() - loop.pending() <= loop.pending()
    loop.run_until(2_000)
    assert fired == [i for i in range(96) if i % 3 == 0]
    assert loop.events_fired == 32


def test_batched_drain_compacts_identically():
    # Same churn through the batched (vectorized-core) drain: the
    # compaction counter and the surviving schedule must agree with the
    # event-at-a-time loop.
    def run(batch):
        loop = EventLoop(batch=batch)
        fired = []
        timers = [
            loop.schedule(500, lambda i=i: fired.append(i))
            for i in range(96)
        ]
        for i, handle in enumerate(timers):
            if i % 3 != 0:
                handle.cancel()
        loop.run_until(1_000)
        return fired, loop.compactions, loop.events_fired

    batched = run(True)
    assert batched == run(False)
    assert batched[1] >= 1  # the churn actually forced a compaction

"""Tests for the simulator executor (System)."""

import pytest

from repro.sched.task import TaskState
from repro.sim.engine import SimulationError
from repro.sim.system import System
from repro.sim.timebase import MS, SEC
from repro.topology import single_node, two_nodes
from repro.sched.features import SchedFeatures
from repro.workloads.base import Exit, Run, Spawn, TaskSpec

from tests.conftest import hog_spec, sleeper_spec


def test_single_task_runs_to_completion(uma_system):
    task = uma_system.spawn(hog_spec(total_us=10 * MS))
    assert uma_system.run_until_done([task], 1 * SEC)
    assert task.state is TaskState.EXITED
    assert task.stats.total_runtime_us == 10 * MS


def test_work_conservation_near_exact(uma_system):
    """N x W of work on C cores takes ~N*W/C wall time (tail stragglers
    may idle a core for a tick or two, like real CFS)."""
    tasks = [
        uma_system.spawn(hog_spec(f"h{i}", total_us=50 * MS))
        for i in range(8)
    ]
    assert uma_system.run_until_done(tasks, 10 * SEC)
    ideal = 8 * 50 * MS // 4  # 100 ms on 4 cores
    assert ideal <= uma_system.now <= ideal * 1.03
    assert all(t.stats.total_runtime_us == 50 * MS for t in tasks)


def test_sleep_wake_cycle(uma_system):
    task = uma_system.spawn(sleeper_spec(cycles=5))
    assert uma_system.run_until_done([task], 1 * SEC)
    assert task.stats.wakeups == 5
    assert task.stats.total_runtime_us == 5 * MS


def test_preemption_splits_runtime(uma_system):
    """Two pinned hogs on one core share it via tick preemption."""
    pin = frozenset({0})
    a = uma_system.spawn(
        hog_spec("a", total_us=20 * MS, allowed_cpus=pin), on_cpu=0
    )
    b = uma_system.spawn(
        hog_spec("b", total_us=20 * MS, allowed_cpus=pin), on_cpu=0
    )
    assert uma_system.run_until_done([a, b], 1 * SEC)
    assert uma_system.now == 40 * MS
    assert a.stats.preemptions > 0 or b.stats.preemptions > 0


def test_phase_progress_preserved_across_preemption(uma_system):
    """A Run phase interrupted mid-way completes with exact total time."""
    pin = frozenset({0})

    def one_long_phase():
        def program():
            yield Run(15 * MS)
        return program()

    long_task = uma_system.spawn(
        TaskSpec("long", one_long_phase, allowed_cpus=pin), on_cpu=0
    )
    # A competitor forces preemptions.
    uma_system.spawn(hog_spec("comp", total_us=15 * MS, allowed_cpus=pin),
                     on_cpu=0)
    assert uma_system.run_until_done([long_task], 1 * SEC)
    assert long_task.stats.total_runtime_us == 15 * MS


def test_explicit_exit_phase(uma_system):
    def program_factory():
        def program():
            yield Run(1 * MS)
            yield Exit()
            yield Run(100 * MS)  # unreachable
        return program()

    task = uma_system.spawn(TaskSpec("quit", program_factory))
    assert uma_system.run_until_done([task], 1 * SEC)
    assert task.stats.total_runtime_us == 1 * MS


def test_spawn_phase_creates_child(uma_system):
    children_spec = hog_spec("child", total_us=2 * MS)

    def parent_factory():
        def program():
            yield Run(1 * MS)
            yield Spawn(children_spec)
            yield Run(1 * MS)
        return program()

    parent = uma_system.spawn(TaskSpec("parent", parent_factory))
    uma_system.run_for(100 * MS)
    names = [t.name for t in uma_system.spawned]
    assert names.count("child") == 1
    child = [t for t in uma_system.spawned if t.name == "child"][0]
    assert child.state is TaskState.EXITED
    assert parent.state is TaskState.EXITED


def test_spawn_on_cpu_forces_placement(small_system):
    task = small_system.spawn(hog_spec(), on_cpu=5)
    assert task.cpu == 5


def test_spawn_tty_creates_autogroup():
    system = System(single_node(2), SchedFeatures(), seed=1)
    task = system.spawn(hog_spec(tty="ttyX"))
    assert task.cgroup.name == "autogroup:ttyX"


def test_spawn_cgroup_by_name(uma_system):
    spec = hog_spec()
    spec.cgroup = "mygroup"
    a = uma_system.spawn(spec)
    b = uma_system.spawn(spec)
    assert a.cgroup is b.cgroup
    assert a.cgroup.nr_threads == 2


def test_zero_duration_run_phases_skipped(uma_system):
    def factory():
        def program():
            for _ in range(10):
                yield Run(0)
            yield Run(1 * MS)
        return program()

    task = uma_system.spawn(TaskSpec("zeros", factory))
    assert uma_system.run_until_done([task], 1 * SEC)
    assert task.stats.total_runtime_us == 1 * MS


def test_runaway_zero_phase_program_detected(uma_system):
    def factory():
        def program():
            while True:
                yield Run(0)
        return program()

    with pytest.raises(SimulationError):
        # The dispatch happens during spawn's drain.
        uma_system.spawn(TaskSpec("runaway", factory))


def test_run_until_absolute(uma_system):
    uma_system.run_until(5 * MS)
    assert uma_system.now == 5 * MS
    uma_system.run_for(5 * MS)
    assert uma_system.now == 10 * MS


def test_hotplug_offline_displaces_running_task(small_system):
    task = small_system.spawn(hog_spec(), on_cpu=2)
    small_system.run_for(2 * MS)
    small_system.hotplug_cpu(2, False)
    assert not small_system.cpu(2).online
    assert task.alive
    assert task.cpu != 2
    small_system.run_for(5 * MS)
    assert task.stats.total_runtime_us > 0


def test_hotplug_reenable(small_system):
    small_system.hotplug_cpu(2, False)
    small_system.hotplug_cpu(2, True)
    assert small_system.cpu(2).online
    # The re-enabled core can host work again.
    task = small_system.spawn(hog_spec(), on_cpu=2)
    small_system.run_for(2 * MS)
    assert task.stats.total_runtime_us > 0


def test_attach_detach_probe(small_system):
    from repro.viz.events import TraceProbe

    probe = TraceProbe()
    small_system.attach_probe(probe)
    small_system.spawn(hog_spec(total_us=2 * MS))
    small_system.run_for(5 * MS)
    assert len(probe.buffer) > 0
    small_system.detach_probe(probe)
    size = len(probe.buffer)
    small_system.spawn(hog_spec(total_us=2 * MS))
    small_system.run_for(5 * MS)
    assert len(probe.buffer) == size


def test_attach_probe_requires_fanout():
    from repro.viz.events import Probe

    system = System(single_node(2), probe=Probe(), seed=1)
    with pytest.raises(TypeError):
        system.attach_probe(Probe())


def test_determinism_same_seed():
    def run_once():
        system = System(
            two_nodes(cores_per_node=2),
            SchedFeatures().without_autogroup(),
            seed=7,
        )
        tasks = [
            system.spawn(sleeper_spec(f"s{i}", cycles=20))
            for i in range(6)
        ]
        system.run_until_done(tasks, 5 * SEC)
        return (
            system.now,
            system.scheduler.total_migrations,
            [t.stats.total_runtime_us for t in tasks],
        )

    assert run_once() == run_once()


def test_tick_hooks_called(uma_system):
    seen = []
    uma_system.tick_hooks.append(seen.append)
    uma_system.run_for(5 * MS)
    assert seen == [1 * MS, 2 * MS, 3 * MS, 4 * MS, 5 * MS]


def test_repr(uma_system):
    assert "System(" in repr(uma_system)

"""Tests for heatmap construction and rendering."""

import pytest

from repro.viz.events import LoadEvent, NrRunningEvent, TraceBuffer
from repro.viz.heatmap import (
    HeatmapBuilder,
    render_ascii_heatmap,
    render_svg_heatmap,
)


def trace_of(*events):
    buf = TraceBuffer(1000)
    for e in events:
        buf.append(e)
    return buf


def test_builder_validation():
    with pytest.raises(ValueError):
        HeatmapBuilder(2, 100, 100)
    with pytest.raises(ValueError):
        HeatmapBuilder(2, 0, 100, bins=0)


def test_constant_value_fills_all_bins():
    trace = trace_of(NrRunningEvent(0, 0, 3))
    matrix = HeatmapBuilder(1, 0, 1000, bins=4).from_trace(trace)
    assert matrix == [[3.0, 3.0, 3.0, 3.0]]


def test_step_function_bins():
    trace = trace_of(
        NrRunningEvent(0, 0, 2),
        NrRunningEvent(500, 0, 0),
    )
    matrix = HeatmapBuilder(1, 0, 1000, bins=2).from_trace(trace)
    assert matrix == [[2.0, 0.0]]


def test_partial_bin_time_weighted():
    trace = trace_of(
        NrRunningEvent(0, 0, 4),
        NrRunningEvent(250, 0, 0),
    )
    matrix = HeatmapBuilder(1, 0, 1000, bins=1).from_trace(trace)
    assert matrix[0][0] == pytest.approx(1.0)  # 4 for a quarter of the bin


def test_value_in_effect_before_window():
    trace = trace_of(NrRunningEvent(0, 0, 5))
    matrix = HeatmapBuilder(1, 10_000, 20_000, bins=2).from_trace(trace)
    assert matrix == [[5.0, 5.0]]


def test_events_after_window_ignored():
    trace = trace_of(
        NrRunningEvent(0, 0, 1),
        NrRunningEvent(50_000, 0, 9),
    )
    matrix = HeatmapBuilder(1, 0, 10_000, bins=1).from_trace(trace)
    assert matrix == [[1.0]]


def test_cpu_without_events_stays_zero():
    trace = trace_of(NrRunningEvent(0, 1, 2))
    matrix = HeatmapBuilder(2, 0, 1000, bins=1).from_trace(trace)
    assert matrix[0] == [0.0]
    assert matrix[1] == [2.0]


def test_load_event_extraction():
    trace = trace_of(LoadEvent(0, 0, 512.0))
    matrix = HeatmapBuilder(1, 0, 1000, bins=1).from_trace(trace, LoadEvent)
    assert matrix == [[512.0]]


def test_ascii_render_shape():
    matrix = [[0.0, 1.0], [2.0, 0.5]]
    text = render_ascii_heatmap(matrix, title="demo")
    lines = text.splitlines()
    assert lines[0] == "demo"
    assert lines[1].startswith("cpu  0")
    assert lines[2].startswith("cpu  1")
    assert "scale" in lines[-1]


def test_ascii_render_node_separators():
    matrix = [[1.0, 1.0, 1.0]] * 4
    text = render_ascii_heatmap(matrix, cores_per_node=2)
    assert sum(1 for line in text.splitlines() if "---" in line) == 1


def test_ascii_zero_max_handled():
    text = render_ascii_heatmap([[0.0, 0.0]])
    assert "cpu  0" in text


def test_svg_render_is_valid_document():
    matrix = [[0.0, 2.0], [1.0, 3.0]]
    svg = render_svg_heatmap(
        matrix, cores_per_node=1, title="t", t0_us=0, t1_us=1_000_000
    )
    assert svg.startswith("<svg")
    assert svg.rstrip().endswith("</svg>")
    assert "rect" in svg
    assert "0.00s" in svg and "1.00s" in svg


def test_svg_grayscale_mode():
    svg = render_svg_heatmap([[1.0]], grayscale=True)
    assert "rgb(" in svg

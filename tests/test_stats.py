"""Tests for run metrics."""

import pytest

from repro.sched.features import SchedFeatures
from repro.sim.system import System
from repro.sim.timebase import MS, SEC
from repro.stats.metrics import (
    IdleOverloadSampler,
    machine_utilization,
    node_busy_times,
    per_cpu_busy_fractions,
    summarize_tasks,
)
from repro.topology import single_node, two_nodes

from tests.conftest import hog_spec, sleeper_spec


def test_sampler_zero_on_healthy_system(uma_system):
    sampler = IdleOverloadSampler()
    sampler.attach(uma_system)
    tasks = [
        uma_system.spawn(hog_spec(f"h{i}", total_us=20 * MS))
        for i in range(4)
    ]
    uma_system.run_until_done(tasks, 1 * SEC)
    assert sampler.violation_fraction < 0.2
    assert sampler.samples > 0


def test_sampler_catches_stuck_state():
    system = System(
        two_nodes(cores_per_node=2),
        SchedFeatures().without_autogroup(),
        seed=1,
    )
    system.hotplug_cpu(1, False)
    system.hotplug_cpu(1, True)
    sampler = IdleOverloadSampler()
    sampler.attach(system)
    for i in range(4):
        system.spawn(hog_spec(f"h{i}"), parent_cpu=0)
    system.run_for(200 * MS)
    assert sampler.violation_fraction > 0.9
    assert sampler.wasted_core_time_us > 100 * MS


def test_sampler_attach_detach(uma_system):
    sampler = IdleOverloadSampler()
    sampler.attach(uma_system)
    with pytest.raises(RuntimeError):
        sampler.attach(uma_system)
    uma_system.run_for(5 * MS)
    sampler.detach()
    seen = sampler.samples
    uma_system.run_for(5 * MS)
    assert sampler.samples == seen
    sampler.detach()  # idempotent


def test_summarize_tasks_complete(uma_system):
    tasks = [
        uma_system.spawn(sleeper_spec(f"s{i}", cycles=3)) for i in range(2)
    ]
    uma_system.run_until_done(tasks, 1 * SEC)
    summary = summarize_tasks(tasks)
    assert summary.count == 2
    assert summary.completed == 2
    assert summary.total_runtime_us == 2 * 3 * MS
    assert summary.total_wakeups == 6
    # run_until_done may overshoot by up to one tick after the last exit.
    assert 0 < summary.makespan_us <= uma_system.now
    assert summary.spin_fraction == 0.0


def test_summarize_tasks_incomplete(uma_system):
    task = uma_system.spawn(hog_spec(total_us=None))  # never exits
    uma_system.run_for(10 * MS)
    summary = summarize_tasks([task])
    assert summary.completed == 0
    assert summary.makespan_us is None


def test_summarize_empty():
    summary = summarize_tasks([])
    assert summary.count == 0
    assert summary.makespan_us is None


def test_machine_utilization(uma_system):
    tasks = [
        uma_system.spawn(hog_spec(f"h{i}", total_us=50 * MS))
        for i in range(4)
    ]
    uma_system.run_until_done(tasks, 1 * SEC)
    assert machine_utilization(uma_system) == pytest.approx(1.0, abs=0.05)


def test_machine_utilization_before_start():
    system = System(single_node(2), seed=1)
    assert machine_utilization(system) == 0.0


def test_node_busy_times(small_system):
    small_system.spawn(hog_spec(total_us=10 * MS), on_cpu=0)
    small_system.run_for(20 * MS)
    busy = node_busy_times(small_system)
    assert busy[0] == 10 * MS
    assert busy[1] == 0


def test_per_cpu_busy_fractions(uma_system):
    uma_system.spawn(hog_spec(total_us=10 * MS), on_cpu=2)
    uma_system.run_for(10 * MS)
    fractions = per_cpu_busy_fractions(uma_system)
    assert fractions[2] == pytest.approx(1.0)
    assert fractions[0] == 0.0


def test_per_cpu_busy_fractions_at_time_zero():
    system = System(single_node(2), seed=1)
    assert per_cpu_busy_fractions(system) == [0.0, 0.0]

"""Tests for the bug registry (Table 4's source of truth)."""

import pytest

from repro.core.bugs import BUGS, bug_by_name, table4_rows
from repro.sched.features import SchedFeatures


def test_four_bugs_registered():
    assert len(BUGS) == 4
    names = [b.name for b in BUGS]
    assert names == [
        "Group Imbalance",
        "Scheduling Group Construction",
        "Overload-on-Wakeup",
        "Missing Scheduling Domains",
    ]


def test_kernel_versions_match_paper():
    versions = {b.name: b.kernel_versions for b in BUGS}
    assert versions["Group Imbalance"] == "2.6.38+"
    assert versions["Scheduling Group Construction"] == "3.9+"
    assert versions["Overload-on-Wakeup"] == "2.6.32+"
    assert versions["Missing Scheduling Domains"] == "3.19+"


def test_max_impacts_match_paper():
    impacts = {b.name: b.paper_max_impact for b in BUGS}
    assert impacts["Group Imbalance"] == "13x"
    assert impacts["Scheduling Group Construction"] == "27x"
    assert impacts["Overload-on-Wakeup"] == "22%"
    assert impacts["Missing Scheduling Domains"] == "138x"


def test_every_fix_flag_exists_on_features():
    features = SchedFeatures()
    for bug in BUGS:
        assert hasattr(features, bug.fix_flag)
        enabled = features.with_fixes(bug.fix_flag)
        assert getattr(enabled, bug.fix_flag) is True


def test_bug_by_name_partial_case_insensitive():
    assert bug_by_name("wakeup").name == "Overload-on-Wakeup"
    assert bug_by_name("GROUP IMBALANCE").name == "Group Imbalance"
    with pytest.raises(KeyError):
        bug_by_name("no such bug")


def test_table4_rows():
    rows = table4_rows()
    assert len(rows) == 4
    assert rows[0][0] == "Group Imbalance"
    assert all(len(r) == 4 for r in rows)


def test_with_fixes_all_covers_registry():
    features = SchedFeatures().with_fixes("all")
    for bug in BUGS:
        assert getattr(features, bug.fix_flag)


def test_unknown_fix_rejected():
    with pytest.raises(ValueError):
        SchedFeatures().with_fixes("bogus")

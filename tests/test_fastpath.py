"""Tests for the fast-path layer: the caches must be exact, not just fast.

Every optimization here has a correctness obligation stated in its
docstring -- the O(1) pending counter must agree with the heap, the
runqueue load memo must return exactly what a recompute would, the
balance-pass memos must invalidate on every event that could change
their answer, and group interning must never outlive a topology rebuild.
These tests pin each obligation directly; the end-to-end guarantee (same
schedule with the fast paths on or off) lives in
``test_determinism_trace.py``.
"""

import pytest

from repro.sched.balance import BalancePass
from repro.sched.features import SchedFeatures
from repro.sched.runqueue import RunQueue
from repro.sched.scheduler import Scheduler
from repro.sched.task import Task
from repro.sim.engine import EventLoop
from repro.topology import two_nodes


# ------------------------------------------------------------- event loop


def test_pending_counter_tracks_schedule_cancel_fire():
    loop = EventLoop()
    handles = [loop.schedule(10 * (i + 1), lambda: None) for i in range(4)]
    assert loop.pending() == 4
    handles[0].cancel()
    assert loop.pending() == 3
    loop.run_until(20)  # fires the (live) 20us event
    assert loop.pending() == 2


def test_double_cancel_counted_once():
    loop = EventLoop()
    keeper = loop.schedule(10, lambda: None)
    victim = loop.schedule(20, lambda: None)
    victim.cancel()
    victim.cancel()
    victim.cancel()
    assert loop.pending() == 1
    keeper.cancel()
    # A double-decrement would have pushed this negative.
    assert loop.pending() == 0


def test_cancel_after_fire_is_a_noop():
    loop = EventLoop()
    handle = loop.schedule(5, lambda: None)
    loop.schedule(50, lambda: None)
    loop.run_until(10)
    assert loop.pending() == 1
    handle.cancel()
    assert loop.pending() == 1


def test_compaction_evicts_cancelled_garbage():
    loop = EventLoop()
    handles = [loop.schedule(1000 + i, lambda: None) for i in range(100)]
    for handle in handles[:60]:
        handle.cancel()
    assert loop.compactions >= 1
    assert loop.pending() == 40
    # Compaction keeps garbage a strict minority of the heap (it fires as
    # soon as lazy cancels outnumber live entries, so some sub-threshold
    # garbage may legitimately remain).
    garbage = loop.heap_size() - loop.pending()
    assert garbage <= loop.pending()
    assert loop.heap_size() < 100


def test_small_heaps_are_never_compacted():
    loop = EventLoop()
    handles = [loop.schedule(1000 + i, lambda: None) for i in range(20)]
    for handle in handles:
        handle.cancel()
    assert loop.compactions == 0
    assert loop.heap_size() == 20


def test_compaction_can_be_disabled():
    loop = EventLoop(compact=False)
    handles = [loop.schedule(1000 + i, lambda: None) for i in range(100)]
    for handle in handles:
        handle.cancel()
    assert loop.compactions == 0
    assert loop.heap_size() == 100
    assert loop.pending() == 0


def test_firing_order_identical_with_and_without_compaction():
    def run(compact):
        loop = EventLoop(compact=compact)
        fired = []
        handles = []
        for i in range(200):
            handles.append(
                loop.schedule(10 + i, lambda i=i: fired.append(i))
            )
        for i in range(0, 200, 2):
            handles[i].cancel()
        loop.run_until(300)
        return fired, loop.events_fired

    with_compaction = run(True)
    without_compaction = run(False)
    assert with_compaction == without_compaction
    assert with_compaction[0] == list(range(1, 200, 2))


# --------------------------------------------------------- runqueue cache


def _queued(rq, name, now=0, nice=0):
    task = Task(name, nice=nice)
    rq.enqueue(task, now)
    return task


def test_load_cache_returns_exactly_the_recomputed_value():
    cached = RunQueue(0)
    plain = RunQueue(0, load_cache=False)
    for rq in (cached, plain):
        _queued(rq, "a")
        _queued(rq, "b", nice=5)
    now = 40_000
    first = cached.load(now)
    hits_before = cached.load_cache_hits
    assert cached.load(now) == first
    assert cached.load_cache_hits == hits_before + 1
    assert first == plain.load(now)


def test_load_cache_invalidated_by_mutation():
    rq = RunQueue(0)
    _queued(rq, "a")
    now = 10_000
    before = rq.load(now)
    _queued(rq, "b", now=now)
    after = rq.load(now)
    assert after > before
    assert after == pytest.approx(
        sum(t.load(now) for t in rq.all_tasks())
    )


def test_load_cache_invalidated_by_divisor_epoch():
    rq = RunQueue(0)
    _queued(rq, "a")
    now = 10_000
    rq.load(now)
    hits = rq.load_cache_hits
    # A cgroup attach/detach bumps the divisor epoch without touching any
    # runqueue; the cache must miss and recompute.
    rq.divisor_epoch.bump()
    rq.load(now)
    assert rq.load_cache_hits == hits


# ------------------------------------------------------- balance-pass memos


def make_sched():
    return Scheduler(
        two_nodes(cores_per_node=4), SchedFeatures().without_autogroup()
    )


def add_queued(sched, cpu_id, name):
    task = Task(name)
    sched.register_task(task)
    sched.cpu(cpu_id).rq.enqueue(task, 0)
    return task


def test_group_stats_memo_hits_within_a_pass():
    sched = make_sched()
    add_queued(sched, 0, "t0")
    add_queued(sched, 1, "t1")
    domain = sched.domain_builder.domains_of(0)[-1]
    bpass = BalancePass(sched, now=1000)
    group = domain.groups[0]
    first = bpass.group_stats(group)
    assert bpass.group_stats(group) is first


def test_group_stats_signature_survives_unrelated_churn():
    sched = make_sched()
    add_queued(sched, 0, "t0")
    # Registered up front: registration touches cgroup state (divisor
    # epoch), which legitimately drops every memo.  The mid-pass event
    # under test is the enqueue alone.
    straggler = Task("t0b")
    sched.register_task(straggler)
    domain = sched.domain_builder.domains_of(0)[-1]
    node0 = next(g for g in domain.groups if 0 in g.cpus)
    node1 = next(g for g in domain.groups if 0 not in g.cpus)
    bpass = BalancePass(sched, now=1000)
    stats0 = bpass.group_stats(node0)
    stats1 = bpass.group_stats(node1)
    # Churn on node 0 bumps the global load epoch; node 1's fold is still
    # valid (its members' mutation counts are unchanged) and must be
    # reused, while node 0's must be refolded.
    sched.cpu(0).rq.enqueue(straggler, 0)
    assert bpass.group_stats(node1) is stats1
    refolded = bpass.group_stats(node0)
    assert refolded is not stats0
    assert refolded.nr_running == stats0.nr_running + 1


def test_cpu_load_nr_resamples_only_mutated_queues():
    sched = make_sched()
    add_queued(sched, 0, "t0")
    bpass = BalancePass(sched, now=1000)
    load0, nr0 = bpass.cpu_load_nr(0)
    assert nr0 == 1
    add_queued(sched, 0, "t0b")
    load0b, nr0b = bpass.cpu_load_nr(0)
    assert nr0b == 2
    assert load0b > load0


def test_designated_memo_invalidated_by_idle_transition():
    sched = make_sched()
    domain = sched.domain_builder.domains_of(0)[-1]
    group = domain.local_group(0)
    bpass = BalancePass(sched, now=1000)
    # All CPUs idle: the lowest-numbered member wins.
    assert bpass.designated_for(group) == min(group.cpus)
    # Waking the winner bumps the idle epoch; the election must rerun and
    # pick the next idle member.
    add_queued(sched, min(group.cpus), "waker")
    members = sorted(group.cpus)
    assert bpass.designated_for(group) == members[1]


# -------------------------------------------------------- group interning


def test_groups_are_interned_across_cpu_perspectives():
    sched = make_sched()
    builder = sched.domain_builder
    top0 = builder.domains_of(0)[-1]
    top1 = builder.domains_of(1)[-1]
    by_cpus_0 = {g.cpus: g for g in top0.groups}
    by_cpus_1 = {g.cpus: g for g in top1.groups}
    assert set(by_cpus_0) == set(by_cpus_1)
    for cpus, group in by_cpus_0.items():
        # Same membership => the very same object, so id-keyed memos are
        # shared between every CPU's domain walk.
        assert by_cpus_1[cpus] is group


def test_interning_pool_does_not_outlive_a_rebuild():
    sched = make_sched()
    builder = sched.domain_builder
    assert builder._group_pool == {}
    old_top = builder.domains_of(0)[-1]
    sched.set_cpu_online(7, False, now=0)
    # Pool cleared again, and the rebuilt domains dropped the dead CPU:
    # stale interned groups must not leak into the new topology.
    assert builder._group_pool == {}
    new_top = builder.domains_of(0)[-1]
    assert all(7 not in g.cpus for g in new_top.groups)
    assert any(7 in g.cpus for g in old_top.groups)


def test_sorted_cpu_tuples_are_cached_and_correct():
    sched = make_sched()
    domain = sched.domain_builder.domains_of(0)[-1]
    for group in domain.groups:
        first = group.sorted_cpus()
        assert first == tuple(sorted(group.cpus))
        assert group.sorted_cpus() is first
        mask = group.sorted_balance_mask()
        assert mask == tuple(sorted(group.balance_mask()))
        assert group.sorted_balance_mask() is mask

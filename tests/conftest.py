"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.sched.features import SchedFeatures
from repro.sim.system import System
from repro.sim.timebase import MS
from repro.topology import amd_bulldozer_64, single_node, two_nodes
from repro.workloads.base import Run, Sleep, TaskSpec


@pytest.fixture
def small_system():
    """A 2-node, 8-core machine with the buggy scheduler, autogroups off."""
    return System(
        two_nodes(cores_per_node=4),
        SchedFeatures().without_autogroup(),
        seed=1,
    )


@pytest.fixture
def uma_system():
    """A single-node 4-core machine (no NUMA effects)."""
    return System(single_node(4), SchedFeatures().without_autogroup(), seed=1)


@pytest.fixture
def bulldozer():
    """The paper's 64-core machine topology."""
    return amd_bulldozer_64()


def hog_spec(name: str = "hog", total_us=None, **kwargs) -> TaskSpec:
    """An endless (or bounded) CPU burner."""

    def factory():
        def program():
            if total_us is None:
                while True:
                    yield Run(5 * MS)
            else:
                remaining = total_us
                while remaining > 0:
                    chunk = min(5 * MS, remaining)
                    remaining -= chunk
                    yield Run(chunk)

        return program()

    return TaskSpec(name=name, program=factory, **kwargs)


def sleeper_spec(
    name: str = "sleeper",
    run_us: int = 1 * MS,
    sleep_us: int = 1 * MS,
    cycles: int = 10,
    **kwargs,
) -> TaskSpec:
    """A run/sleep cycler."""

    def factory():
        def program():
            for _ in range(cycles):
                yield Run(run_us)
                yield Sleep(sleep_us)

        return program()

    return TaskSpec(name=name, program=factory, **kwargs)

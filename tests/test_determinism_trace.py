"""Seed-determinism regression tests backing the offline checker.

The static rules (``det-unseeded-random``, ``det-wallclock``,
``det-set-iteration``) exist to protect one runtime contract: two runs of
the same scenario with the same seed replay the exact same history.  This
test pins the contract end to end -- if a nondeterministic ordering slips
past the lint rules (e.g. through a container the heuristics cannot type),
the traces diverge and this fails.
"""

import pytest

from repro.experiments.scenarios import build_bug_scenario
from repro.sim.timebase import MS
from repro.viz.events import TraceBuffer, TraceProbe


def _trace(
    bug: str,
    seed: int,
    duration_us: int,
    variant: str = "buggy",
    fastpath=None,
):
    buffer = TraceBuffer()
    probe = TraceProbe(buffer=buffer)
    transform = None
    if fastpath is not None:
        transform = lambda f, on=fastpath: f.with_fastpath(on)  # noqa: E731
    scenario = build_bug_scenario(
        bug,
        variant,
        seed=seed,
        instrument=lambda s: s.attach_probe(probe),
        features_transform=transform,
    )
    scenario.run(duration_us)
    return list(buffer)


@pytest.mark.parametrize("bug", ["group-imbalance", "overload-on-wakeup"])
def test_same_seed_runs_replay_identical_traces(bug):
    first = _trace(bug, seed=1234, duration_us=200 * MS)
    second = _trace(bug, seed=1234, duration_us=200 * MS)
    assert len(first) > 0
    assert first == second


@pytest.mark.parametrize("bug", ["group-imbalance", "overload-on-wakeup"])
@pytest.mark.parametrize("variant", ["buggy", "fixed"])
def test_fastpath_caching_does_not_change_the_schedule(bug, variant):
    # The perf layer's contract: the load cache, balance-pass memos, and
    # heap compaction are pure memoization -- same seed, same trace, byte
    # for byte, whether the fast paths are on or off.
    fast = _trace(bug, seed=1234, duration_us=200 * MS, variant=variant,
                  fastpath=True)
    slow = _trace(bug, seed=1234, duration_us=200 * MS, variant=variant,
                  fastpath=False)
    assert len(fast) > 0
    assert fast == slow


def test_trace_equality_is_a_real_discriminator():
    # The buggy and fixed variants schedule differently, so the equality
    # check above cannot pass vacuously.
    a = _trace("group-imbalance", seed=1, duration_us=200 * MS)
    b = _trace("group-imbalance", seed=1, duration_us=200 * MS, variant="fixed")
    assert a != b

"""Acceptance: sharded experiment runs are byte-identical to serial ones.

These are the ISSUE's equivalence gates at the driver level: the same
table-4 summary and figure-2 rows (and every schedule digest) must come
out of a ``--jobs 4`` pool as out of the historical serial path, and a
warm result cache must replay a run without touching the simulator.
Scales are tiny -- the point is identity, not fidelity.
"""

from __future__ import annotations

import pytest

from repro.experiments.figure2 import figure2_specs
from repro.experiments.table4 import run_table4_measured
from repro.perf.orchestrator import ResultCache, run_trials

SCALE = 0.05


@pytest.fixture(scope="module")
def serial_table4():
    return run_table4_measured(scale=SCALE, jobs=1)


def test_table4_parallel_equivalence(serial_table4):
    parallel = run_table4_measured(scale=SCALE, jobs=4)
    assert parallel.measured == serial_table4.measured
    assert parallel.digests == serial_table4.digests
    assert parallel.stats.jobs == 4
    assert parallel.stats.executed == serial_table4.stats.executed


def test_table4_cache_round_trip(tmp_path, serial_table4):
    cache = ResultCache(root=tmp_path / "cache", code_digest="c" * 64)
    cold = run_table4_measured(scale=SCALE, jobs=1, cache=cache)
    assert cold.measured == serial_table4.measured
    assert cache.entry_count() == len(cold.digests)

    warm_cache = ResultCache(root=tmp_path / "cache", code_digest="c" * 64)
    warm = run_table4_measured(scale=SCALE, jobs=1, cache=warm_cache)
    assert warm.measured == cold.measured
    assert warm.digests == cold.digests
    assert warm.stats.cache_hits == len(cold.digests)
    assert warm.stats.executed == 0  # replayed entirely from disk


def test_figure2_parallel_equivalence():
    specs = figure2_specs(scale=0.1, traced=False)
    serial = run_trials(specs, jobs=1)
    parallel = run_trials(specs, jobs=4)
    assert parallel.rows() == serial.rows()
    assert parallel.digests() == serial.digests()
    # The buggy/fixed pair really differs -- the digests prove the two
    # trials are distinct schedules, not copies of one run.
    assert len(set(serial.digests())) == len(specs)

"""The runtime allocation tracker: declared classes vs observed churn.

Mirrors the effect sanitizer's test shape: a clean soak over a real
vectorized scenario (zero divergences -- the shipped declarations are
sound for what the demos execute), a tampered-declaration run proving
the detector actually fires, and hook/patch hygiene checks.
"""

import sys
import tracemalloc

import pytest

from repro.analysis.alloctrack import (
    AllocCheckSession,
    AllocDivergence,
)

_ENGINE = None


def make_session(**kwargs):
    global _ENGINE
    if _ENGINE is None:
        from repro.analysis.effectcheck import installed_files
        from repro.analysis.effects import EffectEngine

        _ENGINE = EffectEngine(installed_files())
    return AllocCheckSession(engine=_ENGINE, **kwargs)


def short_scenario_run(session, duration_us=100_000):
    from repro.experiments.scenarios import build_bug_scenario

    with session:
        scenario = build_bug_scenario(
            "group-imbalance",
            "buggy",
            features_transform=lambda f: f.with_vectorized(),
        )
        scenario.run(duration_us)
    return session


def test_clean_soak_has_no_divergences():
    session = short_scenario_run(make_session())
    observed = [s for s in session.stats.values() if s.calls]
    assert observed, "no hot-root window ever opened"
    # The scalar fallbacks and the vec mirror both ran.
    assert session.stats["runqueue-load"].calls > 0
    assert session.stats["vec-fold"].calls > 0
    assert session.divergences() == []
    session.check()  # must not raise
    assert "0 divergences" in session.summary()


def test_calibration_cancels_hook_self_noise():
    # The enforced tier's soundness hinges on this: a declared
    # alloc-free root that truly allocates nothing must read zero
    # events even though the profile hook materializes frames inside
    # its windows.
    session = short_scenario_run(make_session())
    assert session.noise_floor > 0  # calibration actually ran
    stats = session.stats["designated-election"]
    assert stats.declared == "alloc-free"
    assert stats.calls > 0
    assert stats.events == 0, session.summary()


def test_tampered_declaration_is_detected():
    from repro.sched.allocdecl import DECLARED_ALLOC

    # RunQueue.load rebuilds its cache on staleness misses: declaring
    # it alloc-free is a lie the runtime must catch.
    tampered = {**DECLARED_ALLOC, "runqueue-load": "alloc-free"}
    session = short_scenario_run(make_session(declared=tampered))
    problems = session.divergences()
    assert len(problems) == 1
    assert "runqueue-load" in problems[0]
    assert "declared alloc-free but allocated" in problems[0]
    with pytest.raises(AllocDivergence) as excinfo:
        session.check()
    assert "runqueue-load" in str(excinfo.value)


def test_install_uninstall_restores_hooks():
    session = make_session()
    assert sys.getprofile() is None
    assert not tracemalloc.is_tracing()
    session.install()
    try:
        assert sys.getprofile() is not None
        assert tracemalloc.is_tracing()
        session.install()  # idempotent
    finally:
        session.uninstall()
    assert sys.getprofile() is None
    assert not tracemalloc.is_tracing()
    session.uninstall()  # idempotent
    # Calibration cleans up after itself.
    assert "__calib__" not in session.stats


def test_unindexed_frames_open_no_window():
    session = make_session()
    with session:
        # This test file is not a hot root: nothing may be billed.
        sum([1, 2, 3])
    assert all(s.calls == 0 for s in session.stats.values())

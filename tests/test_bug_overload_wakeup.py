"""End-to-end reproduction of the Overload-on-Wakeup bug (Section 3.3).

A thread that sleeps on a fully-busy node keeps waking up there (cache-
affine placement) while other nodes hold idle cores.  The fix wakes it on
the longest-idle core in the system.
"""

from dataclasses import replace

from repro.sched.features import SchedFeatures
from repro.sim.system import System
from repro.sim.timebase import MS, SEC
from repro.topology import two_nodes
from repro.workloads.base import Run, Sleep, TaskSpec

from tests.conftest import hog_spec

BUGGY = SchedFeatures().without_autogroup()
FIXED = SchedFeatures().with_fixes("overload_on_wakeup").without_autogroup()


def sleepy_spec(name="sleepy", cycles=300):
    def factory():
        def program():
            for _ in range(cycles):
                yield Run(1 * MS)
                yield Sleep(1 * MS)
        return program()

    return TaskSpec(name, factory)


def run_scenario(features, seed=6):
    """Node 0: 4 pinned hogs + 1 sleepy DB-like thread.  Node 1: idle.

    The hogs are pinned to their cores (like the paper's database with one
    worker per core), and periodic balancing is slowed to the horizon so
    the only escape route for the sleepy thread is its own wakeup
    placement -- the decision under test.  (With balancing at its normal
    rate the scheduler *eventually* migrates the sleepy thread to the idle
    node, the recovery the paper's Figure 3 shows;
    ``test_periodic_balancing_eventually_recovers`` covers that.)
    """
    features = replace(features, balance_base_us=10 * SEC)
    system = System(two_nodes(cores_per_node=4), features, seed=seed)
    hogs = [
        system.spawn(
            hog_spec(f"hog{i}", allowed_cpus=frozenset({i})), on_cpu=i
        )
        for i in range(4)
    ]
    # Warm-up: a short pinned filler overloads cpu 0 so the NOHZ path
    # runs one (fruitless) balancing round and arms every balance stamp;
    # with the slowed interval the balancer is then silent for the rest
    # of the run and only the wakeup path decides placements.
    system.spawn(
        hog_spec("filler", total_us=5 * MS, allowed_cpus=frozenset({0})),
        on_cpu=0,
    )
    system.run_for(10 * MS)
    sleepy = system.spawn(sleepy_spec(), on_cpu=0)
    system.run_for(1 * SEC)
    return system, hogs, sleepy


def test_bug_wakes_on_busy_cores():
    system, _, sleepy = run_scenario(BUGGY)
    assert sleepy.stats.wakeups >= 100
    busy_fraction = (
        sleepy.stats.wakeups_on_busy_core / sleepy.stats.wakeups
    )
    assert busy_fraction > 0.9  # wakeups pile onto busy node-0 cores
    # Node 1's four cores stayed idle the whole second.
    assert all(c.busy_time_us == 0 for c in system.scheduler.cpus[4:8])


def test_periodic_balancing_eventually_recovers():
    """With normal balancing the imbalance is transient: the balancer
    migrates the sleepy thread to the idle node (Figure 3's recovery)."""
    system = System(two_nodes(cores_per_node=4), BUGGY, seed=6)
    for i in range(4):
        system.spawn(
            hog_spec(f"hog{i}", allowed_cpus=frozenset({i})), on_cpu=i
        )
    sleepy = system.spawn(sleepy_spec(), on_cpu=0)
    system.run_for(1 * SEC)
    node1_busy = sum(c.busy_time_us for c in system.scheduler.cpus[4:8])
    assert node1_busy > 0  # the sleepy thread escaped eventually


def test_fix_wakes_on_longest_idle_core():
    system, _, sleepy = run_scenario(FIXED)
    busy_fraction = (
        sleepy.stats.wakeups_on_busy_core / max(sleepy.stats.wakeups, 1)
    )
    assert busy_fraction < 0.1
    # Node 1 cores absorbed the sleepy thread's work.
    node1_busy = sum(c.busy_time_us for c in system.scheduler.cpus[4:8])
    assert node1_busy >= 0.8 * sleepy.stats.total_runtime_us


def test_victim_hog_loses_cpu_under_bug():
    """The co-running hogs pay for the shared core (straggler effect)."""
    _, hogs_buggy, sleepy_buggy = run_scenario(BUGGY)
    _, hogs_fixed, _ = run_scenario(FIXED)
    lost_buggy = sum(
        1 * SEC - h.stats.total_runtime_us for h in hogs_buggy
    )
    lost_fixed = sum(
        1 * SEC - h.stats.total_runtime_us for h in hogs_fixed
    )
    # With the fix the hogs keep (nearly) all their cycles.
    assert lost_fixed < lost_buggy / 2
    assert sleepy_buggy.stats.total_runtime_us > 0


def test_no_idle_cores_fix_falls_back():
    """With every core busy the fix must not change placement."""
    system = System(two_nodes(cores_per_node=2), FIXED, seed=6)
    for i in range(4):
        system.spawn(hog_spec(f"hog{i}"), on_cpu=i)
    sleepy = system.spawn(sleepy_spec(cycles=50), on_cpu=0)
    system.run_for(300 * MS)
    assert sleepy.stats.wakeups_on_busy_core == sleepy.stats.wakeups


def test_bug_needs_oversubscription():
    """With a free core on the local node, wakeups find it and the bug is
    invisible (the paper: the fix 'only matters ... where the system is
    intermittently oversubscribed')."""
    system = System(two_nodes(cores_per_node=4), BUGGY, seed=6)
    for i in range(3):  # one core of node 0 left free
        system.spawn(hog_spec(f"hog{i}"), on_cpu=i)
    sleepy = system.spawn(sleepy_spec(cycles=100), on_cpu=3)
    system.run_for(500 * MS)
    busy_fraction = (
        sleepy.stats.wakeups_on_busy_core / max(sleepy.stats.wakeups, 1)
    )
    assert busy_fraction < 0.1

"""Tests for the machine model (cores, SMT, nodes, Table 5)."""

import pytest

from repro.topology import (
    MachineTopology,
    amd_bulldozer_64,
    dual_core,
    flat_smp,
    paper_figure1_machine,
    single_node,
    two_nodes,
)
from repro.topology.interconnect import Interconnect
from repro.topology.presets import ring_numa


def test_core_numbering_dense():
    topo = two_nodes(cores_per_node=4)
    assert topo.num_cpus == 8
    assert [c.cpu_id for c in topo.cores] == list(range(8))


def test_node_membership():
    topo = two_nodes(cores_per_node=4)
    assert topo.node_of(0) == 0
    assert topo.node_of(4) == 1
    assert topo.cpus_of_node(1) == (4, 5, 6, 7)
    assert 5 in topo.nodes[1]
    assert 5 not in topo.nodes[0]


def test_smt_siblings():
    topo = MachineTopology(nodes=1, cores_per_node=4, smt_width=2)
    assert topo.smt_siblings(0) == frozenset({0, 1})
    assert topo.smt_siblings(1) == frozenset({0, 1})
    assert topo.smt_siblings(2) == frozenset({2, 3})


def test_smt_disabled_means_singleton_siblings():
    topo = flat_smp(4)
    assert topo.smt_siblings(2) == frozenset({2})


def test_llc_siblings_are_node():
    topo = two_nodes(cores_per_node=4)
    assert topo.llc_siblings(5) == frozenset({4, 5, 6, 7})
    assert topo.shares_llc(4, 7)
    assert not topo.shares_llc(3, 4)


def test_cpus_of_nodes_union():
    topo = two_nodes(cores_per_node=2)
    assert topo.cpus_of_nodes([0, 1]) == frozenset(range(4))


def test_node_distance():
    topo = ring_numa(nodes=4, cores_per_node=2)
    assert topo.node_distance(0, 1) == 0  # same node
    assert topo.node_distance(0, 2) == 1  # adjacent nodes
    assert topo.node_distance(0, 4) == 2  # across the ring


def test_validation_errors():
    with pytest.raises(ValueError):
        MachineTopology(nodes=0, cores_per_node=2)
    with pytest.raises(ValueError):
        MachineTopology(nodes=1, cores_per_node=0)
    with pytest.raises(ValueError):
        MachineTopology(nodes=1, cores_per_node=3, smt_width=2)
    with pytest.raises(ValueError):
        MachineTopology(nodes=1, cores_per_node=2, smt_width=0)
    with pytest.raises(ValueError):
        MachineTopology(
            nodes=3, cores_per_node=2,
            interconnect=Interconnect.fully_connected(2),
        )


def test_core_lookup_bounds():
    topo = dual_core()
    with pytest.raises(ValueError):
        topo.core(2)
    with pytest.raises(ValueError):
        topo.cpus_of_node(1)


def test_bulldozer_spec():
    topo = amd_bulldozer_64()
    assert topo.num_cpus == 64
    assert topo.num_nodes == 8
    assert topo.cores_per_node == 8
    assert topo.smt_width == 2
    described = topo.describe()
    assert "64" in described
    assert "2.1" in described
    assert "512" in described
    assert "HyperTransport" in described


def test_figure1_machine_shape():
    topo = paper_figure1_machine()
    assert topo.num_cpus == 32
    assert topo.num_nodes == 4
    # Node 0 reaches two nodes in one hop, the third in two hops.
    assert topo.interconnect.neighbors(0) == frozenset({1, 2})
    assert topo.interconnect.distance(0, 3) == 2


def test_all_cpus():
    topo = single_node(3)
    assert topo.all_cpus() == frozenset({0, 1, 2})


def test_repr():
    assert "nodes=2" in repr(two_nodes())

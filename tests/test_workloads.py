"""Tests for the workload models: make, NAS, database, transients, R."""

import pytest

from repro.sched.features import SchedFeatures
from repro.sim.system import System
from repro.sim.timebase import MS, SEC
from repro.topology import single_node
from repro.workloads.base import Run, jittered
from repro.workloads.cpubound import cpu_hog_program, periodic_task, r_process
from repro.workloads.database import (
    Database,
    QueryResult,
    query18,
    tpch_queries,
)
from repro.workloads.make import MakeJob, kernel_make, make_workers
from repro.workloads.nas import NAS_PROFILES, all_nas_names, nas_app
from repro.workloads.transient import TransientLoad, transient_spec

import random


# -- base helpers ------------------------------------------------------------


def test_run_phase_validation():
    with pytest.raises(ValueError):
        Run(-1)


def test_jittered_bounds():
    rng = random.Random(1)
    for _ in range(100):
        value = jittered(rng, 1000, 0.2)
        assert 800 <= value <= 1200
    assert jittered(rng, 0) == 0


# -- cpubound ----------------------------------------------------------------


def test_r_process_runs_in_own_autogroup():
    system = System(single_node(2), SchedFeatures(), seed=1)
    task = system.spawn(r_process("R1", tty="ttyR", total_us=5 * MS))
    assert task.cgroup.name == "autogroup:ttyR"
    assert system.run_until_done([task], 1 * SEC)
    assert task.stats.total_runtime_us == 5 * MS


def test_cpu_hog_unbounded():
    program = cpu_hog_program(None)()
    phases = [next(program) for _ in range(5)]
    assert all(isinstance(p, Run) for p in phases)


def test_periodic_task_cycles():
    system = System(single_node(2), seed=1)
    task = system.spawn(periodic_task("p", 1 * MS, 1 * MS, cycles=4))
    assert system.run_until_done([task], 1 * SEC)
    assert task.stats.wakeups == 4


# -- make --------------------------------------------------------------------


def test_make_job_pool_drains():
    job = MakeJob(total_jobs=5, compile_mean_us=1000)
    durations = [job.take_job() for _ in range(5)]
    assert all(d is not None for d in durations)
    assert job.take_job() is None


def test_make_job_validation():
    with pytest.raises(ValueError):
        MakeJob(total_jobs=0)


def test_make_workers_complete_all_jobs():
    system = System(single_node(4), SchedFeatures(), seed=1)
    job = MakeJob(total_jobs=30, compile_mean_us=2000, io_pause_us=100)
    tasks = [system.spawn(s) for s in make_workers(job, 4)]
    assert system.run_until_done(tasks, 5 * SEC)
    assert job.completed == 30
    assert job.done


def test_make_workers_share_autogroup():
    system = System(single_node(2), SchedFeatures(), seed=1)
    job = MakeJob(total_jobs=2)
    tasks = [system.spawn(s) for s in make_workers(job, 2, tty="ttyM")]
    assert tasks[0].cgroup is tasks[1].cgroup
    assert tasks[0].cgroup.nr_threads == 2


def test_make_workers_validation():
    with pytest.raises(ValueError):
        make_workers(MakeJob(total_jobs=1), 0)


def test_make_driver_forks_compiles():
    from repro.workloads.make import make_driver

    system = System(single_node(4), SchedFeatures(), seed=1)
    job = MakeJob(total_jobs=20, compile_mean_us=2000, io_pause_us=100)
    driver = system.spawn(make_driver(job, parallelism=4, tty="ttyM"))
    assert system.run_until_done([driver], 10 * SEC)
    assert job.completed == 20
    # One short-lived compile task per job, plus the driver.
    compiles = [t for t in system.spawned if t.name.startswith("cc-")]
    assert len(compiles) == 20
    assert all(not t.alive for t in compiles)
    # All in make's autogroup.
    assert all(s.cgroup.name == "autogroup:ttyM"
               for s in [driver] if s.cgroup is not None)


def test_make_driver_bounds_parallelism():
    from repro.workloads.make import make_driver

    system = System(single_node(2), SchedFeatures(), seed=1)
    job = MakeJob(total_jobs=30, compile_mean_us=3000, io_pause_us=0)
    driver = system.spawn(make_driver(job, parallelism=3))
    peak = [0]

    def watch(now):
        alive = sum(
            1 for t in system.spawned
            if t.name.startswith("cc-") and t.alive
        )
        peak[0] = max(peak[0], alive)

    system.tick_hooks.append(watch)
    assert system.run_until_done([driver], 10 * SEC)
    assert peak[0] <= 4  # -j 3 plus one mid-spawn


def test_make_driver_validation():
    from repro.workloads.make import make_driver

    with pytest.raises(ValueError):
        make_driver(MakeJob(total_jobs=1), parallelism=0)


def test_kernel_make_factory():
    specs = kernel_make(nr_workers=8, total_jobs=10)
    assert len(specs) == 8
    assert all(s.tty == "tty-make" for s in specs)


# -- NAS ---------------------------------------------------------------------


def test_all_nine_nas_apps_defined():
    assert set(all_nas_names()) == {
        "bt", "cg", "ep", "ft", "is", "lu", "mg", "sp", "ua",
    }


def test_nas_profiles_shape():
    assert NAS_PROFILES["lu"].pipeline
    assert NAS_PROFILES["ep"].barrier_every > 1  # rarely synchronizes
    assert NAS_PROFILES["ua"].lock_hold_us > 0
    assert NAS_PROFILES["is"].io_sleep_us > 0


def test_nas_unknown_app():
    with pytest.raises(KeyError):
        nas_app("zz", 4)


def test_nas_thread_validation():
    with pytest.raises(ValueError):
        nas_app("cg", 0)


@pytest.mark.parametrize("name", all_nas_names())
def test_each_nas_app_completes(name):
    system = System(
        single_node(4), SchedFeatures().without_autogroup(), seed=3
    )
    app = nas_app(name, 4, scale=0.05)
    tasks = [system.spawn(s) for s in app.thread_specs()]
    assert system.run_until_done(tasks, 60 * SEC), name
    assert app.barrier.completions >= 1 or app.profile.barrier_every > 1


def test_nas_affinity_applied():
    app = nas_app("cg", 2, allowed_cpus=frozenset({0, 1}))
    specs = app.thread_specs()
    assert all(s.allowed_cpus == frozenset({0, 1}) for s in specs)


def test_nas_scale_changes_iterations():
    full = nas_app("cg", 2, scale=1.0)
    half = nas_app("cg", 2, scale=0.5)
    assert half.iterations == full.iterations // 2
    assert nas_app("cg", 2, scale=0.0001).iterations >= 1


def test_lu_pipeline_flags_created():
    app = nas_app("lu", 4)
    assert len(app.stage_flags) == 4
    assert nas_app("cg", 4).stage_flags == []


# -- database ----------------------------------------------------------------


def test_tpch_query_mix():
    queries = tpch_queries()
    assert len(queries) == 22
    q18 = query18()
    assert q18.number == 18
    assert q18.rounds == max(q.rounds for q in queries)
    assert q18.name == "Q18"


def test_tpch_scale():
    assert query18(0.5).rounds == 10


def test_database_validation():
    with pytest.raises(ValueError):
        Database(containers=())
    with pytest.raises(ValueError):
        Database(containers=(4, 0))


def test_database_runs_queries_and_measures_latency():
    system = System(
        single_node(4), SchedFeatures().without_autogroup(), seed=5
    )
    db = Database(containers=(2, 2), seed=5, think_time_us=500)
    db.bind(system)
    workers = [
        system.spawn(s, parent_cpu=i % 4)
        for i, s in enumerate(db.worker_specs())
    ]
    driver = system.spawn(db.driver_spec(tpch_queries(0.2)[:3]))
    assert system.run_until_done([driver], 30 * SEC)
    assert len(db.results) == 3
    assert all(isinstance(r, QueryResult) for r in db.results)
    assert all(r.latency_us > 0 for r in db.results)
    # Workers shut down after the last query.
    system.run_for(10 * MS)
    assert all(not w.alive for w in workers)


def test_database_driver_requires_bind():
    system = System(single_node(2), seed=1)
    db = Database(containers=(2,))
    with pytest.raises(RuntimeError):
        system.spawn(db.driver_spec([query18(0.1)]))


def test_database_containers_have_distinct_cgroups():
    db = Database(containers=(3, 2))
    specs = db.worker_specs()
    assert len(specs) == 5
    groups = {s.cgroup for s in specs}
    assert groups == {"db-container-0", "db-container-1"}


# -- transients --------------------------------------------------------------


def test_transient_spec_short_lived():
    system = System(single_node(2), seed=1)
    task = system.spawn(transient_spec("k", 500), on_cpu=0)
    system.run_for(5 * MS)
    assert not task.alive
    assert task.stats.total_runtime_us == 500


def test_transient_load_spawns_at_rate():
    system = System(single_node(2), seed=1)
    load = TransientLoad(rate_per_sec=500, duration_us=200, seed=9)
    load.attach(system)
    system.run_for(1 * SEC)
    # Poisson-ish: expect about 500, allow wide slack.
    assert 300 < load.spawned_count < 700


def test_transient_load_detach():
    system = System(single_node(2), seed=1)
    load = TransientLoad(rate_per_sec=1000, seed=9)
    load.attach(system)
    with pytest.raises(RuntimeError):
        load.attach(system)
    system.run_for(50 * MS)
    load.detach()
    seen = load.spawned_count
    system.run_for(50 * MS)
    assert load.spawned_count == seen


def test_transient_rate_validation():
    with pytest.raises(ValueError):
        TransientLoad(rate_per_sec=-1)

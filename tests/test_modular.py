"""Tests for the Section-5 modular-scheduler prototype."""

from dataclasses import replace

from repro.modular import (
    CacheAffinityModule,
    InvariantGuardedScheduler,
    LeastLoadedModule,
    ModularSystem,
    OptimizationModule,
    Suggestion,
)
from repro.sched.features import SchedFeatures
from repro.sched.task import Task, TaskState
from repro.sim.timebase import MS, SEC
from repro.topology import two_nodes
from repro.workloads.base import Run, Sleep, TaskSpec

from tests.conftest import hog_spec

FEATURES = SchedFeatures().without_autogroup()


def sleepy_spec(cycles=100):
    def factory():
        def program():
            for _ in range(cycles):
                yield Run(1 * MS)
                yield Sleep(1 * MS)
        return program()

    return TaskSpec("sleepy", factory)


def make_guarded(modules, topo=None):
    return InvariantGuardedScheduler(
        topo or two_nodes(cores_per_node=2), FEATURES, modules=modules
    )


def occupy(sched, cpu_id):
    task = Task(f"occ{cpu_id}")
    sched.register_task(task)
    sched.enqueue_task_on(task, cpu_id, 0)
    sched.pick_next_task(cpu_id, 0)
    return task


def sleeper(sched, prev_cpu):
    task = Task("sleeper")
    sched.register_task(task)
    task.prev_cpu = prev_cpu
    task.state = TaskState.SLEEPING
    return task


class TestModules:
    def test_cache_affinity_prefers_idle_prev(self):
        sched = make_guarded([])
        task = sleeper(sched, prev_cpu=1)
        suggestion = CacheAffinityModule().suggest_wakeup(sched, task, 0, 0)
        assert suggestion.cpu == 1
        assert suggestion.confidence > 0.8

    def test_cache_affinity_llc_fallback(self):
        sched = make_guarded([])
        occupy(sched, 1)
        task = sleeper(sched, prev_cpu=1)
        suggestion = CacheAffinityModule().suggest_wakeup(sched, task, 0, 0)
        assert suggestion.cpu == 0  # idle core of the same node

    def test_cache_affinity_buggy_insists_on_busy_prev(self):
        sched = make_guarded([])
        occupy(sched, 0)
        occupy(sched, 1)
        task = sleeper(sched, prev_cpu=1)
        buggy = CacheAffinityModule(node_restricted=True)
        polite = CacheAffinityModule(node_restricted=False)
        assert buggy.suggest_wakeup(sched, task, 0, 0).cpu == 1
        assert polite.suggest_wakeup(sched, task, 0, 0) is None

    def test_cache_affinity_abstains_without_prev(self):
        sched = make_guarded([])
        task = Task("new")
        sched.register_task(task)
        assert CacheAffinityModule().suggest_wakeup(sched, task, 0, 0) is None

    def test_least_loaded_picks_global_minimum(self):
        sched = make_guarded([])
        occupy(sched, 0)
        occupy(sched, 1)
        task = sleeper(sched, prev_cpu=0)
        suggestion = LeastLoadedModule().suggest_wakeup(sched, task, 0, 0)
        assert suggestion.cpu in (2, 3)

    def test_least_loaded_respects_affinity(self):
        sched = make_guarded([])
        task = sleeper(sched, prev_cpu=0)
        task.set_affinity(frozenset({3}))
        assert LeastLoadedModule().suggest_wakeup(sched, task, 0, 0).cpu == 3

    def test_base_module_abstains(self):
        sched = make_guarded([])
        task = sleeper(sched, prev_cpu=0)
        assert OptimizationModule().suggest_wakeup(sched, task, 0, 0) is None


class TestInvariantGuard:
    def test_feasible_suggestion_accepted(self):
        sched = make_guarded([CacheAffinityModule()])
        task = sleeper(sched, prev_cpu=1)
        target = sched.wake_task(task, 0, 0)
        assert target == 1
        assert sched.decisions[-1].source == "cache-affinity"
        assert sched.module_placements == 1

    def test_guard_overrides_busy_suggestion(self):
        """The buggy module insists on a busy core; the guard refuses and
        places on the longest-idle core instead."""
        sched = make_guarded([CacheAffinityModule(node_restricted=True)])
        occupy(sched, 0)
        occupy(sched, 1)
        task = sleeper(sched, prev_cpu=1)
        target = sched.wake_task(task, 0, 0)
        assert target in (2, 3)  # the other node's idle cores
        assert sched.decisions[-1].source == "guard-override"
        assert sched.guard_overrides == 1

    def test_busy_suggestion_ok_when_no_idle_core(self):
        sched = make_guarded([CacheAffinityModule(node_restricted=True)])
        for cpu in range(4):
            occupy(sched, cpu)
        task = sleeper(sched, prev_cpu=1)
        target = sched.wake_task(task, 0, 0)
        assert target == 1
        assert sched.decisions[-1].source == "cache-affinity"

    def test_fallback_without_modules(self):
        sched = make_guarded([])
        task = sleeper(sched, prev_cpu=1)
        sched.wake_task(task, 0, 0)
        assert sched.decisions[-1].source == "fallback"

    def test_higher_confidence_module_wins(self):
        class Fixed(OptimizationModule):
            def __init__(self, name, cpu, confidence):
                self.name = name
                self._s = Suggestion(cpu, "fixed", confidence)

            def suggest_wakeup(self, sched, task, waker_cpu, now):
                return self._s

        sched = make_guarded([Fixed("low", 2, 0.2), Fixed("high", 3, 0.9)])
        task = sleeper(sched, prev_cpu=0)
        assert sched.wake_task(task, 0, 0) == 3
        assert sched.decisions[-1].source == "high"

    def test_decision_summary(self):
        sched = make_guarded([])
        assert "no wakeup decisions" in sched.decision_summary()
        task = sleeper(sched, prev_cpu=0)
        sched.wake_task(task, 0, 0)
        assert "1 wakeups" in sched.decision_summary()


class TestModularSystemEndToEnd:
    def _run(self, modules, seed=6):
        features = replace(FEATURES, balance_base_us=10 * SEC)
        system = ModularSystem(
            two_nodes(cores_per_node=4), features, modules=modules,
            seed=seed,
        )
        for i in range(4):
            system.spawn(
                hog_spec(f"hog{i}", allowed_cpus=frozenset({i})), on_cpu=i
            )
        system.run_for(10 * MS)
        sleepy = system.spawn(sleepy_spec(300), on_cpu=0)
        system.run_for(1 * SEC)
        return system, sleepy

    def test_guard_neutralizes_buggy_module(self):
        """Even with only the buggy cache module, the guarded core keeps
        the machine work-conserving (the Section 5 punchline).  A single
        override re-homes the thread to the idle node; from then on the
        module's own suggestion (idle previous core) is feasible."""
        system, sleepy = self._run(
            [CacheAffinityModule(node_restricted=True)]
        )
        busy_fraction = (
            sleepy.stats.wakeups_on_busy_core / max(sleepy.stats.wakeups, 1)
        )
        assert busy_fraction < 0.1
        assert system.guarded.module_placements >= 250

    def test_module_pair_needs_no_overrides(self):
        """With a contention module available, its feasible suggestion is
        taken and the guard never fires."""
        system, sleepy = self._run(
            [CacheAffinityModule(node_restricted=True), LeastLoadedModule()]
        )
        busy_fraction = (
            sleepy.stats.wakeups_on_busy_core / max(sleepy.stats.wakeups, 1)
        )
        assert busy_fraction < 0.1
        assert system.guarded.guard_overrides == 0
        assert system.guarded.module_placements > 100

    def test_guarded_accessor(self):
        system, _ = self._run([])
        assert isinstance(system.guarded, InvariantGuardedScheduler)

"""Unit and property-based tests for the red-black tree."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sched.rbtree import RBTree


def test_empty_tree():
    tree = RBTree()
    assert len(tree) == 0
    assert not tree
    assert tree.leftmost() is None
    assert tree.rightmost() is None
    assert 1 not in tree
    tree.validate()


def test_insert_and_lookup():
    tree = RBTree()
    tree.insert(5, "five")
    tree.insert(3, "three")
    tree.insert(8, "eight")
    assert tree.get(5) == "five"
    assert tree.get(99, "default") == "default"
    assert 3 in tree
    assert len(tree) == 3


def test_duplicate_key_rejected():
    tree = RBTree()
    tree.insert(1, "a")
    with pytest.raises(KeyError):
        tree.insert(1, "b")


def test_remove_returns_value():
    tree = RBTree()
    tree.insert(1, "a")
    assert tree.remove(1) == "a"
    assert len(tree) == 0
    with pytest.raises(KeyError):
        tree.remove(1)


def test_leftmost_rightmost():
    tree = RBTree()
    for k in (5, 2, 9, 7, 1):
        tree.insert(k, str(k))
    assert tree.leftmost() == (1, "1")
    assert tree.rightmost() == (9, "9")


def test_pop_leftmost():
    tree = RBTree()
    for k in (3, 1, 2):
        tree.insert(k)
    assert tree.pop_leftmost() == (1, None)
    assert tree.pop_leftmost() == (2, None)
    assert tree.pop_leftmost() == (3, None)
    with pytest.raises(KeyError):
        tree.pop_leftmost()


def test_inorder_iteration():
    tree = RBTree()
    keys = [7, 3, 9, 1, 5, 8]
    for k in keys:
        tree.insert(k, k * 10)
    assert list(tree.keys()) == sorted(keys)
    assert list(tree.values()) == [k * 10 for k in sorted(keys)]
    assert list(tree.items()) == [(k, k * 10) for k in sorted(keys)]


def test_tuple_keys():
    """The runqueue uses (vruntime, tid) composite keys."""
    tree = RBTree()
    tree.insert((100, 2), "b")
    tree.insert((100, 1), "a")
    tree.insert((50, 9), "c")
    assert tree.leftmost() == ((50, 9), "c")
    assert [v for _, v in tree.items()] == ["c", "a", "b"]


def test_height_is_logarithmic():
    tree = RBTree()
    for k in range(1024):
        tree.insert(k)
    # RB trees guarantee height <= 2*log2(n+1).
    assert tree.height() <= 2 * 11
    tree.validate()


def test_sequential_insert_delete():
    tree = RBTree()
    for k in range(100):
        tree.insert(k)
        tree.validate()
    for k in range(0, 100, 2):
        tree.remove(k)
        tree.validate()
    assert list(tree.keys()) == list(range(1, 100, 2))


@settings(max_examples=200, deadline=None)
@given(
    ops=st.lists(
        st.tuples(st.booleans(), st.integers(min_value=0, max_value=200)),
        max_size=120,
    )
)
def test_matches_reference_model(ops):
    """Random insert/remove interleavings match a dict+sorted model."""
    tree = RBTree()
    model = {}
    for is_insert, key in ops:
        if is_insert:
            if key in model:
                continue
            model[key] = key * 3
            tree.insert(key, key * 3)
        else:
            if key in model:
                assert tree.remove(key) == model.pop(key)
            else:
                with pytest.raises(KeyError):
                    tree.remove(key)
        tree.validate()
        assert len(tree) == len(model)
    assert list(tree.keys()) == sorted(model)
    if model:
        assert tree.leftmost()[0] == min(model)
        assert tree.rightmost()[0] == max(model)


@settings(max_examples=100, deadline=None)
@given(keys=st.sets(st.integers(), max_size=200))
def test_iteration_sorted_property(keys):
    tree = RBTree()
    for k in keys:
        tree.insert(k)
    assert list(tree.keys()) == sorted(keys)
    tree.validate()


@settings(max_examples=50, deadline=None)
@given(keys=st.sets(st.integers(min_value=0, max_value=10_000), min_size=1))
def test_pop_leftmost_drains_in_order(keys):
    tree = RBTree()
    for k in keys:
        tree.insert(k)
    drained = []
    while tree:
        drained.append(tree.pop_leftmost()[0])
    assert drained == sorted(keys)

"""Tracepoint bus: enabled-flag gating, pattern subscription, spans."""

import pytest

from repro.obs.tracepoints import Span, Tracepoint, TracepointRegistry, span


def _collector(sink):
    def fn(name, now, fields):
        sink.append((name, now, dict(fields)))

    return fn


class TestTracepoint:
    def test_disabled_until_subscribed(self):
        tp = Tracepoint("x")
        assert not tp.enabled
        tp.subscribe(lambda *a: None)
        assert tp.enabled

    def test_unsubscribe_disables_when_last_leaves(self):
        tp = Tracepoint("x")
        a, b = (lambda *x: None), (lambda *x: None)
        tp.subscribe(a)
        tp.subscribe(b)
        tp.unsubscribe(a)
        assert tp.enabled
        tp.unsubscribe(b)
        assert not tp.enabled

    def test_emit_delivers_name_time_fields(self):
        events = []
        tp = Tracepoint("sched.test")
        tp.subscribe(_collector(events))
        tp.emit(123, cpu=4, reason="balance")
        assert events == [("sched.test", 123, {"cpu": 4, "reason": "balance"})]

    def test_emit_reaches_every_subscriber(self):
        first, second = [], []
        tp = Tracepoint("x")
        tp.subscribe(_collector(first))
        tp.subscribe(_collector(second))
        tp.emit(1, k=1)
        assert len(first) == len(second) == 1


class TestRegistry:
    def test_tracepoint_is_create_or_get(self):
        reg = TracepointRegistry()
        assert reg.tracepoint("a") is reg.tracepoint("a")

    def test_exact_subscription(self):
        reg = TracepointRegistry()
        tp = reg.tracepoint("sched.wakeup")
        other = reg.tracepoint("sched.switch")
        events = []
        reg.subscribe("sched.wakeup", _collector(events))
        assert tp.enabled and not other.enabled

    def test_prefix_pattern_matches_existing(self):
        reg = TracepointRegistry()
        reg.tracepoint("sched.wakeup")
        reg.tracepoint("sched.switch")
        reg.tracepoint("engine.callback")
        events = []
        reg.subscribe("sched.*", _collector(events))
        reg.tracepoint("sched.wakeup").emit(1)
        reg.tracepoint("engine.callback").emit(2)
        assert [e[0] for e in events] == ["sched.wakeup"]

    def test_pattern_covers_late_created_tracepoints(self):
        reg = TracepointRegistry()
        events = []
        reg.subscribe("checker.*", _collector(events))
        late = reg.tracepoint("checker.bug_confirmed")
        assert late.enabled
        late.emit(5, n=1)
        assert events[0][0] == "checker.bug_confirmed"

    def test_star_matches_everything(self):
        reg = TracepointRegistry()
        events = []
        reg.subscribe("*", _collector(events))
        reg.tracepoint("anything.at.all").emit(1)
        assert len(events) == 1

    def test_unsubscribe_pattern_also_stops_late_creation(self):
        reg = TracepointRegistry()
        fn = _collector([])
        reg.subscribe("sched.*", fn)
        reg.unsubscribe("sched.*", fn)
        assert not reg.tracepoint("sched.wakeup").enabled

    def test_unsubscribe_exact(self):
        reg = TracepointRegistry()
        tp = reg.tracepoint("a")
        fn = _collector([])
        reg.subscribe("a", fn)
        reg.unsubscribe("a", fn)
        assert not tp.enabled

    def test_names_sorted(self):
        reg = TracepointRegistry()
        reg.tracepoint("b")
        reg.tracepoint("a")
        assert reg.names() == ["a", "b"]


class TestSpan:
    def test_emits_begin_and_end(self):
        reg = TracepointRegistry()
        events = []
        reg.subscribe("obs.*", _collector(events))
        s = span("obs.window", 10, registry=reg, bug="gi")
        s.end(30)
        assert events == [
            ("obs.window", 10, {"ph": "B", "bug": "gi"}),
            ("obs.window", 30, {"ph": "E", "bug": "gi"}),
        ]

    def test_end_is_idempotent(self):
        reg = TracepointRegistry()
        events = []
        reg.subscribe("obs.*", _collector(events))
        s = span("obs.window", 0, registry=reg)
        s.end(1)
        s.end(2)
        assert len(events) == 2

    def test_disabled_span_emits_nothing(self):
        tp = Tracepoint("obs.window")
        s = Span(tp, 0)
        s.end(1)  # no subscribers: must not raise, must not allocate events
        assert not tp.enabled


def test_module_registry_is_importable_and_shared():
    from repro.obs import TRACEPOINTS as a
    from repro.obs.tracepoints import TRACEPOINTS as b

    assert a is b


@pytest.mark.parametrize(
    "pattern,name,expected",
    [
        ("sched.*", "sched.wakeup", True),
        ("sched.*", "schedx", False),
        ("sched.wakeup", "sched.wakeup", True),
        ("sched.wakeup", "sched.wakeup2", False),
        ("*", "anything", True),
    ],
)
def test_pattern_matching(pattern, name, expected):
    from repro.obs.tracepoints import _matches

    assert _matches(pattern, name) is expected

"""Tests for CFS core policy: periods, timeslices, preemption checks."""

import pytest

from repro.sched import cfs
from repro.sched.features import SchedFeatures
from repro.sched.runqueue import RunQueue
from repro.sched.task import Task


FEATURES = SchedFeatures()


def queue_with(*tasks):
    rq = RunQueue(0)
    for t in tasks:
        rq.enqueue(t, 0)
    return rq


def test_period_is_latency_for_few_threads():
    assert cfs.sched_period_us(FEATURES, 1) == FEATURES.sched_latency_us
    assert cfs.sched_period_us(FEATURES, 0) == FEATURES.sched_latency_us


def test_period_stretches_for_many_threads():
    many = 100
    assert (
        cfs.sched_period_us(FEATURES, many)
        == many * FEATURES.min_granularity_us
    )


def test_timeslice_split_equally_for_equal_weights():
    a, b = Task("a"), Task("b")
    rq = queue_with(a, b)
    slice_a = cfs.timeslice_us(FEATURES, a, rq)
    assert slice_a == FEATURES.sched_latency_us // 2


def test_timeslice_proportional_to_weight():
    heavy = Task("heavy", nice=-5)
    light = Task("light", nice=5)
    rq = queue_with(heavy, light)
    assert cfs.timeslice_us(FEATURES, heavy, rq) > cfs.timeslice_us(
        FEATURES, light, rq
    )


def test_timeslice_has_floor():
    tasks = [Task(f"t{i}") for i in range(50)]
    rq = queue_with(*tasks)
    assert (
        cfs.timeslice_us(FEATURES, tasks[0], rq)
        >= FEATURES.min_granularity_us
    )


def test_timeslice_empty_queue():
    rq = RunQueue(0)
    assert cfs.timeslice_us(FEATURES, Task("t"), rq) == FEATURES.sched_latency_us


def test_account_runtime_updates_vruntime_and_stats():
    task = Task("t", now=0)
    cfs.account_runtime(task, now=1000, exec_time_us=1000)
    assert task.vruntime == 1000  # nice-0: 1:1
    assert task.stats.total_runtime_us == 1000


def test_account_runtime_weight_scaling():
    heavy = Task("heavy", nice=-10, now=0)
    cfs.account_runtime(heavy, 1000, 1000)
    assert heavy.vruntime < 1000


def test_account_runtime_zero_updates_tracker_only():
    task = Task("t", now=0)
    cfs.account_runtime(task, 5000, 0)
    assert task.vruntime == 0
    assert task.tracker.last_update_us == 5000


def test_account_runtime_negative_rejected():
    with pytest.raises(ValueError):
        cfs.account_runtime(Task("t"), 0, -5)


def test_tick_preempt_when_slice_consumed():
    curr = Task("curr")
    waiter = Task("w")
    rq = queue_with(waiter)
    rq.set_current(curr, 0)
    slice_us = cfs.timeslice_us(FEATURES, curr, rq)
    assert cfs.should_preempt_at_tick(FEATURES, rq, curr, ran_us=slice_us)
    assert not cfs.should_preempt_at_tick(FEATURES, rq, curr, ran_us=0)


def test_tick_no_preempt_without_waiters():
    curr = Task("curr")
    rq = RunQueue(0)
    rq.set_current(curr, 0)
    assert not cfs.should_preempt_at_tick(
        FEATURES, rq, curr, ran_us=10**9
    )


def test_tick_preempt_on_vruntime_gap():
    curr = Task("curr")
    curr.vruntime = 10_000_000
    waiter = Task("w")
    waiter.vruntime = 0
    rq = queue_with(waiter)
    rq.set_current(curr, 0)
    # Gap is huge, but min granularity protects very short runs.
    assert not cfs.should_preempt_at_tick(FEATURES, rq, curr, ran_us=10)
    assert cfs.should_preempt_at_tick(
        FEATURES, rq, curr, ran_us=FEATURES.min_granularity_us
    )


def test_wakeup_preempt_idle_cpu():
    assert cfs.should_preempt_on_wakeup(FEATURES, None, Task("w"))


def test_wakeup_preempt_on_large_vruntime_gap():
    curr = Task("curr")
    curr.vruntime = 1_000_000
    woken = Task("w")
    woken.vruntime = 0
    assert cfs.should_preempt_on_wakeup(FEATURES, curr, woken)


def test_wakeup_no_preempt_within_granularity():
    curr = Task("curr")
    curr.vruntime = 100
    woken = Task("w")
    woken.vruntime = 0
    assert not cfs.should_preempt_on_wakeup(FEATURES, curr, woken)

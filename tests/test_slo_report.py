"""Unit tests for SLO metrics, thresholds, verdicts, and the histogram
contracts the report layer leans on (percentile bound, exact jitter,
exact miss-rate at power-of-two deadlines)."""

import random
import statistics

import pytest

from repro.obs.metrics import (
    MetricsRegistry,
    assert_percentile_bound,
    exact_percentile,
)
from repro.slo.report import (
    ScenarioReport,
    SLOMetrics,
    SLOReport,
    SLOThresholds,
    evaluate,
)


def metrics(**overrides):
    base = dict(
        wakeup_p50_us=100.0,
        wakeup_p99_us=500.0,
        wakeup_p999_us=900.0,
        jitter_us=10.0,
        deadline_miss_rate=0.01,
        idle_overload_fraction=0.0,
        samples=1000,
    )
    base.update(overrides)
    return SLOMetrics(**base)


# ------------------------------------------------------------- thresholds


def test_thresholds_from_mapping_roundtrip():
    t = SLOThresholds.from_mapping({"max_p99_us": 1000, "max_miss_rate": 0.1})
    assert t.max_p99_us == 1000.0
    assert t.max_miss_rate == 0.1
    assert t.max_p50_us is None
    assert t.to_json() == {"max_p99_us": 1000.0, "max_miss_rate": 0.1}


def test_thresholds_reject_unknown_keys():
    with pytest.raises(ValueError, match="unknown SLO threshold"):
        SLOThresholds.from_mapping({"max_p42_us": 1})


def test_thresholds_reject_non_numeric():
    with pytest.raises(ValueError, match="must be a number"):
        SLOThresholds.from_mapping({"max_p99_us": "fast"})
    with pytest.raises(ValueError, match="must be a number"):
        SLOThresholds.from_mapping({"max_p99_us": True})


# --------------------------------------------------------------- verdicts


def test_evaluate_passes_within_bounds():
    verdict = evaluate(metrics(), SLOThresholds(max_p99_us=500.0))
    assert verdict.passed
    assert verdict.failures == ()


def test_evaluate_names_every_violated_bound():
    verdict = evaluate(
        metrics(wakeup_p99_us=2000.0, jitter_us=80.0),
        SLOThresholds(max_p99_us=1000.0, max_jitter_us=50.0,
                      max_miss_rate=0.5),
    )
    assert not verdict.passed
    assert verdict.failures == ("p99 2000 > 1000", "jitter 80 > 50")


def test_evaluate_ignores_unset_bounds():
    verdict = evaluate(metrics(wakeup_p999_us=1e9), SLOThresholds())
    assert verdict.passed


# ---------------------------------------------------------------- folding


def test_worst_of_is_pointwise_max_with_summed_samples():
    worst = SLOMetrics.worst_of([
        metrics(wakeup_p50_us=10.0, jitter_us=99.0, samples=5),
        metrics(wakeup_p50_us=20.0, jitter_us=1.0, samples=7),
    ])
    assert worst.wakeup_p50_us == 20.0
    assert worst.jitter_us == 99.0
    assert worst.samples == 12


def test_worst_of_rejects_empty():
    with pytest.raises(ValueError):
        SLOMetrics.worst_of([])


def test_metrics_row_roundtrip():
    m = metrics(jitter_us=12.3456789, deadline_miss_rate=0.1234567)
    row = m.to_json()
    back = SLOMetrics.from_row(row)
    assert back.wakeup_p50_us == m.wakeup_p50_us
    assert back.samples == m.samples
    # to_json rounds: the round trip is exact at the serialized precision.
    assert back.jitter_us == round(m.jitter_us, 3)
    assert back.deadline_miss_rate == round(m.deadline_miss_rate, 6)


# ----------------------------------------------- scenario / report shapes


def test_scenario_report_verdict_and_render():
    report = ScenarioReport(
        scenario="demo",
        variant="buggy",
        thresholds=SLOThresholds(max_p50_us=50.0),
        per_seed=[(42, metrics(wakeup_p50_us=100.0))],
        schedule_digests=["abc"],
    )
    assert report.key == "demo/buggy"
    assert not report.verdict.passed
    full = SLOReport(scenarios=[report])
    assert full.verdicts() == {"demo/buggy": False}
    text = full.render()
    assert "demo" in text and "FAIL" in text
    assert "p50 100 > 50" in text
    payload = full.to_json()
    assert payload["version"] == 1
    assert payload["verdicts"] == {"demo/buggy": False}


# ------------------------------------------- histogram contract backstops


def test_percentile_bound_on_synthetic_samples():
    registry = MetricsRegistry()
    h = registry.histogram("t", "test")
    rng = random.Random(7)
    samples = [rng.randint(0, 100_000) for _ in range(5000)]
    for s in samples:
        h.observe(s)
    for p in (50, 90, 99, 99.9):
        estimate = assert_percentile_bound(h, samples, p)
        assert estimate >= exact_percentile(samples, p)


def test_percentile_bound_raises_on_violation():
    registry = MetricsRegistry()
    h = registry.histogram("t", "test")
    h.observe(100)
    with pytest.raises(AssertionError, match="outside"):
        # Lying about the raw samples must trip the bound check.
        assert_percentile_bound(h, [1000], 50)


def test_jitter_is_exact_stddev():
    registry = MetricsRegistry()
    h = registry.histogram("t", "test")
    values = [3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5]
    for v in values:
        h.observe(v)
    assert h.stddev() == pytest.approx(statistics.pstdev(values))


def test_fraction_above_exact_at_power_of_two_deadline():
    registry = MetricsRegistry()
    h = registry.histogram("t", "test")
    values = [100, 1000, 1023, 1024, 2000, 5000]
    for v in values:
        h.observe(v)
    exact = sum(1 for v in values if v > 1023) / len(values)
    assert h.fraction_above(1023) == exact

"""The sharded trial orchestrator: specs, pool, cache, determinism.

The contract under test is the one ``repro report --jobs N`` relies on:

* a :class:`TrialSpec` is plain picklable data whose fingerprint is its
  identity (execution policy excluded);
* the pool merges results in spec order, so any worker count -- and both
  the ``fork`` and ``spawn`` start methods -- produces rows and schedule
  digests byte-identical to a serial run;
* the content-addressed cache is keyed by spec fingerprint *and* source
  digest: editing scheduler code invalidates every entry, editing
  documentation invalidates nothing, and corrupt entries degrade to
  misses instead of errors.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import random

import pytest

from repro.perf.orchestrator import (
    ResultCache,
    TrialResult,
    TrialSpec,
    build_features,
    feature_tokens,
    resolve_jobs,
    resolve_kind,
    resolve_start_method,
    run_trials,
    source_tree_digest,
)

#: This module doubles as the trial-kind target for pool tests: specs
#: reference it by name, and spawned workers re-import it from sys.path.
FIXTURE_KIND = "tests.test_orchestrator:fixture_trial"


def fixture_trial(spec: TrialSpec) -> TrialResult:
    """A tiny deterministic trial: output depends only on the spec."""
    rng = random.Random(spec.seed)
    value = sum(rng.randrange(1000) for _ in range(32))
    row = {
        "scenario": spec.scenario,
        "value": value,
        "level": spec.param("level", "0"),
    }
    digest = hashlib.sha256(
        json.dumps(row, sort_keys=True).encode()
    ).hexdigest()
    return TrialResult(
        row=row, schedule_digest=digest, stats={"draws": 32}
    )


def fixture_specs(n: int = 6, cache: bool = True):
    return [
        TrialSpec(
            kind=FIXTURE_KIND,
            scenario=f"fixture-{i}",
            seed=100 + i,
            params=(("level", str(i % 3)),),
            cache=cache,
        )
        for i in range(n)
    ]


# ----------------------------------------------------------------- spec layer


def test_spec_fingerprint_is_identity():
    a = TrialSpec(kind=FIXTURE_KIND, scenario="s", seed=1)
    same = TrialSpec(kind=FIXTURE_KIND, scenario="s", seed=1)
    assert a.fingerprint() == same.fingerprint()
    assert a.fingerprint() != TrialSpec(
        kind=FIXTURE_KIND, scenario="s", seed=2
    ).fingerprint()
    assert a.fingerprint() != TrialSpec(
        kind=FIXTURE_KIND, scenario="s", seed=1, params=(("k", "v"),)
    ).fingerprint()
    assert a.fingerprint() != TrialSpec(
        kind=FIXTURE_KIND, scenario="s", seed=1, features=("no_autogroup",)
    ).fingerprint()


def test_spec_cache_flag_is_policy_not_identity():
    cached = TrialSpec(kind=FIXTURE_KIND, scenario="s", seed=1, cache=True)
    uncached = TrialSpec(kind=FIXTURE_KIND, scenario="s", seed=1, cache=False)
    assert cached.fingerprint() == uncached.fingerprint()
    assert "cache" not in cached.canonical()


def test_spec_param_lookup_and_label():
    spec = TrialSpec(
        kind=FIXTURE_KIND,
        scenario="make",
        seed=7,
        params=(("app", "lu"), ("trace", "1")),
    )
    assert spec.param("app") == "lu"
    assert spec.param("absent", "dflt") == "dflt"
    assert spec.kind_name == "fixture_trial"
    assert spec.label == "fixture_trial:make"


def test_resolve_kind_errors():
    assert resolve_kind(FIXTURE_KIND) is fixture_trial
    with pytest.raises(ValueError, match="module:function"):
        resolve_kind("no-colon")
    with pytest.raises(ValueError, match="no trial function"):
        resolve_kind("tests.test_orchestrator:does_not_exist")


def test_feature_tokens_round_trip():
    tokens = feature_tokens("group_imbalance", autogroup=False)
    features = build_features(tokens)
    assert features.fix_group_imbalance
    assert not features.fix_group_construction
    assert not features.autogroup_enabled
    with pytest.raises(ValueError, match="unknown feature token"):
        build_features(("warp_drive",))


# ----------------------------------------------------------------- pool layer


def test_resolve_jobs(monkeypatch):
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    assert resolve_jobs(None) == 1  # default stays serial
    assert resolve_jobs(3) == 3
    assert resolve_jobs(0) >= 1  # one per core
    monkeypatch.setenv("REPRO_JOBS", "4")
    assert resolve_jobs(None) == 4
    assert resolve_jobs(2) == 2  # explicit beats the environment
    monkeypatch.setenv("REPRO_JOBS", "many")
    with pytest.raises(ValueError, match="REPRO_JOBS must be an integer"):
        resolve_jobs(None)
    with pytest.raises(ValueError, match="jobs must be >= 0"):
        resolve_jobs(-1)


def test_resolve_start_method(monkeypatch):
    monkeypatch.delenv("REPRO_START_METHOD", raising=False)
    assert resolve_start_method(None) is None
    available = multiprocessing.get_all_start_methods()
    assert resolve_start_method(available[0]) == available[0]
    with pytest.raises(ValueError, match="not available"):
        resolve_start_method("teleport")


def test_run_trials_serial():
    specs = fixture_specs()
    run = run_trials(specs, jobs=1)
    assert [o.spec for o in run.outcomes] == specs
    assert all(o.worker == "serial" and not o.cached for o in run.outcomes)
    assert run.stats.jobs == 1
    assert run.stats.executed == len(specs)
    assert run.stats.cache_hits == 0


@pytest.mark.parametrize(
    "start_method",
    [m for m in ("fork", "spawn")
     if m in multiprocessing.get_all_start_methods()],
)
def test_parallel_matches_serial(start_method):
    """Rows and digests are identical for -j1 and -j3, fork and spawn."""
    specs = fixture_specs()
    serial = run_trials(specs, jobs=1)
    parallel = run_trials(specs, jobs=3, start_method=start_method)
    assert parallel.rows() == serial.rows()
    assert parallel.digests() == serial.digests()
    workers = {o.worker for o in parallel.outcomes}
    assert "serial" not in workers  # really ran through the pool
    assert parallel.stats.jobs == 3


def test_progress_callback_runs_in_spec_order():
    seen = []
    run_trials(
        fixture_specs(4),
        jobs=1,
        progress=lambda done, total, outcome: seen.append(
            (done, total, outcome.spec.scenario)
        ),
    )
    assert [s[0] for s in seen] == [1, 2, 3, 4]
    assert all(s[1] == 4 for s in seen)


# ---------------------------------------------------------------- cache layer


def _cache(tmp_path, digest="0" * 64):
    return ResultCache(root=tmp_path / "cache", code_digest=digest)


def test_cache_round_trip(tmp_path):
    cache = _cache(tmp_path)
    specs = fixture_specs()
    cold = run_trials(specs, jobs=1, cache=cache)
    assert cache.entry_count() == len(specs)
    assert all(not o.cached for o in cold.outcomes)

    warm_cache = _cache(tmp_path)
    warm = run_trials(specs, jobs=1, cache=warm_cache)
    assert all(o.cached and o.worker == "cache" for o in warm.outcomes)
    assert warm.rows() == cold.rows()
    assert warm.digests() == cold.digests()
    assert warm_cache.hits == len(specs)
    assert warm.stats.cache_hits == len(specs)
    assert warm.stats.executed == 0


def test_cache_respects_spec_policy(tmp_path):
    cache = _cache(tmp_path)
    specs = fixture_specs(cache=False)
    run_trials(specs, jobs=1, cache=cache)
    assert cache.entry_count() == 0  # opt-out specs never cached
    rerun = run_trials(specs, jobs=1, cache=_cache(tmp_path))
    assert all(not o.cached for o in rerun.outcomes)


def test_cache_code_digest_invalidates(tmp_path):
    spec = fixture_specs(1)[0]
    before = _cache(tmp_path, digest="a" * 64)
    run_trials([spec], jobs=1, cache=before)
    assert before.get(spec) is not None

    # A different source digest addresses a different shard: miss.
    after = _cache(tmp_path, digest="b" * 64)
    assert after.get(spec) is None
    assert after.misses == 1


def test_cache_corrupt_entry_is_a_miss(tmp_path):
    cache = _cache(tmp_path)
    spec = fixture_specs(1)[0]
    run_trials([spec], jobs=1, cache=cache)
    cache.entry_path(spec).write_text("{torn write", encoding="utf-8")
    fresh = _cache(tmp_path)
    assert fresh.get(spec) is None  # no exception, just re-executed
    rerun = run_trials([spec], jobs=1, cache=_cache(tmp_path))
    assert not rerun.outcomes[0].cached


def test_source_tree_digest_tracks_code_not_docs(tmp_path):
    pkg = tmp_path / "sched"
    pkg.mkdir()
    (pkg / "core.py").write_text("WEIGHT = 1024\n")
    (pkg / "README.md").write_text("scheduler notes\n")
    base = source_tree_digest(root=tmp_path, packages=("sched",))
    assert base == source_tree_digest(root=tmp_path, packages=("sched",))

    # Doc edits leave the digest (and so every cache entry) alone.
    (pkg / "README.md").write_text("rewritten notes\n")
    assert source_tree_digest(root=tmp_path, packages=("sched",)) == base

    # Code edits change it: every cached trial silently misses.
    (pkg / "core.py").write_text("WEIGHT = 1048\n")
    edited = source_tree_digest(root=tmp_path, packages=("sched",))
    assert edited != base

    # Packages outside the result-relevant set do not participate.
    other = tmp_path / "analysis"
    other.mkdir()
    (other / "lint.py").write_text("RULES = ()\n")
    assert source_tree_digest(root=tmp_path, packages=("sched",)) == edited


def test_utilization_summary(tmp_path):
    run = run_trials(fixture_specs(4), jobs=1, cache=_cache(tmp_path))
    stats = run.stats
    assert 0.0 <= stats.utilization <= 1.0
    payload = stats.to_json()
    assert payload["total"] == 4
    assert payload["executed"] == 4
    assert payload["cache_hits"] == 0
    assert "serial" in payload["workers"]
    assert "utilization" in stats.summary()

"""Acceptance fixture (clean half): seeded RNG + virtual clock.

The same helper as ``regression_wallclock.py``, written correctly: jitter
comes from a generator seeded by the caller and timestamps come from the
simulated ``now``.  The determinism sanitizer must stay silent here.
"""

import random


class WakeupJitter:
    def __init__(self, seed: int):
        self.rng = random.Random(seed)

    def stamp(self, event, now: int) -> int:
        event.when_us = now + self.rng.randrange(100)
        return event.when_us

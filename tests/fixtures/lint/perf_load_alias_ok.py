"""Fixture: aliases used legally -- updates and unrelated fields."""


def account_via_alias(task, now):
    tr = task.tracker
    # OK: advancing the average through an alias is still accounting.
    tr.update(now, was_running=True)
    return tr.peek(now, False)


def unrelated_name(metrics):
    util = metrics.util
    # OK: 'util' on a non-tracker object; no alias was bound from .tracker.
    return util


def alias_of_queue(cpu, now):
    rq = cpu.rq
    # OK: the cached accessor through an alias is exactly the approved read.
    return rq.load(now)

"""Fork-safe trial helpers (ok half).

Analyzed as ``repro.experiments.orchestrator_fork_ok``: read-only module
constants are fine, and anything mutable is built inside the trial
function, so forked workers share nothing.
"""

import random

#: Immutable spec table -- read-only module state is fork-safe.
SCENARIOS = ("make", "tpch")

#: Mapping that is only ever *read* after import: not a finding.
PAPER_NUMBERS = {"make": 13.0, "tpch": 22.6}

#: Same-named local below shadows this; the module copy is never mutated.
ROW_TEMPLATE = {}


def jitter_us(seed):
    # The generator is rebuilt from the spec seed inside the worker.
    rng = random.Random(seed)
    return rng.randrange(100)


def collect(labels):
    out = {}
    for label in labels:
        out[label] = PAPER_NUMBERS.get(label, 0.0)
    return out


def fill(value):
    # Local shadow: mutating it never touches the module-level template.
    ROW_TEMPLATE = {}
    ROW_TEMPLATE["value"] = value
    return ROW_TEMPLATE

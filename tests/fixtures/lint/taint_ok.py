"""Fixture: the sanitized twins -- seeded, ordered, constant flows."""

import random


class Tracepoint:
    def __init__(self, name):
        self.name = name

    def emit(self, **fields):
        return fields


def seeded_sample(seed):
    # OK: a seeded generator is reproducible, not a taint source.
    rng = random.Random(seed)
    return rng.random()


def emit_seeded(seed):
    trace = Tracepoint("fixture.latency")
    trace.emit(value=seeded_sample(seed))


def emit_sorted_members(members):
    # OK: sorted() is an order sanitizer -- set iteration order taint
    # is stripped before the emit sees the batch.
    trace = Tracepoint("fixture.members")
    trace.emit(batch=sorted(set(members)))


def record_digest(value):
    return value


def publish_constant():
    # OK: an untainted constant into a digest-named function.
    return record_digest(42)

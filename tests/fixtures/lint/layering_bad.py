"""Fixture: scheduler module reaching into sim and obs (3 findings).

Analyzed as ``repro.sched.layering_bad``.
"""

import repro.sim.engine  # noqa: F401  (layer-sched-sim)
from repro.obs.tracepoints import TRACEPOINTS  # noqa: F401  (layer-sched-obs)
from repro.sim.timebase import TICK_US  # noqa: F401  (layer-sched-sim)

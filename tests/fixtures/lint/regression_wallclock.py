"""Acceptance fixture (regression half): wall clock + global RNG.

Identical intent to ``regression_seeded.py``, but the timestamp now reads
the host wall clock and the jitter draws from the process-global
generator -- the exact seeded-vs-wall-clock regression the determinism
sanitizer exists to catch (one det-wallclock + one det-unseeded-random
finding).
"""

import random
import time


class WakeupJitter:
    def stamp(self, event, now: int) -> int:
        event.when_us = int(time.time() * 1e6) + random.randrange(100)
        return event.when_us

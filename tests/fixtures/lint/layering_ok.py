"""Fixture: scheduler module with allowed imports only.

Analyzed as ``repro.sched.layering_ok``.
"""

from repro.sched.timebase import TICK_US  # noqa: F401
from repro.topology.machine import MachineTopology  # noqa: F401
from repro.viz.events import Probe  # noqa: F401

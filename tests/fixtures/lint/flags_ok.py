"""Fixture: toggles read from SchedFeatures, the approved idiom.

Analyzed as ``repro.sched.flags_ok``.
"""

from repro.sched.features import SchedFeatures


def balance(sched, queue):
    if sched.features.fix_group_imbalance:
        return queue.min_load
    return queue.avg_load


def make_features() -> SchedFeatures:
    return SchedFeatures(fix_group_imbalance=True).with_fixes(
        "overload_on_wakeup"
    )


def tick(self, now):
    if self.features.fix_missing_domains:
        return now
    return 0

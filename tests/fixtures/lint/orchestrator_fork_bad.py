"""Trial helpers that break under a forked worker pool (bad half).

Analyzed as ``repro.experiments.orchestrator_fork_bad``: three pieces of
module-level mutable state, each a distinct fork hazard.
"""

import random

from repro.obs.metrics import MetricsRegistry

# Every forked worker inherits this generator in the *same* state, so
# "independent" parallel trials draw correlated samples.
_RNG = random.Random(1234)

# Import-time registry: counters bumped inside a worker die with it.
_METRICS = MetricsRegistry()

# Cross-trial memo table: per-worker copies diverge, so -j1 and -j4 runs
# see different cache histories.
_RESULTS = {}


def jitter_us():
    return _RNG.randrange(100)


def record(label, value):
    _RESULTS[label] = value
    _METRICS.counter("trials", "completed trials").inc()

"""Fixture: nondeterminism sources flowing into digest/trace sinks."""

import random
import time


class Tracepoint:
    def __init__(self, name):
        self.name = name

    def emit(self, **fields):
        return fields


def wall_sample():
    # A host wall-clock read: a nondeterminism source.
    return time.time()


def emit_wall():
    # BAD: wall-clock taint reaches a tracepoint emit via a helper's
    # return value (interprocedural return-taint).
    trace = Tracepoint("fixture.latency")
    trace.emit(at=wall_sample())


def record_digest(value):
    return value


def publish(value):
    # ``value`` flows into a digest-named function, so ``value`` is a
    # sink-reaching parameter of this function.
    return record_digest(value)


def emit_jitter():
    # BAD: unseeded RNG taint reaches the digest through publish()'s
    # parameter (interprocedural param-sink flagging at the call site
    # that introduces the taint).
    return publish(random.random())

"""Fixture: writes to memoized-load inputs with missing counter bumps."""


class LoadEpoch:
    def __init__(self):
        self.value = 0

    def bump(self):
        self.value += 1


class RunQueue:
    def __init__(self):
        self._tree = []
        self._nr_running = 0
        self.mutations = 0
        self.load_epoch = LoadEpoch()
        self.idle_epoch = LoadEpoch()

    def sneaky_insert(self, item):
        # BAD x2: both writes reach cached readers with no bump at all.
        self._tree.append(item)
        self._nr_running += 1

    def half_bumped(self, item):
        # BAD: bumps the private counter but never the shared load epoch.
        self._tree.append(item)
        self.mutations += 1

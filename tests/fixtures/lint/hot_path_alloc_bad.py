"""Fixture: a hot root declared amortized with per-call allocation.

``RunQueue.load`` resolves the ``runqueue-load`` hot root, whose shipped
declaration is ``amortized``: allocation is allowed only behind the memo
guard.  Here the miss-path list is built *before* the hit return, so it
runs on every call -- the certification breach the rule must flag.  The
cost stays O(1)-shaped so only ``hot-path-alloc`` fires.
"""


class RunQueue:
    def __init__(self):
        self._cached_load = None
        self._weight_a = 1
        self._weight_b = 2

    def load(self, now):
        # BAD: per-call allocation ahead of the memo guard.
        box = [self._weight_a, self._weight_b]
        if self._cached_load is not None:
            return self._cached_load
        self._cached_load = box[0] + box[1]
        return self._cached_load

"""Fixture: epoch bumps in a vec-wired class missing mirror pairing."""


class Epoch:
    def __init__(self):
        self.value = 0

    def bump(self):
        self.value += 1


class WiredQueue:
    """Holds a ``self.vec`` mirror reference, so every bump must pair."""

    def __init__(self):
        self.cpu_id = 0
        self.mutations = 0
        self.idle_epoch = Epoch()
        self.vec = None

    def touch(self):
        # BAD: bumps the mutation counter but never notifies the mirror.
        self.mutations += 1

    def go_idle(self):
        # BAD: idle transition without mark_idle_change/on_topology_change.
        self.idle_epoch.bump()

    def touch_paired(self):
        # OK: the bump is paired with the mirror notification.
        self.mutations += 1
        if self.vec is not None:
            self.vec.mark_dirty(self.cpu_id)

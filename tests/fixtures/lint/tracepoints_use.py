"""Fixture: tracepoint producers -- one orphan, one dynamic name.

Analyzed as ``repro.sim.tracepoints_use``.
"""

_TP_USED = TRACEPOINTS.tracepoint("fix.used")  # noqa: F821
_TP_ORPHAN = TRACEPOINTS.tracepoint("fix.orphan")  # noqa: F821  (undeclared)


def open_span(registry, now, name):
    span("fix.spanned", now)  # noqa: F821
    return registry.tracepoint(name)  # dynamic name (tp-dynamic-name)

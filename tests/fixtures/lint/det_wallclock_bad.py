"""Fixture: host wall-clock reads in a simulation hot path (3 findings)."""

import time
from datetime import datetime
from time import perf_counter


def stamp_event(event):
    event.wall_us = int(time.time() * 1e6)
    event.label = datetime.now().isoformat()
    return perf_counter

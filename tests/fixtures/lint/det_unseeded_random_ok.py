"""Fixture: all randomness flows from an explicitly seeded generator."""

import random


class Workload:
    def __init__(self, seed: int):
        self.rng = random.Random(seed)

    def jitter_us(self) -> int:
        return int(self.rng.random() * 100)

"""Fixture: the approved write disciplines for memoized-load inputs."""


class LoadEpoch:
    def __init__(self):
        self.value = 0

    def bump(self):
        self.value += 1


class RunQueue:
    def __init__(self):
        # OK: constructor self-initialization needs no bump (nothing can
        # hold a stale cache of an object mid-__init__).
        self._tree = []
        self._nr_running = 0
        self.curr = None
        self.mutations = 0
        self.load_epoch = LoadEpoch()
        self.idle_epoch = LoadEpoch()

    def enqueue(self, item):
        # OK: every write is followed by its counters; the idle-epoch
        # bump being conditional is fine (only transitions matter).
        self._tree.append(item)
        self._nr_running += 1
        self.mutations += 1
        if self._nr_running == 1:
            self.idle_epoch.bump()
        self.load_epoch.bump()

    def _raw_insert(self, item):
        # OK: bump-free helper, covered because its only caller bumps
        # every required counter after the call site.
        self._tree.append(item)
        self._nr_running += 1

    def covered_insert(self, item):
        self._raw_insert(item)
        self.mutations += 1
        self.idle_epoch.bump()
        self.load_epoch.bump()

    def rotate(self, item):
        # Provably cache-preserving by design; opted out explicitly.
        self._tree.append(item)  # repro: noqa[coherence-unbumped-write]

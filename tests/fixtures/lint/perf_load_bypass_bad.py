"""Fixture: raw load-field reads that bypass the cached accessors."""


def stale_util(task):
    # BAD: reads the utilization frozen at the last update.
    return task.tracker.util * task.weight


def stale_timestamp(task, now):
    # BAD: age computed from the raw tracker timestamp.
    return now - task.tracker.last_update_us


def poke_cache(rq):
    # BAD: memo cells are private to repro.sched.runqueue.
    return rq._cached_load if rq._cached_load_now >= 0 else 0.0

"""Fixture: load-field bypasses laundered through a local alias."""


def stale_via_alias(task):
    tr = task.tracker
    # BAD: same frozen field as task.tracker.util, one hop removed.
    return tr.util * task.weight


def stale_timestamp_via_alias(cpu, now):
    rq = cpu.rq
    # BAD: the chain head is an alias but the read is still .tracker.util.
    busiest = rq.tracker.util
    t = rq.curr.tracker
    # BAD: alias bound from an attribute chain.
    return now - t.last_update_us + busiest


def stale_walrus(task):
    # BAD: a walrus-bound alias is an alias too.
    return (tr := task.tracker) and tr.util

"""Fixture: order-sensitive iteration over set-typed values (4 findings)."""

from typing import Set


class PendingWork:
    def __init__(self):
        self.pending_cpus: Set[int] = set()
        self.waiters: Set[str] = set()

    def drain(self):
        for cpu_id in self.pending_cpus:  # for-loop over a set attribute
            dispatch(cpu_id)
        return list(self.waiters)  # list() preserves set order

    def snapshot(self, extra: Set[int]):
        order = [c for c in extra]  # comprehension over a set parameter
        for name in {"a", "b", "c"}:  # for-loop over a set display
            order.append(name)
        return order


def dispatch(cpu_id):
    return cpu_id

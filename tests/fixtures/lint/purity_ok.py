"""Fixture: a fast-path hot closure whose writes stay self-confined."""


class RunQueue:
    def __init__(self):
        self._tasks = []
        self._cached_load = None
        self.mutations = 0

    def load(self):
        # OK: the memo write is self-confined (bounded), not escaping.
        if self._cached_load is None:
            self._cached_load = _tally(self._tasks)
        return self._cached_load

    def push(self, task):
        # Outside the hot closure; the memo invalidation + bump idiom
        # is the coherence rule's business, not purity's.
        self._tasks.append(task)
        self._cached_load = None
        self.mutations += 1


def _tally(tasks):
    total = 0
    for task in tasks:
        total += 1
    return total

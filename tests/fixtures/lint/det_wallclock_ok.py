"""Fixture: timestamps come from the event loop's virtual clock."""


def stamp_event(event, now: int) -> None:
    event.when_us = now

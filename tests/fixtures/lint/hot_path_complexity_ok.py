"""Fixture twin: the hot root stays within its committed O(1) bound."""


class RunQueue:
    def __init__(self):
        self._cached_load = 0

    def load(self, now):
        return self._cached_load + 1

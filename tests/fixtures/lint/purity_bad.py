"""Fixture: a fast-path hot closure with an escaping helper."""

_SAMPLES = []


class RunQueue:
    def __init__(self):
        self._tasks = []
        self._cached_load = None

    def load(self):
        # The runqueue-load hot root: its closure reaches _tally below.
        if self._cached_load is None:
            self._cached_load = _tally(self._tasks)
        return self._cached_load


def _tally(tasks):
    total = 0
    for task in tasks:
        total += 1
    # BAD: records into a module-level list -- an escaping effect the
    # vectorized rewrite cannot batch or reorder through.
    _SAMPLES.append(total)
    return total

"""Fixture: draws from the process-global random generator (2 findings)."""

import random
from random import choice

JITTER_US = int(random.random() * 100)


def pick_cpu(cpus):
    return choice(sorted(cpus))

"""Fixture twin: every bump in a vec-wired class pairs with the mirror."""


class Epoch:
    def __init__(self):
        self.value = 0

    def bump(self):
        self.value += 1


class WiredQueue:
    def __init__(self):
        self.cpu_id = 0
        self.mutations = 0
        self.idle_epoch = Epoch()
        self.vec = None

    def touch(self):
        self.mutations += 1
        if self.vec is not None:
            self.vec.mark_dirty(self.cpu_id)

    def go_idle(self):
        self.idle_epoch.bump()
        if self.vec is not None:
            self.vec.mark_idle_change(self.cpu_id)

    def reconfigure(self):
        # Topology-level invalidation also satisfies the idle pairing.
        self.idle_epoch.bump()
        if self.vec is not None:
            self.vec.on_topology_change()


class UnwiredPass:
    """No ``self.vec`` anywhere: bumps need no mirror pairing."""

    def __init__(self):
        self.mutations = 0

    def touch(self):
        self.mutations += 1

"""Fixture: a hot root whose cost grew beyond its committed baseline.

The fixture baseline (``cost_fixture_baseline.json``) commits
``runqueue-load`` to O(1) in both the worst and the steady case; this
tree's version scans a collection on every call -- including the hit
path -- so both expressions grow a linear term the baseline does not
dominate.
"""


class RunQueue:
    def __init__(self):
        self._items = [1, 2, 3]
        self._cached_load = 0

    def load(self, now):
        # BAD: an O(n) scan sneaked into the committed O(1) path.
        total = 0
        for item in self._items:
            total += item
        return total + self._cached_load

"""Fixture: the approved ways to observe and advance load."""


def fresh_load(task, now):
    # OK: the accessor decays to now and applies the cgroup divisor.
    return task.load(now)


def account(task, now):
    # OK: advancing the average is accounting, not a bypassed read.
    task.tracker.update(now, was_running=True)
    return task.tracker.peek(now, False)


def queue_load(rq, now):
    # OK: the cached accessor owns the memo cells.
    return rq.load(now)

"""Fixture: set state consumed only through order-free operations."""

from typing import Set


class PendingWork:
    def __init__(self):
        self.pending_cpus: Set[int] = set()
        self.waiters: Set[str] = set()

    def drain(self):
        for cpu_id in sorted(self.pending_cpus):
            dispatch(cpu_id)
        return sorted(self.waiters)

    def totals(self, extra: Set[int]):
        biggest = max(extra) if extra else 0
        return sum(c for c in extra), len(self.waiters), biggest

    def merged(self, extra: Set[int]) -> Set[int]:
        return frozenset(c for c in extra if c >= 0)


def dispatch(cpu_id):
    return cpu_id

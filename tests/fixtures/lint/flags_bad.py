"""Fixture: ad-hoc buggy/fixed toggles in scheduler code (5 findings).

Analyzed as ``repro.sched.flags_bad``.
"""


def balance(queue, buggy: bool = True):  # toggle parameter
    fix_group_imbalance = False  # literal toggle assignment
    if queue.fix_overload_on_wakeup:  # flag read off a non-features object
        return rebuild(fix_missing_domains=True)  # flag keyword to a helper
    return fix_group_imbalance


def describe(variant_name):
    return variant_name == "buggy"  # variant string comparison


def rebuild(**kwargs):
    return kwargs

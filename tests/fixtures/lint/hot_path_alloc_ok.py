"""Fixture twin: the hot root allocates only behind its memo guard."""


class RunQueue:
    def __init__(self):
        self._cached_load = None
        self._weight_a = 1
        self._weight_b = 2

    def load(self, now):
        if self._cached_load is not None:
            return self._cached_load
        # OK: the miss path may allocate; the steady state is the hit.
        box = [self._weight_a, self._weight_b]
        self._cached_load = box[0] + box[1]
        return self._cached_load

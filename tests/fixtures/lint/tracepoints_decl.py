"""Fixture: a tracepoint declaration registry with one dead entry.

Analyzed as ``repro.obs.tracepoints`` so the consistency rule treats it
as the authoritative declaration module.
"""

from typing import Dict

TRACEPOINT_NAMES: Dict[str, str] = {
    "fix.used": "a declared and emitted event",
    "fix.spanned": "a declared event emitted via span()",
    "fix.dead": "a declared event nothing emits (tp-dead-declaration)",
}

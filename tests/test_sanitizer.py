"""Runtime coherence-sanitizer tests: clean soaks and seeded drift.

The sanitizer (``SchedFeatures.sanitize_coherence``) is the dynamic half
of the fast-path coherence contract: every memo hit recomputes the value
from scratch and raises :class:`CoherenceError` naming the divergent
field.  These tests prove both directions -- real scenarios soak clean,
and each seeded un-bumped mutation (the exact bug class the static
``coherence-unbumped-write`` rule flags) trips at the next hit.
"""

import pytest

from repro.experiments.scenarios import build_bug_scenario
from repro.sched.balance import BalancePass
from repro.sched.features import SchedFeatures
from repro.sched.sanitizer import FACTS, CoherenceError

ALL_BUGS = (
    "group-imbalance",
    "group-construction",
    "overload-on-wakeup",
    "missing-domains",
)

SOAK_US = 100_000  # 0.1 simulated seconds per scenario keeps CI quick


def sanitized(features: SchedFeatures) -> SchedFeatures:
    return features.with_sanitizer()


def build(bug, variant="buggy"):
    return build_bug_scenario(bug, variant, features_transform=sanitized)


# ------------------------------------------------------------- feature flag


def test_with_sanitizer_flag():
    f = SchedFeatures().with_fastpath(False).with_sanitizer()
    assert f.sanitize_coherence
    # Sanitizing checks memo hits, so it forces the fast paths on.
    assert f.perf_load_cache and f.perf_balance_stats
    off = f.with_sanitizer(False)
    assert not off.sanitize_coherence
    assert not SchedFeatures().sanitize_coherence


def test_facts_cover_every_accessor():
    assert set(FACTS) == {
        "runqueue-load", "group-stats", "designated-balancer"
    }
    for deps in FACTS.values():
        assert deps  # an accessor with no dependencies caches a constant


# -------------------------------------------------------------- clean soaks


@pytest.mark.parametrize("bug", ALL_BUGS)
@pytest.mark.parametrize("variant", ["buggy", "fixed"])
def test_sanitizer_soak_clean(bug, variant):
    """The shipped tree's bump discipline survives a sanitized soak."""
    scenario = build(bug, variant)
    scenario.run(SOAK_US)  # raises CoherenceError on any drift
    assert scenario.system.now >= SOAK_US


def test_sanitizer_does_not_change_behavior():
    plain = build_bug_scenario("group-imbalance", "buggy")
    checked = build("group-imbalance", "buggy")
    plain.run(SOAK_US)
    checked.run(SOAK_US)
    assert (
        checked.system.scheduler.total_migrations
        == plain.system.scheduler.total_migrations
    )
    assert checked.system.now == plain.system.now


# ------------------------------------------------------------ seeded drift


def test_trips_on_unbumped_nr_running_write():
    scenario = build("group-imbalance")
    scenario.run(SOAK_US // 2)
    rq = scenario.system.scheduler.cpus[0].rq
    rq._nr_running += 1  # the mutation-without-bump bug class
    with pytest.raises(CoherenceError) as exc:
        scenario.run(SOAK_US // 2)
    assert exc.value.field == "_nr_running"
    assert exc.value.accessor == "runqueue-load"


def test_trips_on_divisor_staleness():
    """A direct CGroup mutation (bypassing the manager's epoch bumps)
    leaves cached queue loads stale; the next same-timestamp hit trips."""
    scenario = build("group-imbalance")
    scenario.run(SOAK_US // 2)
    sched = scenario.system.scheduler
    now = scenario.system.now
    rq = task = None
    for cpu in sched.cpus:
        for t in cpu.rq.all_tasks():
            if t.cgroup is not None and t.cgroup.nr_threads > 2:
                rq, task = cpu.rq, t
                break
        if rq is not None:
            break
    assert rq is not None, "scenario should have a populated autogroup"
    rq.load(now)  # prime the memo at this timestamp
    task.cgroup.discard(task)  # divisor shrinks; no epoch bump
    with pytest.raises(CoherenceError) as exc:
        rq.load(now)  # hit: key unchanged, value stale
    assert exc.value.accessor == "runqueue-load"
    assert exc.value.field == "load"


def test_trips_on_unbumped_hotplug():
    """Flipping ``Cpu.online`` without the idle-epoch bump leaves the
    designated-balancer memo electing an offline CPU."""
    scenario = build("group-imbalance")
    scenario.run(SOAK_US // 2)
    sched = scenario.system.scheduler
    bpass = BalancePass(sched, scenario.system.now)
    domains = sched.domain_builder.domains_of(0)
    group = None
    for domain in reversed(domains):
        local = domain.local_group(0)
        if len(local.sorted_balance_mask()) > 1:
            group = local
            break
    assert group is not None, "need a multi-CPU balance mask"
    winner = bpass.designated_for(group)
    assert winner >= 0
    sched.cpus[winner].online = False  # no sched.set_cpu_online, no bump
    with pytest.raises(CoherenceError) as exc:
        bpass.designated_for(group)  # memo hit cross-checks the election
    assert exc.value.accessor == "designated-balancer"
    sched.cpus[winner].online = True


def test_trips_on_group_stats_drift():
    scenario = build("group-imbalance")
    scenario.run(SOAK_US // 2)
    sched = scenario.system.scheduler
    bpass = BalancePass(sched, scenario.system.now)
    domains = sched.domain_builder.domains_of(0)
    group = domains[-1].local_group(0)
    bpass.group_stats(group)  # prime the fold memo
    victim = sched.cpus[group.sorted_cpus()[0]].rq
    victim._nr_running += 1  # un-bumped: signature and epoch both stale
    with pytest.raises(CoherenceError):
        bpass.group_stats(group)
    victim._nr_running -= 1

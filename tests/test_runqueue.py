"""Tests for the per-CPU runqueue."""

import pytest

from repro.sched.runqueue import RunQueue
from repro.sched.task import Task, TaskState
from repro.sim.timebase import SCHED_LATENCY_US
from repro.viz.events import NrRunningEvent, TraceProbe


def make_task(name="t", vruntime=0):
    task = Task(name)
    task.vruntime = vruntime
    return task


def test_empty_queue():
    rq = RunQueue(0)
    assert rq.nr_running == 0
    assert rq.nr_queued == 0
    assert rq.is_idle()
    assert rq.pick_next() is None
    assert rq.leftmost_vruntime() is None


def test_enqueue_orders_by_vruntime():
    rq = RunQueue(0)
    late = make_task("late", vruntime=100)
    early = make_task("early", vruntime=10)
    rq.enqueue(late, now=0)
    rq.enqueue(early, now=0)
    assert rq.pick_next() is early
    assert rq.nr_running == 2
    assert rq.leftmost_vruntime() == 10


def test_equal_vruntime_ties_broken_by_tid():
    rq = RunQueue(0)
    a = make_task("a", vruntime=5)
    b = make_task("b", vruntime=5)
    rq.enqueue(a, 0)
    rq.enqueue(b, 0)
    assert rq.pick_next() is a  # lower tid


def test_enqueue_sets_task_fields():
    rq = RunQueue(3)
    task = make_task()
    rq.enqueue(task, now=50)
    assert task.state is TaskState.RUNNABLE
    assert task.cpu == 3
    assert task.stats.last_enqueue_us == 50


def test_enqueue_running_task_rejected():
    rq = RunQueue(0)
    task = make_task()
    task.state = TaskState.RUNNING
    with pytest.raises(ValueError):
        rq.enqueue(task, 0)


def test_wakeup_enqueue_gets_sleeper_bonus():
    rq = RunQueue(0)
    rq.min_vruntime = 100_000
    sleeper = make_task("s", vruntime=0)
    sleeper.state = TaskState.SLEEPING
    rq.enqueue(sleeper, now=0, wakeup=True)
    assert sleeper.vruntime == 100_000 - SCHED_LATENCY_US // 2


def test_wakeup_enqueue_does_not_rewind_vruntime():
    rq = RunQueue(0)
    rq.min_vruntime = 100
    runner = make_task("r", vruntime=500_000)
    runner.state = TaskState.SLEEPING
    rq.enqueue(runner, now=0, wakeup=True)
    assert runner.vruntime == 500_000  # keeps its larger vruntime


def test_set_current_and_put_prev():
    rq = RunQueue(0)
    task = make_task()
    rq.enqueue(task, 0)
    rq.take(task, 0)
    rq.set_current(task, 0)
    assert task.state is TaskState.RUNNING
    assert task.prev_cpu == 0
    assert rq.nr_running == 1
    assert rq.nr_queued == 0
    rq.put_prev(task, 10)
    assert task.state is TaskState.RUNNABLE
    assert rq.nr_queued == 1
    assert rq.curr is None


def test_put_prev_wrong_task_rejected():
    rq = RunQueue(0)
    a, b = make_task("a"), make_task("b")
    rq.enqueue(a, 0)
    rq.take(a, 0)
    rq.set_current(a, 0)
    with pytest.raises(ValueError):
        rq.put_prev(b, 0)


def test_dequeue_and_take():
    rq = RunQueue(0)
    a = make_task("a", vruntime=1)
    b = make_task("b", vruntime=2)
    rq.enqueue(a, 0)
    rq.enqueue(b, 0)
    rq.dequeue(a, 0)
    assert rq.pick_next() is b
    assert rq.take(b, 0) is b
    assert rq.is_idle()


def test_requeue_after_vruntime_change():
    rq = RunQueue(0)
    a = make_task("a", vruntime=1)
    rq.enqueue(a, 0)
    rq.dequeue(a, 0)
    a.vruntime = 999
    rq.enqueue(a, 0)
    assert rq.leftmost_vruntime() == 999


def test_min_vruntime_monotonic():
    rq = RunQueue(0)
    a = make_task("a", vruntime=50)
    rq.enqueue(a, 0)
    rq.update_min_vruntime()
    assert rq.min_vruntime == 50
    rq.dequeue(a, 0)
    a.vruntime = 10  # lower than floor
    rq.update_min_vruntime()
    assert rq.min_vruntime == 50  # never goes backward


def test_load_sums_all_tasks():
    rq = RunQueue(0)
    a, b = make_task("a"), make_task("b")
    rq.enqueue(a, 0)
    rq.enqueue(b, 0)
    assert rq.load(0) == pytest.approx(2048)
    assert rq.total_weight() == 2048


def test_all_tasks_includes_current():
    rq = RunQueue(0)
    a, b = make_task("a"), make_task("b")
    rq.enqueue(a, 0)
    rq.enqueue(b, 0)
    rq.take(a, 0)
    rq.set_current(a, 0)
    assert set(rq.all_tasks()) == {a, b}
    assert list(rq.queued_tasks()) == [b]


def test_probe_notified_on_changes():
    probe = TraceProbe(record_load=False)
    rq = RunQueue(7, probe)
    task = make_task()
    rq.enqueue(task, now=5)
    events = probe.buffer.of_type(NrRunningEvent)
    assert events
    assert events[-1] == NrRunningEvent(5, 7, 1)
    rq.take(task, now=6)
    events = probe.buffer.of_type(NrRunningEvent)
    assert events[-1] == NrRunningEvent(6, 7, 0)


def test_repr():
    rq = RunQueue(2)
    assert "cpu=2" in repr(rq)

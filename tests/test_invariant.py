"""Tests for the work-conserving invariant (Algorithm 2)."""

from repro.core.invariant import find_violations, has_violation, violation_pairs
from repro.sched.features import SchedFeatures
from repro.sched.scheduler import Scheduler
from repro.sched.task import Task
from repro.topology import single_node

FEATURES = SchedFeatures().without_autogroup()


def make_sched(cpus=4):
    return Scheduler(single_node(cpus), FEATURES)


def overload(sched, cpu_id, queued=1, allowed=None):
    """Put one running + N queued tasks on a CPU."""
    runner = Task(f"run{cpu_id}")
    sched.register_task(runner)
    sched.enqueue_task_on(runner, cpu_id, 0)
    sched.pick_next_task(cpu_id, 0)
    tasks = []
    for i in range(queued):
        t = Task(f"q{cpu_id}.{i}", allowed_cpus=allowed)
        sched.register_task(t)
        sched.enqueue_task_on(t, cpu_id, 0)
        tasks.append(t)
    sched.drain_pending()
    return tasks


def test_no_violation_when_all_idle():
    sched = make_sched()
    assert find_violations(sched, 0) == []
    assert not has_violation(sched, 0)


def test_no_violation_when_balanced():
    sched = make_sched(2)
    overload(sched, 0, queued=0)
    overload(sched, 1, queued=0)
    assert not has_violation(sched, 0)


def test_violation_idle_plus_overloaded():
    sched = make_sched(2)
    overload(sched, 0, queued=1)
    violations = find_violations(sched, 123)
    assert len(violations) == 1
    v = violations[0]
    assert v.idle_cpu == 1
    assert v.busy_cpu == 0
    assert v.busy_nr_running == 2
    assert v.time_us == 123
    assert len(v.stealable_tids) == 1
    assert has_violation(sched, 123)


def test_single_running_task_is_not_overload():
    sched = make_sched(2)
    overload(sched, 0, queued=0)
    assert not has_violation(sched, 0)


def test_affinity_blocks_violation():
    """A pinned waiting task does not violate the invariant."""
    sched = make_sched(2)
    overload(sched, 0, queued=1, allowed=frozenset({0}))
    assert find_violations(sched, 0) == []
    assert not has_violation(sched, 0)


def test_offline_cpu_not_a_violation_party():
    sched = make_sched(3)
    overload(sched, 0, queued=1)
    sched.set_cpu_online(1, False, 0)
    sched.set_cpu_online(2, False, 0)
    assert find_violations(sched, 0) == []


def test_multiple_pairs_reported():
    sched = make_sched(4)
    overload(sched, 0, queued=2)
    overload(sched, 1, queued=1)
    pairs = violation_pairs(find_violations(sched, 0))
    assert (2, 0) in pairs
    assert (3, 0) in pairs
    assert (2, 1) in pairs
    assert (3, 1) in pairs


def test_describe():
    sched = make_sched(2)
    overload(sched, 0, queued=1)
    text = find_violations(sched, 55)[0].describe()
    assert "cpu 1 idle" in text
    assert "t=55us" in text

"""Receiver-resolution edge cases of the call graph.

The effect engine and the taint fixpoint are only as sound as the call
graph underneath them, so the shapes that historically lose edges get
pinned here: calls inside lambdas (no FunctionInfo of their own -- they
must attribute to the enclosing def), ``super()`` dispatch (nearest
bare-name base, not the leaf override), property chains (each hop chased
through return annotations), and -- on the real tree -- the interned
``SchedGroup`` receivers the balance-pass memos key by ``id()``.
"""

import ast
from pathlib import Path

from repro.analysis.callgraph import CallGraph
from repro.analysis.core import iter_python_files, module_for_path
from repro.analysis.symbols import SymbolTable

REPO = Path(__file__).resolve().parents[1]

TOY = '''
class Base:
    def setup(self):
        self.ready = True

    def ping(self):
        return "base"


class Child(Base):
    def setup(self):
        super().setup()
        self.extra = 1

    def ping(self):
        return "child"


class Inner:
    def __init__(self):
        self.value = 0

    def read(self):
        return self.value

    @property
    def half(self) -> int:
        return self.value // 2


class Outer:
    def __init__(self):
        self._inner = Inner()

    @property
    def inner(self) -> "Inner":
        return self._inner

    @property
    def mirrored(self) -> int:
        return self.inner.half


def apply(fn, items):
    return [fn(i) for i in items]


def tally(outer: "Outer"):
    probe = lambda item: outer.inner.read()
    return apply(probe, [1, 2])
'''

MOD = "repro.sched.toy"


def toy_graph():
    files = [(MOD, "<toy>", ast.parse(TOY))]
    table = SymbolTable.build(files)
    return table, CallGraph.build(table, files)


def q(name):
    return f"{MOD}.{name}"


def callee_names(graph, qualname):
    return {s.callee for s in graph.callees(qualname)}


def test_super_resolves_to_nearest_base():
    _, graph = toy_graph()
    callees = callee_names(graph, q("Child.setup"))
    # super().setup() dispatches to Base.setup, NOT back to the override
    # (a self-edge here would turn every cooperative chain into a cycle).
    assert q("Base.setup") in callees
    assert q("Child.setup") not in callees


def test_super_does_not_leak_sibling_overrides():
    _, graph = toy_graph()
    # Child.setup never touches ping; the super() machinery must not
    # invent edges to other methods of the base.
    assert q("Base.ping") not in callee_names(graph, q("Child.setup"))


def test_chained_property_hops():
    _, graph = toy_graph()
    callees = callee_names(graph, q("Outer.mirrored"))
    # self.inner resolves as a property edge; the *chained* hop .half is
    # typed by inner's return annotation and resolves to Inner.half.
    assert q("Outer.inner") in callees
    assert q("Inner.half") in callees
    kinds = {
        (s.callee, s.kind) for s in graph.callees(q("Outer.mirrored"))
    }
    assert (q("Inner.half"), "property") in kinds


def test_lambda_body_attributes_to_enclosing_function():
    _, graph = toy_graph()
    callees = callee_names(graph, q("tally"))
    # The call inside the lambda has no FunctionInfo of its own; its
    # edges (the inner property hop and the typed method call) belong to
    # the enclosing def so effect closures do not lose them.
    assert q("Outer.inner") in callees
    assert q("Inner.read") in callees
    assert q("apply") in callees


def real_tree():
    root = REPO / "src" / "repro"
    files = []
    for path in iter_python_files([root]):
        files.append((
            module_for_path(path), str(path),
            ast.parse(path.read_text(encoding="utf-8")),
        ))
    table = SymbolTable.build(files)
    return table, CallGraph.build(table, files)


def test_interned_sched_group_receivers_resolve():
    table, graph = real_tree()
    # The balance-pass memos key interned SchedGroup objects by id() and
    # call through the group parameter; those receiver-typed edges are
    # what lets the purity rule walk from the memo accessors into
    # SchedGroup's sorted-view helpers.
    designated = callee_names(graph, "repro.sched.balance.BalancePass.designated_for")
    assert "repro.sched.domains.SchedGroup.sorted_balance_mask" in designated
    fold = callee_names(graph, "repro.sched.balance._fold_group_stats")
    assert "repro.sched.domains.SchedGroup.sorted_cpus" in fold

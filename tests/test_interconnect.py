"""Tests for the NUMA interconnect graph."""

import pytest

from repro.topology.interconnect import (
    Interconnect,
    hop_levels,
    reachability_table,
)
from repro.topology.presets import AMD_BULLDOZER_LINKS


def test_fully_connected_distances():
    ic = Interconnect.fully_connected(4)
    for a in range(4):
        for b in range(4):
            assert ic.distance(a, b) == (0 if a == b else 1)
    assert ic.diameter() == 1
    assert ic.is_symmetric_diameter()


def test_ring_distances():
    ic = Interconnect.ring(6)
    assert ic.distance(0, 3) == 3
    assert ic.distance(0, 1) == 1
    assert ic.distance(0, 5) == 1
    assert ic.diameter() == 3
    assert not ic.is_symmetric_diameter()


def test_neighbors_symmetry():
    ic = Interconnect(3, [(0, 1), (1, 2)])
    assert ic.neighbors(1) == frozenset({0, 2})
    assert 1 in ic.neighbors(0)
    assert 1 in ic.neighbors(2)


def test_self_link_rejected():
    with pytest.raises(ValueError):
        Interconnect(2, [(0, 0)])


def test_out_of_range_node_rejected():
    ic = Interconnect(2)
    with pytest.raises(ValueError):
        ic.add_link(0, 5)
    with pytest.raises(ValueError):
        ic.neighbors(2)
    with pytest.raises(ValueError):
        ic.nodes_within(-1, 1)


def test_nonpositive_nodes_rejected():
    with pytest.raises(ValueError):
        Interconnect(0)


def test_disconnected_graph_detected():
    ic = Interconnect(4, [(0, 1), (2, 3)])
    assert not ic.is_connected()
    with pytest.raises(ValueError):
        ic.validate()
    with pytest.raises(ValueError):
        ic.distance(0, 2)


def test_nodes_within():
    ic = Interconnect.ring(6)
    assert ic.nodes_within(0, 0) == frozenset({0})
    assert ic.nodes_within(0, 1) == frozenset({0, 1, 5})
    assert ic.nodes_within(0, 2) == frozenset({0, 1, 2, 4, 5})
    with pytest.raises(ValueError):
        ic.nodes_within(0, -1)


def test_nodes_within_negative_hops_rejected():
    ic = Interconnect.fully_connected(2)
    with pytest.raises(ValueError):
        ic.nodes_within(0, -2)


def test_hop_levels():
    assert list(hop_levels(Interconnect.fully_connected(4))) == [1]
    assert list(hop_levels(Interconnect.ring(6))) == [1, 2, 3]
    assert list(hop_levels(Interconnect(1))) == []


def test_links_listing():
    ic = Interconnect(3, [(2, 1), (0, 1)])
    assert ic.links() == [(0, 1), (1, 2)]


def test_add_link_invalidates_distance_cache():
    ic = Interconnect(3, [(0, 1)])
    assert ic.distance(0, 1) == 1
    ic.add_link(1, 2)
    assert ic.distance(0, 2) == 2


def test_reachability_table():
    ic = Interconnect.ring(4)  # levels 1, 2
    table = reachability_table(ic)
    assert table[0][0] == frozenset({0, 1, 3})
    assert table[0][1] == frozenset({0, 1, 2, 3})


class TestBulldozerTopology:
    """The paper's published topology constraints (Section 3.2)."""

    def setup_method(self):
        self.ic = Interconnect(8, AMD_BULLDOZER_LINKS)

    def test_node0_one_hop_set(self):
        assert self.ic.neighbors(0) == frozenset({1, 2, 4, 6})

    def test_node3_one_hop_set(self):
        assert self.ic.neighbors(3) == frozenset({1, 2, 4, 5, 7})

    def test_nodes_1_and_2_are_two_hops_apart(self):
        assert self.ic.distance(1, 2) == 2

    def test_diameter_is_two(self):
        assert self.ic.diameter() == 2

    def test_connected(self):
        assert self.ic.is_connected()

    def test_asymmetric(self):
        assert not self.ic.is_symmetric_diameter()

    def test_every_node_within_two_hops(self):
        for node in range(8):
            assert self.ic.nodes_within(node, 2) == frozenset(range(8))


def test_repr_mentions_size():
    ic = Interconnect.fully_connected(3)
    assert "num_nodes=3" in repr(ic)

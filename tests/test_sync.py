"""Tests for the synchronization primitives (state machines + executor)."""

import pytest

from repro.sched.task import Task, TaskState
from repro.sim.system import System
from repro.sim.timebase import MS, SEC
from repro.topology import single_node
from repro.workloads.base import (
    BarrierWait,
    FlagAdvance,
    FlagWait,
    LockAcquire,
    LockRelease,
    Run,
    TaskSpec,
)
from repro.workloads.sync import Barrier, Channel, Mutex, SpinFlag, SpinLock


def running(name="t"):
    task = Task(name)
    task.state = TaskState.RUNNING
    return task


def runnable(name="t"):
    task = Task(name)
    task.state = TaskState.RUNNABLE
    return task


# ---------------------------------------------------------------------------
# pure state-machine behavior
# ---------------------------------------------------------------------------


class TestSpinLock:
    def test_uncontended_acquire(self):
        lock = SpinLock()
        t = running()
        assert lock.acquire(t)
        assert lock.holder is t
        assert lock.acquisitions == 1

    def test_contended_acquire_queues(self):
        lock = SpinLock()
        a, b = running("a"), running("b")
        lock.acquire(a)
        assert not lock.acquire(b)
        assert lock.is_waiting(b)
        assert lock.contended_acquisitions == 1

    def test_reacquire_while_held_rejected(self):
        lock = SpinLock()
        t = running()
        lock.acquire(t)
        with pytest.raises(RuntimeError):
            lock.acquire(t)

    def test_release_grants_to_running_waiter(self):
        lock = SpinLock()
        a, b = running("a"), running("b")
        lock.acquire(a)
        lock.acquire(b)
        granted = lock.release(a)
        assert granted is b
        assert lock.holder is b
        assert not lock.waiters

    def test_release_skips_preempted_waiters(self):
        lock = SpinLock()
        a = running("a")
        preempted = runnable("p")
        lock.acquire(a)
        lock.acquire(preempted)
        assert lock.release(a) is None
        assert lock.holder is None
        assert lock.is_waiting(preempted)

    def test_release_prefers_earliest_running_waiter(self):
        lock = SpinLock()
        a = running("a")
        first = runnable("first")  # arrived first but preempted
        second = running("second")
        lock.acquire(a)
        lock.acquire(first)
        lock.acquire(second)
        assert lock.release(a) is second
        assert lock.is_waiting(first)

    def test_release_by_non_holder_rejected(self):
        lock = SpinLock()
        lock.acquire(running("a"))
        with pytest.raises(RuntimeError):
            lock.release(running("b"))

    def test_try_steal(self):
        lock = SpinLock()
        a = running("a")
        p = runnable("p")
        lock.acquire(a)
        lock.acquire(p)
        lock.release(a)
        assert lock.try_steal(p)
        assert lock.holder is p
        assert not lock.try_steal(running("other"))


class TestMutex:
    def test_release_hands_off_fifo(self):
        lock = Mutex()
        a, b, c = running("a"), running("b"), running("c")
        lock.acquire(a)
        lock.acquire(b)
        lock.acquire(c)
        assert lock.release(a) is b
        assert lock.holder is b
        assert lock.release(b) is c

    def test_release_with_no_waiters_frees(self):
        lock = Mutex()
        a = running("a")
        lock.acquire(a)
        assert lock.release(a) is None
        assert lock.holder is None


class TestBarrier:
    def test_trips_on_last_arrival(self):
        bar = Barrier(3)
        a, b, c = running("a"), running("b"), running("c")
        assert bar.arrive(a) == (False, [])
        assert bar.arrive(b) == (False, [])
        passed, released = bar.arrive(c)
        assert passed
        assert released == [a, b]
        assert bar.generation == 1
        assert bar.completions == 1

    def test_reusable(self):
        bar = Barrier(2)
        a, b = running("a"), running("b")
        bar.arrive(a)
        bar.arrive(b)
        bar.arrive(a)
        passed, released = bar.arrive(b)
        assert passed and released == [a]
        assert bar.generation == 2

    def test_has_passed(self):
        bar = Barrier(2)
        gen = bar.generation
        bar.arrive(running("a"))
        assert not bar.has_passed(gen)
        bar.arrive(running("b"))
        assert bar.has_passed(gen)

    def test_double_arrival_rejected(self):
        bar = Barrier(3)
        a = running("a")
        bar.arrive(a)
        with pytest.raises(RuntimeError):
            bar.arrive(a)

    def test_single_party_always_passes(self):
        bar = Barrier(1)
        assert bar.arrive(running())[0]

    def test_validation(self):
        with pytest.raises(ValueError):
            Barrier(0)
        with pytest.raises(ValueError):
            Barrier(2, mode="bogus")


class TestChannel:
    def test_put_then_get(self):
        ch = Channel()
        assert ch.put() is None
        assert ch.tokens == 1
        assert ch.get(running())
        assert ch.tokens == 0

    def test_get_blocks_then_put_wakes(self):
        ch = Channel()
        t = running()
        assert not ch.get(t)
        woken = ch.put()
        assert woken is t
        assert ch.tokens == 0  # direct hand-off, no token left

    def test_fifo_waiters(self):
        ch = Channel()
        a, b = running("a"), running("b")
        ch.get(a)
        ch.get(b)
        assert ch.put() is a
        assert ch.put() is b


class TestSpinFlag:
    def test_satisfied_without_wait(self):
        flag = SpinFlag()
        flag.value = 5
        assert flag.wait(running(), 3)

    def test_wait_then_advance_releases(self):
        flag = SpinFlag()
        t = running()
        assert not flag.wait(t, 2)
        assert flag.advance() == []  # value 1 < 2
        assert flag.advance() == [t]
        assert not flag.waiters

    def test_advance_amount(self):
        flag = SpinFlag()
        t = running()
        flag.wait(t, 10)
        assert flag.advance(10) == [t]
        with pytest.raises(ValueError):
            flag.advance(0)

    def test_drop_waiter(self):
        flag = SpinFlag()
        t = running()
        flag.wait(t, 1)
        flag.drop_waiter(t)
        assert flag.advance() == []


# ---------------------------------------------------------------------------
# executor integration
# ---------------------------------------------------------------------------


def test_spinning_waiter_burns_cpu():
    """A spinlock waiter occupies its CPU and accrues spin time."""
    system = System(single_node(2), seed=1)
    lock = SpinLock()

    def holder():
        def program():
            yield LockAcquire(lock)
            yield Run(10 * MS)
            yield LockRelease(lock)
        return program()

    def waiter():
        def program():
            yield Run(1 * MS)  # let the holder take the lock first
            yield LockAcquire(lock)
            yield LockRelease(lock)
        return program()

    h = system.spawn(TaskSpec("holder", holder), on_cpu=0)
    w = system.spawn(TaskSpec("waiter", waiter), on_cpu=1)
    system.run_until_done([h, w], 1 * SEC)
    assert not w.alive
    # The waiter spun for roughly the holder's remaining critical section.
    assert w.stats.spin_time_us >= 8 * MS
    # Spinning kept the CPU busy the whole time.
    assert system.cpu(1).busy_time_us >= 9 * MS


def test_descheduled_holder_makes_waiters_spin_longer():
    """Oversubscription + spinlock = the paper's wasted-cycles effect."""
    system = System(single_node(1), seed=1)
    lock = SpinLock()

    def worker():
        def program():
            for _ in range(5):
                yield LockAcquire(lock)
                yield Run(2 * MS)
                yield LockRelease(lock)
        return program()

    tasks = [
        system.spawn(TaskSpec(f"w{i}", worker), on_cpu=0) for i in range(3)
    ]
    assert system.run_until_done(tasks, 5 * SEC)
    total_spin = sum(t.stats.spin_time_us for t in tasks)
    assert total_spin > 0


def test_blocking_mutex_sleeps_instead_of_spinning():
    system = System(single_node(2), seed=1)
    lock = Mutex()

    def holder():
        def program():
            yield LockAcquire(lock)
            yield Run(10 * MS)
            yield LockRelease(lock)
        return program()

    def waiter():
        def program():
            yield Run(1 * MS)
            yield LockAcquire(lock)
            yield LockRelease(lock)
        return program()

    h = system.spawn(TaskSpec("h", holder), on_cpu=0)
    w = system.spawn(TaskSpec("w", waiter), on_cpu=1)
    system.run_until_done([h, w], 1 * SEC)
    assert w.stats.spin_time_us == 0
    # CPU 1 went idle while the waiter was blocked.
    assert system.cpu(1).idle_time_us > 5 * MS


def test_spin_barrier_lockstep():
    system = System(single_node(4), seed=1)
    bar = Barrier(4, mode="spin")
    finished_iterations = []

    def worker(rank):
        def factory():
            def program():
                for it in range(3):
                    yield Run((rank + 1) * MS)  # deliberately skewed
                    yield BarrierWait(bar)
                finished_iterations.append(rank)
            return program()
        return factory

    tasks = [
        system.spawn(TaskSpec(f"b{i}", worker(i)), on_cpu=i)
        for i in range(4)
    ]
    assert system.run_until_done(tasks, 1 * SEC)
    assert bar.completions == 3
    assert sorted(finished_iterations) == [0, 1, 2, 3]
    # Fast ranks spun waiting for the slowest.
    assert tasks[0].stats.spin_time_us > tasks[3].stats.spin_time_us


def test_blocking_barrier_releases_all():
    system = System(single_node(2), seed=1)
    bar = Barrier(3, mode="block")

    def worker(rank):
        def factory():
            def program():
                yield Run((rank + 1) * MS)
                yield BarrierWait(bar)
                yield Run(1 * MS)
            return program()
        return factory

    tasks = [
        system.spawn(TaskSpec(f"b{i}", worker(i)), on_cpu=i % 2)
        for i in range(3)
    ]
    assert system.run_until_done(tasks, 1 * SEC)
    assert all(not t.alive for t in tasks)
    assert bar.completions == 1


def test_spinflag_pipeline_ordering():
    system = System(single_node(3), seed=1)
    flags = [SpinFlag(f"f{i}") for i in range(3)]
    order = []

    def stage(rank):
        def factory():
            def program():
                if rank > 0:
                    yield FlagWait(flags[rank - 1], 1)
                yield Run(1 * MS)
                order.append(rank)
                yield FlagAdvance(flags[rank])
            return program()
        return factory

    tasks = [
        system.spawn(TaskSpec(f"s{i}", stage(i)), on_cpu=i)
        for i in range(3)
    ]
    assert system.run_until_done(tasks, 1 * SEC)
    assert order == [0, 1, 2]

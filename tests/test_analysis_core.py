"""Framework tests for the offline checker: findings, scoping, walking."""

from pathlib import Path

from repro.analysis import (
    Analyzer,
    Finding,
    Rule,
    iter_python_files,
    module_for_path,
)

REPO = Path(__file__).resolve().parents[1]
SRC = REPO / "src"


class _EveryName(Rule):
    """Toy rule: one finding per Name node (for walker tests)."""

    rule_id = "test-every-name"
    scope = ("repro.sched",)

    def visit(self, ctx):
        import ast

        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Name):
                yield ctx.finding(self.rule_id, node, f"name {node.id}")


def test_fingerprint_ignores_line_numbers():
    a = Finding("r", "pkg/mod.py", 10, 4, "msg", snippet="x = y")
    b = Finding("r", "pkg/mod.py", 99, 0, "other msg", snippet="x = y")
    assert a.fingerprint() == b.fingerprint()


def test_fingerprint_depends_on_rule_path_and_snippet():
    base = Finding("r", "pkg/mod.py", 1, 0, "m", snippet="x = y")
    assert base.fingerprint() != Finding(
        "r2", "pkg/mod.py", 1, 0, "m", snippet="x = y"
    ).fingerprint()
    assert base.fingerprint() != Finding(
        "r", "pkg/other.py", 1, 0, "m", snippet="x = y"
    ).fingerprint()
    assert base.fingerprint() != Finding(
        "r", "pkg/mod.py", 1, 0, "m", snippet="x = z"
    ).fingerprint()


def test_finding_to_dict_schema():
    f = Finding("r", "p.py", 3, 1, "boom", snippet="code()")
    d = f.to_dict()
    assert set(d) == {
        "rule",
        "path",
        "line",
        "col",
        "message",
        "snippet",
        "severity",
        "suppressed",
        "fingerprint",
    }
    assert d["fingerprint"] == f.fingerprint()
    assert d["severity"] == "warning"
    assert d["suppressed"] is False


def test_module_for_path_climbs_packages():
    assert (
        module_for_path(SRC / "repro" / "sched" / "cgroup.py")
        == "repro.sched.cgroup"
    )
    assert module_for_path(SRC / "repro" / "__init__.py") == "repro"


def test_module_for_path_stray_file(tmp_path):
    stray = tmp_path / "loose.py"
    stray.write_text("x = 1\n")
    assert module_for_path(stray) == "loose"


def test_scope_matching():
    rule = _EveryName()
    assert rule.wants("repro.sched")
    assert rule.wants("repro.sched.cgroup")
    assert not rule.wants("repro.schedx")
    assert not rule.wants("repro.sim.engine")


def test_check_source_respects_scope():
    analyzer = Analyzer([_EveryName()])
    assert analyzer.check_source("x = 1", module="repro.sim.engine") == []
    hits = analyzer.check_source("x = y", module="repro.sched.fake")
    assert [f.rule_id for f in hits] == ["test-every-name"] * 2


def test_parse_error_becomes_finding(tmp_path):
    bad = tmp_path / "broken.py"
    bad.write_text("def oops(:\n")
    analyzer = Analyzer([_EveryName()])
    findings = analyzer.run([bad], modules={bad: "repro.sched.broken"})
    assert len(findings) == 1
    assert findings[0].rule_id == "parse-error"
    assert findings[0].line == 1


def test_iter_python_files_expands_and_sorts(tmp_path):
    (tmp_path / "b.py").write_text("")
    (tmp_path / "a.py").write_text("")
    sub = tmp_path / "sub"
    sub.mkdir()
    (sub / "c.py").write_text("")
    (tmp_path / "notes.txt").write_text("")
    files = list(iter_python_files([tmp_path, tmp_path / "a.py"]))
    assert [f.name for f in files] == ["a.py", "b.py", "c.py"]


def test_run_sorts_findings_by_location(tmp_path):
    f1 = tmp_path / "aa.py"
    f2 = tmp_path / "bb.py"
    f1.write_text("x = y\nz = w\n")
    f2.write_text("q = r\n")
    analyzer = Analyzer([_EveryName()])
    findings = analyzer.run(
        [tmp_path],
        modules={f1: "repro.sched.aa", f2: "repro.sched.bb"},
    )
    keys = [f.sort_key() for f in findings]
    assert keys == sorted(keys)
    assert {f.path.rsplit("/", 1)[-1] for f in findings} == {"aa.py", "bb.py"}

"""Tests for offline trace analysis and trace serialization."""

import pytest

from repro.core.offline import (
    find_trace_violations,
    load_trace,
    save_trace,
    violation_time_fraction,
)
from repro.viz.events import (
    BalanceEvent,
    ConsideredEvent,
    LifecycleEvent,
    LoadEvent,
    MigrationEvent,
    NrRunningEvent,
    TraceBuffer,
    WakeupEvent,
)


def trace_of(*events):
    buffer = TraceBuffer(1000)
    for e in events:
        buffer.append(e)
    return buffer


def test_no_events_no_violations():
    assert find_trace_violations(TraceBuffer(10), 4) == []


def test_simple_violation_interval():
    # cpu0 holds 2 threads from t=0 to t=500k while cpu1 stays at 0.
    trace = trace_of(
        NrRunningEvent(0, 0, 2),
        NrRunningEvent(0, 1, 0),
        NrRunningEvent(500_000, 0, 1),
    )
    violations = find_trace_violations(trace, 2, min_duration_us=100_000)
    assert len(violations) == 1
    v = violations[0]
    assert v.start_us == 0
    assert v.end_us == 500_000
    assert v.duration_us == 500_000
    assert v.idle_cpus == (1,)
    assert v.overloaded_cpus == (0,)
    assert "overloaded" in v.describe()


def test_short_violation_filtered():
    trace = trace_of(
        NrRunningEvent(0, 0, 2),
        NrRunningEvent(50_000, 0, 1),
    )
    assert find_trace_violations(trace, 2, min_duration_us=100_000) == []
    assert len(find_trace_violations(trace, 2, min_duration_us=10_000)) == 1


def test_violation_requires_both_conditions():
    # Overloaded but no idle core.
    trace = trace_of(
        NrRunningEvent(0, 0, 2),
        NrRunningEvent(0, 1, 1),
        NrRunningEvent(900_000, 0, 2),
    )
    assert find_trace_violations(trace, 2, min_duration_us=1000) == []


def test_interrupted_violation_splits_intervals():
    trace = trace_of(
        NrRunningEvent(0, 0, 2),        # violation starts (cpu1 idle)
        NrRunningEvent(200_000, 1, 1),  # cpu1 gets work: violation ends
        NrRunningEvent(300_000, 1, 0),  # violation resumes
        NrRunningEvent(600_000, 0, 0),  # ends
    )
    violations = find_trace_violations(trace, 2, min_duration_us=50_000)
    assert [(v.start_us, v.end_us) for v in violations] == [
        (0, 200_000),
        (300_000, 600_000),
    ]


def test_open_violation_closed_at_horizon():
    trace = trace_of(
        NrRunningEvent(0, 0, 2),
        NrRunningEvent(0, 1, 0),
    )
    violations = find_trace_violations(
        trace, 2, min_duration_us=100_000, end_us=1_000_000
    )
    assert violations[0].end_us == 1_000_000


def test_violation_time_fraction():
    trace = trace_of(
        NrRunningEvent(0, 0, 2),
        NrRunningEvent(500_000, 0, 1),
        NrRunningEvent(999_999, 0, 1),
    )
    frac = violation_time_fraction(trace, 2, span_us=1_000_000)
    assert frac == pytest.approx(0.5, abs=0.01)
    assert violation_time_fraction(trace, 2, span_us=0) == 0.0


def test_json_roundtrip(tmp_path):
    events = [
        NrRunningEvent(1, 0, 2),
        LoadEvent(2, 1, 512.5),
        ConsideredEvent(3, 0, "load_balance", frozenset({0, 1, 2})),
        MigrationEvent(4, 42, 0, 1, "balance:MC"),
        WakeupEvent(5, 42, 1, 0, True),
        LifecycleEvent(6, 42, "exit", 1),
        BalanceEvent(7, 0, "MC", 1.5, 3.5, "moved:1"),
        BalanceEvent(8, 0, "MC", 1.5, None, "balanced"),
    ]
    trace = trace_of(*events)
    path = str(tmp_path / "trace.jsonl")
    assert save_trace(trace, path) == len(events)
    loaded = load_trace(path)
    assert list(loaded) == events


def test_load_trace_skips_blank_lines(tmp_path):
    path = tmp_path / "trace.jsonl"
    save_trace(trace_of(NrRunningEvent(1, 0, 1)), str(path))
    path.write_text(path.read_text() + "\n\n")
    assert len(load_trace(str(path))) == 1


def test_roundtrip_then_analyze(tmp_path):
    trace = trace_of(
        NrRunningEvent(0, 0, 3),
        NrRunningEvent(400_000, 0, 1),
    )
    path = str(tmp_path / "t.jsonl")
    save_trace(trace, path)
    violations = find_trace_violations(load_trace(path), 2,
                                       min_duration_us=100_000)
    assert len(violations) == 1

"""End-to-end tests for ``repro lint``: exit codes, JSON schema, baseline."""

import json
from pathlib import Path

from repro.analysis import run_lint
from repro.analysis.runner import REPORT_VERSION

REPO = Path(__file__).resolve().parents[1]
SRC = REPO / "src"

#: Trips UnseededRandomRule, whose scope is the whole tree -- no module
#: override needed, so it exercises the real CLI path.
BAD_SOURCE = "import random\n\njitter = random.random()\n"
CLEAN_SOURCE = "import random\n\nrng = random.Random(7)\n"


def _capture():
    lines = []
    return lines, lines.append


def test_clean_tree_exits_zero(tmp_path):
    target = tmp_path / "ok.py"
    target.write_text(CLEAN_SOURCE)
    lines, out = _capture()
    assert run_lint(paths=[str(target)], out=out) == 0
    assert lines[-1] == "0 findings"


def test_findings_exit_nonzero(tmp_path):
    target = tmp_path / "bad.py"
    target.write_text(BAD_SOURCE)
    lines, out = _capture()
    assert run_lint(paths=[str(target)], out=out) == 1
    assert any("det-unseeded-random" in line for line in lines)


def test_missing_path_exits_two(tmp_path):
    lines, out = _capture()
    assert run_lint(paths=[str(tmp_path / "nope")], out=out) == 2
    assert any("no such path" in line for line in lines)


def test_json_report_schema(tmp_path):
    target = tmp_path / "bad.py"
    target.write_text(BAD_SOURCE)
    lines, out = _capture()
    assert run_lint(paths=[str(target)], fmt="json", out=out) == 1
    report = json.loads("\n".join(lines))
    assert report["version"] == REPORT_VERSION
    assert report["counts"] == {"new": 1, "baseline": 0, "noqa": 0}
    assert report["baseline"] == []
    assert report["noqa"] == []
    (finding,) = report["findings"]
    assert finding["rule"] == "det-unseeded-random"
    assert finding["line"] == 3
    assert finding["snippet"] == "jitter = random.random()"
    assert finding["fingerprint"]


def test_write_baseline_then_suppress(tmp_path):
    target = tmp_path / "bad.py"
    target.write_text(BAD_SOURCE)
    baseline = tmp_path / "lint-baseline.json"

    lines, out = _capture()
    assert (
        run_lint(
            paths=[str(target)],
            baseline_path=str(baseline),
            write_baseline=True,
            out=out,
        )
        == 0
    )
    assert baseline.exists()
    assert "grandfathered" in lines[-1]

    # Grandfathered finding no longer fails the run...
    lines, out = _capture()
    assert (
        run_lint(paths=[str(target)], baseline_path=str(baseline), out=out)
        == 0
    )
    assert "suppressed by baseline" in lines[-1]

    # ...but a new violation alongside it still does.
    target.write_text(BAD_SOURCE + "more = random.randrange(4)\n")
    lines, out = _capture()
    assert (
        run_lint(paths=[str(target)], baseline_path=str(baseline), out=out)
        == 1
    )
    assert any("random.randrange" in line for line in lines)


def test_corrupt_baseline_exits_two(tmp_path):
    target = tmp_path / "ok.py"
    target.write_text(CLEAN_SOURCE)
    baseline = tmp_path / "b.json"
    baseline.write_text("{broken")
    lines, out = _capture()
    assert (
        run_lint(paths=[str(target)], baseline_path=str(baseline), out=out)
        == 2
    )


def test_repository_tree_is_lint_clean():
    """Acceptance: ``repro lint`` runs clean on the shipped source tree.

    "Clean" means zero *active* findings; the tree's own deliberate
    ``# repro: noqa[...]`` exemptions (e.g. ``RunQueue.requeue``) are
    reported as inline-suppressed and never fail the run.
    """
    lines, out = _capture()
    code = run_lint(paths=[str(SRC / "repro")], out=out)
    assert code == 0, "\n".join(lines)
    assert lines[-1].startswith("0 findings")


def test_parallel_lint_byte_identical(tmp_path, capsys):
    """-j2 output (stdout and exit code) matches the serial run exactly.

    Lint over the analysis subpackage (cross-file rules included) with a
    bad file mixed in, so both per-file shards and the parent's
    cross-file pass contribute findings to the merge.
    """
    bad = tmp_path / "bad.py"
    bad.write_text(BAD_SOURCE)
    targets = [str(SRC / "repro" / "analysis"), str(bad)]

    serial_lines, serial_out = _capture()
    serial_code = run_lint(paths=targets, fmt="json", out=serial_out)
    parallel_lines, parallel_out = _capture()
    parallel_code = run_lint(
        paths=targets, fmt="json", jobs=2, out=parallel_out
    )
    assert parallel_code == serial_code
    assert parallel_lines == serial_lines
    # Progress and timing go to stderr, never stdout.
    err = capsys.readouterr().err
    assert "shard" in err and "workers" in err


def test_parallel_lint_reports_parse_errors_once(tmp_path):
    broken = tmp_path / "broken.py"
    broken.write_text("def nope(:\n")
    serial_lines, serial_out = _capture()
    run_lint(paths=[str(broken)], fmt="json", out=serial_out)
    parallel_lines, parallel_out = _capture()
    run_lint(paths=[str(broken)], fmt="json", jobs=2, out=parallel_out)
    assert parallel_lines == serial_lines
    report = json.loads("\n".join(parallel_lines))
    parse_errors = [
        f for f in report["findings"] if f["rule"] == "parse-error"
    ]
    assert len(parse_errors) == 1  # the shard's copy, not the parent's too


def test_negative_jobs_rejected(tmp_path):
    target = tmp_path / "ok.py"
    target.write_text(CLEAN_SOURCE)
    lines, out = _capture()
    assert run_lint(paths=[str(target)], jobs=-1, out=out) == 2
    assert any("jobs" in line for line in lines)


def test_effects_report_written():
    report_path = REPO / "vectorization-safety.test.json"
    try:
        lines, out = _capture()
        code = run_lint(
            paths=[str(SRC / "repro")],
            effects_report=str(report_path),
            out=out,
        )
        assert code == 0, "\n".join(lines)
        report = json.loads(report_path.read_text())
        assert report["summary"]["escaping"] == 0
        assert report["unsafe"] == []
    finally:
        if report_path.exists():
            report_path.unlink()


def test_effects_report_requires_certifiable_files(tmp_path):
    target = tmp_path / "ok.py"
    target.write_text(CLEAN_SOURCE)
    lines, out = _capture()
    code = run_lint(
        paths=[str(target)],
        effects_report=str(tmp_path / "report.json"),
        out=out,
    )
    assert code == 2
    assert any("no vectorization-safety report" in line for line in lines)


def test_split_rules_keeps_finalizers_in_parent():
    """Any rule with a finalize() override must run in the parent process.

    The original partition only looked at ``cross_file``, so a per-file
    rule that accumulates state in visit() and reports in finalize()
    would have emitted per-shard findings under -jN -- a different
    answer than -j1.  The partition now keys on behavior, not the flag.
    """
    from repro.analysis.core import Rule
    from repro.analysis.rules import default_rules, split_rules

    rules = default_rules()
    per_file, cross = split_rules(rules)
    assert len(per_file) + len(cross) == len(rules)
    for rule in per_file:
        assert not rule.cross_file
        assert type(rule).finalize is Rule.finalize, type(rule).__name__
    names = {type(r).__name__ for r in cross}
    # The interprocedural passes all finalize in the parent.
    assert {"CoherenceRule", "TaintRule", "PureHotPathRule",
            "HotPathCostRule"} <= names


def test_cost_report_written():
    report_path = REPO / "cost-report.test.json"
    try:
        lines, out = _capture()
        code = run_lint(
            paths=[str(SRC / "repro")],
            cost_report=str(report_path),
            out=out,
        )
        assert code == 0, "\n".join(lines)
        report = json.loads(report_path.read_text())
        assert report["version"] == 1
        assert report["summary"]["roots"] > 0
        assert report["scalar_residue"][0]["rank"] == 1
    finally:
        if report_path.exists():
            report_path.unlink()


def test_cost_report_requires_certifiable_files(tmp_path):
    target = tmp_path / "ok.py"
    target.write_text(CLEAN_SOURCE)
    lines, out = _capture()
    code = run_lint(
        paths=[str(target)],
        cost_report=str(tmp_path / "report.json"),
        out=out,
    )
    assert code == 2
    assert any("no cost report" in line for line in lines)


def test_parallel_reports_byte_identical(tmp_path):
    """-j2 must reproduce the serial cost/effects artifacts exactly.

    The cross-file finalizers run once in the parent either way; this
    pins the contract that sharding changes scheduling, never results.
    """
    targets = [str(SRC / "repro")]
    serial_cost = tmp_path / "cost-serial.json"
    serial_fx = tmp_path / "fx-serial.json"
    parallel_cost = tmp_path / "cost-parallel.json"
    parallel_fx = tmp_path / "fx-parallel.json"

    serial_lines, serial_out = _capture()
    serial_code = run_lint(
        paths=targets,
        cost_report=str(serial_cost),
        effects_report=str(serial_fx),
        out=serial_out,
    )
    parallel_lines, parallel_out = _capture()
    parallel_code = run_lint(
        paths=targets,
        jobs=2,
        cost_report=str(parallel_cost),
        effects_report=str(parallel_fx),
        out=parallel_out,
    )
    assert parallel_code == serial_code == 0
    assert parallel_lines == serial_lines
    assert parallel_cost.read_bytes() == serial_cost.read_bytes()
    assert parallel_fx.read_bytes() == serial_fx.read_bytes()


def test_self_lint_suppressions_are_exactly_the_declared_ones():
    """The gate stays honest: every inline noqa in the tree is accounted.

    Intentional churn must be suppressed at the site with a
    justification; this test pins the full list so a new suppression
    (or a rule silently going blind) shows up as a diff here.
    """
    lines, out = _capture()
    code = run_lint(paths=[str(SRC / "repro")], fmt="json", out=out)
    assert code == 0
    report = json.loads("\n".join(lines))
    assert report["findings"] == []
    suppressed = sorted(
        (f["rule"], Path(f["path"]).name) for f in report["noqa"]
    )
    assert suppressed == [
        ("coherence-unbumped-write", "runqueue.py"),
        ("coherence-unbumped-write", "runqueue.py"),
        ("hot-path-alloc", "vecstate.py"),
        # The two convergence tests (load invariance flag, batched tick
        # cohort gate) read raw util on purpose: util == target is
        # decay-invariant, so the bypass cannot observe staleness.
        ("perf-load-bypass", "runqueue.py"),
        ("perf-load-bypass", "scheduler.py"),
    ]

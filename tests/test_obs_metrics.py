"""Metrics registry: counters, gauges, log-bucketed histograms, rendering."""

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    _bucket_index,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = Counter("hits")
        assert c.value() == 0
        c.inc()
        c.inc(3)
        assert c.value() == 4

    def test_labels_are_independent_series(self):
        c = Counter("migrations")
        c.inc(reason="balance")
        c.inc(reason="balance")
        c.inc(reason="nohz")
        assert c.value(reason="balance") == 2
        assert c.value(reason="nohz") == 1
        assert c.value(reason="other") == 0
        assert c.total() == 3

    def test_label_order_does_not_matter(self):
        c = Counter("x")
        c.inc(a=1, b=2)
        assert c.value(b=2, a=1) == 1

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("x").inc(-1)


class TestGauge:
    def test_set_and_add(self):
        g = Gauge("depth")
        g.set(5, cpu=0)
        g.add(-2, cpu=0)
        assert g.value(cpu=0) == 3

    def test_gauges_may_go_negative(self):
        g = Gauge("delta")
        g.add(-7)
        assert g.value() == -7


class TestBucketIndex:
    @pytest.mark.parametrize(
        "value,bucket",
        [(0, 0), (0.5, 0), (1, 1), (2, 2), (3, 2), (4, 3), (1023, 10),
         (1024, 11)],
    )
    def test_powers_of_two(self, value, bucket):
        assert _bucket_index(value) == bucket

    def test_huge_values_clamp_to_last_bucket(self):
        assert _bucket_index(2**100) == 63


class TestHistogram:
    def test_count_sum_mean(self):
        h = Histogram("lat")
        for v in (10, 20, 30):
            h.observe(v)
        assert h.count() == 3
        assert h.mean() == 20

    def test_single_value_percentiles_are_exact(self):
        h = Histogram("lat")
        h.observe(1000)
        for p in (0, 50, 99, 100):
            assert h.percentile(p) == 1000

    def test_tail_survives_aggregation(self):
        # 999 short events must not hide one 4 ms stall -- the whole point
        # of log-bucketing (htop-style averaging is how the bugs hid).
        h = Histogram("lat")
        for _ in range(999):
            h.observe(10)
        h.observe(4000)
        assert h.percentile(50) < 100
        assert h.percentile(99.95) == 4000
        assert h.mean() < 20

    def test_percentile_clamps_to_observed_range(self):
        h = Histogram("lat")
        h.observe(100)
        h.observe(200)
        assert 100 <= h.percentile(50) <= 200
        assert h.percentile(100) <= 200

    def test_labels_filter_and_merge(self):
        h = Histogram("lat")
        h.observe(10, cpu=0)
        h.observe(1000, cpu=1)
        assert h.count(cpu=0) == 1
        assert h.count() == 2
        assert h.percentile(100, cpu=0) <= 15
        assert h.percentile(100) == 1000

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Histogram("lat").observe(-1)

    def test_empty_histogram(self):
        h = Histogram("lat")
        assert h.count() == 0
        assert h.mean() == 0.0
        assert h.percentile(99) == 0.0

    def test_percentile_range_validated(self):
        with pytest.raises(ValueError):
            Histogram("lat").percentile(101)


class TestRegistry:
    def test_create_or_get(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.histogram("h") is reg.histogram("h")

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("a")
        with pytest.raises(TypeError):
            reg.gauge("a")

    def test_get_and_names(self):
        reg = MetricsRegistry()
        reg.counter("b")
        reg.gauge("a")
        assert reg.names() == ["a", "b"]
        assert reg.get("a").kind == "gauge"
        assert reg.get("missing") is None


class TestSnapshotRender:
    def test_empty(self):
        assert MetricsRegistry().snapshot().render() == "no metrics recorded"

    def test_counter_series_lines(self):
        reg = MetricsRegistry()
        c = reg.counter("sched_migrations_total", "migrations by reason")
        c.inc(reason="balance:MC")
        c.inc(2, reason="nohz")
        text = reg.snapshot().render()
        assert "counter sched_migrations_total" in text
        assert "reason=balance:MC" in text
        assert "reason=nohz" in text

    def test_histogram_summary_line(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", "latency")
        for v in (100, 200, 4000):
            h.observe(v, cpu=0)
        text = reg.snapshot().render()
        assert "histogram lat" in text
        assert "count=3" in text
        assert "p99=" in text
        assert "cpu=0" in text

"""Tests for the scheduler feature flags."""

import pytest

from repro.sched.features import ALL_FIXED, MAINLINE, SchedFeatures


def test_mainline_has_all_bugs():
    assert not MAINLINE.fix_group_imbalance
    assert not MAINLINE.fix_group_construction
    assert not MAINLINE.fix_overload_on_wakeup
    assert not MAINLINE.fix_missing_domains
    assert MAINLINE.autogroup_enabled


def test_all_fixed():
    assert ALL_FIXED.fix_group_imbalance
    assert ALL_FIXED.fix_group_construction
    assert ALL_FIXED.fix_overload_on_wakeup
    assert ALL_FIXED.fix_missing_domains


def test_with_fixes_short_and_full_names():
    f = SchedFeatures().with_fixes("group_imbalance", "fix_missing_domains")
    assert f.fix_group_imbalance
    assert f.fix_missing_domains
    assert not f.fix_overload_on_wakeup


def test_with_fixes_is_pure():
    base = SchedFeatures()
    base.with_fixes("all")
    assert not base.fix_group_imbalance  # original untouched (frozen)


def test_with_fixes_unknown():
    with pytest.raises(ValueError):
        SchedFeatures().with_fixes("not_a_fix")


def test_without_autogroup():
    f = SchedFeatures().without_autogroup()
    assert not f.autogroup_enabled
    assert SchedFeatures().autogroup_enabled


def test_describe_mentions_each_flag():
    text = SchedFeatures().with_fixes("overload_on_wakeup").describe()
    assert "overload_on_wakeup=fixed" in text
    assert "group_imbalance=buggy" in text
    assert "autogroup=on" in text


def test_ablation_defaults_on():
    f = SchedFeatures()
    assert f.nohz_idle_balance_enabled
    assert f.newidle_balance_enabled
    assert f.wakeup_preemption_enabled
    assert f.migration_cost_us == 500


def test_frozen():
    with pytest.raises(Exception):
        SchedFeatures().fix_group_imbalance = True  # type: ignore

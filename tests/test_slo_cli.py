"""CLI coverage for ``repro slo run|check`` and ``repro replay
record|diff`` against a tiny private registry (no shipped scenarios, so
the tests stay fast and hermetic)."""

import json

import pytest

from repro.cli import main

TINY = """
[scenario]
name = "tiny"
title = "Tiny overload scenario"
trial = "repro.slo.trial:bug_slo_trial"
variants = ["buggy", "fixed"]
seeds = [42]
duration_ms = 50

[scenario.params]
bug = "overload-on-wakeup"
latency_deadline_us = "1023"

[slo]
max_idle_overload = 1.0
"""


@pytest.fixture
def registry(tmp_path):
    reg = tmp_path / "scenarios"
    reg.mkdir()
    (reg / "tiny.toml").write_text(TINY)
    return reg


def test_slo_run_renders_verdicts(registry, tmp_path, capsys):
    out = tmp_path / "report.json"
    code = main([
        "slo", "run", "--registry", str(registry), "--no-cache",
        "-j", "1", "--json", str(out),
    ])
    captured = capsys.readouterr()
    assert code == 0
    assert "tiny" in captured.out
    assert "PASS" in captured.out
    payload = json.loads(out.read_text())
    assert payload["verdicts"] == {"tiny/buggy": True, "tiny/fixed": True}


def test_slo_check_baseline_cycle(registry, tmp_path, capsys):
    baseline = tmp_path / "baseline.json"
    common = [
        "slo", "check", "--registry", str(registry), "--no-cache",
        "-j", "1", "--baseline", str(baseline),
    ]
    # No baseline yet: distinct exit code so CI can tell "unconfigured"
    # from "regressed".
    assert main(common) == 2

    assert main(common + ["--write-baseline"]) == 0
    assert json.loads(baseline.read_text())["verdicts"] == {
        "tiny/buggy": True, "tiny/fixed": True,
    }
    capsys.readouterr()

    # Clean compare.
    assert main(common) == 0
    assert "verdicts match" in capsys.readouterr().out

    # Flip a stored verdict: the gate must fail and name the drift.
    data = json.loads(baseline.read_text())
    data["verdicts"]["tiny/buggy"] = False
    baseline.write_text(json.dumps(data))
    assert main(common) == 1
    out = capsys.readouterr().out
    assert "SLO REGRESSION: tiny/buggy" in out

    # A scenario present in the baseline but not evaluated also fails.
    data["verdicts"] = {"tiny/buggy": True, "tiny/fixed": True,
                        "ghost/base": True}
    baseline.write_text(json.dumps(data))
    assert main(common) == 1
    assert "ghost/base in baseline but not evaluated" in capsys.readouterr().out


def test_replay_record_then_diff(registry, tmp_path, capsys):
    traces = tmp_path / "traces"
    code = main([
        "replay", "record", "--registry", str(registry),
        "--out", str(traces),
    ])
    assert code == 0
    files = sorted(traces.glob("*.trace.jsonl"))
    assert [f.name for f in files] == [
        "tiny__buggy__s42.trace.jsonl",
        "tiny__fixed__s42.trace.jsonl",
    ]
    capsys.readouterr()

    code = main(["replay", "diff"] + [str(f) for f in files])
    out = capsys.readouterr().out
    assert code == 0
    assert out.count("identical") == 2


def test_replay_diff_flags_divergence(registry, tmp_path, capsys):
    traces = tmp_path / "traces"
    assert main([
        "replay", "record", "--registry", str(registry),
        "--scenario", "tiny", "--out", str(traces),
    ]) == 0
    path = next(traces.glob("*.trace.jsonl"))
    lines = path.read_text().splitlines()
    event = json.loads(lines[5])
    int_keys = [k for k, v in event.items()
                if isinstance(v, int) and not isinstance(v, bool)]
    event[int_keys[0]] += 1
    lines[5] = json.dumps(event, sort_keys=True)
    path.write_text("\n".join(lines) + "\n")
    capsys.readouterr()

    assert main(["replay", "diff", str(path)]) == 1
    out = capsys.readouterr().out
    assert "DIVERGED" in out
    assert "first divergent event: #4" in out


def test_slo_run_unknown_scenario_errors(registry):
    with pytest.raises(ValueError, match="unknown scenario"):
        main([
            "slo", "run", "--registry", str(registry),
            "--scenario", "nope", "--no-cache",
        ])

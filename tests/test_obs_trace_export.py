"""Chrome trace-event export: builder unit tests + the CLI acceptance run."""

import json

import pytest

from repro.obs.trace_export import CHECKER_PID, ENGINE_PID, ChromeTraceBuilder
from repro.obs.tracepoints import TracepointRegistry, span


def _builder(num_cpus=2, **kwargs):
    reg = TracepointRegistry()
    builder = ChromeTraceBuilder(num_cpus, **kwargs)
    builder.attach(reg)
    return reg, builder


def _events(builder):
    return builder.to_json()["traceEvents"]


class TestBuilderUnits:
    def test_metadata_names_every_cpu_track(self):
        _, builder = _builder(num_cpus=3)
        names = {
            e["args"]["name"]
            for e in _events(builder)
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert {"cpu 0", "cpu 1", "cpu 2", "sanity-checker",
                "engine"} <= names

    def test_switch_pair_produces_complete_slice(self):
        reg, builder = _builder()
        tp = reg.tracepoint("sched.switch")
        tp.emit(100, cpu=0, prev_tid=None, next_tid=7, next_name="lu-0")
        tp.emit(400, cpu=0, prev_tid=7, next_tid=None, next_name="")
        (slice_,) = [e for e in _events(builder) if e.get("cat") == "task"]
        assert slice_["ph"] == "X"
        assert slice_["ts"] == 100 and slice_["dur"] == 300
        assert slice_["name"] == "lu-0" and slice_["pid"] == 0

    def test_back_to_back_switch_closes_previous_slice(self):
        reg, builder = _builder()
        tp = reg.tracepoint("sched.switch")
        tp.emit(0, cpu=0, prev_tid=None, next_tid=1, next_name="a")
        tp.emit(50, cpu=0, prev_tid=1, next_tid=2, next_name="b")
        builder.finish(80)
        slices = [e for e in _events(builder) if e.get("cat") == "task"]
        assert [(s["name"], s["ts"], s["dur"]) for s in slices] == [
            ("a", 0, 50), ("b", 50, 30),
        ]

    def test_migration_emits_flow_pair(self):
        reg, builder = _builder()
        reg.tracepoint("sched.migration").emit(
            10, tid=3, src_cpu=0, dst_cpu=1, reason="balance:MC"
        )
        flows = [e for e in _events(builder) if e.get("cat") == "migration"]
        assert [e["ph"] for e in flows] == ["s", "f"]
        start, finish = flows
        assert start["pid"] == 0 and finish["pid"] == 1
        assert start["id"] == finish["id"]
        assert "balance:MC" in start["name"]

    def test_checker_events_become_instants(self):
        reg, builder = _builder()
        reg.tracepoint("checker.violation_detected").emit(
            1000, violations=2, pairs=((0, 1),), window_us=50_000
        )
        reg.tracepoint("checker.bug_confirmed").emit(
            2000, detected_at_us=1000, violations=2, migrations=0,
            forks=0, exits=0, wakeups=3,
        )
        instants = [e for e in _events(builder) if e.get("cat") == "checker"]
        assert len(instants) == 2
        assert all(e["ph"] == "i" and e["pid"] == CHECKER_PID
                   for e in instants)
        assert all(e["s"] == "g" for e in instants)  # global scope

    def test_checker_check_tracepoint_not_rendered(self):
        reg, builder = _builder()
        reg.tracepoint("checker.check").emit(1000, violations=0)
        assert not [e for e in _events(builder) if e.get("cat") == "checker"]

    def test_engine_labels_surface_as_instants(self):
        reg, builder = _builder()
        reg.tracepoint("engine.callback").emit(5, label="phase-end:17")
        reg.tracepoint("engine.callback").emit(6, label="")
        instants = [e for e in _events(builder) if e.get("cat") == "engine"]
        assert [e["name"] for e in instants] == ["phase-end:17", "callback"]
        assert all(e["pid"] == ENGINE_PID for e in instants)

    def test_nr_running_becomes_counter_track(self):
        reg, builder = _builder()
        reg.tracepoint("sched.nr_running").emit(7, cpu=1, nr_running=3)
        (counter,) = [e for e in _events(builder) if e["ph"] == "C"]
        assert counter["args"]["nr"] == 3 and counter["pid"] == 1

    def test_spans_render_as_slices(self):
        reg, builder = _builder()
        s = span("obs.experiment", 100, registry=reg, bug="gi")
        s.end(900)
        (slice_,) = [e for e in _events(builder) if e.get("cat") == "obs"]
        assert slice_["name"] == "obs.experiment"
        assert slice_["ts"] == 100 and slice_["dur"] == 800

    def test_finish_closes_open_slices(self):
        reg, builder = _builder()
        reg.tracepoint("sched.switch").emit(
            0, cpu=1, prev_tid=None, next_tid=9, next_name="hog"
        )
        builder.finish(500)
        (slice_,) = [e for e in _events(builder) if e.get("cat") == "task"]
        assert slice_["dur"] == 500

    def test_max_events_drops_and_counts(self):
        reg, builder = _builder(max_events=10)  # metadata already uses 8
        tp = reg.tracepoint("sched.nr_running")
        for t in range(5):
            tp.emit(t, cpu=0, nr_running=1)
        data = builder.to_json()
        assert len(data["traceEvents"]) == 10
        assert data["otherData"]["dropped_events"] == 3

    def test_write_produces_valid_json(self, tmp_path):
        reg, builder = _builder()
        reg.tracepoint("sched.switch").emit(
            0, cpu=0, prev_tid=None, next_tid=1, next_name="t"
        )
        path = tmp_path / "trace.json"
        count = builder.write(str(path), end_us=100)
        data = json.loads(path.read_text())
        assert data["displayTimeUnit"] == "ms"
        assert len(data["traceEvents"]) == count

    def test_double_attach_rejected(self):
        reg, builder = _builder()
        with pytest.raises(RuntimeError):
            builder.attach(reg)


class TestCliAcceptance:
    """ISSUE acceptance: `repro trace group_imbalance --out /tmp/t.json`."""

    @pytest.fixture(scope="class")
    def trace_data(self, tmp_path_factory):
        from repro.cli import main

        path = tmp_path_factory.mktemp("obs") / "t.json"
        assert main(["trace", "group_imbalance", "--out", str(path)]) == 0
        return json.loads(path.read_text())

    def test_valid_chrome_trace_json(self, trace_data):
        assert isinstance(trace_data["traceEvents"], list)
        assert trace_data["traceEvents"]

    def test_per_core_tracks(self, trace_data):
        events = trace_data["traceEvents"]
        named = {
            e["args"]["name"]: e["pid"]
            for e in events
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        # The group-imbalance scenario runs on the 2-node, 8-CPU machine.
        assert {f"cpu {i}" for i in range(8)} <= set(named)
        task_pids = {e["pid"] for e in events if e.get("cat") == "task"}
        assert len(task_pids) >= 2  # slices on several cores

    def test_at_least_one_migration_flow(self, trace_data):
        flows = [
            e for e in trace_data["traceEvents"]
            if e.get("cat") == "migration" and e["ph"] == "s"
        ]
        assert flows

    def test_at_least_one_checker_instant(self, trace_data):
        instants = [
            e for e in trace_data["traceEvents"]
            if e.get("cat") == "checker" and e["ph"] == "i"
        ]
        assert instants

    def test_metrics_subcommand_renders_table(self, capsys):
        from repro.cli import main

        assert main(
            ["metrics", "overload-on-wakeup", "--duration-us", "200000"]
        ) == 0
        out = capsys.readouterr().out
        assert "sched_wakeup_to_run_latency_us" in out
        assert "wakeup-to-run latency" in out

    def test_version_flag(self, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert "repro" in capsys.readouterr().out

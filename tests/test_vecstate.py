"""Tests for the vectorized array-backed core (repro.sched.vecstate).

The end-to-end guarantee -- byte-identical schedule digests across
baseline / fast / vec / vec-fallback -- lives in the bench harness
(``repro bench --check-digests``) and test_batch_order.py.  Pinned here
are the layer's local obligations: the struct-of-arrays mirror must be
exact against the queues, every invalidation trigger (dirty marks, new
timestamps, idle transitions, divisor bumps, hotplug) must actually
drop what it claims to, and both array backends must fold to the exact
objects the scalar fold produces.
"""

import pytest

from repro.sched import vec
from repro.sched.balance import _fold_group_stats, find_busiest_group
from repro.sched.features import SchedFeatures
from repro.sched.task import Task
from repro.sim.system import System
from repro.sim.timebase import MS
from repro.topology import two_nodes


def _vec_system(seed=7, backend="auto"):
    features = SchedFeatures().with_vectorized(True, backend=backend)
    system = System(two_nodes(4, smt_width=2), features, seed=seed)
    return system, system.scheduler


def _spawn_some(system, n=6):
    from repro.perf.bench import _hog

    for i in range(n):
        system.spawn(_hog(f"hog{i}"), parent_cpu=(i * 3) % 8)


# ----------------------------------------------------------- construction


def test_vectorized_feature_builds_vecstate_and_batched_loop():
    system, sched = _vec_system()
    assert sched.vec is not None
    assert sched.vec.vectorized is True
    assert system.loop._batch is True
    # Every runqueue is wired to the mirror's dirty tracking.
    for cpu in sched.cpus:
        assert cpu.rq.vec is sched.vec


def test_backend_selection():
    _, sched = _vec_system(backend="python")
    assert sched.vec.ops.name == "python"
    expected = "numpy" if vec.HAVE_NUMPY else "python"
    _, auto = _vec_system(backend="auto")
    assert auto.vec.ops.name == expected


# ------------------------------------------------------------ mirror sync


def test_snapshot_mirror_is_exact_against_queues():
    system, sched = _vec_system()
    _spawn_some(system)
    system.run_for(20 * MS)
    snap = sched.vec.begin(system.now).snapshot()
    now = system.now
    for cpu in sched.cpus:
        i = cpu.cpu_id
        assert snap["load"][i] == float(cpu.rq.load(now))
        assert snap["nr_running"][i] == cpu.rq.nr_running
        assert snap["idle"][i] == (cpu.rq.nr_running == 0)
        assert snap["vruntime_floor"][i] == cpu.rq.min_vruntime
        assert snap["online"][i] == cpu.online
    assert snap["backend"] == sched.vec.ops.name
    assert snap["now"] == now


def test_group_folds_match_scalar_fold_exactly():
    system, sched = _vec_system()
    _spawn_some(system)
    system.run_for(10 * MS)
    now = system.now
    vstate = sched.vec.begin(now)
    for domain in sched.domain_builder.domains_of(0):
        for group in domain.groups:
            got = vstate.group_stats(group)
            want = _fold_group_stats(sched, group, now, None)
            if want is None:
                assert got is None
                continue
            # Exact equality, field by field -- including int-vs-float
            # type (the digest distinguishes them).
            for field in (
                "avg_load", "min_load", "max_load",
                "nr_running", "capacity", "min_nr", "max_nr",
            ):
                g, w = getattr(got, field), getattr(want, field)
                assert g == w and type(g) is type(w), (
                    f"{group}: {field}: {g!r} != {w!r}"
                )


def test_dirty_mark_resamples_only_after_mutation():
    system, sched = _vec_system()
    _spawn_some(system)
    system.run_for(10 * MS)
    now = system.now
    vstate = sched.vec.begin(now)
    vstate._sync()
    rq = sched.cpus[0].rq
    before = vstate._loads[0]
    task = Task("late", nice=0)
    rq.enqueue(task, now)  # mutator bumps mark_dirty via the wiring
    assert vstate._dirty[0]
    vstate._sync()
    assert not vstate._dirty[0]
    assert vstate._loads[0] == rq.load(now)
    assert vstate._loads[0] != before
    rq.take(task, now)  # restore


def test_new_timestamp_stales_every_load_slot():
    system, sched = _vec_system()
    _spawn_some(system)
    system.run_for(10 * MS)
    vstate = sched.vec.begin(system.now)
    vstate._sync()
    assert vstate._loads_at == system.now
    later = system.now + 1_000
    vstate.begin(later)
    vstate._sync()
    assert vstate._loads_at == later
    for cpu in sched.cpus:
        assert vstate._loads[cpu.cpu_id] == cpu.rq.load(later)


# ------------------------------------------------------ election memoing


def _wide_group(sched):
    """A group whose balance mask spans more than one CPU."""
    for domain in reversed(sched.domain_builder.domains_of(0)):
        try:
            local = domain.local_group(0)
        except ValueError:
            continue
        if len(local.sorted_balance_mask()) > 1:
            return local
    pytest.skip("topology has no multi-CPU balance mask")


def test_designated_memo_invalidated_per_cpu_on_idle_change():
    system, sched = _vec_system()
    _spawn_some(system)
    system.run_for(10 * MS)
    vstate = sched.vec.begin(system.now)
    group = _wide_group(sched)
    winner = vstate.designated_for(group)
    assert id(group) in vstate._designated
    assert vstate.designated_for(group) == winner  # memo hit
    # An idle<->busy transition on a mask member drops exactly the
    # entries registered against that CPU.
    member = group.sorted_balance_mask()[0]
    vstate.mark_idle_change(member)
    assert id(group) not in vstate._designated
    # Non-members are untouched: re-memoize, poke an unrelated CPU.
    vstate.designated_for(group)
    outside = [
        c.cpu_id for c in sched.cpus
        if c.cpu_id not in group.sorted_balance_mask()
    ]
    if outside:
        vstate.mark_idle_change(outside[0])
        assert id(group) in vstate._designated


def test_hotplug_drops_interned_indices_and_balance_plans():
    system, sched = _vec_system()
    _spawn_some(system)
    system.run_for(10 * MS)
    vstate = sched.vec.begin(system.now)
    vstate._sync()
    group = _wide_group(sched)
    vstate.group_stats(group)
    vstate.designated_for(group)
    assert vstate._gidx and vstate._gstats
    gen_before = sched.domain_builder.generation
    plan_before = sched.cpus[0].balance_plan
    system.hotplug_cpu(1, False)
    assert sched.domain_builder.generation > gen_before
    assert not vstate._gidx
    assert not vstate._gstats
    assert not vstate._designated
    # The per-CPU periodic plans are generation-keyed: the stale plan
    # object may linger but can never be used again.
    if plan_before is not None:
        assert sched.cpus[0].balance_plan_gen != (
            sched.domain_builder.generation
        )
    system.hotplug_cpu(1, True)


# ------------------------------------------------- busiest-group selection


def test_find_busiest_agrees_with_scalar_selection():
    system, sched = _vec_system()
    _spawn_some(system)
    system.run_for(15 * MS)
    now = system.now
    vstate = sched.vec.begin(now)
    for dst in range(len(sched.cpus)):
        for domain in sched.domain_builder.domains_of(dst):
            busiest, local, _ = vstate.find_busiest(domain, dst)
            s_busiest, s_local = find_busiest_group(
                sched, domain, dst, now, bpass=None
            )
            if s_busiest is None:
                assert busiest is None
            else:
                assert busiest is not None
                assert busiest.group is s_busiest.group
                assert busiest.avg_load == s_busiest.avg_load
                assert busiest.min_load == s_busiest.min_load
            if busiest is not None:
                # A found busiest group always carries local stats.
                assert local is not None
                assert s_local is not None
                assert local.group is s_local.group


def test_find_busiest_need_local_skips_balanced_materialization():
    system, sched = _vec_system()
    _spawn_some(system)
    system.run_for(15 * MS)
    vstate = sched.vec.begin(system.now)
    for dst in range(len(sched.cpus)):
        for domain in sched.domain_builder.domains_of(dst):
            b_on, l_on, ex_on = vstate.find_busiest(
                domain, dst, need_local=True
            )
            b_off, l_off, ex_off = vstate.find_busiest(
                domain, dst, need_local=False
            )
            assert ex_on == ex_off
            # The busiest decision is identical either way ...
            assert (b_on is None) == (b_off is None)
            if b_on is not None:
                # ... and a found group always returns both stats.
                assert l_off is not None and l_on is not None
            else:
                # Balanced outcome: the inert-probe path skips local.
                assert l_off is None


def test_sanitized_vectorized_soak_raises_nothing():
    # The coherence sanitizer cross-checks every vectorized fold and
    # election against a from-scratch recompute -- a soak under it is a
    # dense exactness test of the whole mirror protocol.
    features = (
        SchedFeatures().with_vectorized(True).with_sanitizer(True)
    )
    system = System(two_nodes(4, smt_width=2), features, seed=11)
    _spawn_some(system)
    system.run_for(30 * MS)
    assert system.loop.events_fired > 0


def test_backend_digest_equivalence_quick():
    # numpy and fallback backends schedule identically (full-size check
    # lives in the bench gate; this is the cheap in-suite pin).
    from repro.slo.replay import diff_events, serialize_buffer
    from repro.viz.events import TraceBuffer, TraceProbe

    def stream(backend):
        features = SchedFeatures().with_vectorized(True, backend=backend)
        system = System(two_nodes(4, smt_width=2), features, seed=5)
        buffer = TraceBuffer()
        system.attach_probe(TraceProbe(buffer=buffer, record_load=False))
        _spawn_some(system)
        system.run_for(25 * MS)
        return serialize_buffer(buffer)

    python_stream = stream("python")
    if not vec.HAVE_NUMPY:
        pytest.skip("numpy unavailable; auto == python")
    divergence = diff_events(stream("numpy"), python_stream)
    assert divergence is None, f"first divergence at event {divergence}"

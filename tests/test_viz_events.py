"""Tests for probes and the fixed-size trace buffer."""

import pytest

from repro.viz.events import (
    BalanceEvent,
    ConsideredEvent,
    FanoutProbe,
    LifecycleEvent,
    LoadEvent,
    MigrationEvent,
    NrRunningEvent,
    Probe,
    TraceBuffer,
    TraceProbe,
    WakeupEvent,
)


def test_buffer_capacity_enforced():
    buf = TraceBuffer(capacity=3)
    for i in range(5):
        buf.append(NrRunningEvent(i, 0, 1))
    assert len(buf) == 3
    assert buf.dropped == 2
    assert [e.time_us for e in buf] == [0, 1, 2]


def test_buffer_capacity_validation():
    with pytest.raises(ValueError):
        TraceBuffer(0)


def test_buffer_clear():
    buf = TraceBuffer(2)
    buf.append(NrRunningEvent(0, 0, 1))
    buf.append(NrRunningEvent(1, 0, 1))
    buf.append(NrRunningEvent(2, 0, 1))
    buf.clear()
    assert len(buf) == 0
    assert buf.dropped == 0


def test_buffer_of_type_and_span():
    buf = TraceBuffer(10)
    buf.append(NrRunningEvent(5, 0, 1))
    buf.append(LoadEvent(9, 0, 1.0))
    assert len(buf.of_type(NrRunningEvent)) == 1
    assert len(buf.of_type(LoadEvent)) == 1
    assert buf.time_span() == (5, 9)
    assert TraceBuffer(1).time_span() == (0, 0)


def test_base_probe_is_noop():
    probe = Probe()
    probe.on_nr_running(0, 0, 1)
    probe.on_rq_load(0, 0, 1.0)
    probe.on_considered(0, 0, "x", [1])
    probe.on_migration(0, 1, 0, 1, "r")
    probe.on_wakeup(0, 1, 0, None, True)
    probe.on_lifecycle(0, 1, "fork", 0)
    probe.on_balance(0, 0, "MC", 0.0, None, "balanced")


def test_trace_probe_records_all_kinds():
    probe = TraceProbe()
    probe.on_nr_running(1, 0, 2)
    probe.on_rq_load(2, 0, 3.5)
    probe.on_considered(3, 0, "lb", [0, 1])
    probe.on_migration(4, 7, 0, 1, "r")
    probe.on_wakeup(5, 7, 1, 0, False)
    probe.on_lifecycle(6, 7, "fork", 1)
    probe.on_balance(7, 0, "MC", 1.0, 2.0, "moved:1")
    kinds = {type(e) for e in probe.buffer}
    assert kinds == {
        NrRunningEvent, LoadEvent, ConsideredEvent, MigrationEvent,
        WakeupEvent, LifecycleEvent, BalanceEvent,
    }


def test_trace_probe_selective_recording():
    probe = TraceProbe(
        record_nr_running=False,
        record_load=False,
        record_considered=False,
        record_migrations=False,
        record_wakeups=False,
        record_lifecycle=False,
    )
    probe.on_nr_running(1, 0, 2)
    probe.on_rq_load(2, 0, 3.5)
    probe.on_considered(3, 0, "lb", [0])
    probe.on_migration(4, 7, 0, 1, "r")
    probe.on_wakeup(5, 7, 1, 0, False)
    probe.on_lifecycle(6, 7, "fork", 1)
    probe.on_balance(7, 0, "MC", 1.0, None, "balanced")
    assert len(probe.buffer) == 0


def test_considered_stored_as_frozenset():
    probe = TraceProbe()
    probe.on_considered(0, 1, "op", [3, 1, 2])
    event = probe.buffer.of_type(ConsideredEvent)[0]
    assert event.considered == frozenset({1, 2, 3})


class _Counter(Probe):
    def __init__(self):
        self.calls = 0

    def on_nr_running(self, now, cpu, nr_running):
        self.calls += 1


def test_fanout_forwards_to_all():
    a, b = _Counter(), _Counter()
    fan = FanoutProbe([a])
    fan.add(b)
    fan.on_nr_running(0, 0, 1)
    assert (a.calls, b.calls) == (1, 1)
    fan.remove(a)
    fan.on_nr_running(0, 0, 1)
    assert (a.calls, b.calls) == (1, 2)


def test_fanout_remove_missing_raises():
    fan = FanoutProbe()
    with pytest.raises(ValueError):
        fan.remove(Probe())


def test_fanout_forwards_every_hook():
    probe = TraceProbe()
    fan = FanoutProbe([probe])
    fan.on_nr_running(1, 0, 1)
    fan.on_rq_load(1, 0, 1.0)
    fan.on_considered(1, 0, "op", [0])
    fan.on_migration(1, 2, 0, 1, "r")
    fan.on_wakeup(1, 2, 0, None, True)
    fan.on_lifecycle(1, 2, "exit", None)
    fan.on_balance(1, 0, "MC", 0.0, 1.0, "blocked")
    assert len(probe.buffer) == 7

"""BalanceProfiler: gating, outcome counting, failure fractions."""

from repro.core.profiler import BalanceProfiler
from repro.viz.events import BalanceEvent, ConsideredEvent


def _feed(profiler, events):
    for now, cpu, domain, local, busiest, outcome in events:
        profiler.on_balance(now, cpu, domain, local, busiest, outcome)


class TestStartStopGating:
    def test_inactive_by_default(self):
        profiler = BalanceProfiler()
        profiler.on_balance(0, 0, "MC", 1.0, 2.0, "moved:1")
        profiler.on_considered(0, 0, "load_balance", [1, 2])
        assert len(profiler.buffer) == 0

    def test_start_records_both_event_kinds(self):
        profiler = BalanceProfiler()
        profiler.start()
        profiler.on_balance(10, 0, "MC", 1.0, 2.0, "moved:1")
        profiler.on_considered(10, 0, "load_balance", [1, 2])
        assert len(profiler.balance_events()) == 1
        considered = profiler.buffer.of_type(ConsideredEvent)
        assert considered[0].considered == frozenset({1, 2})

    def test_stop_gates_again(self):
        profiler = BalanceProfiler()
        profiler.start()
        profiler.on_balance(10, 0, "MC", 1.0, 2.0, "balanced")
        profiler.stop()
        profiler.on_balance(20, 0, "MC", 1.0, 2.0, "balanced")
        assert len(profiler.balance_events()) == 1

    def test_capacity_bounds_buffer(self):
        # TraceBuffer keeps the paper's static-array contract: appends
        # past capacity are dropped and counted, never resized.
        profiler = BalanceProfiler(capacity=3)
        profiler.start()
        _feed(
            profiler,
            [(t, 0, "MC", 1.0, 2.0, "balanced") for t in range(10)],
        )
        events = profiler.balance_events()
        assert len(events) == 3
        assert [e.time_us for e in events] == [0, 1, 2]
        assert profiler.buffer.dropped == 7


class TestOutcomeCounts:
    def test_counts_by_domain_and_outcome_class(self):
        profiler = BalanceProfiler()
        profiler.start()
        _feed(
            profiler,
            [
                (1, 0, "MC", 1.0, 2.0, "moved:1"),
                (2, 0, "MC", 1.0, 2.0, "moved:2"),
                (3, 0, "MC", 1.0, None, "balanced"),
                (4, 4, "NUMA", 1.0, 2.0, "blocked:affinity"),
            ],
        )
        counts = profiler.outcome_counts()
        # "moved:1" and "moved:2" collapse to one outcome class.
        assert counts[("MC", "moved")] == 2
        assert counts[("MC", "balanced")] == 1
        assert counts[("NUMA", "blocked")] == 1

    def test_empty_buffer(self):
        assert BalanceProfiler().outcome_counts() == {}


class TestFailedFraction:
    def test_empty_buffer_is_zero(self):
        assert BalanceProfiler().failed_fraction() == 0.0

    def test_counts_everything_but_moved_as_failed(self):
        profiler = BalanceProfiler()
        profiler.start()
        _feed(
            profiler,
            [
                (1, 0, "MC", 1.0, 2.0, "moved:1"),
                (2, 0, "MC", 1.0, None, "balanced"),
                (3, 0, "MC", 1.0, 2.0, "blocked:affinity"),
                (4, 0, "MC", 1.0, 2.0, "balanced"),
            ],
        )
        assert profiler.failed_fraction() == 0.75

    def test_domain_filter(self):
        profiler = BalanceProfiler()
        profiler.start()
        _feed(
            profiler,
            [
                (1, 0, "MC", 1.0, 2.0, "moved:1"),
                (2, 0, "MC", 1.0, 2.0, "moved:1"),
                (3, 4, "NUMA", 1.0, None, "balanced"),
            ],
        )
        assert profiler.failed_fraction(domain="MC") == 0.0
        assert profiler.failed_fraction(domain="NUMA") == 1.0

    def test_domain_filter_with_no_matches(self):
        profiler = BalanceProfiler()
        profiler.start()
        _feed(profiler, [(1, 0, "MC", 1.0, 2.0, "moved:1")])
        assert profiler.failed_fraction(domain="SMT") == 0.0


class TestSummarize:
    def test_empty(self):
        assert "no balancing activity" in BalanceProfiler().summarize()

    def test_lists_outcomes_and_fraction(self):
        profiler = BalanceProfiler()
        profiler.start()
        _feed(
            profiler,
            [
                (1, 0, "MC", 1.0, 2.0, "moved:1"),
                (2, 0, "MC", 1.0, None, "balanced"),
            ],
        )
        text = profiler.summarize()
        assert "MC" in text
        assert "moved" in text and "balanced" in text
        assert "50.00%" in text

    def test_events_are_real_balance_events(self):
        profiler = BalanceProfiler()
        profiler.start()
        profiler.on_balance(5, 2, "NUMA", 3.0, 4.0, "moved:1")
        (event,) = profiler.balance_events()
        assert isinstance(event, BalanceEvent)
        assert event.cpu == 2
        assert event.busiest_metric == 4.0

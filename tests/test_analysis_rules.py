"""Per-rule positive and negative tests over the lint fixture corpus.

Each ``*_bad.py`` fixture must trip its rule (the positive half proves the
rule actually fires -- the suite fails if the rule is deleted or gutted),
and each ``*_ok.py`` twin must stay silent (the negative half pins the
false-positive rate at zero for the idioms the codebase actually uses).

Fixtures live outside any package, so they are analyzed under assumed
module names (``repro.sched.<stem>`` etc.) to land inside rule scopes --
the same override hook ``Analyzer.run(modules=...)`` exposes to users.
"""

from pathlib import Path

from repro.analysis import Analyzer, default_rules

FIXTURES = Path(__file__).resolve().parent / "fixtures" / "lint"


def lint_fixture(name, module):
    path = FIXTURES / name
    assert path.exists(), f"missing fixture {path}"
    analyzer = Analyzer(default_rules())
    return analyzer.run([path], modules={path: module})


def rule_ids(findings):
    return [f.rule_id for f in findings]


# ---------------------------------------------------------------- determinism


def test_unseeded_random_bad():
    findings = lint_fixture(
        "det_unseeded_random_bad.py", "repro.sched.det_unseeded_random_bad"
    )
    assert rule_ids(findings) == ["det-unseeded-random"] * 2


def test_unseeded_random_ok():
    findings = lint_fixture(
        "det_unseeded_random_ok.py", "repro.sched.det_unseeded_random_ok"
    )
    assert findings == []


def test_wallclock_bad():
    findings = lint_fixture(
        "det_wallclock_bad.py", "repro.sched.det_wallclock_bad"
    )
    assert rule_ids(findings) == ["det-wallclock"] * 3


def test_wallclock_ignored_outside_hot_scope():
    # The same file analyzed as a viz module is allowed to read the clock.
    findings = lint_fixture(
        "det_wallclock_bad.py", "repro.viz.det_wallclock_bad"
    )
    assert findings == []


def test_wallclock_ok():
    findings = lint_fixture(
        "det_wallclock_ok.py", "repro.sched.det_wallclock_ok"
    )
    assert findings == []


def test_set_iteration_bad():
    findings = lint_fixture(
        "det_set_iteration_bad.py", "repro.sched.det_set_iteration_bad"
    )
    assert rule_ids(findings) == ["det-set-iteration"] * 4


def test_set_iteration_ok():
    findings = lint_fixture(
        "det_set_iteration_ok.py", "repro.sched.det_set_iteration_ok"
    )
    assert findings == []


def test_seeded_vs_wallclock_regression_pair():
    """Acceptance: the sanitizer catches a seeded->wall-clock regression.

    ``regression_seeded.py`` and ``regression_wallclock.py`` implement the
    same jitter helper; only the second trades the virtual clock and the
    caller-seeded generator for ``time.time()`` and the global ``random``
    module.  The diff between the two is exactly the regression class the
    determinism rules exist to stop, and lint must flag only the bad half.
    """
    clean = lint_fixture(
        "regression_seeded.py", "repro.sched.regression_seeded"
    )
    assert clean == []

    regressed = lint_fixture(
        "regression_wallclock.py", "repro.sched.regression_wallclock"
    )
    assert sorted(rule_ids(regressed)) == [
        "det-unseeded-random",
        "det-wallclock",
    ]


# ------------------------------------------------------------------- layering


def test_layering_bad():
    findings = lint_fixture("layering_bad.py", "repro.sched.layering_bad")
    assert sorted(rule_ids(findings)) == [
        "layer-sched-obs",
        "layer-sched-sim",
        "layer-sched-sim",
    ]


def test_layering_ok():
    findings = lint_fixture("layering_ok.py", "repro.sched.layering_ok")
    assert findings == []


def test_layering_inert_outside_source_layer():
    # sim importing sim is never a layering violation.
    findings = lint_fixture("layering_bad.py", "repro.sim.layering_bad")
    assert [r for r in rule_ids(findings) if r.startswith("layer-")] == []


# ----------------------------------------------------------------- flag rules


def test_flags_bad():
    findings = lint_fixture("flags_bad.py", "repro.sched.flags_bad")
    assert rule_ids(findings) == ["flag-discipline"] * 5


def test_flags_ok():
    findings = lint_fixture("flags_ok.py", "repro.sched.flags_ok")
    assert findings == []


# ---------------------------------------------------------------- tracepoints


def _lint_tracepoint_pair():
    decl = FIXTURES / "tracepoints_decl.py"
    use = FIXTURES / "tracepoints_use.py"
    analyzer = Analyzer(default_rules())
    return analyzer.run(
        [decl, use],
        modules={
            decl: "repro.obs.tracepoints",
            use: "repro.sim.tracepoints_use",
        },
    )


def test_tracepoint_consistency():
    findings = _lint_tracepoint_pair()
    by_rule = {}
    for f in findings:
        by_rule.setdefault(f.rule_id, []).append(f)
    assert set(by_rule) == {
        "tp-orphan-emit",
        "tp-dead-declaration",
        "tp-dynamic-name",
    }
    (orphan,) = by_rule["tp-orphan-emit"]
    assert "fix.orphan" in orphan.message
    (dead,) = by_rule["tp-dead-declaration"]
    assert "fix.dead" in dead.message
    # Declared-and-used names are never reported.
    assert not any("fix.used" in f.message for f in findings)
    assert not any("fix.spanned" in f.message for f in findings)


def test_tracepoint_cross_checks_need_declaration_module():
    # Linting only the producer file (a partial tree) must not produce
    # orphan findings -- the registry was never seen.
    use = FIXTURES / "tracepoints_use.py"
    analyzer = Analyzer(default_rules())
    findings = analyzer.run(
        [use], modules={use: "repro.sim.tracepoints_use"}
    )
    assert rule_ids(findings) == ["tp-dynamic-name"]


# ------------------------------------------------------------ load fast paths


def test_perf_load_bypass_bad():
    findings = lint_fixture(
        "perf_load_bypass_bad.py", "repro.sched.perf_load_bypass_bad"
    )
    # .tracker.util, .tracker.last_update_us, _cached_load, _cached_load_now
    assert rule_ids(findings) == ["perf-load-bypass"] * 4


def test_perf_load_bypass_ok():
    findings = lint_fixture(
        "perf_load_bypass_ok.py", "repro.sched.perf_load_bypass_ok"
    )
    assert findings == []


def test_perf_load_bypass_owners_exempt():
    # The representation owners may read their own fields.
    findings = lint_fixture("perf_load_bypass_bad.py", "repro.sched.task")
    assert rule_ids(findings) == ["perf-load-bypass"] * 2  # cache cells only
    findings = lint_fixture("perf_load_bypass_bad.py", "repro.sched.runqueue")
    assert rule_ids(findings) == ["perf-load-bypass"] * 2  # tracker only


def test_perf_load_bypass_out_of_scope():
    # Experiments/analysis code may inspect whatever it likes.
    findings = lint_fixture(
        "perf_load_bypass_bad.py", "repro.experiments.perf_load_bypass_bad"
    )
    assert findings == []


def test_perf_load_bypass_alias_bad():
    # tr.util, rq.tracker.util, t.last_update_us, walrus tr.util
    findings = lint_fixture(
        "perf_load_alias_bad.py", "repro.sched.perf_load_alias_bad"
    )
    assert rule_ids(findings) == ["perf-load-bypass"] * 4


def test_perf_load_bypass_alias_ok():
    findings = lint_fixture(
        "perf_load_alias_ok.py", "repro.sched.perf_load_alias_ok"
    )
    assert findings == []


# ------------------------------------------------------ orchestrator safety


def test_orchestrator_fork_safety_bad():
    # Module-level RNG, module-level MetricsRegistry, mutated module dict.
    findings = lint_fixture(
        "orchestrator_fork_bad.py",
        "repro.experiments.orchestrator_fork_bad",
    )
    assert rule_ids(findings) == ["orchestrator-fork-safety"] * 3
    assert "_RNG" in findings[0].message
    assert "MetricsRegistry" in findings[1].message
    assert "_RESULTS" in findings[2].message


def test_orchestrator_fork_safety_ok():
    findings = lint_fixture(
        "orchestrator_fork_ok.py",
        "repro.experiments.orchestrator_fork_ok",
    )
    assert findings == []


def test_orchestrator_fork_safety_out_of_scope():
    # Workload/sim modules never run inside pool workers as trial code.
    findings = lint_fixture(
        "orchestrator_fork_bad.py",
        "repro.workloads.orchestrator_fork_bad",
    )
    assert findings == []


# ------------------------------------------------------- mutation coherence


def test_coherence_unbumped_writes():
    findings = lint_fixture("coherence_bad.py", "repro.sched.coherence_bad")
    assert rule_ids(findings) == ["coherence-unbumped-write"] * 3
    assert all(f.severity == "error" for f in findings)
    # sneaky_insert: both writes fully unbumped.
    assert "_tree" in findings[0].message
    assert "_nr_running" in findings[1].message
    # half_bumped: only the missing counter is named.
    assert "load_epoch" in findings[2].message
    assert "mutations" not in findings[2].message.split("bump of")[1]


def test_coherence_ok_disciplines():
    findings = lint_fixture("coherence_ok.py", "repro.sched.coherence_ok")
    active = [f for f in findings if not f.suppressed]
    assert active == [], [f.format() for f in active]
    # The explicit opt-out in rotate() is still reported, as suppressed
    # (finalize-phase findings honor inline noqa directives too).
    assert rule_ids(findings) == ["coherence-unbumped-write"]
    assert findings[0].suppressed


def test_coherence_out_of_scope():
    findings = lint_fixture(
        "coherence_bad.py", "repro.experiments.coherence_bad"
    )
    assert findings == []


# ----------------------------------------------------------- slo registry


def test_slo_registry_bad():
    from repro.analysis.rules.sloreg import SloRegistryRule

    path = FIXTURES / "slo_registry_bad.toml"
    assert path.exists(), f"missing fixture {path}"
    findings = sorted(
        SloRegistryRule(spec_paths=[path]).finalize(),
        key=lambda f: f.sort_key(),
    )
    assert rule_ids(findings) == ["slo-registry"] * 4
    messages = " ".join(f.message for f in findings)
    assert "no_such_trial" in messages
    assert "no_such_workload" in messages
    assert "no_such_topology" in messages
    assert "sched.no_such_event" in messages
    # Findings anchor on the offending line of the TOML file.
    assert all(f.line > 0 for f in findings)


def test_slo_registry_ok():
    from repro.analysis.rules.sloreg import SloRegistryRule

    path = FIXTURES / "slo_registry_ok.toml"
    findings = list(SloRegistryRule(spec_paths=[path]).finalize())
    assert findings == [], [f.format() for f in findings]


def test_slo_registry_structural_error(tmp_path):
    from repro.analysis.rules.sloreg import SloRegistryRule

    path = tmp_path / "broken.toml"
    path.write_text('[scenario]\nname = "x"\n')  # no trial key
    findings = list(SloRegistryRule(spec_paths=[path]).finalize())
    assert len(findings) == 1
    assert "invalid scenario spec" in findings[0].message


def test_slo_registry_shipped_specs_clean():
    # default_rules() ships the rule pointed at the packaged registry;
    # the shipped scenario files must therefore always lint clean.
    from repro.analysis.rules.sloreg import SloRegistryRule

    findings = list(SloRegistryRule().finalize())
    assert findings == [], [f.format() for f in findings]


# ----------------------------------------------------- nondeterminism taint


def test_taint_bad_flows():
    findings = lint_fixture("taint_bad.py", "repro.obs.taint_bad")
    taint = [f for f in findings if f.rule_id == "determinism-taint"]
    assert len(taint) == 2, [f.format() for f in findings]
    assert all(f.severity == "error" for f in taint)
    # Direct-return flow: wall-clock sample into a tracepoint emit.
    assert "wallclock" in taint[0].message
    assert "tracepoint emit" in taint[0].message
    # Interprocedural flow: RNG into a digest through publish()'s
    # sink-reaching parameter, flagged where the taint enters.
    assert "rng" in taint[1].message
    assert "sink-reaching parameter 'value'" in taint[1].message
    # The legacy per-file rule agrees on the RNG source line (satellite:
    # the taint sanitizer list and the legacy rules share one vocabulary).
    legacy = [f for f in findings if f.rule_id == "det-unseeded-random"]
    assert len(legacy) == 1
    assert legacy[0].line == taint[1].line


def test_taint_ok_sanitizers():
    findings = lint_fixture("taint_ok.py", "repro.obs.taint_ok")
    assert findings == [], [f.format() for f in findings]


# ------------------------------------------------ vectorization safety


def test_purity_bad_escaping_helper():
    findings = lint_fixture("purity_bad.py", "repro.core.purity_bad")
    assert rule_ids(findings) == ["pure-hot-path"]
    f = findings[0]
    assert f.severity == "error"
    assert "_tally" in f.message
    assert "runqueue-load" in f.message  # names the poisoned hot loop
    assert "_SAMPLES" in f.message or "module global" in f.message


def test_purity_ok_bounded_memo():
    findings = lint_fixture("purity_ok.py", "repro.core.purity_ok")
    assert findings == [], [f.format() for f in findings]


def test_purity_out_of_scope():
    # The same file analyzed outside sched/sim/core is not certified.
    findings = lint_fixture("purity_bad.py", "repro.viz.purity_bad")
    assert rule_ids(findings) == []


# ------------------------------------------------ coherence: vec pairing


def test_coherence_vec_pairing_bad():
    findings = lint_fixture(
        "coherence_vec_bad.py", "repro.sched.coherence_vec_bad"
    )
    assert rule_ids(findings) == ["coherence-unbumped-write"] * 2
    # One finding per unpaired bump: mutations without mark_dirty,
    # idle_epoch without mark_idle_change/on_topology_change.
    assert "mark_dirty" in findings[0].message
    assert "mark_idle_change" in findings[1].message


def test_coherence_vec_pairing_ok():
    findings = lint_fixture(
        "coherence_vec_ok.py", "repro.sched.coherence_vec_ok"
    )
    assert findings == [], [f.format() for f in findings]


# ------------------------------------------------ hot-path cost & alloc


def cost_fixture(name, module):
    """Run a fixture through the cost rule alone, with the fixture baseline.

    The full default ruleset co-fires unrelated rules on these trees
    (e.g. ``perf-load-bypass`` on the direct field reads), so the cost
    pairs pin the cost rule's behavior in isolation -- mirroring how the
    complexity gate runs against a committed baseline document.
    """
    from repro.analysis.rules.cost import HotPathCostRule

    path = FIXTURES / name
    assert path.exists(), f"missing fixture {path}"
    analyzer = Analyzer(
        [
            HotPathCostRule(
                baseline_path=str(FIXTURES / "cost_fixture_baseline.json")
            )
        ]
    )
    return analyzer.run([path], modules={path: module})


def test_hot_path_alloc_bad():
    findings = cost_fixture(
        "hot_path_alloc_bad.py", "repro.sched.hot_path_alloc_bad"
    )
    assert rule_ids(findings) == ["hot-path-alloc"]
    f = findings[0]
    assert f.severity == "error"
    assert f.line == 19  # the pre-guard list literal, not the def line
    assert "runqueue-load" in f.message
    assert "per-call" in f.message
    assert "amortized" in f.message  # names the breached declaration


def test_hot_path_alloc_ok():
    findings = cost_fixture(
        "hot_path_alloc_ok.py", "repro.sched.hot_path_alloc_ok"
    )
    assert findings == [], [f.format() for f in findings]


def test_hot_path_complexity_bad():
    findings = cost_fixture(
        "hot_path_complexity_bad.py", "repro.sched.hot_path_complexity_bad"
    )
    # The O(n) scan is on the unconditional path: both the worst-case
    # and the steady-state expression breach the committed O(1) bound.
    assert rule_ids(findings) == ["hot-path-complexity"] * 2
    assert all(f.severity == "warning" for f in findings)
    assert "worst-case" in findings[0].message
    assert "steady-case" in findings[1].message
    assert all("O(n)" in f.message for f in findings)


def test_hot_path_complexity_ok():
    findings = cost_fixture(
        "hot_path_complexity_ok.py", "repro.sched.hot_path_complexity_ok"
    )
    assert findings == [], [f.format() for f in findings]

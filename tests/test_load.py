"""Tests for the load-tracking metric (weight x utilization / group)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sched.load import (
    UTIL_HALFLIFE_US,
    LoadTracker,
    task_load,
)


def test_new_tracker_starts_at_full_util():
    tracker = LoadTracker(now=0)
    assert tracker.util == 1.0


def test_util_decays_while_idle():
    tracker = LoadTracker(now=0)
    tracker.update(UTIL_HALFLIFE_US, was_running=False)
    assert tracker.util == pytest.approx(0.5, rel=0.01)
    tracker.update(2 * UTIL_HALFLIFE_US, was_running=False)
    assert tracker.util == pytest.approx(0.25, rel=0.01)


def test_util_recovers_while_running():
    tracker = LoadTracker(now=0, initial_util=0.0)
    tracker.update(UTIL_HALFLIFE_US, was_running=True)
    assert tracker.util == pytest.approx(0.5, rel=0.01)


def test_update_is_monotone_in_direction():
    tracker = LoadTracker(now=0, initial_util=0.5)
    up = tracker.peek(1000, is_running=True)
    down = tracker.peek(1000, is_running=False)
    assert down < 0.5 < up


def test_stale_update_ignored():
    tracker = LoadTracker(now=100)
    before = tracker.util
    assert tracker.update(50, was_running=False) == before
    assert tracker.last_update_us == 100


def test_peek_does_not_mutate():
    tracker = LoadTracker(now=0)
    tracker.peek(10_000, is_running=False)
    assert tracker.util == 1.0
    assert tracker.last_update_us == 0


@settings(max_examples=200)
@given(
    initial=st.floats(min_value=0.0, max_value=1.0),
    steps=st.lists(
        st.tuples(
            st.integers(min_value=1, max_value=200_000), st.booleans()
        ),
        max_size=30,
    ),
)
def test_util_always_in_unit_interval(initial, steps):
    tracker = LoadTracker(now=0, initial_util=initial)
    now = 0
    for delta, running in steps:
        now += delta
        util = tracker.update(now, was_running=running)
        assert 0.0 <= util <= 1.0


@given(duration=st.integers(min_value=1, max_value=10_000_000))
def test_long_run_converges_to_one(duration):
    tracker = LoadTracker(now=0, initial_util=0.0)
    tracker.update(duration + 20 * UTIL_HALFLIFE_US, was_running=True)
    assert tracker.util > 0.99


def test_task_load_combines_three_factors():
    # weight x util / divisor -- the paper's metric.
    assert task_load(1024, 1.0, 1) == 1024
    assert task_load(1024, 0.5, 1) == 512
    assert task_load(1024, 1.0, 64) == 16
    assert task_load(2048, 0.25, 2) == 256


def test_task_load_clamps_util():
    assert task_load(1024, 1.7, 1) == 1024
    assert task_load(1024, -0.3, 1) == 0


def test_task_load_errors():
    with pytest.raises(ValueError):
        task_load(0, 1.0, 1)
    with pytest.raises(ValueError):
        task_load(1024, 1.0, 0)


def test_group_divisor_matches_paper_example():
    """A make thread (64-thread autogroup) has ~1/64 the load of R."""
    make_thread = task_load(1024, 1.0, 64)
    r_thread = task_load(1024, 1.0, 1)
    assert r_thread / make_thread == 64

"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_bugs_command(capsys):
    assert main(["bugs"]) == 0
    out = capsys.readouterr().out
    assert "Group Imbalance" in out
    assert "138x" in out


def test_topology_command(capsys):
    assert main(["topology"]) == 0
    out = capsys.readouterr().out
    assert "AMD Bulldozer" in out
    assert "one hop -> [1, 2, 4, 6]" in out
    assert "NUMA-2hop" in out


def test_table1_command(capsys):
    assert main(["table1", "--scale", "0.05", "--apps", "ep"]) == 0
    out = capsys.readouterr().out
    assert "Table 1" in out
    assert "ep" in out


def test_table3_command(capsys):
    assert main(["table3", "--scale", "0.05", "--apps", "ep"]) == 0
    assert "Table 3" in capsys.readouterr().out


def test_table2_command(capsys):
    assert main(["table2", "--scale", "0.1", "--runs", "1"]) == 0
    assert "TPC-H" in capsys.readouterr().out


def test_figure5_command(capsys, tmp_path):
    assert main(["figure5", "--svg-dir", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "coverage" in out
    assert list(tmp_path.glob("*.svg"))


def test_figure2_command(capsys):
    assert main(["figure2", "--scale", "0.05"]) == 0
    assert "Figure 2a" in capsys.readouterr().out


def test_figure3_command(capsys):
    assert main(["figure3", "--scale", "0.2"]) == 0
    assert "Figure 3" in capsys.readouterr().out


def test_report_command(tmp_path, capsys):
    out_file = tmp_path / "report.md"
    cache_dir = str(tmp_path / "cache")
    assert main([
        "report", "--scale", "0.03", "--output", str(out_file),
        "--jobs", "2", "--cache-dir", cache_dir,
        "--digests-out", str(tmp_path / "d1.txt"),
        "--utilization-out", str(tmp_path / "util.json"),
    ]) == 0
    text = out_file.read_text()
    assert "# wastedcores reproduction report" in text
    for section in ("## Machine", "## Table 1", "## Table 2", "## Table 3",
                    "## Table 4", "## Figure 2", "## Figure 3",
                    "## Figure 5"):
        assert section in text
    util = json.loads((tmp_path / "util.json").read_text())
    assert util["jobs"] == 2

    # A serial rerun answers from the cache and is byte-identical.
    out_serial = tmp_path / "report-serial.md"
    assert main([
        "report", "--scale", "0.03", "--output", str(out_serial),
        "--jobs", "1", "--cache-dir", cache_dir,
        "--digests-out", str(tmp_path / "d2.txt"),
    ]) == 0
    assert out_serial.read_text() == text
    assert (tmp_path / "d2.txt").read_text() == (
        tmp_path / "d1.txt"
    ).read_text()


def test_report_command_no_cache(tmp_path, capsys):
    out_file = tmp_path / "report.md"
    assert main([
        "report", "--scale", "0.03", "--output", str(out_file), "--no-cache",
        "--cache-dir", str(tmp_path / "cache"),
    ]) == 0
    assert not (tmp_path / "cache").exists()


def test_overhead_command(capsys):
    assert main(["overhead", "--threads", "16"]) == 0
    assert "overhead" in capsys.readouterr().out


@pytest.mark.parametrize(
    "bug",
    ["group-imbalance", "group-construction", "overload-on-wakeup",
     "missing-domains"],
)
def test_demo_commands(capsys, bug):
    assert main(["demo", bug]) == 0
    out = capsys.readouterr().out
    assert f"{bug} [buggy]" in out
    assert f"{bug} [fixed]" in out
    assert "sanity checker" in out


def test_demo_rejects_unknown_bug():
    with pytest.raises(SystemExit):
        main(["demo", "nonexistent"])

"""Local mirror of CI's strict typing gate (skips when mypy is absent).

CI installs mypy and runs ``mypy -p repro.sched -p repro.analysis`` with
the per-layer strictness configured in pyproject.toml; this test runs the
identical command so the gate is reproducible offline too.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

pytest.importorskip("mypy")

REPO = Path(__file__).resolve().parents[1]


def test_strict_gate_on_sched_and_analysis():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    proc = subprocess.run(
        [sys.executable, "-m", "mypy", "-p", "repro.sched", "-p", "repro.analysis"],
        cwd=REPO,
        env=env,
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr

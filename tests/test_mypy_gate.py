"""Local mirror of CI's strict typing gate (skips when mypy is absent).

CI installs mypy and runs it over the strictly-typed layers (scheduler,
static checker, perf harness, obs subsystem) with the per-layer
strictness configured in pyproject.toml; this test runs the identical
command so the gate is reproducible offline too.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

pytest.importorskip("mypy")

REPO = Path(__file__).resolve().parents[1]

STRICT_PACKAGES = ("repro.sched", "repro.analysis", "repro.perf", "repro.obs")


def test_strict_gate_on_typed_layers():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    cmd = [sys.executable, "-m", "mypy"]
    for package in STRICT_PACKAGES:
        cmd += ["-p", package]
    proc = subprocess.run(
        cmd,
        cwd=REPO,
        env=env,
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr

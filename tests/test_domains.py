"""Tests for scheduling-domain and scheduling-group construction.

Includes the paper's published group sets for the buggy construction and
the hotplug-regeneration behavior behind the Missing Scheduling Domains
bug.
"""

import pytest

from repro.sched.domains import DomainBuilder, SchedGroup, describe_domains
from repro.sched.features import SchedFeatures
from repro.topology import (
    amd_bulldozer_64,
    flat_smp,
    single_node,
    two_nodes,
)

BUGGY = SchedFeatures()
FIXED_GROUPS = SchedFeatures().with_fixes("group_construction")
FIXED_DOMAINS = SchedFeatures().with_fixes("missing_domains")


def nodes_of_group(topo, group):
    return sorted({topo.node_of(c) for c in group.cpus})


class TestIntraNodeLevels:
    def test_flat_smp_has_single_mc_level(self):
        builder = DomainBuilder(flat_smp(4), BUGGY)
        domains = builder.domains_of(0)
        assert [d.name for d in domains] == ["MC"]
        assert domains[0].span == frozenset(range(4))
        assert all(len(g) == 1 for g in domains[0].groups)

    def test_smt_level_present_with_smt(self):
        topo = single_node(4, smt_width=2)
        builder = DomainBuilder(topo, BUGGY)
        domains = builder.domains_of(0)
        assert domains[0].name == "SMT"
        assert domains[0].span == frozenset({0, 1})
        assert domains[1].name == "MC"
        # MC groups are the SMT pairs.
        assert {g.cpus for g in domains[1].groups} == {
            frozenset({0, 1}), frozenset({2, 3})
        }

    def test_single_cpu_machine_has_no_domains(self):
        builder = DomainBuilder(single_node(1), BUGGY)
        assert builder.domains_of(0) == []

    def test_levels_numbered_bottom_up(self):
        builder = DomainBuilder(amd_bulldozer_64(), BUGGY)
        levels = [d.level for d in builder.domains_of(0)]
        assert levels == sorted(levels)
        assert levels[0] == 0

    def test_numa_flag(self):
        builder = DomainBuilder(amd_bulldozer_64(), BUGGY)
        domains = builder.domains_of(0)
        assert [d.numa for d in domains] == [False, False, True, True]


class TestPaperGroupSets:
    """Section 3.2's exact published group construction."""

    def setup_method(self):
        self.topo = amd_bulldozer_64()

    def test_buggy_machine_groups_shared_from_core0(self):
        builder = DomainBuilder(self.topo, BUGGY)
        for cpu in (0, 8, 16, 40):
            top = builder.domains_of(cpu)[-1]
            groups = [nodes_of_group(self.topo, g) for g in top.groups]
            assert groups == [[0, 1, 2, 4, 6], [1, 2, 3, 4, 5, 7]]

    def test_buggy_groups_overlap_on_nodes_1_and_2(self):
        builder = DomainBuilder(self.topo, BUGGY)
        top = builder.domains_of(16)[-1]
        for group in top.groups:
            nodes = nodes_of_group(self.topo, group)
            assert 1 in nodes and 2 in nodes

    def test_fixed_groups_are_per_perspective(self):
        builder = DomainBuilder(self.topo, FIXED_GROUPS)
        top_node1 = builder.domains_of(8)[-1]
        top_node2 = builder.domains_of(16)[-1]
        assert nodes_of_group(self.topo, top_node1.groups[0]) == [0, 1, 3, 5, 7]
        assert nodes_of_group(self.topo, top_node2.groups[0]) == [0, 2, 3, 4, 6]

    def test_fixed_groups_separate_nodes_1_and_2(self):
        builder = DomainBuilder(self.topo, FIXED_GROUPS)
        top = builder.domains_of(16)[-1]
        local = top.local_group(16)
        assert 1 not in nodes_of_group(self.topo, local)
        other = [g for g in top.groups if g is not local]
        assert any(
            2 not in nodes_of_group(self.topo, g) for g in other
        )

    def test_one_hop_domain_spans(self):
        builder = DomainBuilder(self.topo, BUGGY)
        one_hop = builder.domains_of(0)[2]
        assert one_hop.name == "NUMA-1hop"
        assert {self.topo.node_of(c) for c in one_hop.span} == {0, 1, 2, 4, 6}
        # Groups at the 1-hop level are single nodes.
        assert all(
            len(nodes_of_group(self.topo, g)) == 1 for g in one_hop.groups
        )

    def test_balance_mask_buggy_is_whole_group(self):
        builder = DomainBuilder(self.topo, BUGGY)
        top = builder.domains_of(16)[-1]
        local = top.local_group(16)
        assert local.balance_mask() == local.cpus

    def test_balance_mask_fixed_is_seed_node(self):
        builder = DomainBuilder(self.topo, FIXED_GROUPS)
        top = builder.domains_of(16)[-1]
        local = top.local_group(16)
        assert local.balance_mask() == frozenset(self.topo.cpus_of_node(2))


class TestHotplugRegeneration:
    """Section 3.4: the dropped cross-node regeneration step."""

    def test_buggy_drops_numa_levels_after_hotplug(self):
        builder = DomainBuilder(amd_bulldozer_64(), BUGGY)
        assert len(builder.domains_of(0)) == 4
        builder.set_cpu_online(5, False)
        builder.set_cpu_online(5, True)
        names = [d.name for d in builder.domains_of(0)]
        assert names == ["SMT", "MC"]
        assert builder.top_level_span(0) == frozenset(range(8))

    def test_fixed_regenerates_numa_levels(self):
        builder = DomainBuilder(amd_bulldozer_64(), FIXED_DOMAINS)
        builder.set_cpu_online(5, False)
        builder.set_cpu_online(5, True)
        names = [d.name for d in builder.domains_of(0)]
        assert names == ["SMT", "MC", "NUMA-1hop", "NUMA-2hop"]
        assert builder.top_level_span(0) == frozenset(range(64))

    def test_bug_triggers_even_when_only_disabling(self):
        builder = DomainBuilder(amd_bulldozer_64(), BUGGY)
        builder.set_cpu_online(5, False)
        assert builder.hotplug_happened
        assert [d.name for d in builder.domains_of(0)] == ["SMT", "MC"]

    def test_offline_cpu_excluded_everywhere(self):
        builder = DomainBuilder(two_nodes(cores_per_node=2), FIXED_DOMAINS)
        builder.set_cpu_online(1, False)
        assert builder.domains_of(1) == []
        for cpu in (0, 2, 3):
            for domain in builder.domains_of(cpu):
                assert 1 not in domain.span
                assert all(1 not in g.cpus for g in domain.groups)

    def test_cannot_offline_last_cpu(self):
        builder = DomainBuilder(single_node(1), BUGGY)
        with pytest.raises(ValueError):
            builder.set_cpu_online(0, False)

    def test_out_of_range_cpu(self):
        builder = DomainBuilder(single_node(2), BUGGY)
        with pytest.raises(ValueError):
            builder.set_cpu_online(7, False)

    def test_online_tracking(self):
        builder = DomainBuilder(single_node(2), BUGGY)
        assert builder.is_online(1)
        builder.set_cpu_online(1, False)
        assert not builder.is_online(1)
        assert builder.online_cpus() == frozenset({0})


class TestSchedGroup:
    def test_contains_and_len(self):
        group = SchedGroup(frozenset({1, 2}))
        assert 1 in group
        assert 3 not in group
        assert len(group) == 2
        assert group.sorted_cpus() == (1, 2)

    def test_balance_mask_defaults_to_cpus(self):
        group = SchedGroup(frozenset({1, 2}))
        assert group.balance_mask() == frozenset({1, 2})

    def test_local_group_lookup(self):
        builder = DomainBuilder(two_nodes(cores_per_node=2), BUGGY)
        domain = builder.domains_of(0)[0]
        assert 0 in domain.local_group(0)
        with pytest.raises(ValueError):
            domain.local_group(99)


def test_describe_domains_readable():
    builder = DomainBuilder(two_nodes(cores_per_node=2), BUGGY)
    text = describe_domains(builder, 0)
    assert "scheduling domains of cpu 0" in text
    assert "MC" in text
    assert "group" in text

"""Observability must be free when off and invisible when on.

Mirrors ``repro.experiments.overhead``: paired runs of one benchmark
workload, comparing (a) nothing attached, (b) the probe bridge attached
with zero subscribers (every tracepoint disabled -- the "compiled-in but
not traced" kernel configuration), and (c) a full metrics+trace session.
The disabled path may cost at most 5% wall clock, and no configuration
may perturb the schedule.
"""

import time

from repro.obs import ObsSession, ProbeTracepointBridge
from repro.obs.tracepoints import TracepointRegistry
from repro.sim.system import System
from repro.sim.timebase import MS, SEC
from repro.topology.presets import two_nodes
from repro.workloads.base import Run, Sleep, TaskSpec

_THREADS = 48
_HORIZON_US = SEC // 2


def _spawn_benchmark(system):
    # Everything forks on CPU 0 so load balancing has real work to do;
    # a run with zero migrations would make the transparency assertions
    # vacuous.
    for i in range(_THREADS):
        if i % 3 == 0:
            def factory(i=i):
                def program():
                    while True:
                        yield Run(2 * MS)
                        yield Sleep(1 * MS)
                return program()
        else:
            def factory(i=i):
                def program():
                    while True:
                        yield Run(5 * MS)
                return program()
        system.spawn(TaskSpec(f"bench-{i}", factory), parent_cpu=0)


def _run(mode):
    """One benchmark run; returns (wall_seconds, migrations, virtual_now)."""
    system = System(two_nodes(cores_per_node=4))
    obs = None
    if mode == "disabled":
        # Bridge wired to a registry nobody subscribed to: every forward
        # is one `tp.enabled` branch.  This is the path the <5% bound
        # covers.
        system.attach_probe(ProbeTracepointBridge(TracepointRegistry()))
    elif mode == "session":
        obs = ObsSession.attach_to(
            system, trace=True, registry=TracepointRegistry()
        )
    _spawn_benchmark(system)
    wall0 = time.perf_counter()
    system.run_for(_HORIZON_US)
    wall = time.perf_counter() - wall0
    if obs is not None:
        obs.close()
    return wall, system.scheduler.total_migrations, system.now


def test_observation_does_not_perturb_the_schedule():
    results = {mode: _run(mode) for mode in ("plain", "disabled", "session")}
    migrations = {mode: r[1] for mode, r in results.items()}
    assert migrations["plain"] > 0
    assert migrations["plain"] == migrations["disabled"] == \
        migrations["session"]
    nows = {r[2] for r in results.values()}
    assert len(nows) == 1


def test_disabled_probe_path_under_five_percent():
    # Interleave plain/disabled repetitions.  Two noise-rejecting
    # estimates, both biased low only by genuine speed: the ratio of the
    # per-mode minima, and the best back-to-back pair (adjacent runs
    # cancel slow machine-load drift).  One untimed warmup pair first;
    # shared-runner noise routinely exceeds the 5% bound with fewer
    # samples.
    _run("plain")
    _run("disabled")
    plain, disabled = [], []
    for _ in range(5):
        plain.append(_run("plain")[0])
        disabled.append(_run("disabled")[0])
    overhead = min(
        (min(disabled) - min(plain)) / min(plain),
        min(d / p for p, d in zip(plain, disabled)) - 1.0,
    )
    assert overhead < 0.05, (
        f"disabled tracepoints cost {overhead:+.1%} "
        f"(plain {min(plain):.3f}s, disabled {min(disabled):.3f}s)"
    )


def test_full_session_records_without_changing_migration_count():
    # Not a bounded-overhead claim (metrics recording is allowed to cost
    # real time) -- only that an attached session actually records.
    system = System(two_nodes(cores_per_node=4))
    obs = ObsSession.attach_to(system, registry=TracepointRegistry())
    _spawn_benchmark(system)
    system.run_for(_HORIZON_US)
    obs.close()
    recorded = obs.metrics.get("sched_migrations_total").total()
    assert recorded == system.scheduler.total_migrations > 0

"""Tests for the scheduler facade: lifecycle, switching, tick, hotplug."""

import pytest

from repro.sched.features import SchedFeatures
from repro.sched.scheduler import Scheduler
from repro.sched.task import Task, TaskState
from repro.topology import single_node

FEATURES = SchedFeatures().without_autogroup()


def make_sched(topo=None):
    return Scheduler(topo or single_node(2), FEATURES)


def new_task(sched, name="t", **kwargs):
    task = Task(name, **kwargs)
    sched.register_task(task)
    return task


class TestLifecycle:
    def test_register_attaches_to_root_cgroup(self):
        sched = make_sched()
        task = new_task(sched)
        assert task.cgroup is sched.cgroups.root
        assert sched.tasks[task.tid] is task

    def test_place_new_task_enqueues(self):
        sched = make_sched()
        task = Task("child")
        cpu = sched.place_new_task(task, parent_cpu=0, now=0)
        assert task.state is TaskState.RUNNABLE
        assert task.cpu == cpu
        assert cpu in sched.pending_dispatch

    def test_enqueue_task_on_respects_affinity(self):
        sched = make_sched()
        task = Task("pinned", allowed_cpus=frozenset({1}))
        with pytest.raises(ValueError):
            sched.enqueue_task_on(task, 0, 0)
        sched.enqueue_task_on(task, 1, 0)
        assert task.cpu == 1

    def test_wake_task_state_validation(self):
        sched = make_sched()
        task = new_task(sched)
        task.state = TaskState.RUNNING
        with pytest.raises(ValueError):
            sched.wake_task(task, None, 0)

    def test_wake_counts_stats(self):
        sched = make_sched()
        task = new_task(sched)
        task.state = TaskState.SLEEPING
        task.prev_cpu = 0
        sched.wake_task(task, None, 0)
        assert task.stats.wakeups == 1
        assert task.stats.wakeups_on_busy_core == 0

    def test_wake_on_busy_core_counted(self):
        sched = make_sched()
        runner = new_task(sched, "runner")
        sched.enqueue_task_on(runner, 0, 0)
        sched.pick_next_task(0, 0)
        other = new_task(sched, "other")
        sched.enqueue_task_on(other, 1, 0)
        sched.pick_next_task(1, 0)
        sleeper = new_task(sched, "sleeper")
        sleeper.state = TaskState.SLEEPING
        sleeper.prev_cpu = 0
        sched.wake_task(sleeper, 0, 0)
        assert sleeper.stats.wakeups_on_busy_core == 1

    def test_exit_detaches(self):
        sched = make_sched()
        task = new_task(sched)
        sched.task_exited(task, 100)
        assert task.state is TaskState.EXITED
        assert task.stats.exit_time_us == 100
        assert task.tid not in sched.tasks
        assert task.cgroup is None


class TestContextSwitch:
    def test_pick_next_runs_leftmost(self):
        sched = make_sched()
        a = new_task(sched, "a")
        b = new_task(sched, "b")
        a.vruntime = 100
        b.vruntime = 5
        sched.cpu(0).rq.enqueue(a, 0)
        sched.cpu(0).rq.enqueue(b, 0)
        picked = sched.pick_next_task(0, 0)
        assert picked is b
        assert b.state is TaskState.RUNNING
        assert b.exec_start_us == 0

    def test_pick_next_empty_marks_idle(self):
        sched = make_sched()
        assert sched.pick_next_task(0, 1000) is None
        assert sched.cpu(0).is_idle
        assert sched.cpu(0).idle_since_us == 0  # booted idle, stays

    def test_pick_next_requires_descheduled(self):
        sched = make_sched()
        task = new_task(sched)
        sched.enqueue_task_on(task, 0, 0)
        sched.pick_next_task(0, 0)
        with pytest.raises(RuntimeError):
            sched.pick_next_task(0, 0)

    def test_wait_time_accounted(self):
        sched = make_sched()
        task = new_task(sched)
        sched.enqueue_task_on(task, 0, 100)
        sched.pick_next_task(0, 500)
        assert task.stats.wait_time_us == 400

    def test_account_charges_vruntime(self):
        sched = make_sched()
        task = new_task(sched)
        sched.enqueue_task_on(task, 0, 0)
        sched.pick_next_task(0, 0)
        sched.account(0, 2000)
        assert task.vruntime == 2000
        assert sched.cpu(0).busy_time_us == 2000

    def test_deschedule_requeue(self):
        sched = make_sched()
        task = new_task(sched)
        sched.enqueue_task_on(task, 0, 0)
        sched.pick_next_task(0, 0)
        returned = sched.deschedule(0, 1000, requeue=True)
        assert returned is task
        assert task.state is TaskState.RUNNABLE
        assert task.stats.preemptions == 1
        assert sched.cpu(0).rq.nr_queued == 1

    def test_deschedule_blocking(self):
        sched = make_sched()
        task = new_task(sched)
        sched.enqueue_task_on(task, 0, 0)
        sched.pick_next_task(0, 0)
        sched.deschedule(0, 1000, requeue=False)
        assert task.cpu is None
        assert sched.cpu(0).rq.nr_running == 0

    def test_deschedule_empty_cpu_is_noop(self):
        sched = make_sched()
        assert sched.deschedule(0, 0, requeue=True) is None


class TestMigration:
    def test_migrate_queued_task(self):
        sched = make_sched()
        task = new_task(sched)
        sched.enqueue_task_on(task, 0, 0)
        runner = new_task(sched, "runner")
        sched.enqueue_task_on(runner, 0, 0)
        sched.pick_next_task(0, 0)
        moving = sched.cpu(0).rq.pick_next()
        sched.migrate_task(moving, 0, 1, 0, "test")
        assert moving.cpu == 1
        assert sched.total_migrations == 1
        assert 1 in sched.pending_dispatch

    def test_cannot_migrate_running_task(self):
        sched = make_sched()
        task = new_task(sched)
        sched.enqueue_task_on(task, 0, 0)
        sched.pick_next_task(0, 0)
        with pytest.raises(ValueError):
            sched.migrate_task(task, 0, 1, 0, "test")


class TestTick:
    def test_tick_preempts_when_slice_over(self):
        sched = make_sched()
        # Pin both tasks to cpu 0 so balancing cannot spread them and the
        # tick has to time-slice.
        a = new_task(sched, "a", allowed_cpus=frozenset({0}))
        b = new_task(sched, "b", allowed_cpus=frozenset({0}))
        sched.enqueue_task_on(a, 0, 0)
        sched.enqueue_task_on(b, 0, 0)
        sched.pick_next_task(0, 0)
        sched.drain_pending()
        # Run long past the slice.
        for ms in range(1, 10):
            sched.tick(ms * 1000)
            if 0 in sched.pending_resched:
                break
        assert 0 in sched.pending_resched

    def test_nohz_balances_for_idle_cpus(self):
        sched = make_sched(single_node(4))
        tasks = [new_task(sched, f"t{i}") for i in range(4)]
        for t in tasks:
            sched.enqueue_task_on(t, 0, 0)
        sched.pick_next_task(0, 0)
        sched.drain_pending()
        # The first balance becomes due one interval (4 ms) after boot.
        for ms in range(1, 7):
            sched.tick(ms * 1000)
        # Idle cpus pulled the queued tasks.
        spread = [sched.cpu(c).rq.nr_running for c in range(4)]
        assert sum(spread[1:]) >= 2


class TestHotplug:
    def test_offline_evicts_queued_tasks(self):
        sched = make_sched()
        a = new_task(sched, "a")
        sched.enqueue_task_on(a, 1, 0)
        evicted = sched.set_cpu_online(1, False, 0)
        assert evicted == [a]
        assert a.state is TaskState.BLOCKED
        assert not sched.cpu(1).online

    def test_offline_with_running_task_rejected(self):
        sched = make_sched()
        a = new_task(sched, "a")
        sched.enqueue_task_on(a, 1, 0)
        sched.pick_next_task(1, 0)
        with pytest.raises(RuntimeError):
            sched.set_cpu_online(1, False, 0)

    def test_reonline(self):
        sched = make_sched()
        sched.set_cpu_online(1, False, 0)
        sched.set_cpu_online(1, True, 50)
        cpu = sched.cpu(1)
        assert cpu.online
        assert cpu.tickless
        assert cpu.idle_since_us == 50


class TestInvariantHelpers:
    def test_can_steal(self):
        sched = make_sched()
        a = new_task(sched, "a")
        b = new_task(sched, "b")
        sched.enqueue_task_on(a, 0, 0)
        sched.enqueue_task_on(b, 0, 0)
        sched.pick_next_task(0, 0)
        assert sched.can_steal(1, 0)
        assert not sched.can_steal(0, 0)
        assert not sched.can_steal(0, 1)

    def test_can_steal_respects_affinity(self):
        sched = make_sched()
        a = new_task(sched, "a")
        pinned = new_task(sched, "p", allowed_cpus=frozenset({0}))
        sched.enqueue_task_on(a, 0, 0)
        sched.enqueue_task_on(pinned, 0, 0)
        sched.pick_next_task(0, 0)
        # Which task is queued depends on tie-break; make both pinned-aware.
        queued = list(sched.cpu(0).rq.queued_tasks())
        can = sched.can_steal(1, 0)
        assert can == any(t.can_run_on(1) for t in queued)

    def test_runnable_count(self):
        sched = make_sched()
        for i in range(3):
            sched.enqueue_task_on(new_task(sched, f"t{i}"), 0, 0)
        assert sched.runnable_count() == 3


def test_idle_cpus_sorted_longest_first():
    sched = make_sched(single_node(3))
    sched.cpu(0).idle_since_us = 500
    sched.cpu(1).idle_since_us = 100
    sched.cpu(2).idle_since_us = 900
    assert [c.cpu_id for c in sched.idle_cpus()] == [1, 0, 2]


def test_repr_mentions_features():
    assert "buggy" in repr(make_sched())

"""Tests for the nice-to-weight table and vruntime math."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sched.weights import (
    MAX_NICE,
    MIN_NICE,
    NICE_0_WEIGHT,
    PRIO_TO_WEIGHT,
    PRIO_TO_WMULT,
    nice_for_weight,
    vruntime_delta,
    weight_for_nice,
)


def test_nice_zero_weight():
    assert weight_for_nice(0) == NICE_0_WEIGHT == 1024


def test_table_kernel_anchor_values():
    # Spot-check against the kernel's sched_prio_to_weight table.
    assert weight_for_nice(-20) == 88761
    assert weight_for_nice(-10) == 9548
    assert weight_for_nice(10) == 110
    assert weight_for_nice(19) == 15


def test_table_monotonically_decreasing():
    assert list(PRIO_TO_WEIGHT) == sorted(PRIO_TO_WEIGHT, reverse=True)


def test_each_nice_step_is_about_25_percent():
    for i in range(len(PRIO_TO_WEIGHT) - 1):
        ratio = PRIO_TO_WEIGHT[i] / PRIO_TO_WEIGHT[i + 1]
        assert 1.1 < ratio < 1.4


def test_out_of_range_nice():
    with pytest.raises(ValueError):
        weight_for_nice(MIN_NICE - 1)
    with pytest.raises(ValueError):
        weight_for_nice(MAX_NICE + 1)


def test_wmult_inverse():
    for w, inv in zip(PRIO_TO_WEIGHT, PRIO_TO_WMULT):
        assert inv == (1 << 32) // w


def test_vruntime_delta_nice0_is_identity():
    assert vruntime_delta(1000, NICE_0_WEIGHT) == 1000


def test_vruntime_delta_scales_with_weight():
    heavy = vruntime_delta(1000, weight_for_nice(-5))
    light = vruntime_delta(1000, weight_for_nice(5))
    assert heavy < 1000 < light


def test_vruntime_delta_errors():
    with pytest.raises(ValueError):
        vruntime_delta(-1, 1024)
    with pytest.raises(ValueError):
        vruntime_delta(10, 0)


def test_nice_for_weight_roundtrip():
    for nice in range(MIN_NICE, MAX_NICE + 1):
        assert nice_for_weight(weight_for_nice(nice)) == nice


def test_nice_for_weight_nearest():
    assert nice_for_weight(1000) == 0  # closest to 1024
    with pytest.raises(ValueError):
        nice_for_weight(0)


@given(
    exec_us=st.integers(min_value=0, max_value=10**9),
    nice=st.integers(min_value=MIN_NICE, max_value=MAX_NICE),
)
def test_vruntime_delta_nonnegative_and_monotone(exec_us, nice):
    delta = vruntime_delta(exec_us, weight_for_nice(nice))
    assert delta >= 0
    if exec_us > 0:
        assert vruntime_delta(exec_us + 1000, weight_for_nice(nice)) >= delta

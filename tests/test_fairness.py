"""CFS fidelity: weighted fairness on a shared core.

CFS divides CPU proportionally to weight; each nice step is ~1.25x.  These
tests pin competing tasks to one core and verify the achieved CPU-time
ratios, plus the basic interactivity property (a waking task preempts a
long-running hog quickly thanks to the sleeper bonus).
"""

import pytest

from repro.sched.features import SchedFeatures
from repro.sched.weights import weight_for_nice
from repro.sim.system import System
from repro.sim.timebase import MS, SEC
from repro.topology import single_node
from repro.workloads.base import Run, Sleep, TaskSpec

PIN = frozenset({0})


def pinned_hog(name, nice=0):
    def factory():
        def program():
            while True:
                yield Run(5 * MS)
        return program()

    return TaskSpec(name, factory, nice=nice, allowed_cpus=PIN)


def run_pair(nice_a, nice_b, duration_us=2 * SEC):
    system = System(single_node(1), SchedFeatures().without_autogroup(),
                    seed=1)
    a = system.spawn(pinned_hog("a", nice_a), on_cpu=0)
    b = system.spawn(pinned_hog("b", nice_b), on_cpu=0)
    system.run_for(duration_us)
    return a.stats.total_runtime_us, b.stats.total_runtime_us


def test_equal_nice_splits_evenly():
    ra, rb = run_pair(0, 0)
    assert ra + rb == pytest.approx(2 * SEC, rel=0.01)
    assert ra == pytest.approx(rb, rel=0.1)


@pytest.mark.parametrize("nice_delta", [1, 3, 5])
def test_cpu_share_follows_weight_ratio(nice_delta):
    ra, rb = run_pair(0, nice_delta)
    expected = weight_for_nice(0) / weight_for_nice(nice_delta)
    measured = ra / rb
    assert measured == pytest.approx(expected, rel=0.25)


def test_three_way_fairness():
    system = System(single_node(1), SchedFeatures().without_autogroup(),
                    seed=1)
    tasks = [system.spawn(pinned_hog(f"t{i}"), on_cpu=0) for i in range(3)]
    system.run_for(3 * SEC)
    runtimes = [t.stats.total_runtime_us for t in tasks]
    assert sum(runtimes) == pytest.approx(3 * SEC, rel=0.01)
    for r in runtimes:
        assert r == pytest.approx(SEC, rel=0.15)


def test_sleeper_gets_prompt_service():
    """An interactive task waking against a hog runs within a few ms
    (the sleeper vruntime bonus + wakeup preemption)."""
    system = System(single_node(1), SchedFeatures().without_autogroup(),
                    seed=1)
    system.spawn(pinned_hog("hog"), on_cpu=0)
    waits = []

    def interactive():
        def program():
            for _ in range(50):
                yield Run(200)
                yield Sleep(5 * MS)
        return program()

    task = system.spawn(
        TaskSpec("ui", interactive, allowed_cpus=PIN), on_cpu=0
    )
    system.run_for(1 * SEC)
    assert task.stats.wakeups >= 40
    # Mean wait per scheduling = total wait / dispatches; must be small.
    mean_wait = task.stats.wait_time_us / max(task.stats.wakeups, 1)
    assert mean_wait < 3 * MS
    del waits


def test_wakeup_preemption_ablation_slows_interactive():
    """With wakeup preemption disabled, the waking task waits for the
    tick/slice boundary instead -- visibly worse latency."""
    from dataclasses import replace

    results = {}
    for enabled in (True, False):
        features = replace(
            SchedFeatures().without_autogroup(),
            wakeup_preemption_enabled=enabled,
        )
        system = System(single_node(1), features, seed=1)
        system.spawn(pinned_hog("hog"), on_cpu=0)

        def interactive():
            def program():
                for _ in range(50):
                    yield Run(200)
                    yield Sleep(5 * MS)
            return program()

        task = system.spawn(
            TaskSpec("ui", interactive, allowed_cpus=PIN), on_cpu=0
        )
        system.run_for(1 * SEC)
        results[enabled] = task.stats.wait_time_us / max(
            task.stats.wakeups, 1
        )
    assert results[False] > results[True]

"""Tests for the ``repro bench`` harness (repro.perf).

Timing-dependent assertions are deliberately absent: wall-clock speedups
are machine- and load-dependent, so those live in the BENCH trajectory,
not the test suite.  What is pinned here is everything deterministic --
the benchmark registry, the metric bookkeeping, the digest contract
(fast and baseline modes hash to the same schedule), and the JSON
trajectory round trip.
"""

import json

from repro.cli import main
from repro.perf import (
    BENCHMARKS,
    append_run,
    benchmark_names,
    check_digests,
    format_results,
    load_trajectory,
    run_benchmark,
)
from repro.perf.bench import BenchResult, ModeMetrics


def _metrics(wall=2.0, events=100):
    return ModeMetrics(
        wall_seconds=wall,
        sim_us=1_000_000,
        events_fired=events,
        balance_calls=50,
        migrations=5,
        heap_compactions=1,
    )


def _result(name="table4", baseline_wall=None, digest="d" * 64):
    baseline = None if baseline_wall is None else _metrics(baseline_wall)
    return BenchResult(
        name=name,
        quick=True,
        fast=_metrics(),
        baseline=baseline,
        digest=digest,
        digest_match=None if baseline is None else True,
    )


def test_registry_names():
    assert benchmark_names() == [
        "table4", "figure2", "soak64", "report_wall",
    ]
    for name, spec in BENCHMARKS.items():
        assert spec.name == name
        assert spec.description


def test_mode_metrics_rates_and_json():
    metrics = _metrics(wall=2.0, events=100)
    assert metrics.events_per_sec == 50.0
    assert metrics.balance_calls_per_sec == 25.0
    obj = metrics.to_json()
    assert obj["wall_seconds"] == 2.0
    assert obj["events_per_sec"] == 50.0
    degenerate = _metrics(wall=0.0)
    assert degenerate.events_per_sec == 0.0


def test_speedup_is_baseline_over_fast():
    assert _result().speedup is None
    assert _result(baseline_wall=5.0).speedup == 2.5
    assert _result(baseline_wall=5.0).to_json()["speedup"] == 2.5


def test_quick_benchmark_digest_identical_across_modes():
    # The harness's core claim, exercised through the public entry point:
    # fast and baseline runs of a seeded benchmark hash to the same
    # schedule.  figure2 is the cheapest of the three.
    result = run_benchmark("figure2", quick=True, compare=True)
    assert result.digest_match is True
    assert result.baseline is not None
    assert result.fast.sim_us == result.baseline.sim_us
    assert result.fast.events_fired == result.baseline.events_fired
    assert result.fast.migrations == result.baseline.migrations
    assert len(result.digest) == 64


def test_trajectory_round_trip(tmp_path):
    path = tmp_path / "BENCH_test.json"
    assert load_trajectory(path) == {"version": 1, "runs": []}
    append_run(path, [_result()], label="first")
    append_run(path, [_result(baseline_wall=4.0)], label="second")
    data = load_trajectory(path)
    assert [run["label"] for run in data["runs"]] == ["first", "second"]
    latest = data["runs"][-1]["benchmarks"]["table4"]
    assert latest["speedup"] == 2.0
    assert latest["digest"] == "d" * 64
    # The file itself is valid, stable JSON.
    assert json.loads(path.read_text())["version"] == 1


def test_check_digests_flags_drift_only(tmp_path):
    path = tmp_path / "BENCH_test.json"
    append_run(path, [_result(digest="a" * 64)])
    assert check_digests(path, [_result(digest="a" * 64)]) == []
    mismatches = check_digests(path, [_result(digest="b" * 64)])
    assert mismatches == [("table4", "a" * 64, "b" * 64)]
    # Benchmarks unknown to the stored run are not drift.
    assert check_digests(path, [_result(name="brand-new")]) == []
    # An absent trajectory has nothing to drift from.
    assert check_digests(tmp_path / "missing.json", [_result()]) == []


def test_format_results_renders_both_modes():
    text = format_results([_result(baseline_wall=5.0)])
    assert "table4" in text
    assert "baseline" in text
    assert "2.50x" in text
    assert "DIGEST MISMATCH" not in text
    broken = _result(baseline_wall=5.0)
    broken.digest_match = False
    assert "DIGEST MISMATCH" in format_results([broken])


def test_cli_bench_quick(tmp_path, capsys):
    out = tmp_path / "BENCH_cli.json"
    code = main([
        "bench", "--quick", "--only", "figure2",
        "--out", str(out), "--label", "cli-test",
    ])
    assert code == 0
    stdout = capsys.readouterr().out
    assert "figure2" in stdout
    data = load_trajectory(out)
    assert data["runs"][0]["label"] == "cli-test"
    assert "figure2" in data["runs"][0]["benchmarks"]


def test_cli_bench_check_digests_drift_fails(tmp_path):
    out = tmp_path / "BENCH_cli.json"
    assert main(["bench", "--quick", "--only", "figure2",
                 "--out", str(out)]) == 0
    # Same seed, same schedule: a fresh run matches its own trajectory.
    assert main(["bench", "--quick", "--only", "figure2",
                 "--check-digests", str(out)]) == 0
    # Corrupt the stored digest: the check must fail the run.
    data = json.loads(out.read_text())
    data["runs"][-1]["benchmarks"]["figure2"]["digest"] = "0" * 64
    out.write_text(json.dumps(data))
    assert main(["bench", "--quick", "--only", "figure2",
                 "--check-digests", str(out)]) == 1


def test_cli_bench_unknown_benchmark():
    assert main(["bench", "--quick", "--only", "nope"]) == 2


# ------------------------------------------------------------- SLO columns


def test_bench_specs_carry_slo_companions():
    # report_wall has no single representative scenario; the rest do.
    assert BENCHMARKS["report_wall"].slo is None
    for name in ("table4", "figure2", "soak64"):
        assert BENCHMARKS[name].slo is not None, name


def test_bench_result_json_carries_slo_fields():
    slo = {
        "wakeup_p50_us": 100.0,
        "wakeup_p95_us": 200.0,
        "wakeup_p99_us": 400.0,
        "jitter_us": 3.5,
        "samples": 42,
    }
    result = _result()
    assert result.slo is None
    assert result.to_json()["slo"] is None
    with_slo = BenchResult(
        name="table4",
        quick=True,
        fast=_metrics(),
        baseline=None,
        digest="d" * 64,
        digest_match=None,
        slo=slo,
    )
    assert with_slo.to_json()["slo"] == slo
    text = format_results([with_slo])
    assert "SLO table4" in text
    assert "p50/p95/p99 = 100.0/200.0/400.0us" in text
    assert "jitter 3.5us (n=42)" in text


def test_slo_companion_measures_real_run():
    from repro.perf.bench import _slo_bug
    from repro.sim.timebase import MS

    fields = _slo_bug("overload-on-wakeup", 10 * MS)
    assert set(fields) == {
        "wakeup_p50_us", "wakeup_p95_us", "wakeup_p99_us",
        "jitter_us", "samples",
    }
    assert fields["samples"] > 0
    # Deterministic: the companion is seeded, so a rerun agrees exactly.
    assert _slo_bug("overload-on-wakeup", 10 * MS) == fields


# ------------------------------------------- profile harvest & comparison


def test_qualname_index_resolves_methods_and_functions():
    # The harvest maps cProfile's (file, line, co_name) back to the
    # dotted qualnames the committed baseline uses as keys -- including
    # the class component cProfile itself does not know.
    import repro.sched.scheduler as sched_mod
    from repro.perf.bench import _module_of, _qualname_index

    path = sched_mod.__file__
    assert _module_of(path) == "repro.sched.scheduler"
    index = _qualname_index(path)
    tick_line = sched_mod.Scheduler.tick.__code__.co_firstlineno
    assert index[tick_line] == "Scheduler.tick"


def test_harvest_profile_weights_filters_and_sums():
    import repro.sched.cfs as cfs_mod
    from repro.perf.bench import harvest_profile_weights

    line = cfs_mod.account_runtime.__code__.co_firstlineno

    class FakeStats:
        stats = {
            (cfs_mod.__file__, line, "account_runtime"):
                (10, 10, 0.25, 0.5, {}),
            ("/usr/lib/python3/json/decoder.py", 1, "decode"):
                (1, 1, 9.0, 9.0, {}),
        }

    weights = harvest_profile_weights(FakeStats())
    assert weights == {"repro.sched.cfs.account_runtime": 0.25}


def test_format_profile_comparison_ranks_roots_and_residue():
    from repro.perf.bench import format_profile_comparison

    baseline = {
        "profile_weights": {
            "repro.sched.balance.balance_domain": 1.5,
            "repro.sched.scheduler.Scheduler.tick": 1.0,
        },
        "roots": {
            "runqueue-load": {
                "function": "repro.sched.runqueue.RunQueue.load",
            },
        },
    }
    fresh = {
        "repro.sched.runqueue.RunQueue.load": 0.2,
        "repro.sched.balance.balance_domain": 0.5,
    }
    text = format_profile_comparison(fresh, baseline)
    lines = text.splitlines()
    assert lines[0] == "profile vs committed baseline weights:"
    body = "\n".join(lines[1:])
    # The hot root row shows the fresh harvest with no committed weight.
    assert "runqueue-load" in body
    assert "sched.runqueue.RunQueue.load" in body
    # Residue rows carry the delta when both sides have evidence.
    assert "-1.000" in body
    assert "(residue)" in body
    # Aligned: every body line starts at the same two-space indent.
    assert all(line.startswith("  ") for line in lines[1:])


# ----------------------------------------------------------------- trend


def _trend_fixture(tmp_path):
    path = tmp_path / "BENCH_trend.json"
    first = _result(baseline_wall=4.0)
    first.digest_match = True
    append_run(path, [first], label="pr1")
    second = _result(baseline_wall=6.0)
    second.variant = "vec"
    second.digest_match = True
    append_run(path, [second, _result(name="figure2")], label="pr2")
    return path


def test_format_trend_groups_by_benchmark(tmp_path):
    from repro.perf import format_trend

    data = load_trajectory(_trend_fixture(tmp_path))
    text = format_trend(data)
    lines = text.splitlines()
    header = lines[0].split()
    assert header == [
        "benchmark", "run", "variant", "wall(s)", "speedup", "digest_match",
    ]
    # table4 appears once (group label), with both runs under it in order.
    assert sum(1 for ln in lines if ln.startswith("table4")) == 1
    assert "0:pr1" in text and "1:pr2" in text
    assert "2.00x" in text and "3.00x" in text
    assert "vec" in text
    # figure2 only exists in the second run; its row has no speedup.
    fig_rows = [ln for ln in lines if ln.startswith("figure2")]
    assert len(fig_rows) == 1 and "1:pr2" in fig_rows[0]
    # Columns align: the variant column starts at one offset everywhere.
    offset = lines[0].index("variant")
    values = {ln[offset:].split()[0] for ln in lines[1:] if len(ln) > offset}
    assert values <= {"fast", "vec"}
    assert format_trend({"version": 1, "runs": []}) == "(empty trajectory)"


def test_cli_bench_trend(tmp_path, capsys):
    path = _trend_fixture(tmp_path)
    assert main(["bench", "--trend", str(path)]) == 0
    out = capsys.readouterr().out
    assert "benchmark" in out and "table4" in out and "figure2" in out
    assert "2.00x" in out
    # --trend never runs a benchmark: a bogus --only slips through
    # because the command exits before validation touches it.
    assert main(["bench", "--trend", str(tmp_path / "missing.json")]) == 0
    assert "(empty trajectory)" in capsys.readouterr().out
    bad = tmp_path / "bad.json"
    bad.write_text("{\"not\": \"a trajectory\"}")
    assert main(["bench", "--trend", str(bad)]) == 2


def test_cli_bench_profile_writes_weights_and_comparison(tmp_path, capsys):
    out = tmp_path / "BENCH_prof.json"
    baseline = tmp_path / "COST_baseline.json"
    baseline.write_text(json.dumps({
        "profile_weights": {
            "repro.sched.balance.balance_domain": 1.5,
        },
        "roots": {
            "runqueue-load": {
                "function": "repro.sched.runqueue.RunQueue.load",
            },
        },
    }))
    code = main([
        "bench", "--quick", "--only", "figure2", "--profile",
        "--out", str(out), "--cost-baseline", str(baseline),
    ])
    assert code == 0
    stdout = capsys.readouterr().out
    assert "profile vs committed baseline weights:" in stdout
    assert "runqueue-load" in stdout
    weights_path = tmp_path / "BENCH_prof.profile.figure2.json"
    assert (tmp_path / "BENCH_prof.profile.figure2.txt").exists()
    weights = json.loads(weights_path.read_text())
    # Harvested keys are in-repo dotted qualnames with real tottimes.
    assert all(k.startswith("repro.") for k in weights)
    assert any(k.endswith("Scheduler.tick") for k in weights)

"""Edge cases across modules: engine reentrancy, timeouts, presets."""

import pytest

from repro.sim.engine import EventLoop, SimulationError
from repro.sim.system import System
from repro.sim.timebase import MS, SEC
from repro.topology import single_node
from repro.topology.presets import ring_numa

from tests.conftest import hog_spec


def test_event_loop_not_reentrant():
    loop = EventLoop()
    errors = []

    def nested():
        try:
            loop.run_until(100)
        except SimulationError as exc:
            errors.append(exc)

    loop.schedule(10, nested)
    loop.run_until(50)
    assert len(errors) == 1


def test_run_while_not_reentrant():
    loop = EventLoop()
    errors = []

    def nested():
        try:
            loop.run_while(lambda: True, 100)
        except SimulationError as exc:
            errors.append(exc)

    loop.schedule(10, nested)
    loop.run_until(50)
    assert len(errors) == 1


def test_run_until_done_timeout_returns_false(uma_system):
    task = uma_system.spawn(hog_spec(total_us=None))  # endless
    assert not uma_system.run_until_done([task], 50 * MS)
    assert uma_system.now == 50 * MS
    assert task.alive


def test_run_until_done_with_no_tasks(uma_system):
    assert uma_system.run_until_done([], 10 * MS)


def test_ring_numa_preset():
    topo = ring_numa(nodes=5, cores_per_node=2)
    assert topo.num_cpus == 10
    assert topo.interconnect.diameter() == 2
    # Ring of 5: node 0's neighbors are 1 and 4.
    assert topo.interconnect.neighbors(0) == frozenset({1, 4})


def test_system_start_idempotent():
    system = System(single_node(2), seed=1)
    system.start()
    system.start()
    system.run_for(5 * MS)
    # Exactly one tick chain: 5 hooks would fire for 5 ticks.
    ticks = []
    system.tick_hooks.append(ticks.append)
    system.run_for(3 * MS)
    assert len(ticks) == 3


def test_spawn_before_and_after_start(uma_system):
    a = uma_system.spawn(hog_spec("a", total_us=2 * MS))
    uma_system.run_for(1 * MS)
    b = uma_system.spawn(hog_spec("b", total_us=2 * MS))
    assert uma_system.run_until_done([a, b], 1 * SEC)


def test_hotplug_all_but_one_core():
    system = System(single_node(4), seed=1)
    task = system.spawn(hog_spec(total_us=20 * MS))
    for cpu in (1, 2, 3):
        system.hotplug_cpu(cpu, False)
    assert system.run_until_done([task], 1 * SEC)
    assert task.stats.total_runtime_us == 20 * MS


def test_offline_last_cpu_rejected():
    system = System(single_node(2), seed=1)
    system.hotplug_cpu(1, False)
    with pytest.raises(ValueError):
        system.hotplug_cpu(0, False)

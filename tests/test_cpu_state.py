"""Tests for per-CPU scheduler state (idle tracking, avg_idle EWMA)."""

from repro.sched.cpu import Cpu


def test_boots_idle_and_tickless():
    cpu = Cpu(3)
    assert cpu.online
    assert cpu.is_idle
    assert cpu.tickless
    assert cpu.idle_since_us == 0
    assert cpu.avg_idle_us == 1_000_000  # long-term idle at boot


def test_busy_idle_transitions_accumulate_time():
    cpu = Cpu(0)
    cpu.mark_busy(1000)
    assert cpu.idle_time_us == 1000
    assert not cpu.tickless
    cpu.mark_idle(5000)
    assert cpu.idle_since_us == 5000
    assert cpu.tickless
    cpu.mark_busy(7000)
    assert cpu.idle_time_us == 3000


def test_mark_idle_idempotent():
    cpu = Cpu(0)
    cpu.mark_busy(100)
    cpu.mark_idle(200)
    cpu.mark_idle(900)  # no-op: already idle since 200
    assert cpu.idle_since_us == 200


def test_avg_idle_ewma_tracks_short_periods():
    cpu = Cpu(0)
    now = 0
    # Many 1 ms idle periods: the EWMA converges toward 1000 us.
    for _ in range(60):
        cpu.mark_idle(now)
        now += 1000
        cpu.mark_busy(now)
        now += 1000
    assert cpu.avg_idle_us < 2000


def test_avg_idle_grows_after_long_sleep():
    cpu = Cpu(0)
    cpu.mark_busy(0)
    cpu.mark_idle(0)
    cpu.mark_busy(8_000_000)  # one 8 s idle period
    assert cpu.avg_idle_us > 1_000_000


def test_idle_duration():
    cpu = Cpu(0)
    cpu.mark_busy(0)
    assert cpu.idle_duration(100) == 0
    cpu.mark_idle(100)
    assert cpu.idle_duration(350) == 250


def test_nohz_balancer_flag_cleared_on_busy():
    cpu = Cpu(0)
    cpu.nohz_balancer = True
    cpu.mark_busy(10)
    assert not cpu.nohz_balancer


def test_repr_states():
    cpu = Cpu(2)
    assert "idle" in repr(cpu)
    cpu.online = False
    assert "offline" in repr(cpu)

"""SARIF 2.1.0 export tests: document shape, suppressions, CLI paths."""

import json

from repro.analysis import Finding, default_rules, run_lint
from repro.analysis.sarif import SARIF_SCHEMA, SARIF_VERSION, to_sarif

BAD_SOURCE = "import random\n\njitter = random.random()\n"


def _capture():
    lines = []
    return lines, lines.append


def sample_findings():
    return [
        Finding(
            "det-unseeded-random", "pkg/a.py", 3, 9,
            "unseeded random", snippet="jitter = random.random()",
        ),
        Finding(
            "coherence-unbumped-write", "pkg/b.py", 0, 0,
            "unbumped write", snippet="self._tree.remove(k)",
            severity="error", suppressed=True,
        ),
    ]


def test_sarif_document_shape():
    doc = to_sarif(sample_findings(), default_rules())
    assert doc["version"] == SARIF_VERSION == "2.1.0"
    assert doc["$schema"] == SARIF_SCHEMA
    (run,) = doc["runs"]
    driver = run["tool"]["driver"]
    assert driver["name"] == "repro-lint"
    rule_ids = [r["id"] for r in driver["rules"]]
    assert rule_ids == sorted(rule_ids)
    for result in run["results"]:
        # Every result's ruleIndex must resolve to its own ruleId.
        assert rule_ids[result["ruleIndex"]] == result["ruleId"]


def test_sarif_result_fields():
    doc = to_sarif(sample_findings())
    first, second = doc["runs"][0]["results"]
    assert first["level"] == "warning"
    assert second["level"] == "error"
    region = first["locations"][0]["physicalLocation"]["region"]
    assert region == {"startLine": 3, "startColumn": 10}  # 1-based column
    # Line 0 (file-level finding) clamps to the schema minimum of 1.
    clamped = second["locations"][0]["physicalLocation"]["region"]
    assert clamped["startLine"] == 1 and clamped["startColumn"] == 1
    fp = first["partialFingerprints"]["reproLintFingerprint/v1"]
    assert fp == sample_findings()[0].fingerprint()


def test_sarif_suppressions():
    findings = sample_findings()
    baseline = {findings[0].fingerprint()}
    doc = to_sarif(findings, baseline_fingerprints=baseline)
    first, second = doc["runs"][0]["results"]
    assert [s["kind"] for s in first["suppressions"]] == ["external"]
    assert [s["kind"] for s in second["suppressions"]] == ["inSource"]
    # Without a baseline, the active finding carries no suppressions key.
    plain = to_sarif(findings)["runs"][0]["results"][0]
    assert "suppressions" not in plain


def test_run_lint_sarif_format(tmp_path):
    target = tmp_path / "bad.py"
    target.write_text(BAD_SOURCE)
    lines, out = _capture()
    assert run_lint(paths=[str(target)], fmt="sarif", out=out) == 1
    doc = json.loads("\n".join(lines))
    assert doc["version"] == "2.1.0"
    (result,) = doc["runs"][0]["results"]
    assert result["ruleId"] == "det-unseeded-random"


def test_run_lint_sarif_file_alongside_text(tmp_path):
    target = tmp_path / "bad.py"
    target.write_text(BAD_SOURCE)
    sarif_file = tmp_path / "lint.sarif"
    lines, out = _capture()
    code = run_lint(
        paths=[str(target)], sarif_path=str(sarif_file), out=out
    )
    assert code == 1
    assert lines[-1].endswith("1 finding")  # text report still rendered
    doc = json.loads(sarif_file.read_text())
    assert len(doc["runs"][0]["results"]) == 1

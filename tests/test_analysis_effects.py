"""The effect engine: summaries, purity lattice, vectorization report.

Toy-project tests pin each classification mechanism (sources, global
writes, bounded memo writes, the id()-as-memo-key exemption); the
real-tree tests are the acceptance criteria -- the shipped fast-path
closure certifies with zero escaping members, and the report the CI
artifact is built from says so in machine-readable form.
"""

import ast
import json
from pathlib import Path

from repro.analysis.effects import (
    EffectEngine,
    HOT_ROOTS,
    classify_function,
    root_function,
    vectorization_report,
)

REPO = Path(__file__).resolve().parents[1]

TOY = '''
import random
import time

_LOG = []


class RunQueue:
    def __init__(self):
        self._tasks = []
        self._cached_load = None
        self.mutations = 0

    def load(self):
        if self._cached_load is None:
            self._cached_load = plain_sum(self._tasks)
        return self._cached_load

    def noisy_load(self):
        _LOG.append(time.time())
        return plain_sum(self._tasks)


class Registry:
    def __init__(self):
        self._memo = {}

    def lookup(self, group):
        # id() used directly as a private memo key: the sanctioned
        # interned-object idiom, not a nondeterminism source.
        entry = self._memo.get(id(group))
        if entry is None:
            entry = len(self._memo)
            self._memo[id(group)] = entry
        return entry

    def leak(self, group):
        # id() escaping into a returned value IS a source.
        return id(group)


def plain_sum(items):
    total = 0
    for item in items:
        total += item
    return total


def draw():
    return random.random()
'''

MOD = "repro.core.toy"


def toy_engine():
    return EffectEngine([(MOD, "<toy>", ast.parse(TOY))])


def q(name):
    return f"{MOD}.{name}"


# ------------------------------------------------------------- summaries


def test_summary_sources_and_globals():
    engine = toy_engine()
    noisy = engine.summaries[q("RunQueue.noisy_load")]
    kinds = {e.kind for e in noisy.sources}
    assert "wallclock" in kinds
    assert len(noisy.globals_written) == 1
    assert "_LOG" in noisy.globals_written[0].detail
    draw = engine.summaries[q("draw")]
    assert {e.kind for e in draw.sources} == {"rng"}


def test_memo_key_idiom_is_not_a_source():
    engine = toy_engine()
    lookup = engine.summaries[q("Registry.lookup")]
    assert lookup.sources == ()
    leak = engine.summaries[q("Registry.leak")]
    assert {e.kind for e in leak.sources} == {"idhash"}


# -------------------------------------------------------- classification


def test_purity_lattice():
    engine = toy_engine()
    assert classify_function(engine, q("plain_sum"))[0] == "pure"
    # Self-confined memo write + nothing else: bounded.
    category, reasons = classify_function(engine, q("RunQueue.load"))
    assert category == "bounded", reasons
    # Wall clock + module-global append: escaping, with named reasons.
    category, reasons = classify_function(engine, q("RunQueue.noisy_load"))
    assert category == "escaping"
    text = " ".join(reasons)
    assert "_LOG" in text
    assert "wall" in text or "wallclock" in text
    # The memo-key idiom classifies bounded despite the id() calls.
    assert classify_function(engine, q("Registry.lookup"))[0] == "bounded"


def test_transitive_closure_reaches_helpers():
    engine = toy_engine()
    members = engine.closure([q("RunQueue.load")])
    assert q("plain_sum") in members
    assert q("draw") not in members


# ---------------------------------------------------------- real tree


def shipped_engine():
    from repro.analysis.effectcheck import installed_files

    return EffectEngine(installed_files())


def test_shipped_hot_roots_all_found():
    engine = shipped_engine()
    for label in sorted(HOT_ROOTS):
        cls, name = HOT_ROOTS[label]
        fn = root_function(engine, cls, name)
        assert fn is not None, f"hot root {label} not found in the tree"


def test_shipped_fast_path_closure_certifies():
    # The acceptance criterion of the pure-hot-path rule: every function
    # reachable from the with_fastpath memo accessors is pure or bounded.
    engine = shipped_engine()
    report = vectorization_report(engine)
    assert report["summary"]["escaping"] == 0, report["unsafe"]
    assert report["unsafe"] == []
    assert len(report["safe"]) == len(report["functions"])
    # The report is the CI artifact: it must be JSON-serializable and
    # name every hot root it certified from.
    encoded = json.loads(json.dumps(report))
    assert set(encoded["roots"]) == set(HOT_ROOTS)
    assert encoded["version"] >= 1


def test_shipped_report_function_entries_are_complete():
    engine = shipped_engine()
    report = vectorization_report(engine)
    for entry in report["functions"]:
        assert entry["category"] in ("pure", "bounded", "escaping")
        assert entry["qualname"]
        if entry["category"] == "escaping":
            assert entry["reasons"]

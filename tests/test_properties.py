"""Property-based tests on whole-system invariants.

With every fix applied, the scheduler must be work-conserving in the long
run for arbitrary workload mixes; tasks must never be lost or duplicated;
vruntime floors must be monotonic.
"""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.invariant import find_violations
from repro.sched.features import ALL_FIXED, SchedFeatures
from repro.sched.task import TaskState
from repro.sim.system import System
from repro.sim.timebase import MS, SEC
from repro.topology import single_node, two_nodes
from repro.workloads.base import Run, Sleep, TaskSpec


def mixed_spec(name, rng):
    """A random but bounded program: run/sleep bursts, then exit."""
    bursts = [
        (rng.randint(200, 4000), rng.randint(0, 2000))
        for _ in range(rng.randint(1, 12))
    ]

    def factory():
        def program():
            for run_us, sleep_us in bursts:
                yield Run(run_us)
                if sleep_us:
                    yield Sleep(sleep_us)
        return program()

    return TaskSpec(name, factory), sum(b[0] for b in bursts)


workload_strategy = st.tuples(
    st.integers(min_value=0, max_value=2**30),  # rng seed
    st.integers(min_value=1, max_value=14),     # task count
    st.sampled_from(["uma", "numa"]),
)


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(params=workload_strategy)
def test_all_tasks_complete_and_runtime_conserved(params):
    """No task is lost and each receives exactly its requested CPU time."""
    seed, count, kind = params
    rng = random.Random(seed)
    topo = single_node(4) if kind == "uma" else two_nodes(cores_per_node=2)
    system = System(topo, ALL_FIXED.without_autogroup(), seed=seed)
    tasks, demands = [], []
    for i in range(count):
        spec, demand = mixed_spec(f"t{i}", rng)
        tasks.append(system.spawn(spec, parent_cpu=rng.randrange(4)))
        demands.append(demand)
    assert system.run_until_done(tasks, 120 * SEC)
    for task, demand in zip(tasks, demands):
        assert task.state is TaskState.EXITED
        assert task.stats.total_runtime_us == demand
    # Nothing still queued anywhere.
    assert system.scheduler.runnable_count() == 0


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(seed=st.integers(min_value=0, max_value=2**30))
def test_fixed_scheduler_work_conserving_long_term(seed):
    """With all fixes on, invariant violations never persist: sampled at
    every tick over a saturated mixed workload, the violation fraction
    stays small (short transients only)."""
    from repro.stats.metrics import IdleOverloadSampler

    rng = random.Random(seed)
    system = System(
        two_nodes(cores_per_node=2), ALL_FIXED.without_autogroup(),
        seed=seed,
    )
    sampler = IdleOverloadSampler()
    sampler.attach(system)
    tasks = []
    for i in range(8):
        spec, _ = mixed_spec(f"t{i}", rng)
        tasks.append(system.spawn(spec, parent_cpu=0))
    system.run_until_done(tasks, 60 * SEC)
    assert sampler.violation_fraction <= 0.35


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**30))
def test_min_vruntime_monotone_under_load(seed):
    rng = random.Random(seed)
    system = System(single_node(2), ALL_FIXED.without_autogroup(), seed=seed)
    floors = {0: 0, 1: 0}

    def check(now):
        for cpu in system.scheduler.cpus:
            assert cpu.rq.min_vruntime >= floors[cpu.cpu_id]
            floors[cpu.cpu_id] = cpu.rq.min_vruntime

    system.tick_hooks.append(check)
    tasks = []
    for i in range(5):
        spec, _ = mixed_spec(f"t{i}", rng)
        tasks.append(system.spawn(spec, parent_cpu=0))
    system.run_until_done(tasks, 60 * SEC)


@settings(max_examples=8, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**30),
    fixes=st.sets(
        st.sampled_from(
            ["group_imbalance", "group_construction",
             "overload_on_wakeup", "missing_domains"]
        )
    ),
)
def test_no_task_ever_on_two_queues(seed, fixes):
    """Across any fix combination, the runqueue occupancy always equals
    the number of runnable tasks (no duplication, no loss)."""
    rng = random.Random(seed)
    features = SchedFeatures().without_autogroup()
    if fixes:
        features = features.with_fixes(*fixes)
    system = System(two_nodes(cores_per_node=2), features, seed=seed)

    def check(now):
        on_queues = sum(
            c.rq.nr_running for c in system.scheduler.cpus if c.online
        )
        runnable = sum(
            1
            for t in system.scheduler.tasks.values()
            if t.state in (TaskState.RUNNABLE, TaskState.RUNNING)
        )
        assert on_queues == runnable

    system.tick_hooks.append(check)
    tasks = []
    for i in range(6):
        spec, _ = mixed_spec(f"t{i}", rng)
        tasks.append(system.spawn(spec, parent_cpu=rng.randrange(4)))
    system.run_until_done(tasks, 60 * SEC)


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**30))
def test_affinity_always_respected(seed):
    """A pinned task is never observed on a disallowed CPU."""
    rng = random.Random(seed)
    system = System(
        two_nodes(cores_per_node=2), ALL_FIXED.without_autogroup(),
        seed=seed,
    )
    masks = {}
    tasks = []
    for i in range(6):
        mask = frozenset(rng.sample(range(4), rng.randint(1, 3)))
        spec, _ = mixed_spec(f"t{i}", rng)
        spec.allowed_cpus = mask
        task = system.spawn(spec, parent_cpu=min(mask))
        masks[task.tid] = mask
        tasks.append(task)

    def check(now):
        for task in tasks:
            if task.cpu is not None:
                assert task.cpu in masks[task.tid]

    system.tick_hooks.append(check)
    system.run_until_done(tasks, 60 * SEC)


@settings(max_examples=8, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**30),
    plug_cpu=st.integers(min_value=1, max_value=3),
)
def test_hotplug_churn_never_loses_tasks(seed, plug_cpu):
    """Random hotplug cycles mid-workload: every task still completes
    with its exact CPU demand (fixed scheduler)."""
    rng = random.Random(seed)
    system = System(
        two_nodes(cores_per_node=2), ALL_FIXED.without_autogroup(),
        seed=seed,
    )
    tasks, demands = [], []
    for i in range(6):
        spec, demand = mixed_spec(f"t{i}", rng)
        tasks.append(system.spawn(spec, parent_cpu=0))
        demands.append(demand)
    for _ in range(3):
        system.run_for(rng.randint(1, 5) * MS)
        system.hotplug_cpu(plug_cpu, False)
        system.run_for(rng.randint(1, 5) * MS)
        system.hotplug_cpu(plug_cpu, True)
    assert system.run_until_done(tasks, 120 * SEC)
    for task, demand in zip(tasks, demands):
        assert task.state is TaskState.EXITED
        assert task.stats.total_runtime_us == demand


def test_violation_free_when_fixed_and_saturated():
    """Deterministic anchor: a saturated fixed system shows no violation
    at any scheduling-quiescent point."""
    system = System(single_node(4), ALL_FIXED.without_autogroup(), seed=1)
    specs = [
        TaskSpec(
            f"h{i}",
            lambda: iter([Run(40 * MS)]),
        )
        for i in range(4)
    ]
    tasks = [system.spawn(s, on_cpu=i) for i, s in enumerate(specs)]
    system.run_for(20 * MS)
    assert find_violations(system.scheduler, system.now) == []
    system.run_until_done(tasks, 1 * SEC)

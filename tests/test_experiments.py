"""Smoke tests for every experiment driver (tiny scales).

Each table/figure driver must run end to end, produce the paper's
qualitative shape, and render a report.
"""

import pytest

from repro.experiments.figure2 import render_figure2, run_figure2
from repro.experiments.figure3 import render_figure3, run_figure3
from repro.experiments.figure5 import render_figure5, run_figure5
from repro.experiments.figures_topology import (
    format_bulldozer_domains,
    format_figure1,
    format_figure4,
    format_table5,
)
from repro.experiments.harness import (
    ExperimentConfig,
    averaged,
    improvement_pct,
    node_cpuset,
    quick_scale,
    speedup,
)
from repro.experiments.overhead import format_overhead, run_overhead
from repro.experiments.report import Table, format_table
from repro.experiments.table1 import format_table1, run_table1
from repro.experiments.table2 import format_table2, run_table2
from repro.experiments.table3 import format_table3, run_table3
from repro.experiments.table4 import bug_descriptions, format_table4
from repro.sched.features import SchedFeatures
from repro.topology import two_nodes


# -- harness utilities ---------------------------------------------------------


def test_speedup_and_improvement():
    assert speedup(10.0, 2.0) == 5.0
    assert improvement_pct(100.0, 87.0) == pytest.approx(-13.0)
    with pytest.raises(ValueError):
        speedup(1.0, 0.0)
    with pytest.raises(ValueError):
        improvement_pct(0.0, 1.0)


def test_averaged_varies_seed():
    seen = []
    averaged(lambda s: seen.append(s) or 0.0, repetitions=3, base_seed=10)
    assert len(set(seen)) == 3
    with pytest.raises(ValueError):
        averaged(lambda s: 0.0, repetitions=0)


def test_quick_scale_env(monkeypatch):
    monkeypatch.delenv("REPRO_SCALE", raising=False)
    assert quick_scale(0.5) == 0.5
    monkeypatch.setenv("REPRO_SCALE", "0.25")
    assert quick_scale(0.5) == 0.25
    monkeypatch.setenv("REPRO_SCALE", "-1")
    with pytest.raises(ValueError):
        quick_scale()


def test_quick_scale_error_messages(monkeypatch):
    # Whitespace/empty values mean "unset", not an error.
    monkeypatch.setenv("REPRO_SCALE", "  ")
    assert quick_scale(0.75) == 0.75
    # Non-numeric values name themselves and show a valid example.
    monkeypatch.setenv("REPRO_SCALE", "fast")
    with pytest.raises(
        ValueError, match=r"REPRO_SCALE must be a number such as 0\.25"
    ):
        quick_scale()
    # Finite and positive are required; the message echoes the input.
    for bad in ("nan", "inf", "0", "-0.5"):
        monkeypatch.setenv("REPRO_SCALE", bad)
        with pytest.raises(
            ValueError,
            match=f"must be a positive finite number, got {bad!r}",
        ):
            quick_scale()


def test_node_cpuset():
    topo = two_nodes(cores_per_node=2)
    assert node_cpuset(topo, [1]) == frozenset({2, 3})


def test_experiment_config_builders():
    config = ExperimentConfig(SchedFeatures(), topology_factory=lambda: two_nodes())
    system = config.build_system()
    assert system.topology.num_cpus == 8
    other = config.with_features(SchedFeatures().with_fixes("all"))
    assert other.features.fix_group_imbalance


def test_report_table_rendering():
    table = Table("demo", ["a", "b"])
    table.add_row("x", 1.5)
    table.add_note("n")
    text = format_table(table)
    assert "demo" in text and "1.50" in text and "note: n" in text
    with pytest.raises(ValueError):
        table.add_row("only-one")


# -- tables -------------------------------------------------------------------


def test_table1_shape_smoke():
    rows = run_table1(scale=0.05, apps=["ep", "lu"])
    factors = {r.app: r.speedup for r in rows}
    assert factors["lu"] > factors["ep"] > 1.0
    text = format_table1(rows)
    assert "lu" in text and "speedup" in text


def test_table2_smoke():
    rows = run_table2(scale=0.15, q18_repeats=1, runs=1)
    assert [r.config for r in rows] == [
        "None", "Group Imbalance", "Overload-on-Wakeup", "Both",
    ]
    assert rows[0].q18.improvement_pct is None
    assert rows[1].q18.improvement_pct is not None
    text = format_table2(rows)
    assert "TPC-H" in text


def test_table3_shape_smoke():
    rows = run_table3(scale=0.05, apps=["ep", "lu"])
    factors = {r.app: r.speedup for r in rows}
    assert factors["lu"] > 1.5
    assert factors["ep"] > 1.5
    assert "Missing Scheduling Domains" in format_table3(rows)


def test_table4_render():
    text = format_table4()
    assert "Group Imbalance" in text
    assert "138x" in text
    text = format_table4(measured_max={"Group Imbalance": "7x"})
    assert "7x" in text
    assert "fix flag" in bug_descriptions()


# -- figures ------------------------------------------------------------------


def test_figure2_smoke(tmp_path):
    result = run_figure2(scale=0.2)
    # The buggy run wastes more core-time on the R nodes, and the make
    # job completes faster with the fix.
    assert (
        result.buggy.idle_node_core_seconds
        > 2 * result.fixed.idle_node_core_seconds
    )
    assert result.make_improvement_pct < 0
    text = render_figure2(result, bins=24, svg_dir=str(tmp_path))
    assert "Figure 2a" in text
    assert (tmp_path / "figure2a.svg").exists()
    assert (tmp_path / "figure2b.svg").exists()
    assert (tmp_path / "figure2c.svg").exists()


def test_figure3_smoke(tmp_path):
    result = run_figure3(scale=0.3)
    assert (
        result.buggy.busy_wakeup_fraction
        > result.fixed.busy_wakeup_fraction
    )
    text = render_figure3(result, bins=24, svg_dir=str(tmp_path))
    assert "Figure 3" in text
    assert "wakeups on busy cores" in text


def test_figure5_smoke(tmp_path):
    result = run_figure5()
    # The buggy observer only ever considers its own node (1/8 of the
    # machine); the fixed one reaches across nodes (its one-hop domain at
    # least -- 5 of 8 nodes -- plus the machine level when it is the
    # designated idle core).
    assert result.buggy.coverage <= 0.15
    assert result.fixed.coverage >= 0.5
    assert result.buggy.balancing_calls > 0
    text = render_figure5(result, svg_dir=str(tmp_path))
    assert "coverage" in text


def test_topology_renderings():
    assert "AMD Bulldozer" in format_table5()
    fig4 = format_figure4()
    assert "node 0: one hop -> [1, 2, 4, 6]" in fig4
    assert "distance = 2" in fig4
    fig1 = format_figure1()
    assert "scheduling domains" in fig1
    assert "NUMA" in format_bulldozer_domains(0)


# -- overhead -----------------------------------------------------------------


def test_overhead_checker_does_not_perturb():
    result = run_overhead(threads=32, run_virtual_s=0.3)
    assert result.behavior_identical
    assert result.checks_performed >= 0
    assert "behavior identical = True" in format_overhead(result)

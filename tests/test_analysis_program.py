"""Unit tests for the whole-program layer: symbols, call graph, dataflow.

A toy project exercises each mechanism in isolation; the final test pins
the analyzer's *derived* accessor dependency facts (over the real shipped
tree) to the hand-written table the runtime sanitizer uses -- the bridge
that keeps the static and dynamic halves of the coherence contract from
drifting apart.
"""

import ast
from pathlib import Path

from repro.analysis.callgraph import CallGraph
from repro.analysis.core import iter_python_files, module_for_path
from repro.analysis.dataflow import CoverageAnalysis, build_summaries
from repro.analysis.rules.coherence import derived_facts
from repro.analysis.symbols import SymbolTable, TypeRef

REPO = Path(__file__).resolve().parents[1]

TOY = '''
class Epoch:
    def __init__(self):
        self.value = 0

    def bump(self):
        self.value += 1


class Queue:
    def __init__(self, epoch: "Epoch"):
        self._items = []
        self.count = 0
        self.mutations = 0
        self.load_epoch = epoch

    def push(self, item):
        self._items.append(item)
        self.count += 1
        self.mutations += 1
        self.load_epoch.bump()

    def raw_push(self, item):
        self._items.append(item)

    def safe_push(self, item):
        self.raw_push(item)
        self.mutations += 1
        self.load_epoch.bump()

    def orphan_push(self, item):
        self._items.append(item)

    @property
    def depth(self) -> int:
        return self.count


class Box:
    def __init__(self):
        self.q = Queue(Epoch())

    def queue(self) -> "Queue":
        return self.q

    def poke(self):
        return self.queue().depth
'''

MOD = "repro.sched.toy"


def toy_project():
    files = [(MOD, "<toy>", ast.parse(TOY))]
    table = SymbolTable.build(files)
    graph = CallGraph.build(table, files)
    return table, graph


def q(name):
    return f"{MOD}.{name}"


# ------------------------------------------------------------------ symbols


def test_field_types_from_init():
    table, _ = toy_project()
    # Annotated-parameter assignment propagates the annotation.
    assert table.field_type("Queue", "load_epoch") == TypeRef("Epoch")
    # Constructor-call assignment infers the constructed class.
    assert table.field_type("Box", "q") == TypeRef("Queue")


def test_method_and_return_annotation_lookup():
    table, _ = toy_project()
    fn = table.method("Box", "queue")
    assert fn is not None and fn.qualname == q("Box.queue")
    ret = table.return_type(fn)
    assert ret == TypeRef("Queue")  # string forward ref reparsed


def test_mutating_methods_fixpoint():
    table, _ = toy_project()
    muts = table.mutating_methods("Queue")
    # push/raw_push append to a list field; depth only reads.
    assert "push" in muts and "raw_push" in muts
    assert "depth" not in muts


# --------------------------------------------------------------- call graph


def test_call_and_property_edges():
    _, graph = toy_project()
    kinds = {
        (s.callee, s.kind) for s in graph.callees(q("Box.poke"))
    }
    # self.queue() resolves through the receiver; .depth is a property
    # access chased through queue()'s return annotation.
    assert (q("Box.queue"), "call") in kinds
    assert (q("Queue.depth"), "property") in kinds


def test_constructor_edges():
    _, graph = toy_project()
    callees = {s.callee for s in graph.callees(q("Box.__init__"))}
    assert q("Queue.__init__") in callees
    assert q("Epoch.__init__") in callees


# ----------------------------------------------------------------- dataflow


def test_summaries_record_writes_and_bumps():
    table, _ = toy_project()
    summaries = build_summaries(table)
    push = summaries[q("Queue.push")]
    writes = {(w.attr, w.kind) for w in push.writes}
    assert ("_items", "mutate") in writes
    assert ("count", "augassign") in writes
    assert {name for name, _line in push.bumps} == {
        "mutations", "load_epoch"
    }


def test_coverage_intra_and_interprocedural():
    table, graph = toy_project()
    coverage = CoverageAnalysis(build_summaries(table), graph)

    def write_line(qual, attr):
        (line,) = {
            w.line for w in coverage.summaries[qual].writes
            if w.attr == attr
        }
        return line

    # Intra: push bumps after its own writes.
    line = write_line(q("Queue.push"), "_items")
    assert coverage.covered(q("Queue.push"), line, "mutations")
    assert coverage.covered(q("Queue.push"), line, "load_epoch")
    # Inter: raw_push is bump-free but its only caller bumps after the
    # call site.
    line = write_line(q("Queue.raw_push"), "_items")
    assert coverage.covered(q("Queue.raw_push"), line, "mutations")
    assert coverage.covered(q("Queue.raw_push"), line, "load_epoch")
    # A write in a function nothing calls is uncovered: dead or
    # dynamically-invoked code must opt out explicitly.
    line = write_line(q("Queue.orphan_push"), "_items")
    assert not coverage.covered(q("Queue.orphan_push"), line, "mutations")


def test_bumped_counters_survive_recursion():
    src = (
        "class Epoch:\n"
        "    def bump(self):\n"
        "        self.value += 1\n"
        "def ping(n, load_epoch):\n"
        "    load_epoch.bump()\n"
        "    if n:\n"
        "        pong(n - 1, load_epoch)\n"
        "def pong(n, load_epoch):\n"
        "    if n:\n"
        "        ping(n - 1, load_epoch)\n"
    )
    files = [(MOD, "<toy>", ast.parse(src))]
    table = SymbolTable.build(files)
    graph = CallGraph.build(table, files)
    coverage = CoverageAnalysis(build_summaries(table), graph)
    # Both directions of the cycle see the bump; neither caches an
    # incomplete mid-cycle set.
    assert "load_epoch" in coverage.bumped_counters(q("ping"))
    assert "load_epoch" in coverage.bumped_counters(q("pong"))


# ------------------------------------------------------- derived facts pin


def test_derived_facts_match_sanitizer_table():
    """The analyzer's derived dependency sets ARE the sanitizer's table.

    ``repro.sched`` cannot import ``repro.analysis`` (layering), so the
    sanitizer restates the facts; this equality is what keeps the static
    and runtime halves of the contract in lockstep.
    """
    from repro.sched.sanitizer import FACTS

    files = []
    for path in iter_python_files([REPO / "src" / "repro"]):
        files.append(
            (
                module_for_path(path),
                str(path),
                ast.parse(path.read_text(encoding="utf-8")),
            )
        )
    facts = derived_facts(files)
    assert facts == FACTS

"""Legacy setup shim: the offline environment lacks the `wheel` package, so
PEP 660 editable installs are unavailable; this enables `pip install -e .`
via the classic setuptools develop path.  All metadata lives in
pyproject.toml."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
)

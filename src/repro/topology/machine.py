"""Machine model: cores, SMT siblings, LLC/NUMA nodes.

The model mirrors what the Linux scheduler sees through the architecture
topology hooks: for each logical CPU, which CPUs share functional units (SMT
siblings), which share the last-level cache (on the paper's machine, an LLC
is a NUMA node of eight cores), and how the NUMA nodes are wired together
(:class:`~repro.topology.interconnect.Interconnect`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.topology.interconnect import Interconnect


@dataclass(frozen=True)
class Core:
    """One logical CPU.

    Attributes
    ----------
    cpu_id:
        Global core number, dense from 0.
    node_id:
        NUMA node (= LLC domain) this core belongs to.
    smt_id:
        Index of the SMT sibling group within the node; cores with the same
        ``(node_id, smt_id)`` share functional units.
    """

    cpu_id: int
    node_id: int
    smt_id: int


@dataclass(frozen=True)
class Node:
    """One NUMA node: a set of cores sharing a last-level cache."""

    node_id: int
    cpu_ids: Tuple[int, ...]

    def __contains__(self, cpu_id: int) -> bool:
        return cpu_id in self.cpu_ids


@dataclass
class MachineSpec:
    """Human-readable description of a machine (the paper's Table 5)."""

    name: str = "generic"
    clock_ghz: float = 2.1
    memory_gb: int = 512
    interconnect_name: str = "HyperTransport 3.0"
    caches: str = "768 KB L1, 16 MB L2, 12 MB L3 per CPU"
    extra: Dict[str, str] = field(default_factory=dict)


class MachineTopology:
    """Cores grouped into SMT pairs and NUMA nodes over an interconnect.

    Parameters
    ----------
    nodes:
        Number of NUMA nodes.
    cores_per_node:
        Cores in each node (all nodes are homogeneous).
    smt_width:
        Number of cores sharing functional units (2 on the paper's
        Bulldozer machine: "pairs of cores share an FPU").  Use 1 to disable
        the SMT level.
    interconnect:
        Link graph between nodes; defaults to fully connected.
    spec:
        Optional hardware description used only for reporting.
    """

    def __init__(
        self,
        nodes: int,
        cores_per_node: int,
        smt_width: int = 1,
        interconnect: Optional[Interconnect] = None,
        spec: Optional[MachineSpec] = None,
    ):
        if nodes <= 0:
            raise ValueError(f"nodes must be positive, got {nodes}")
        if cores_per_node <= 0:
            raise ValueError(
                f"cores_per_node must be positive, got {cores_per_node}"
            )
        if smt_width <= 0:
            raise ValueError(f"smt_width must be positive, got {smt_width}")
        if cores_per_node % smt_width != 0:
            raise ValueError(
                f"cores_per_node ({cores_per_node}) must be a multiple of "
                f"smt_width ({smt_width})"
            )
        if interconnect is None:
            interconnect = Interconnect.fully_connected(max(nodes, 1))
        if interconnect.num_nodes != nodes:
            raise ValueError(
                f"interconnect has {interconnect.num_nodes} nodes, "
                f"topology has {nodes}"
            )
        interconnect.validate()

        self.num_nodes = nodes
        self.cores_per_node = cores_per_node
        self.smt_width = smt_width
        self.interconnect = interconnect
        self.spec = spec or MachineSpec()

        self.cores: List[Core] = []
        self.nodes: List[Node] = []
        for node_id in range(nodes):
            cpu_ids = []
            for local in range(cores_per_node):
                cpu_id = node_id * cores_per_node + local
                smt_id = local // smt_width
                self.cores.append(Core(cpu_id, node_id, smt_id))
                cpu_ids.append(cpu_id)
            self.nodes.append(Node(node_id, tuple(cpu_ids)))

    @property
    def num_cpus(self) -> int:
        """Total number of logical CPUs."""
        return self.num_nodes * self.cores_per_node

    def core(self, cpu_id: int) -> Core:
        """The :class:`Core` record for ``cpu_id``."""
        if not 0 <= cpu_id < self.num_cpus:
            raise ValueError(f"cpu {cpu_id} out of range [0, {self.num_cpus})")
        return self.cores[cpu_id]

    def node_of(self, cpu_id: int) -> int:
        """NUMA node id of a CPU."""
        return self.core(cpu_id).node_id

    def cpus_of_node(self, node_id: int) -> Tuple[int, ...]:
        """All CPU ids in a node, ascending."""
        if not 0 <= node_id < self.num_nodes:
            raise ValueError(
                f"node {node_id} out of range [0, {self.num_nodes})"
            )
        return self.nodes[node_id].cpu_ids

    def cpus_of_nodes(self, node_ids: Sequence[int]) -> FrozenSet[int]:
        """Union of the CPU sets of several nodes."""
        cpus: set = set()
        for node_id in node_ids:
            cpus.update(self.cpus_of_node(node_id))
        return frozenset(cpus)

    def smt_siblings(self, cpu_id: int) -> FrozenSet[int]:
        """CPUs sharing functional units with ``cpu_id`` (including it)."""
        core = self.core(cpu_id)
        return frozenset(
            c.cpu_id
            for c in self.cores
            if c.node_id == core.node_id and c.smt_id == core.smt_id
        )

    def llc_siblings(self, cpu_id: int) -> FrozenSet[int]:
        """CPUs sharing the last-level cache (= the node) with ``cpu_id``."""
        return frozenset(self.cpus_of_node(self.node_of(cpu_id)))

    def all_cpus(self) -> FrozenSet[int]:
        """The full CPU set of the machine."""
        return frozenset(range(self.num_cpus))

    def node_distance(self, cpu_a: int, cpu_b: int) -> int:
        """Hop distance between the nodes hosting two CPUs."""
        return self.interconnect.distance(
            self.node_of(cpu_a), self.node_of(cpu_b)
        )

    def shares_llc(self, cpu_a: int, cpu_b: int) -> bool:
        """True when two CPUs share a last-level cache."""
        return self.node_of(cpu_a) == self.node_of(cpu_b)

    def describe(self) -> str:
        """Multi-line human-readable summary (Table 5 style)."""
        lines = [
            f"Machine: {self.spec.name}",
            f"CPUs: {self.num_cpus} "
            f"({self.num_nodes} nodes x {self.cores_per_node} cores, "
            f"SMT width {self.smt_width})",
            f"Clock frequency: {self.spec.clock_ghz} GHz",
            f"Caches: {self.spec.caches}",
            f"Memory: {self.spec.memory_gb} GB",
            f"Interconnect: {self.spec.interconnect_name} "
            f"(diameter {self.interconnect.diameter()} hop(s))",
        ]
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"MachineTopology(nodes={self.num_nodes}, "
            f"cores_per_node={self.cores_per_node}, "
            f"smt_width={self.smt_width})"
        )

"""NUMA interconnect graph with hop distances.

Modern multi-socket machines do not fully connect their NUMA nodes: a link
graph (HyperTransport on the paper's AMD machine) determines how many hops a
memory access or a cache-coherence message travels.  CFS mirrors this graph
when it builds the upper scheduling-domain levels: nodes one hop apart are
grouped before nodes two hops apart.

The graph is deliberately dependency-free (plain adjacency sets + BFS); the
machines we model have at most a few dozen nodes.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, Iterable, List, Sequence, Tuple


class Interconnect:
    """An undirected graph of NUMA nodes with unit-cost links.

    Parameters
    ----------
    num_nodes:
        Number of NUMA nodes, numbered ``0 .. num_nodes - 1``.
    links:
        Iterable of undirected edges ``(a, b)``.  Self-links are rejected.
        An empty iterable with ``num_nodes > 1`` yields a disconnected graph,
        which :meth:`validate` reports.
    """

    def __init__(self, num_nodes: int, links: Iterable[Tuple[int, int]] = ()):
        if num_nodes <= 0:
            raise ValueError(f"num_nodes must be positive, got {num_nodes}")
        self.num_nodes = num_nodes
        self._adjacency: List[set] = [set() for _ in range(num_nodes)]
        for a, b in links:
            self.add_link(a, b)
        self._distances: List[List[int]] = []
        self._dirty = True

    def add_link(self, a: int, b: int) -> None:
        """Add an undirected link between nodes ``a`` and ``b``."""
        self._check_node(a)
        self._check_node(b)
        if a == b:
            raise ValueError(f"self-link on node {a} is not allowed")
        self._adjacency[a].add(b)
        self._adjacency[b].add(a)
        self._dirty = True

    def neighbors(self, node: int) -> FrozenSet[int]:
        """Nodes exactly one hop from ``node`` (excluding ``node`` itself)."""
        self._check_node(node)
        return frozenset(self._adjacency[node])

    def distance(self, a: int, b: int) -> int:
        """Hop count between ``a`` and ``b`` (0 for a == b).

        Raises ``ValueError`` if the nodes are not connected.
        """
        d = self.distance_matrix()[a][b]
        if d < 0:
            raise ValueError(f"nodes {a} and {b} are not connected")
        return d

    def distance_matrix(self) -> List[List[int]]:
        """All-pairs hop counts; ``-1`` marks unreachable pairs."""
        if self._dirty:
            self._distances = [self._bfs(src) for src in range(self.num_nodes)]
            self._dirty = False
        return self._distances

    def nodes_within(self, node: int, hops: int) -> FrozenSet[int]:
        """All nodes reachable from ``node`` in at most ``hops`` hops.

        Includes ``node`` itself (distance 0).  This is the set CFS uses when
        building the per-distance scheduling-domain levels.
        """
        self._check_node(node)
        if hops < 0:
            raise ValueError(f"hops must be non-negative, got {hops}")
        row = self.distance_matrix()[node]
        return frozenset(n for n, d in enumerate(row) if 0 <= d <= hops)

    def diameter(self) -> int:
        """Largest finite hop count between any pair of connected nodes."""
        best = 0
        for row in self.distance_matrix():
            finite = [d for d in row if d >= 0]
            if finite:
                best = max(best, max(finite))
        return best

    def is_connected(self) -> bool:
        """True when every node can reach every other node."""
        return all(d >= 0 for row in self.distance_matrix() for d in row)

    def is_symmetric_diameter(self) -> bool:
        """True when all node pairs sit at the same (non-zero) distance.

        Fully-connected interconnects are "symmetric" in the paper's sense;
        the Bulldozer machine is not, which is what triggers the Scheduling
        Group Construction bug.
        """
        distances = {
            d
            for row in self.distance_matrix()
            for d in row
            if d > 0
        }
        return len(distances) <= 1

    def validate(self) -> None:
        """Raise ``ValueError`` if the interconnect is unusable."""
        if self.num_nodes > 1 and not self.is_connected():
            raise ValueError("interconnect graph is not connected")

    def links(self) -> List[Tuple[int, int]]:
        """Sorted list of undirected edges, each reported once as (lo, hi)."""
        out = []
        for a in range(self.num_nodes):
            for b in self._adjacency[a]:
                if a < b:
                    out.append((a, b))
        return sorted(out)

    @classmethod
    def fully_connected(cls, num_nodes: int) -> "Interconnect":
        """Every node one hop from every other node."""
        links = [
            (a, b)
            for a in range(num_nodes)
            for b in range(a + 1, num_nodes)
        ]
        return cls(num_nodes, links)

    @classmethod
    def ring(cls, num_nodes: int) -> "Interconnect":
        """Nodes connected in a cycle; useful to create >1 hop distances."""
        if num_nodes < 3:
            raise ValueError("a ring needs at least 3 nodes")
        links = [(i, (i + 1) % num_nodes) for i in range(num_nodes)]
        return cls(num_nodes, links)

    def _bfs(self, src: int) -> List[int]:
        dist = [-1] * self.num_nodes
        dist[src] = 0
        queue = deque([src])
        while queue:
            cur = queue.popleft()
            for nxt in self._adjacency[cur]:
                if dist[nxt] < 0:
                    dist[nxt] = dist[cur] + 1
                    queue.append(nxt)
        return dist

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.num_nodes:
            raise ValueError(
                f"node {node} out of range [0, {self.num_nodes})"
            )

    def __repr__(self) -> str:
        return (
            f"Interconnect(num_nodes={self.num_nodes}, "
            f"links={len(self.links())}, diameter={self.diameter()})"
        )


def hop_levels(interconnect: Interconnect) -> Sequence[int]:
    """Distinct positive hop distances present in the graph, ascending.

    CFS creates one cross-node scheduling-domain level per entry: first the
    one-hop level, then two hops, and so on up to the diameter.
    """
    matrix = interconnect.distance_matrix()
    values = sorted({d for row in matrix for d in row if d > 0})
    return values


def reachability_table(interconnect: Interconnect) -> Dict[int, List[FrozenSet[int]]]:
    """Per-node list of "nodes within h hops" sets for each hop level."""
    table: Dict[int, List[FrozenSet[int]]] = {}
    for node in range(interconnect.num_nodes):
        table[node] = [
            interconnect.nodes_within(node, hops)
            for hops in hop_levels(interconnect)
        ]
    return table

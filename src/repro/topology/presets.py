"""Ready-made machine topologies.

:func:`amd_bulldozer_64` reconstructs the paper's experimental machine
(Table 5 / Figure 4): 8 NUMA nodes of 8 cores, SMT pairs sharing functional
units, and an asymmetric HyperTransport graph in which the one-hop
neighbourhoods of nodes 0 and 3 are exactly the sets the paper reports:

* node 0 reaches nodes {1, 2, 4, 6} in one hop,
* node 3 reaches nodes {1, 2, 4, 5, 7} in one hop,
* nodes 1 and 2 are **two** hops apart (the pair the Scheduling Group
  Construction bug strands).
"""

from __future__ import annotations

from repro.topology.interconnect import Interconnect
from repro.topology.machine import MachineSpec, MachineTopology

#: Undirected HyperTransport links of the 8-node Bulldozer machine.  The
#: published constraints pin the one-hop sets of nodes 0 and 3 and require
#: nodes 1 and 2 to be two hops apart; the remaining links keep the graph
#: diameter at 2 like the real machine.
AMD_BULLDOZER_LINKS = (
    (0, 1), (0, 2), (0, 4), (0, 6),
    (1, 3), (1, 5), (1, 7),
    (2, 3), (2, 4), (2, 6),
    (3, 4), (3, 5), (3, 7),
    (4, 5), (4, 6),
    (5, 7),
    (6, 7),
)


def amd_bulldozer_64() -> MachineTopology:
    """The paper's 64-core AMD Bulldozer machine (Table 5, Figure 4)."""
    interconnect = Interconnect(8, AMD_BULLDOZER_LINKS)
    spec = MachineSpec(
        name="AMD Bulldozer (8x Opteron 6272)",
        clock_ghz=2.1,
        memory_gb=512,
        interconnect_name="HyperTransport 3.0",
        caches="768 KB L1, 16 MB L2, 12 MB L3 per CPU",
    )
    return MachineTopology(
        nodes=8,
        cores_per_node=8,
        smt_width=2,
        interconnect=interconnect,
        spec=spec,
    )


def paper_figure1_machine() -> MachineTopology:
    """The 32-core, 4-node machine of the paper's Figure 1.

    Eight cores per node, SMT pairs, and three of the four nodes reachable
    from node 0 in one hop (the fourth is two hops away), which produces the
    4-level domain hierarchy drawn in the figure.
    """
    # Node 0 reaches nodes 1 and 2 in one hop ("a group of three nodes" at
    # the second cross-core level of Figure 1); node 3 is two hops away, so
    # the top level spans the whole machine.
    interconnect = Interconnect(4, ((0, 1), (0, 2), (1, 3), (2, 3)))
    spec = MachineSpec(name="Figure 1 example machine", memory_gb=64)
    return MachineTopology(
        nodes=4,
        cores_per_node=8,
        smt_width=2,
        interconnect=interconnect,
        spec=spec,
    )


def single_node(cores: int = 4, smt_width: int = 1) -> MachineTopology:
    """A UMA machine: one node, ``cores`` cores."""
    spec = MachineSpec(name=f"single-node-{cores}", memory_gb=16)
    return MachineTopology(
        nodes=1, cores_per_node=cores, smt_width=smt_width, spec=spec
    )


def dual_core() -> MachineTopology:
    """The smallest interesting machine: one node, two cores."""
    return single_node(cores=2)


def two_nodes(cores_per_node: int = 4, smt_width: int = 1) -> MachineTopology:
    """Two fully-connected NUMA nodes; the smallest NUMA machine."""
    spec = MachineSpec(name=f"two-nodes-{cores_per_node}x2", memory_gb=32)
    return MachineTopology(
        nodes=2,
        cores_per_node=cores_per_node,
        smt_width=smt_width,
        interconnect=Interconnect.fully_connected(2),
        spec=spec,
    )


def flat_smp(cores: int = 8) -> MachineTopology:
    """A flat SMP without SMT or NUMA; degenerates to one domain level."""
    return single_node(cores=cores, smt_width=1)


def ring_numa(
    nodes: int = 4, cores_per_node: int = 2, smt_width: int = 1
) -> MachineTopology:
    """NUMA nodes on a ring interconnect: guarantees multi-hop distances."""
    spec = MachineSpec(name=f"ring-{nodes}x{cores_per_node}", memory_gb=32)
    return MachineTopology(
        nodes=nodes,
        cores_per_node=cores_per_node,
        smt_width=smt_width,
        interconnect=Interconnect.ring(nodes),
        spec=spec,
    )

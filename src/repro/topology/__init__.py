"""Machine topology: cores, SMT siblings, LLC/NUMA nodes, interconnect.

The scheduling-domain hierarchy that CFS builds (and the two topology-related
bugs from the paper) are entirely derived from the structures in this package:

* :class:`~repro.topology.machine.MachineTopology` describes cores, which
  cores share functional units (SMT pairs), which share a last-level cache
  (a NUMA node), and how nodes are wired together.
* :class:`~repro.topology.interconnect.Interconnect` is the NUMA link graph
  with hop distances (the paper's Figure 4 machine is asymmetric: some node
  pairs are one hop apart, others two).
* :mod:`~repro.topology.presets` provides ready-made machines, including the
  paper's 64-core, 8-node AMD Bulldozer server (Table 5 / Figure 4) and small
  machines used throughout the tests.
"""

from repro.topology.interconnect import Interconnect
from repro.topology.machine import Core, MachineTopology, Node
from repro.topology.presets import (
    amd_bulldozer_64,
    dual_core,
    flat_smp,
    paper_figure1_machine,
    single_node,
    two_nodes,
)

__all__ = [
    "Core",
    "Interconnect",
    "MachineTopology",
    "Node",
    "amd_bulldozer_64",
    "dual_core",
    "flat_smp",
    "paper_figure1_machine",
    "single_node",
    "two_nodes",
]

"""BENCH_*.json trajectory files: persist, compare, and render bench runs.

The trajectory is an append-only JSON document::

    {
      "version": 1,
      "runs": [
        {
          "label": "pr3",
          "quick": false,
          "benchmarks": {
            "table4": {
              "name": "table4",
              "quick": false,
              "fast": {"wall_seconds": ..., "events_per_sec": ..., ...},
              "baseline": {...} | null,
              "speedup": 2.2 | null,
              "digest": "<sha256 of the seeded schedule>",
              "digest_match": true | false | null,
              "slo": {"wakeup_p50_us": ..., "wakeup_p95_us": ...,
                      "wakeup_p99_us": ..., "jitter_us": ...,
                      "samples": ...} | null
            },
            ...
          }
        },
        ...
      ]
    }

Each CI run appends one entry, so the file records the speedup (and the
determinism digest) over the repository's history.  ``check_digests``
compares freshly measured digests against the most recent stored run: a
mismatch means the schedule changed, which is either an intentional
behavior change (re-baseline by committing the new file) or a
determinism regression (fix it).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Sequence, Tuple, Union

from repro.perf.bench import BenchResult, ModeMetrics

_VERSION = 1

PathLike = Union[str, Path]


def load_trajectory(path: PathLike) -> Dict[str, object]:
    """Read a trajectory file; a missing file is an empty trajectory."""
    p = Path(path)
    if not p.exists():
        return {"version": _VERSION, "runs": []}
    with p.open() as fh:
        data = json.load(fh)
    if not isinstance(data, dict) or "runs" not in data:
        raise ValueError(f"{p}: not a bench trajectory file")
    return data


def append_run(
    path: PathLike,
    results: Sequence[BenchResult],
    label: str = "",
    jobs: int = 1,
) -> Dict[str, object]:
    """Append one run (a set of benchmark results) to the trajectory.

    ``jobs`` records the parallelism the run used (the ``--jobs`` knob of
    ``repro bench``), so a trajectory reader can normalize wall-clock
    numbers across runs taken on different worker counts.
    """
    data = load_trajectory(path)
    runs = data["runs"]
    assert isinstance(runs, list)
    runs.append(
        {
            "label": label,
            "quick": any(r.quick for r in results),
            "jobs": jobs,
            "benchmarks": {r.name: r.to_json() for r in results},
        }
    )
    p = Path(path)
    with p.open("w") as fh:
        json.dump(data, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return data


def _latest_digests(data: Dict[str, object]) -> Dict[str, str]:
    runs = data.get("runs")
    if not isinstance(runs, list) or not runs:
        return {}
    latest = runs[-1]
    digests: Dict[str, str] = {}
    for name, bench in latest.get("benchmarks", {}).items():
        digest = bench.get("digest")
        if isinstance(digest, str):
            digests[name] = digest
    return digests


def check_digests(
    path: PathLike,
    results: Sequence[BenchResult],
) -> List[Tuple[str, str, str]]:
    """Compare fresh digests against the most recent stored run.

    Returns ``(benchmark, stored, fresh)`` for every mismatch.
    Benchmarks absent from the stored run are ignored (new benchmarks
    have no baseline to regress against).
    """
    stored = _latest_digests(load_trajectory(path))
    mismatches: List[Tuple[str, str, str]] = []
    for result in results:
        expected = stored.get(result.name)
        if expected is not None and expected != result.digest:
            mismatches.append((result.name, expected, result.digest))
    return mismatches


def format_trend(data: Dict[str, object]) -> str:
    """Render a trajectory as one aligned per-benchmark history table.

    Rows are grouped by benchmark and ordered by run, so the speedup
    (and digest stability) trend of each workload reads top to bottom:
    run id, measured variant, wall seconds, speedup over baseline, and
    whether the digest check passed.  ``repro bench --trend`` prints
    this for a committed ``BENCH_*.json`` without re-running anything.
    """
    runs = data.get("runs")
    if not isinstance(runs, list) or not runs:
        return "(empty trajectory)"
    names: List[str] = []
    for run in runs:
        for name in run.get("benchmarks", {}):
            if name not in names:
                names.append(name)
    header = ("benchmark", "run", "variant", "wall(s)", "speedup",
              "digest_match")
    rows: List[Tuple[str, ...]] = [header]
    for name in names:
        first = True
        for index, run in enumerate(runs):
            bench = run.get("benchmarks", {}).get(name)
            if not isinstance(bench, dict):
                continue
            label = run.get("label") or ""
            run_id = f"{index}:{label}" if label else str(index)
            if run.get("quick"):
                run_id += " (quick)"
            fast = bench.get("fast")
            wall = (
                f"{fast['wall_seconds']:.3f}"
                if isinstance(fast, dict) and "wall_seconds" in fast
                else "-"
            )
            speedup = bench.get("speedup")
            match = bench.get("digest_match")
            rows.append((
                name if first else "",
                run_id,
                str(bench.get("variant", "fast")),
                wall,
                f"{speedup:.2f}x" if isinstance(speedup, (int, float)) else "-",
                "-" if match is None else str(bool(match)).lower(),
            ))
            first = False
    widths = [max(len(row[i]) for row in rows) for i in range(len(header))]
    return "\n".join(
        "  ".join(cell.ljust(width) for cell, width in zip(row, widths)).rstrip()
        for row in rows
    )


def format_results(results: Sequence[BenchResult]) -> str:
    """Render results as an aligned text table."""
    header = (
        "benchmark", "mode", "wall(s)", "events/s", "balance/s", "speedup",
    )
    rows: List[Tuple[str, ...]] = [header]
    for result in results:
        primary = result.variant
        modes: List[Tuple[str, ModeMetrics]] = [(primary, result.fast)]
        if result.baseline is not None:
            modes.append(("baseline", result.baseline))
        for mode_name, metrics in modes:
            speedup = result.speedup
            rows.append(
                (
                    result.name if mode_name == primary else "",
                    mode_name,
                    f"{metrics.wall_seconds:.3f}",
                    f"{metrics.events_per_sec:,.0f}",
                    f"{metrics.balance_calls_per_sec:,.0f}",
                    (
                        f"{speedup:.2f}x"
                        if mode_name == primary and speedup is not None
                        else ""
                    ),
                )
            )
    widths = [max(len(row[i]) for row in rows) for i in range(len(header))]
    lines = [
        "  ".join(cell.ljust(width) for cell, width in zip(row, widths)).rstrip()
        for row in rows
    ]
    for result in results:
        slo = result.slo
        if slo:
            lines.append(
                f"SLO {result.name}: wakeup p50/p95/p99 = "
                f"{slo.get('wakeup_p50_us')}/{slo.get('wakeup_p95_us')}/"
                f"{slo.get('wakeup_p99_us')}us, jitter "
                f"{slo.get('jitter_us')}us (n={slo.get('samples')})"
            )
    for result in results:
        if result.digests:
            short = ", ".join(
                f"{v}={d[:12]}" for v, d in result.digests.items()
            )
            lines.append(f"digests {result.name}: {short}")
        if result.digest_match is False:
            lines.append(
                f"DIGEST MISMATCH: {result.name} schedules differ between "
                "variants"
            )
    return "\n".join(lines)

"""Sharded trial execution across a ``multiprocessing`` worker pool.

The pool is deliberately boring: the parent enumerates ``(index, spec)``
pairs, workers execute them in whatever order the pool hands them out,
and the parent reassembles results by index -- so the merged output is
in spec order no matter how execution interleaved, and a ``--jobs 4``
run is byte-identical to ``--jobs 1``.

Worker determinism (both ``fork`` and ``spawn`` start methods):

* Every trial function rebuilds its entire world -- system, RNGs,
  observability registries -- from the spec, inside the worker.  Specs
  are plain data, so nothing stateful crosses the process boundary.
* Before each trial the worker resets the interpreter-global ``random``
  state from the spec fingerprint.  The simulator never draws from the
  global generator (the ``det-unseeded-random`` lint rule enforces it),
  but a ``fork``-started worker inherits the parent's state and a
  ``spawn``-started one gets a fresh seed; pinning it to the spec makes
  any stray draw identical across start methods, worker counts, and
  execution orders instead of silently order-dependent.
"""

from __future__ import annotations

import multiprocessing
import os
import random
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.perf.orchestrator.spec import TrialResult, TrialSpec, resolve_kind

#: Environment variable consulted when no explicit ``jobs`` is given.
JOBS_ENV = "REPRO_JOBS"

#: Environment variable selecting the multiprocessing start method.
START_METHOD_ENV = "REPRO_START_METHOD"


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """The worker count to use: argument, ``REPRO_JOBS``, or serial.

    ``None`` falls back to the environment and then to 1 (serial -- the
    default keeps existing behavior unchanged); 0 means "one worker per
    available core"; negative counts are rejected.
    """
    if jobs is None:
        raw = os.environ.get(JOBS_ENV)
        if raw is None or raw.strip() == "":
            return 1
        try:
            jobs = int(raw)
        except ValueError:
            raise ValueError(
                f"{JOBS_ENV} must be an integer, got {raw!r}"
            ) from None
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    if jobs == 0:
        return os.cpu_count() or 1
    return jobs


def resolve_start_method(method: Optional[str] = None) -> Optional[str]:
    """Validate the requested start method (``REPRO_START_METHOD`` aware).

    ``None`` defers to the platform default; anything else must be one of
    the methods this interpreter supports (``fork``, ``spawn``,
    ``forkserver``).
    """
    if method is None:
        method = os.environ.get(START_METHOD_ENV) or None
    if method is None:
        return None
    available = multiprocessing.get_all_start_methods()
    if method not in available:
        raise ValueError(
            f"start method {method!r} not available "
            f"(choose from {', '.join(available)})"
        )
    return method


@dataclass
class ExecutedTrial:
    """One trial's execution record, as shipped back from a worker."""

    index: int
    result: TrialResult
    wall_seconds: float
    worker: str


def _scrub_global_rng(spec: TrialSpec) -> None:
    """Reset the interpreter-global RNG to a spec-derived state.

    Uses only the seeded-``Random`` idiom the determinism lint allows:
    the global generator's state becomes that of a fresh
    ``Random(<spec fingerprint>)``, erasing anything inherited across
    ``fork`` or accumulated from earlier trials in this worker.
    """
    derived = int(spec.fingerprint()[:16], 16)
    random.setstate(random.Random(derived).getstate())


def _execute_one(item: Tuple[int, TrialSpec]) -> ExecutedTrial:
    """Run one spec in the current process (worker entry point)."""
    index, spec = item
    _scrub_global_rng(spec)
    fn = resolve_kind(spec.kind)
    start = time.perf_counter()
    result = fn(spec)
    wall = time.perf_counter() - start
    return ExecutedTrial(
        index=index,
        result=result,
        wall_seconds=wall,
        worker=multiprocessing.current_process().name,
    )


#: Parent-side completion hook: called once per finished trial, in
#: completion (not spec) order.
OnResult = Callable[[ExecutedTrial], None]


def run_pool(
    items: Sequence[Tuple[int, TrialSpec]],
    jobs: int,
    start_method: Optional[str] = None,
    on_result: Optional[OnResult] = None,
) -> List[ExecutedTrial]:
    """Execute ``items`` with ``jobs`` workers; results in input order.

    With one job (or one item) everything runs inline in the parent --
    no pool, no pickling, identical code path to the historical serial
    drivers.  Otherwise a pool executes items as they become free
    (``imap_unordered``, chunk size 1, so one slow trial never convoys
    the queue behind it) and the parent slots results back by index.
    """
    executed: Dict[int, ExecutedTrial] = {}
    if jobs <= 1 or len(items) <= 1:
        for item in items:
            record = _execute_one(item)
            record = ExecutedTrial(
                index=record.index,
                result=record.result,
                wall_seconds=record.wall_seconds,
                worker="serial",
            )
            executed[record.index] = record
            if on_result is not None:
                on_result(record)
    else:
        ctx = multiprocessing.get_context(resolve_start_method(start_method))
        workers = min(jobs, len(items))
        with ctx.Pool(processes=workers) as pool:
            for record in pool.imap_unordered(
                _execute_one, list(items), chunksize=1
            ):
                executed[record.index] = record
                if on_result is not None:
                    on_result(record)
    return [executed[index] for index, _ in items]

"""Parallel experiment orchestrator: sharded, cached trial evaluation.

The evaluation of a paper about wasted cores should not waste every core
but one.  This package splits every experiment into a flat list of
independent :class:`TrialSpec`s, executes them across a
``multiprocessing`` worker pool (``--jobs N`` / ``REPRO_JOBS``; serial by
default, so nothing changes unless asked), and merges results
deterministically in spec order -- a ``-j4`` run is byte-identical to
``-j1``.  An on-disk content-addressed cache (spec fingerprint +
source-tree digest) under ``.repro-cache/`` makes re-runs after
result-irrelevant edits near-instant while a scheduler edit invalidates
exactly the entries it could have changed.
"""

from repro.perf.orchestrator.cache import (
    CACHE_VERSION,
    DEFAULT_CACHE_DIR,
    DEFAULT_CODE_PACKAGES,
    ResultCache,
    source_tree_digest,
)
from repro.perf.orchestrator.pool import (
    JOBS_ENV,
    START_METHOD_ENV,
    resolve_jobs,
    resolve_start_method,
)
from repro.perf.orchestrator.runner import (
    OrchestratorRun,
    PoolStats,
    TrialOutcome,
    WorkerStats,
    run_trials,
)
from repro.perf.orchestrator.spec import (
    TrialResult,
    TrialSpec,
    build_features,
    feature_tokens,
    resolve_kind,
)

__all__ = [
    "CACHE_VERSION",
    "DEFAULT_CACHE_DIR",
    "DEFAULT_CODE_PACKAGES",
    "JOBS_ENV",
    "START_METHOD_ENV",
    "OrchestratorRun",
    "PoolStats",
    "ResultCache",
    "TrialOutcome",
    "TrialResult",
    "TrialSpec",
    "WorkerStats",
    "build_features",
    "feature_tokens",
    "resolve_jobs",
    "resolve_kind",
    "resolve_start_method",
    "run_trials",
    "source_tree_digest",
]

"""Trial specifications: the unit of work the orchestrator shards.

A :class:`TrialSpec` names one independent experiment trial -- one
(scenario, seed, features, scale, deadline) point of an evaluation grid --
as plain picklable data.  The executable half is referenced by a
``"module:function"`` string (``kind``) rather than a callable, so a spec
crosses a ``fork`` or ``spawn`` process boundary without dragging live
objects (systems, observability sessions, RNGs) with it: the worker
imports the module and rebuilds everything from the spec alone, which is
what makes sharded execution bit-identical to a serial run.

The trial function receives the spec and returns a :class:`TrialResult`:
a JSON-able ``row`` (what tables/figures render), a ``schedule_digest``
(a SHA-256 fingerprint of the simulated schedule, the equivalence
witness), optional integer ``stats`` (event/balance/migration counters),
and an optional ``artifact`` -- an arbitrary in-memory payload (e.g. a
trace buffer for heatmap rendering) that is shipped back to the parent
but never cached.
"""

from __future__ import annotations

import hashlib
import importlib
import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Tuple

from repro.sched.features import SchedFeatures


@dataclass
class TrialResult:
    """What one executed trial produced."""

    #: JSON-able result row; everything a table/figure needs to render.
    row: Dict[str, object]
    #: SHA-256 fingerprint of the simulated schedule; serial and parallel
    #: runs of the same spec must produce the same digest.
    schedule_digest: str
    #: Integer run counters (sim_us, events_fired, ...) for utilization
    #: and throughput accounting; cached alongside the row.
    stats: Dict[str, int] = field(default_factory=dict)
    #: Arbitrary in-memory payload (e.g. a trace buffer).  Returned to
    #: the caller but never written to the result cache.
    artifact: Any = None


@dataclass(frozen=True)
class TrialSpec:
    """One independent trial of an experiment grid (picklable, hashable).

    ``kind`` is a ``"module:function"`` reference resolved inside the
    executing process; ``params`` carries kind-specific knobs as string
    pairs so the spec stays canonically serializable.
    """

    kind: str
    scenario: str
    seed: int
    features: Tuple[str, ...] = ()
    scale: float = 1.0
    deadline_us: int = 0
    params: Tuple[Tuple[str, str], ...] = ()
    #: Execution policy, not identity: specs whose results are
    #: wall-clock measurements or carry artifacts opt out of the cache.
    cache: bool = True

    def param(self, name: str, default: Optional[str] = None) -> Optional[str]:
        """The value of one kind-specific parameter."""
        for key, value in self.params:
            if key == name:
                return value
        return default

    @property
    def kind_name(self) -> str:
        """The bare function name of ``kind`` (for labels and progress)."""
        return self.kind.rsplit(":", 1)[-1]

    @property
    def label(self) -> str:
        """A short human-readable identity for progress lines."""
        return f"{self.kind_name}:{self.scenario}"

    def canonical(self) -> Dict[str, object]:
        """The identity of this trial as a plain JSON-able mapping.

        Excludes ``cache`` (execution policy) -- two specs that differ
        only in caching policy are the same trial.
        """
        return {
            "kind": self.kind,
            "scenario": self.scenario,
            "seed": self.seed,
            "features": list(self.features),
            "scale": repr(self.scale),
            "deadline_us": self.deadline_us,
            "params": {k: v for k, v in self.params},
        }

    def fingerprint(self) -> str:
        """SHA-256 over the canonical form; the cache key's spec half."""
        payload = json.dumps(self.canonical(), sort_keys=True)
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()


#: The signature every trial function implements.
TrialFn = Callable[[TrialSpec], TrialResult]


def resolve_kind(kind: str) -> TrialFn:
    """Import and return the trial function named by ``module:function``."""
    module_name, _, func_name = kind.partition(":")
    if not module_name or not func_name:
        raise ValueError(
            f"trial kind must be 'module:function', got {kind!r}"
        )
    module = importlib.import_module(module_name)
    fn = getattr(module, func_name, None)
    if fn is None or not callable(fn):
        raise ValueError(f"{module_name} has no trial function {func_name!r}")
    return fn  # type: ignore[no-any-return]


def build_features(tokens: Tuple[str, ...]) -> SchedFeatures:
    """Reconstruct a :class:`SchedFeatures` from a spec's feature tokens.

    Tokens are the canonical, order-insensitive encoding trial specs use:
    ``fix:<name>`` enables one paper fix, ``no_autogroup`` disables the
    autogroup feature, ``v43`` selects the reworked load metric, and
    ``fastpath_off`` disables the simulator fast paths (bench baselines).
    """
    features = SchedFeatures()
    for token in tokens:
        if token.startswith("fix:"):
            features = features.with_fixes(token[len("fix:"):])
        elif token == "no_autogroup":
            features = features.without_autogroup()
        elif token == "v43":
            features = features.with_v43_load_metric()
        elif token == "fastpath_off":
            features = features.with_fastpath(False)
        else:
            raise ValueError(f"unknown feature token {token!r}")
    return features


def feature_tokens(
    *fixes: str, autogroup: bool = True
) -> Tuple[str, ...]:
    """The token tuple for a fix set (the builders' convenience inverse)."""
    tokens = tuple(f"fix:{name}" for name in fixes)
    if not autogroup:
        tokens = tokens + ("no_autogroup",)
    return tokens

"""The orchestrator's front door: cache-aware sharded trial execution.

:func:`run_trials` takes a flat spec list and returns outcomes **in spec
order** regardless of how many workers executed them, which is what lets
every table and figure driver emit specs, fan out, and merge rows without
ever thinking about concurrency.  The flow per spec:

1. cache lookup (spec fingerprint + source-tree digest) -- a hit skips
   execution entirely;
2. misses are executed across the worker pool (serial by default);
3. fresh results are written back to the cache (unless the spec opted
   out) and merged into the outcome list at their original index.

Progress and utilization are reported through ``repro.obs`` metrics --
``orchestrator_trials`` (by status and worker), and the
``orchestrator_trial_us`` per-trial wall-time histogram -- plus a
:class:`PoolStats` summary with per-worker busy time and the pool's
overall utilization (busy-time / (jobs x wall-time)).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.obs.metrics import MetricsRegistry
from repro.perf.orchestrator.cache import ResultCache
from repro.perf.orchestrator.pool import (
    ExecutedTrial,
    resolve_jobs,
    resolve_start_method,
    run_pool,
)
from repro.perf.orchestrator.spec import TrialResult, TrialSpec


@dataclass
class TrialOutcome:
    """One spec's final result: who produced it, from where, how fast."""

    spec: TrialSpec
    result: TrialResult
    #: True when the result came from the on-disk cache (no execution).
    cached: bool
    wall_seconds: float
    #: ``"cache"`` for hits, ``"serial"`` for inline execution, or the
    #: pool worker's process name.
    worker: str


@dataclass
class WorkerStats:
    """Per-worker tallies for the utilization summary."""

    trials: int = 0
    busy_seconds: float = 0.0


@dataclass
class PoolStats:
    """One orchestrated run's shape: work, where it ran, how busy."""

    jobs: int
    start_method: str
    total: int
    executed: int
    cache_hits: int
    wall_seconds: float
    busy_seconds: float
    workers: Dict[str, WorkerStats] = field(default_factory=dict)

    @property
    def utilization(self) -> float:
        """Busy worker-seconds over available worker-seconds, 0..1."""
        capacity = self.jobs * self.wall_seconds
        if capacity <= 0:
            return 0.0
        return min(1.0, self.busy_seconds / capacity)

    def to_json(self) -> Dict[str, object]:
        return {
            "jobs": self.jobs,
            "start_method": self.start_method,
            "total": self.total,
            "executed": self.executed,
            "cache_hits": self.cache_hits,
            "wall_seconds": round(self.wall_seconds, 4),
            "busy_seconds": round(self.busy_seconds, 4),
            "utilization": round(self.utilization, 4),
            "workers": {
                name: {
                    "trials": ws.trials,
                    "busy_seconds": round(ws.busy_seconds, 4),
                }
                for name, ws in sorted(self.workers.items())
            },
        }

    def summary(self) -> str:
        """The human-readable utilization summary (one paragraph)."""
        lines = [
            f"orchestrator: {self.total} trial(s), "
            f"{self.cache_hits} cache hit(s), {self.executed} executed "
            f"on {self.jobs} job(s) [{self.start_method}] in "
            f"{self.wall_seconds:.2f}s wall "
            f"({self.busy_seconds:.2f}s busy, "
            f"utilization {self.utilization:.0%})"
        ]
        for name, ws in sorted(self.workers.items()):
            lines.append(
                f"  {name}: {ws.trials} trial(s), {ws.busy_seconds:.2f}s busy"
            )
        return "\n".join(lines)


@dataclass
class OrchestratorRun:
    """Outcomes in spec order plus the run's utilization statistics."""

    outcomes: List[TrialOutcome]
    stats: PoolStats

    def rows(self) -> List[Dict[str, object]]:
        """Every outcome's row, in spec order."""
        return [outcome.result.row for outcome in self.outcomes]

    def digests(self) -> List[str]:
        """Every outcome's schedule digest, in spec order."""
        return [outcome.result.schedule_digest for outcome in self.outcomes]


#: Parent-side progress hook: (completed count, total, outcome).
Progress = Callable[[int, int, TrialOutcome], None]


def run_trials(
    specs: Sequence[TrialSpec],
    jobs: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    start_method: Optional[str] = None,
    progress: Optional[Progress] = None,
    metrics: Optional[MetricsRegistry] = None,
) -> OrchestratorRun:
    """Execute a spec list; outcomes come back in spec order.

    ``jobs=None`` defers to ``REPRO_JOBS`` and then to serial execution,
    so callers that never pass the parameter behave exactly as the
    pre-orchestrator drivers did.  ``cache=None`` disables caching.
    The optional ``metrics`` registry receives the orchestrator's
    counters; a private one is created (and carried on the returned
    stats' behalf) otherwise.
    """
    resolved_jobs = resolve_jobs(jobs)
    method = resolve_start_method(start_method)
    registry = metrics if metrics is not None else MetricsRegistry()
    trials_counter = registry.counter(
        "orchestrator_trials", "trials by status and worker"
    )
    wall_histogram = registry.histogram(
        "orchestrator_trial_us", "per-trial execution wall time"
    )

    started = time.perf_counter()
    outcomes: List[Optional[TrialOutcome]] = [None] * len(specs)
    pending: List[int] = []
    completed = 0

    for index, spec in enumerate(specs):
        hit = cache.get(spec) if (cache is not None and spec.cache) else None
        if hit is None:
            pending.append(index)
            continue
        outcome = TrialOutcome(
            spec=spec,
            result=hit,
            cached=True,
            wall_seconds=0.0,
            worker="cache",
        )
        outcomes[index] = outcome
        trials_counter.inc(status="hit", worker="cache")
        completed += 1
        if progress is not None:
            progress(completed, len(specs), outcome)

    workers: Dict[str, WorkerStats] = {}

    def on_result(record: ExecutedTrial) -> None:
        nonlocal completed
        spec = specs[record.index]
        outcome = TrialOutcome(
            spec=spec,
            result=record.result,
            cached=False,
            wall_seconds=record.wall_seconds,
            worker=record.worker,
        )
        outcomes[record.index] = outcome
        stats = workers.setdefault(record.worker, WorkerStats())
        stats.trials += 1
        stats.busy_seconds += record.wall_seconds
        trials_counter.inc(status="executed", worker=record.worker)
        wall_histogram.observe(
            record.wall_seconds * 1e6, worker=record.worker
        )
        if cache is not None and spec.cache:
            cache.put(spec, record.result, record.wall_seconds)
        completed += 1
        if progress is not None:
            progress(completed, len(specs), outcome)

    run_pool(
        [(index, specs[index]) for index in pending],
        jobs=resolved_jobs,
        start_method=method,
        on_result=on_result,
    )

    wall = time.perf_counter() - started
    final: List[TrialOutcome] = []
    for outcome in outcomes:
        assert outcome is not None, "orchestrator lost a trial result"
        final.append(outcome)
    stats = PoolStats(
        jobs=resolved_jobs,
        start_method=method or "default",
        total=len(specs),
        executed=len(pending),
        cache_hits=len(specs) - len(pending),
        wall_seconds=wall,
        busy_seconds=sum(ws.busy_seconds for ws in workers.values()),
        workers=workers,
    )
    return OrchestratorRun(outcomes=final, stats=stats)

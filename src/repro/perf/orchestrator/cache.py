"""The on-disk content-addressed trial cache under ``.repro-cache/``.

A cache entry is addressed by two digests:

* the **spec fingerprint** -- SHA-256 of the trial's canonical identity
  (:meth:`TrialSpec.fingerprint`); and
* the **source-tree digest** -- SHA-256 over every ``.py`` file of the
  packages whose behavior feeds trial results (the scheduler model, the
  simulator, the workloads, the experiment drivers and their supporting
  layers).

The source-tree digest is the invalidation story: editing
``repro/sched/*.py`` changes it, so every cached trial silently misses
and reruns against the new scheduler; editing documentation, the static
analyzer, the CLI, or the orchestrator itself leaves it unchanged, so a
``repro report`` after a doc-only commit is answered from disk.  Entries
are plain JSON (row + schedule digest + counters), written atomically so
concurrent workers never observe a torn file.  Artifacts (trace buffers)
are deliberately not cached -- specs that need them set ``cache=False``.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

from repro.perf.orchestrator.spec import TrialResult, TrialSpec

#: Cache layout version; bump when the entry schema changes.
CACHE_VERSION = 1

#: Default cache directory (relative to the working directory);
#: ``REPRO_CACHE_DIR`` overrides it.
DEFAULT_CACHE_DIR = ".repro-cache"

#: Packages under ``repro/`` whose source feeds trial results.  Everything
#: a trial's row can depend on is here: the scheduler model, the
#: simulator, workloads and topologies, the experiment drivers, the bug
#: registry/sanity checker (``core``), statistics, trace probes (``viz``),
#: the obs layer (latency columns) and the SLO trial functions (``slo``).
#: Deliberately absent: ``analysis``
#: (offline lint), ``perf`` (this orchestrator), and the CLI -- editing
#: those cannot change what a trial computes, so cached rows survive.
DEFAULT_CODE_PACKAGES: Tuple[str, ...] = (
    "core",
    "experiments",
    "modular",
    "obs",
    "sched",
    "sim",
    "slo",
    "stats",
    "topology",
    "viz",
    "workloads",
)

PathLike = Union[str, Path]


def source_tree_digest(
    root: Optional[PathLike] = None,
    packages: Tuple[str, ...] = DEFAULT_CODE_PACKAGES,
) -> str:
    """SHA-256 over the ``.py`` files of the result-relevant packages.

    ``root`` defaults to the installed ``repro`` package directory.  Only
    Python sources are hashed -- docs, JSON baselines and bytecode do not
    perturb the digest -- and files are folded in sorted relative-path
    order so the digest is stable across filesystems.
    """
    if root is None:
        import repro

        root = Path(repro.__file__).resolve().parent
    root = Path(root)
    hasher = hashlib.sha256()
    for package in packages:
        package_dir = root / package
        if not package_dir.is_dir():
            continue
        for path in sorted(package_dir.rglob("*.py")):
            hasher.update(path.relative_to(root).as_posix().encode())
            hasher.update(b"\0")
            hasher.update(path.read_bytes())
            hasher.update(b"\0")
    return hasher.hexdigest()


class ResultCache:
    """Content-addressed store of trial rows keyed by spec + source digest."""

    def __init__(
        self,
        root: Optional[PathLike] = None,
        code_digest: Optional[str] = None,
    ):
        if root is None:
            root = os.environ.get("REPRO_CACHE_DIR") or DEFAULT_CACHE_DIR
        self.root = Path(root)
        self.code_digest = (
            code_digest if code_digest is not None else source_tree_digest()
        )
        #: Tallies for utilization summaries.
        self.hits = 0
        self.misses = 0

    def _shard(self) -> Path:
        return self.root / f"v{CACHE_VERSION}" / self.code_digest[:16]

    def entry_path(self, spec: TrialSpec) -> Path:
        """Where this spec's entry lives under the current source digest."""
        return self._shard() / f"{spec.fingerprint()}.json"

    def get(self, spec: TrialSpec) -> Optional[TrialResult]:
        """The cached result for ``spec``, or ``None`` on a miss.

        A corrupt or schema-incompatible entry counts as a miss (it will
        be overwritten by the next :meth:`put`), never an error.
        """
        path = self.entry_path(spec)
        try:
            with path.open(encoding="utf-8") as fh:
                data = json.load(fh)
        except (OSError, ValueError):
            self.misses += 1
            return None
        row = data.get("row")
        digest = data.get("schedule_digest")
        if not isinstance(row, dict) or not isinstance(digest, str):
            self.misses += 1
            return None
        stats_raw = data.get("stats")
        stats: Dict[str, int] = {}
        if isinstance(stats_raw, dict):
            for key, value in stats_raw.items():
                if isinstance(value, int):
                    stats[str(key)] = value
        self.hits += 1
        return TrialResult(row=row, schedule_digest=digest, stats=stats)

    def put(
        self, spec: TrialSpec, result: TrialResult, wall_seconds: float = 0.0
    ) -> Path:
        """Store one executed trial's row (atomically; artifact excluded)."""
        path = self.entry_path(spec)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry: Dict[str, object] = {
            "version": CACHE_VERSION,
            "code_digest": self.code_digest,
            "spec": spec.canonical(),
            "row": result.row,
            "schedule_digest": result.schedule_digest,
            "stats": result.stats,
            "wall_seconds": round(wall_seconds, 4),
        }
        # Write-then-rename so a concurrent reader (another worker, another
        # process) sees either the old entry or the new one, never a torn
        # file.  The temp name is per-pid to keep writers from colliding.
        tmp = path.with_suffix(f".{os.getpid()}.tmp")
        with tmp.open("w", encoding="utf-8") as fh:
            json.dump(entry, fh, indent=1, sort_keys=True)
            fh.write("\n")
        os.replace(tmp, path)
        return path

    def entry_count(self) -> int:
        """How many entries exist under the current source digest."""
        shard = self._shard()
        if not shard.is_dir():
            return 0
        return sum(1 for _ in shard.glob("*.json"))

"""The macro-benchmarks behind ``repro bench``.

Three workloads cover the simulator's hot paths from different angles:

* ``table4`` -- the end-to-end bug sweep: all four paper bugs, buggy and
  fixed variants, sanity checker attached.  Dominated by the periodic
  balancing and sanity-checking paths.
* ``figure2`` -- the steady-state make+R workload of the Group Imbalance
  study, run long.  Dominated by load tracking and tick accounting.
* ``soak64`` -- a 64-core machine with a mixed hog/sleeper population.
  Dominated by the NOHZ sweep and event-loop churn (sleep/wake timers).

Every benchmark is seeded and runs a fixed simulated horizon, so the two
measurement modes execute the *same schedule*; only wall-clock differs.
A short traced companion run produces a SHA-256 digest of the schedule
(integer/string event fields only, so the digest is stable across float
formatting differences) which must be identical with the fast paths on
and off.

A second, instrumented companion run folds each benchmark's
representative scenario into SLO fields (wakeup-latency p50/p95/p99 and
scheduling jitter), so ``BENCH_*.json`` trajectories double as an SLO
dashboard (see :mod:`repro.slo`): the companion is seeded and separate
from the wall-clock run, so observation cost never perturbs the
measurement.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.experiments.scenarios import BUG_NAMES, build_bug_scenario
from repro.obs.recorder import MetricsRecorder
from repro.obs.session import ObsSession
from repro.obs.tracepoints import TracepointRegistry
from repro.sched.features import SchedFeatures
from repro.sim.system import System
from repro.sim.timebase import MS, SEC
from repro.topology import amd_bulldozer_64
from repro.viz.events import TraceBuffer, TraceProbe
from repro.workloads.base import Program, Run, Sleep, TaskSpec


@dataclass
class ModeMetrics:
    """What one benchmark run in one mode measured."""

    wall_seconds: float
    sim_us: int
    events_fired: int
    balance_calls: int
    migrations: int
    heap_compactions: int

    @property
    def events_per_sec(self) -> float:
        return self.events_fired / self.wall_seconds if self.wall_seconds else 0.0

    @property
    def balance_calls_per_sec(self) -> float:
        return (
            self.balance_calls / self.wall_seconds if self.wall_seconds else 0.0
        )

    def to_json(self) -> Dict[str, object]:
        return {
            "wall_seconds": round(self.wall_seconds, 4),
            "sim_us": self.sim_us,
            "events_fired": self.events_fired,
            "balance_calls": self.balance_calls,
            "migrations": self.migrations,
            "heap_compactions": self.heap_compactions,
            "events_per_sec": round(self.events_per_sec, 1),
            "balance_calls_per_sec": round(self.balance_calls_per_sec, 1),
        }


@dataclass
class BenchResult:
    """One benchmark's outcome across the measured modes."""

    name: str
    quick: bool
    fast: ModeMetrics
    baseline: Optional[ModeMetrics]
    digest: str
    #: True/False once both modes' digests were computed, None otherwise.
    digest_match: Optional[bool]
    #: Wakeup-latency percentiles + jitter from the instrumented
    #: companion run (None for benchmarks without one).
    slo: Optional[Dict[str, object]] = None

    @property
    def speedup(self) -> Optional[float]:
        if self.baseline is None or self.fast.wall_seconds == 0:
            return None
        return self.baseline.wall_seconds / self.fast.wall_seconds

    def to_json(self) -> Dict[str, object]:
        obj: Dict[str, object] = {
            "name": self.name,
            "quick": self.quick,
            "fast": self.fast.to_json(),
            "baseline": (
                self.baseline.to_json() if self.baseline is not None else None
            ),
            "digest": self.digest,
            "digest_match": self.digest_match,
        }
        speedup = self.speedup
        obj["speedup"] = round(speedup, 2) if speedup is not None else None
        obj["slo"] = self.slo
        return obj


def _fastpath_transform(enabled: bool) -> Callable[[SchedFeatures], SchedFeatures]:
    return lambda features: features.with_fastpath(enabled)


def _hog(name: str) -> TaskSpec:
    def factory() -> Program:
        def program() -> Program:
            while True:
                yield Run(5 * MS)

        return program()

    return TaskSpec(name, factory)


def _sleeper(name: str) -> TaskSpec:
    def factory() -> Program:
        def program() -> Program:
            while True:
                yield Run(1 * MS)
                yield Sleep(2 * MS)

        return program()

    return TaskSpec(name, factory)


@dataclass
class _Totals:
    wall_seconds: float = 0.0
    sim_us: int = 0
    events_fired: int = 0
    balance_calls: int = 0
    migrations: int = 0
    heap_compactions: int = 0

    def fold(self, system: System) -> None:
        self.sim_us += system.now
        self.events_fired += system.loop.events_fired
        self.balance_calls += system.scheduler.balance_calls
        self.migrations += system.scheduler.total_migrations
        self.heap_compactions += system.loop.compactions


def _run_table4(fastpath: bool, quick: bool, jobs: int = 1) -> _Totals:
    duration = 250 * MS if quick else 1 * SEC
    totals = _Totals()
    start = time.perf_counter()
    for bug in BUG_NAMES:
        for variant in ("buggy", "fixed"):
            scenario = build_bug_scenario(
                bug,
                variant,
                features_transform=_fastpath_transform(fastpath),
            )
            scenario.run(duration)
            totals.fold(scenario.system)
    totals.wall_seconds = time.perf_counter() - start
    return totals


def _run_figure2(fastpath: bool, quick: bool, jobs: int = 1) -> _Totals:
    duration = 400 * MS if quick else 2 * SEC
    totals = _Totals()
    start = time.perf_counter()
    scenario = build_bug_scenario(
        "group-imbalance",
        "buggy",
        features_transform=_fastpath_transform(fastpath),
    )
    scenario.run(duration)
    totals.fold(scenario.system)
    totals.wall_seconds = time.perf_counter() - start
    return totals


def _build_soak64(fastpath: bool) -> System:
    features = SchedFeatures().with_fastpath(fastpath)
    system = System(amd_bulldozer_64(), features, seed=7)
    # 48 pinned-nowhere hogs forked from scattered parents plus 32
    # sleepers: sustained balancing with constant timer churn (sleepers
    # are what populate the event heap with cancellable wakeups).
    for i in range(48):
        system.spawn(_hog(f"hog{i}"), parent_cpu=(i * 7) % 64)
    for i in range(32):
        system.spawn(_sleeper(f"sleep{i}"), parent_cpu=(i * 5) % 64)
    return system


def _run_soak64(fastpath: bool, quick: bool, jobs: int = 1) -> _Totals:
    duration = 1 * SEC if quick else 10 * SEC
    totals = _Totals()
    start = time.perf_counter()
    system = _build_soak64(fastpath)
    system.run_for(duration)
    totals.fold(system)
    totals.wall_seconds = time.perf_counter() - start
    return totals


def _digest_records(buffer: TraceBuffer) -> str:
    """SHA-256 over the integer/string fields of every trace record.

    Floats (load samples) are excluded so the digest survives float
    formatting and libm differences between hosts; everything ordering-
    or schedule-related (timestamps, tids, cpus, event kinds) is hashed.
    """
    hasher = hashlib.sha256()
    for record in buffer:
        parts: List[str] = [type(record).__name__]
        for name, value in sorted(vars(record).items()):
            if isinstance(value, float):
                continue
            if isinstance(value, frozenset):
                value = tuple(sorted(value))
            parts.append(f"{name}={value!r}")
        hasher.update("|".join(parts).encode())
        hasher.update(b"\n")
    return hasher.hexdigest()


def _digest_table4(fastpath: bool, jobs: int = 1) -> str:
    parts: List[str] = []
    for bug in BUG_NAMES:
        buffer = TraceBuffer()
        probe = TraceProbe(buffer=buffer, record_load=False)
        scenario = build_bug_scenario(
            bug,
            "buggy",
            seed=1234,
            instrument=lambda s: s.attach_probe(probe),
            features_transform=_fastpath_transform(fastpath),
        )
        scenario.run(50 * MS)
        parts.append(_digest_records(buffer))
    return hashlib.sha256("".join(parts).encode()).hexdigest()


def _digest_figure2(fastpath: bool, jobs: int = 1) -> str:
    buffer = TraceBuffer()
    probe = TraceProbe(buffer=buffer, record_load=False)
    scenario = build_bug_scenario(
        "group-imbalance",
        "fixed",
        seed=99,
        instrument=lambda s: s.attach_probe(probe),
        features_transform=_fastpath_transform(fastpath),
    )
    scenario.run(100 * MS)
    return _digest_records(buffer)


def _digest_soak64(fastpath: bool, jobs: int = 1) -> str:
    buffer = TraceBuffer()
    probe = TraceProbe(buffer=buffer, record_load=False)
    system = _build_soak64(fastpath)
    system.attach_probe(probe)
    system.run_for(50 * MS)
    return _digest_records(buffer)


def _slo_fields(recorder: MetricsRecorder) -> Dict[str, object]:
    """Fold one instrumented run into the trajectory's SLO columns."""
    latency = recorder.wakeup_latency
    return {
        "wakeup_p50_us": latency.percentile(50),
        "wakeup_p95_us": latency.percentile(95),
        "wakeup_p99_us": latency.percentile(99),
        "jitter_us": round(recorder.jitter_us(), 3),
        "samples": latency.count(),
    }


def _slo_bug(bug: str, duration_us: int) -> Dict[str, object]:
    """SLO companion for the bug-scenario benchmarks (buggy variant).

    The session rides a private tracepoint registry so a bench run never
    pollutes (or races with) the process-global bus; the buggy variant is
    measured because that's the tail the trajectory should track.
    """
    holder: Dict[str, ObsSession] = {}

    def instrument(system: System) -> None:
        holder["obs"] = ObsSession.attach_to(
            system, trace=False, registry=TracepointRegistry()
        )

    scenario = build_bug_scenario(
        bug, "buggy", seed=1234, instrument=instrument
    )
    scenario.run(duration_us)
    obs = holder["obs"]
    obs.close()
    return _slo_fields(obs.recorder)


def _slo_soak64() -> Dict[str, object]:
    system = _build_soak64(True)
    obs = ObsSession.attach_to(
        system, trace=False, registry=TracepointRegistry()
    )
    system.run_for(50 * MS)
    obs.close()
    return _slo_fields(obs.recorder)


def _report_jobs(fastpath: bool, jobs: int) -> int:
    """The worker count for one ``report_wall`` mode.

    The "fast" mode is the sharded orchestrator run (``jobs``, or one
    worker per core when unspecified); the "baseline" mode is the
    historical serial evaluation.  The speedup column therefore reads as
    the orchestrator's parallel efficiency, and ``digest_match`` proves
    the parallel run scheduled byte-for-byte what the serial run did.
    """
    from repro.perf.orchestrator import resolve_jobs

    return resolve_jobs(jobs if jobs > 1 else 0) if fastpath else 1


def _run_report(fastpath: bool, quick: bool, jobs: int = 1) -> _Totals:
    from repro.experiments.reportgen import QUICK_SCALE, generate_report

    scale = QUICK_SCALE if quick else 0.1
    totals = _Totals()
    start = time.perf_counter()
    result = generate_report(
        scale=scale, jobs=_report_jobs(fastpath, jobs), cache=None
    )
    totals.wall_seconds = time.perf_counter() - start
    totals.sim_us = result.counters.get("sim_us", 0)
    totals.events_fired = result.counters.get("events_fired", 0)
    totals.balance_calls = result.counters.get("balance_calls", 0)
    totals.migrations = result.counters.get("migrations", 0)
    return totals


def _digest_report(fastpath: bool, jobs: int = 1) -> str:
    from repro.experiments.reportgen import QUICK_SCALE, generate_report

    result = generate_report(
        scale=QUICK_SCALE, jobs=_report_jobs(fastpath, jobs), cache=None
    )
    return hashlib.sha256("".join(result.digests).encode()).hexdigest()


@dataclass(frozen=True)
class BenchSpec:
    """One registered macro-benchmark.

    ``run`` and ``digest`` take (fastpath, quick[, jobs]) -- the ``jobs``
    knob only matters to ``report_wall``, where "fastpath" selects the
    sharded orchestrator run and "baseline" the serial one.
    """

    name: str
    description: str
    run: Callable[[bool, bool, int], _Totals] = field(repr=False)
    digest: Callable[[bool, int], str] = field(repr=False)
    #: Optional instrumented companion producing wakeup-latency
    #: percentiles and jitter for the trajectory's SLO columns.
    slo: Optional[Callable[[], Dict[str, object]]] = field(
        default=None, repr=False
    )


def _slo_table4() -> Dict[str, object]:
    return _slo_bug("overload-on-wakeup", 100 * MS)


def _slo_figure2() -> Dict[str, object]:
    return _slo_bug("group-imbalance", 100 * MS)


BENCHMARKS: Dict[str, BenchSpec] = {
    spec.name: spec
    for spec in (
        BenchSpec(
            "table4",
            "all four paper bugs, buggy+fixed, checker attached (1s each)",
            _run_table4,
            _digest_table4,
            _slo_table4,
        ),
        BenchSpec(
            "figure2",
            "steady-state make+R group-imbalance workload (2s)",
            _run_figure2,
            _digest_figure2,
            _slo_figure2,
        ),
        BenchSpec(
            "soak64",
            "64-core mixed hog/sleeper soak (10s)",
            _run_soak64,
            _digest_soak64,
            _slo_soak64,
        ),
        BenchSpec(
            "report_wall",
            "full report evaluation, sharded orchestrator vs serial",
            _run_report,
            _digest_report,
        ),
    )
}


def benchmark_names() -> List[str]:
    return list(BENCHMARKS)


def run_benchmark(
    name: str,
    quick: bool = False,
    compare: bool = False,
    jobs: int = 1,
) -> BenchResult:
    """Run one benchmark; with ``compare`` also measure the baseline mode.

    The digest is always computed for the fast mode; with ``compare`` it
    is recomputed in baseline mode (fast paths off -- or, for
    ``report_wall``, serial execution) and the two are checked for
    equality (the determinism contract of the optimization layer).
    """
    spec = BENCHMARKS[name]
    fast_totals = spec.run(True, quick, jobs)
    fast = ModeMetrics(
        wall_seconds=fast_totals.wall_seconds,
        sim_us=fast_totals.sim_us,
        events_fired=fast_totals.events_fired,
        balance_calls=fast_totals.balance_calls,
        migrations=fast_totals.migrations,
        heap_compactions=fast_totals.heap_compactions,
    )
    digest = spec.digest(True, jobs)
    baseline: Optional[ModeMetrics] = None
    digest_match: Optional[bool] = None
    if compare:
        base_totals = spec.run(False, quick, jobs)
        baseline = ModeMetrics(
            wall_seconds=base_totals.wall_seconds,
            sim_us=base_totals.sim_us,
            events_fired=base_totals.events_fired,
            balance_calls=base_totals.balance_calls,
            migrations=base_totals.migrations,
            heap_compactions=base_totals.heap_compactions,
        )
        digest_match = spec.digest(False, jobs) == digest
    slo = spec.slo() if spec.slo is not None else None
    return BenchResult(
        name=name,
        quick=quick,
        fast=fast,
        baseline=baseline,
        digest=digest,
        digest_match=digest_match,
        slo=slo,
    )

"""The macro-benchmarks behind ``repro bench``.

Three workloads cover the simulator's hot paths from different angles:

* ``table4`` -- the end-to-end bug sweep: all four paper bugs, buggy and
  fixed variants, sanity checker attached.  Dominated by the periodic
  balancing and sanity-checking paths.
* ``figure2`` -- the steady-state make+R workload of the Group Imbalance
  study, run long.  Dominated by load tracking and tick accounting.
* ``soak64`` -- a 64-core machine with a mixed hog/sleeper population.
  Dominated by the NOHZ sweep and event-loop churn (sleep/wake timers).

Every benchmark is seeded and runs a fixed simulated horizon, so all
measurement variants execute the *same schedule*; only wall-clock
differs.  Four variants are registered (:data:`VARIANTS`): the
historical ``baseline``, the PR 3 per-pass ``fast`` layer, and the
array-backed vectorized core in its ``vec`` (numpy when importable) and
``vec-fallback`` (pure-Python backend, forced) forms.  A short traced
companion run produces a SHA-256 digest of the schedule (integer/string
event fields only, so the digest is stable across float formatting
differences) which must be identical across every variant
(``repro bench --check-digests``).

A second, instrumented companion run folds each benchmark's
representative scenario into SLO fields (wakeup-latency p50/p95/p99 and
scheduling jitter), so ``BENCH_*.json`` trajectories double as an SLO
dashboard (see :mod:`repro.slo`): the companion is seeded and separate
from the wall-clock run, so observation cost never perturbs the
measurement.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

from repro.experiments.scenarios import BUG_NAMES, build_bug_scenario
from repro.obs.recorder import MetricsRecorder
from repro.obs.session import ObsSession
from repro.obs.tracepoints import TracepointRegistry
from repro.sched.features import SchedFeatures
from repro.sim.system import System
from repro.sim.timebase import MS, SEC
from repro.topology import amd_bulldozer_64
from repro.viz.events import TraceBuffer, TraceProbe
from repro.workloads.base import Program, Run, Sleep, TaskSpec


@dataclass
class ModeMetrics:
    """What one benchmark run in one mode measured."""

    wall_seconds: float
    sim_us: int
    events_fired: int
    balance_calls: int
    migrations: int
    heap_compactions: int

    @property
    def events_per_sec(self) -> float:
        return self.events_fired / self.wall_seconds if self.wall_seconds else 0.0

    @property
    def balance_calls_per_sec(self) -> float:
        return (
            self.balance_calls / self.wall_seconds if self.wall_seconds else 0.0
        )

    def to_json(self) -> Dict[str, object]:
        return {
            "wall_seconds": round(self.wall_seconds, 4),
            "sim_us": self.sim_us,
            "events_fired": self.events_fired,
            "balance_calls": self.balance_calls,
            "migrations": self.migrations,
            "heap_compactions": self.heap_compactions,
            "events_per_sec": round(self.events_per_sec, 1),
            "balance_calls_per_sec": round(self.balance_calls_per_sec, 1),
        }


@dataclass
class BenchResult:
    """One benchmark's outcome across the measured modes."""

    name: str
    quick: bool
    fast: ModeMetrics
    baseline: Optional[ModeMetrics]
    digest: str
    #: True/False once both modes' digests were computed, None otherwise.
    digest_match: Optional[bool]
    #: Wakeup-latency percentiles + jitter from the instrumented
    #: companion run (None for benchmarks without one).
    slo: Optional[Dict[str, object]] = None
    #: The variant the primary (``fast`` attribute) mode measured.
    variant: str = "fast"
    #: Per-variant schedule digests when the cross-variant check ran.
    digests: Optional[Dict[str, str]] = None

    @property
    def speedup(self) -> Optional[float]:
        if self.baseline is None or self.fast.wall_seconds == 0:
            return None
        return self.baseline.wall_seconds / self.fast.wall_seconds

    def to_json(self) -> Dict[str, object]:
        obj: Dict[str, object] = {
            "name": self.name,
            "quick": self.quick,
            "variant": self.variant,
            "fast": self.fast.to_json(),
            "baseline": (
                self.baseline.to_json() if self.baseline is not None else None
            ),
            "digest": self.digest,
            "digest_match": self.digest_match,
            "digests": self.digests,
        }
        speedup = self.speedup
        obj["speedup"] = round(speedup, 2) if speedup is not None else None
        obj["slo"] = self.slo
        return obj


#: Feature transforms of the measured variants, in trajectory order.
#: ``vec`` resolves its backend at import time (numpy when importable
#: and not disabled via ``REPRO_NO_NUMPY``); ``vec-fallback`` forces the
#: pure-Python backend so both kernels are digest-checked in one
#: process.
VARIANTS: Dict[str, Callable[[SchedFeatures], SchedFeatures]] = {
    "baseline": lambda f: f.with_fastpath(False),
    "fast": lambda f: f.with_fastpath(True),
    "vec": lambda f: f.with_vectorized(True),
    "vec-fallback": lambda f: f.with_vectorized(True, backend="python"),
}


def _variant_transform(variant: str) -> Callable[[SchedFeatures], SchedFeatures]:
    try:
        return VARIANTS[variant]
    except KeyError:
        raise ValueError(
            f"unknown bench variant {variant!r} (known: {', '.join(VARIANTS)})"
        ) from None


def _hog(name: str) -> TaskSpec:
    def factory() -> Program:
        def program() -> Program:
            while True:
                yield Run(5 * MS)

        return program()

    return TaskSpec(name, factory)


def _sleeper(name: str) -> TaskSpec:
    def factory() -> Program:
        def program() -> Program:
            while True:
                yield Run(1 * MS)
                yield Sleep(2 * MS)

        return program()

    return TaskSpec(name, factory)


@dataclass
class _Totals:
    wall_seconds: float = 0.0
    sim_us: int = 0
    events_fired: int = 0
    balance_calls: int = 0
    migrations: int = 0
    heap_compactions: int = 0

    def fold(self, system: System) -> None:
        self.sim_us += system.now
        self.events_fired += system.loop.events_fired
        self.balance_calls += system.scheduler.balance_calls
        self.migrations += system.scheduler.total_migrations
        self.heap_compactions += system.loop.compactions


def _run_table4(variant: str, quick: bool, jobs: int = 1) -> _Totals:
    duration = 250 * MS if quick else 1 * SEC
    totals = _Totals()
    start = time.perf_counter()
    for bug in BUG_NAMES:
        for bug_mode in ("buggy", "fixed"):
            scenario = build_bug_scenario(
                bug,
                bug_mode,
                features_transform=_variant_transform(variant),
            )
            scenario.run(duration)
            totals.fold(scenario.system)
    totals.wall_seconds = time.perf_counter() - start
    return totals


def _run_figure2(variant: str, quick: bool, jobs: int = 1) -> _Totals:
    duration = 400 * MS if quick else 2 * SEC
    totals = _Totals()
    start = time.perf_counter()
    scenario = build_bug_scenario(
        "group-imbalance",
        "buggy",
        features_transform=_variant_transform(variant),
    )
    scenario.run(duration)
    totals.fold(scenario.system)
    totals.wall_seconds = time.perf_counter() - start
    return totals


def _build_soak64(variant: str) -> System:
    features = _variant_transform(variant)(SchedFeatures())
    system = System(amd_bulldozer_64(), features, seed=7)
    # 48 pinned-nowhere hogs forked from scattered parents plus 32
    # sleepers: sustained balancing with constant timer churn (sleepers
    # are what populate the event heap with cancellable wakeups).
    for i in range(48):
        system.spawn(_hog(f"hog{i}"), parent_cpu=(i * 7) % 64)
    for i in range(32):
        system.spawn(_sleeper(f"sleep{i}"), parent_cpu=(i * 5) % 64)
    return system


def _run_soak64(variant: str, quick: bool, jobs: int = 1) -> _Totals:
    duration = 1 * SEC if quick else 10 * SEC
    totals = _Totals()
    start = time.perf_counter()
    system = _build_soak64(variant)
    system.run_for(duration)
    totals.fold(system)
    totals.wall_seconds = time.perf_counter() - start
    return totals


def _digest_records(buffer: TraceBuffer) -> str:
    """SHA-256 over the integer/string fields of every trace record.

    Floats (load samples) are excluded so the digest survives float
    formatting and libm differences between hosts; everything ordering-
    or schedule-related (timestamps, tids, cpus, event kinds) is hashed.
    """
    hasher = hashlib.sha256()
    for record in buffer:
        parts: List[str] = [type(record).__name__]
        for name, value in sorted(vars(record).items()):
            if isinstance(value, float):
                continue
            if isinstance(value, frozenset):
                value = tuple(sorted(value))
            parts.append(f"{name}={value!r}")
        hasher.update("|".join(parts).encode())
        hasher.update(b"\n")
    return hasher.hexdigest()


def _digest_table4(variant: str, jobs: int = 1) -> str:
    parts: List[str] = []
    for bug in BUG_NAMES:
        buffer = TraceBuffer()
        probe = TraceProbe(buffer=buffer, record_load=False)
        scenario = build_bug_scenario(
            bug,
            "buggy",
            seed=1234,
            instrument=lambda s: s.attach_probe(probe),
            features_transform=_variant_transform(variant),
        )
        scenario.run(50 * MS)
        parts.append(_digest_records(buffer))
    return hashlib.sha256("".join(parts).encode()).hexdigest()


def _digest_figure2(variant: str, jobs: int = 1) -> str:
    buffer = TraceBuffer()
    probe = TraceProbe(buffer=buffer, record_load=False)
    scenario = build_bug_scenario(
        "group-imbalance",
        "fixed",
        seed=99,
        instrument=lambda s: s.attach_probe(probe),
        features_transform=_variant_transform(variant),
    )
    scenario.run(100 * MS)
    return _digest_records(buffer)


def _digest_soak64(variant: str, jobs: int = 1) -> str:
    buffer = TraceBuffer()
    probe = TraceProbe(buffer=buffer, record_load=False)
    system = _build_soak64(variant)
    system.attach_probe(probe)
    system.run_for(50 * MS)
    return _digest_records(buffer)


def _slo_fields(recorder: MetricsRecorder) -> Dict[str, object]:
    """Fold one instrumented run into the trajectory's SLO columns."""
    latency = recorder.wakeup_latency
    return {
        "wakeup_p50_us": latency.percentile(50),
        "wakeup_p95_us": latency.percentile(95),
        "wakeup_p99_us": latency.percentile(99),
        "jitter_us": round(recorder.jitter_us(), 3),
        "samples": latency.count(),
    }


def _slo_bug(bug: str, duration_us: int) -> Dict[str, object]:
    """SLO companion for the bug-scenario benchmarks (buggy variant).

    The session rides a private tracepoint registry so a bench run never
    pollutes (or races with) the process-global bus; the buggy variant is
    measured because that's the tail the trajectory should track.
    """
    holder: Dict[str, ObsSession] = {}

    def instrument(system: System) -> None:
        holder["obs"] = ObsSession.attach_to(
            system, trace=False, registry=TracepointRegistry()
        )

    scenario = build_bug_scenario(
        bug, "buggy", seed=1234, instrument=instrument
    )
    scenario.run(duration_us)
    obs = holder["obs"]
    obs.close()
    return _slo_fields(obs.recorder)


def _slo_soak64() -> Dict[str, object]:
    system = _build_soak64("vec")
    obs = ObsSession.attach_to(
        system, trace=False, registry=TracepointRegistry()
    )
    system.run_for(50 * MS)
    obs.close()
    return _slo_fields(obs.recorder)


def _report_jobs(parallel: bool, jobs: int) -> int:
    """The worker count for one ``report_wall`` mode.

    Every non-baseline variant is the sharded orchestrator run (``jobs``,
    or one worker per core when unspecified); the "baseline" mode is the
    historical serial evaluation.  The speedup column therefore reads as
    the orchestrator's parallel efficiency, and ``digest_match`` proves
    the parallel run scheduled byte-for-byte what the serial run did.
    """
    from repro.perf.orchestrator import resolve_jobs

    return resolve_jobs(jobs if jobs > 1 else 0) if parallel else 1


def _run_report(variant: str, quick: bool, jobs: int = 1) -> _Totals:
    from repro.experiments.reportgen import QUICK_SCALE, generate_report

    scale = QUICK_SCALE if quick else 0.1
    totals = _Totals()
    start = time.perf_counter()
    result = generate_report(
        scale=scale, jobs=_report_jobs(variant != "baseline", jobs), cache=None
    )
    totals.wall_seconds = time.perf_counter() - start
    totals.sim_us = result.counters.get("sim_us", 0)
    totals.events_fired = result.counters.get("events_fired", 0)
    totals.balance_calls = result.counters.get("balance_calls", 0)
    totals.migrations = result.counters.get("migrations", 0)
    return totals


def _digest_report(variant: str, jobs: int = 1) -> str:
    from repro.experiments.reportgen import QUICK_SCALE, generate_report

    result = generate_report(
        scale=QUICK_SCALE, jobs=_report_jobs(variant != "baseline", jobs), cache=None
    )
    return hashlib.sha256("".join(result.digests).encode()).hexdigest()


@dataclass(frozen=True)
class BenchSpec:
    """One registered macro-benchmark.

    ``run`` and ``digest`` take (variant, quick[, jobs]) -- the ``jobs``
    knob only matters to ``report_wall``, where every non-baseline
    variant selects the sharded orchestrator run and "baseline" the
    serial one.
    """

    name: str
    description: str
    run: Callable[[str, bool, int], _Totals] = field(repr=False)
    digest: Callable[[str, int], str] = field(repr=False)
    #: Optional instrumented companion producing wakeup-latency
    #: percentiles and jitter for the trajectory's SLO columns.
    slo: Optional[Callable[[], Dict[str, object]]] = field(
        default=None, repr=False
    )


def _slo_table4() -> Dict[str, object]:
    return _slo_bug("overload-on-wakeup", 100 * MS)


def _slo_figure2() -> Dict[str, object]:
    return _slo_bug("group-imbalance", 100 * MS)


BENCHMARKS: Dict[str, BenchSpec] = {
    spec.name: spec
    for spec in (
        BenchSpec(
            "table4",
            "all four paper bugs, buggy+fixed, checker attached (1s each)",
            _run_table4,
            _digest_table4,
            _slo_table4,
        ),
        BenchSpec(
            "figure2",
            "steady-state make+R group-imbalance workload (2s)",
            _run_figure2,
            _digest_figure2,
            _slo_figure2,
        ),
        BenchSpec(
            "soak64",
            "64-core mixed hog/sleeper soak (10s)",
            _run_soak64,
            _digest_soak64,
            _slo_soak64,
        ),
        BenchSpec(
            "report_wall",
            "full report evaluation, sharded orchestrator vs serial",
            _run_report,
            _digest_report,
        ),
    )
}


def benchmark_names() -> List[str]:
    return list(BENCHMARKS)


def _metrics_of(totals: _Totals) -> ModeMetrics:
    return ModeMetrics(
        wall_seconds=totals.wall_seconds,
        sim_us=totals.sim_us,
        events_fired=totals.events_fired,
        balance_calls=totals.balance_calls,
        migrations=totals.migrations,
        heap_compactions=totals.heap_compactions,
    )


def run_benchmark(
    name: str,
    quick: bool = False,
    compare: bool = False,
    jobs: int = 1,
    variant: str = "vec",
    check_digests: bool = False,
) -> BenchResult:
    """Run one benchmark in ``variant`` mode (the ``fast`` metrics slot).

    With ``compare`` the baseline mode is also measured and its digest
    checked against the primary variant's.  With ``check_digests`` the
    digest is recomputed for *every* registered variant (baseline, fast,
    vec, vec-fallback) and ``digest_match`` asserts they are all equal
    -- the determinism contract of the optimization layers.
    """
    spec = BENCHMARKS[name]
    _variant_transform(variant)  # reject unknown variants before running
    fast = _metrics_of(spec.run(variant, quick, jobs))
    digest = spec.digest(variant, jobs)
    baseline: Optional[ModeMetrics] = None
    digest_match: Optional[bool] = None
    digests: Optional[Dict[str, str]] = None
    if compare:
        baseline = _metrics_of(spec.run("baseline", quick, jobs))
        digest_match = spec.digest("baseline", jobs) == digest
    if check_digests:
        digests = {
            v: (digest if v == variant else spec.digest(v, jobs))
            for v in VARIANTS
        }
        all_match = len(set(digests.values())) == 1
        digest_match = (
            all_match if digest_match is None else digest_match and all_match
        )
    slo = spec.slo() if spec.slo is not None else None
    return BenchResult(
        name=name,
        quick=quick,
        fast=fast,
        baseline=baseline,
        digest=digest,
        digest_match=digest_match,
        slo=slo,
        variant=variant,
        digests=digests,
    )


@dataclass
class BenchProfile:
    """One benchmark run under the profiler: report text + weights.

    ``weights`` maps dotted qualnames (``repro.sched.cfs.account_runtime``,
    ``repro.sched.scheduler.Scheduler.tick``) of in-repo functions to
    their cProfile *tottime* seconds -- the key space of
    ``COST_baseline.json``'s ``profile_weights``, so a harvested profile
    can be committed as the evidence behind the scalar-residue ranking
    (``repro lint --write-cost-baseline --profile-weights``).
    """

    name: str
    variant: str
    text: str
    weights: Dict[str, float]


def _qualname_index(path: str) -> Dict[int, str]:
    """line -> ``Class.method`` (or ``fn``) for every def in ``path``.

    cProfile reports ``(filename, firstlineno, co_name)``; the class
    part of the committed weight keys only exists in source.  Both the
    ``def`` line and the first decorator line are indexed because a
    decorated function's code object starts at the decorator.
    """
    import ast

    try:
        tree = ast.parse(Path(path).read_text(), filename=path)
    except (OSError, SyntaxError):
        return {}
    index: Dict[int, str] = {}

    def visit(node: ast.AST, stack: List[str]) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = ".".join(stack + [child.name])
                index.setdefault(child.lineno, qual)
                if child.decorator_list:
                    first = child.decorator_list[0].lineno
                    index.setdefault(first, qual)
                visit(child, stack + [child.name])
            elif isinstance(child, ast.ClassDef):
                visit(child, stack + [child.name])
            else:
                visit(child, stack)

    visit(tree, [])
    return index


def _module_of(path: str) -> Optional[str]:
    """``.../src/repro/sched/cfs.py`` -> ``repro.sched.cfs``."""
    parts = Path(path).parts
    try:
        start = len(parts) - 1 - parts[::-1].index("repro")
    except ValueError:
        return None
    mods = list(parts[start:])
    if not mods or not mods[-1].endswith(".py"):
        return None
    mods[-1] = mods[-1][:-3]
    if mods[-1] == "__init__":
        mods.pop()
    return ".".join(mods)


def harvest_profile_weights(stats: object) -> Dict[str, float]:
    """Per-function *tottime* seconds for in-repo functions.

    ``stats`` is a ``pstats.Stats``; entries whose file lives under the
    ``repro`` package are mapped to dotted qualnames via an AST line
    index, everything else (stdlib, numpy internals) is dropped.
    Duplicate code objects on one line (reloads) sum.
    """
    raw = getattr(stats, "stats", {})
    indexes: Dict[str, Dict[int, str]] = {}
    weights: Dict[str, float] = {}
    for (filename, lineno, funcname), row in raw.items():
        module = _module_of(filename)
        if module is None:
            continue
        if filename not in indexes:
            indexes[filename] = _qualname_index(filename)
        local = indexes[filename].get(lineno, funcname)
        if not local.split(".")[-1] == funcname:
            local = funcname
        tottime = float(row[2])
        qual = f"{module}.{local}"
        weights[qual] = round(weights.get(qual, 0.0) + tottime, 6)
    return weights


def profile_benchmark(
    name: str,
    quick: bool = False,
    jobs: int = 1,
    variant: str = "vec",
    top: int = 20,
) -> BenchProfile:
    """One benchmark run under cProfile.

    Returns the pstats text (sorted by cumulative time, top-``top``
    rows) that ``repro bench --profile`` writes next to ``--out`` plus
    the harvested per-function weights, so hot-spot hunts need no
    ad-hoc harness scripts and baseline refreshes reuse the same run.
    """
    import cProfile
    import io
    import pstats

    spec = BENCHMARKS[name]
    _variant_transform(variant)
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        spec.run(variant, quick, jobs)
    finally:
        profiler.disable()
    out = io.StringIO()
    stats = pstats.Stats(profiler, stream=out)
    stats.sort_stats("cumulative").print_stats(top)
    return BenchProfile(
        name=name,
        variant=variant,
        text=out.getvalue(),
        weights=harvest_profile_weights(stats),
    )


def format_profile_comparison(
    weights: Dict[str, float],
    baseline: Dict[str, object],
    top: int = 12,
) -> str:
    """Per-hot-root residue comparison against the committed baseline.

    One aligned row per ``COST_baseline.json`` root: the committed
    ``profile_weights`` entry for the root's function next to the fresh
    harvested tottime, so a ``repro bench --profile`` run answers "did
    this root's share of the wall clock move since the baseline was
    committed" without re-running the lint engine.  A second section
    ranks the heaviest non-root (scalar residue) functions the same
    way.
    """
    committed_raw = baseline.get("profile_weights")
    committed: Dict[str, float] = {}
    if isinstance(committed_raw, dict):
        committed = {str(k): float(v) for k, v in committed_raw.items()}
    roots_raw = baseline.get("roots")
    roots: Dict[str, str] = {}
    if isinstance(roots_raw, dict):
        for label, info in roots_raw.items():
            if isinstance(info, dict) and isinstance(info.get("function"), str):
                roots[str(label)] = str(info["function"])

    def row(label: str, qual: str) -> Tuple[str, str, str, str, str]:
        base = committed.get(qual)
        fresh = weights.get(qual)
        delta = ""
        if base is not None and fresh is not None:
            delta = f"{fresh - base:+.3f}"
        return (
            label,
            qual.split("repro.", 1)[-1],
            f"{base:.3f}" if base is not None else "-",
            f"{fresh:.3f}" if fresh is not None else "-",
            delta,
        )

    header = ("root", "function", "baseline(s)", "fresh(s)", "delta")
    rows: List[Tuple[str, ...]] = [header]
    for label in sorted(roots):
        rows.append(row(label, roots[label]))
    root_quals = set(roots.values())
    residue = [
        q for q in sorted(
            set(committed) | set(weights),
            key=lambda q: -max(committed.get(q, 0.0), weights.get(q, 0.0)),
        )
        if q not in root_quals
    ][:top]
    for qual in residue:
        rows.append(row("(residue)", qual))
    widths = [max(len(r[i]) for r in rows) for i in range(len(header))]
    lines = ["profile vs committed baseline weights:"]
    lines += [
        "  " + "  ".join(c.ljust(w) for c, w in zip(r, widths)).rstrip()
        for r in rows
    ]
    return "\n".join(lines)

"""Performance harness: deterministic macro-benchmarks of the simulator.

The fast paths this package measures (``repro bench``) are the incremental
load tracking, single-pass balance statistics, and event-loop compaction
behind :meth:`repro.sched.features.SchedFeatures.with_fastpath`.  Each
benchmark runs the same seeded scenario in one of four variants --
*baseline* (all fast paths off, reproducing the historical
implementations), *fast* (the per-pass fast paths), *vec* (the
array-backed vectorized core, numpy backend when importable), and
*vec-fallback* (the vectorized core on the pure-Python backend) -- and a
short traced run digests the schedule so every variant can be proven
byte-identical (``repro bench --check-digests``).

Results append to a ``BENCH_*.json`` trajectory file, so the measured
speedups (and the determinism digests) are tracked over the repository's
history.  Wall-clock reads are legal here: this package is outside the
simulation hot scope the ``det-wallclock`` lint rule protects.
"""

from repro.perf.bench import (
    BENCHMARKS,
    VARIANTS,
    BenchProfile,
    BenchResult,
    ModeMetrics,
    benchmark_names,
    format_profile_comparison,
    harvest_profile_weights,
    profile_benchmark,
    run_benchmark,
)
from repro.perf.orchestrator import (
    OrchestratorRun,
    PoolStats,
    ResultCache,
    TrialOutcome,
    TrialResult,
    TrialSpec,
    resolve_jobs,
    run_trials,
    source_tree_digest,
)
from repro.perf.store import (
    append_run,
    check_digests,
    format_results,
    format_trend,
    load_trajectory,
)

__all__ = [
    "BENCHMARKS",
    "VARIANTS",
    "BenchProfile",
    "BenchResult",
    "ModeMetrics",
    "benchmark_names",
    "format_profile_comparison",
    "harvest_profile_weights",
    "profile_benchmark",
    "run_benchmark",
    "OrchestratorRun",
    "PoolStats",
    "ResultCache",
    "TrialOutcome",
    "TrialResult",
    "TrialSpec",
    "resolve_jobs",
    "run_trials",
    "source_tree_digest",
    "append_run",
    "check_digests",
    "format_results",
    "format_trend",
    "load_trajectory",
]

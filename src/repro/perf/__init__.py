"""Performance harness: deterministic macro-benchmarks of the simulator.

The fast paths this package measures (``repro bench``) are the incremental
load tracking, single-pass balance statistics, and event-loop compaction
behind :meth:`repro.sched.features.SchedFeatures.with_fastpath`.  Each
benchmark runs the same seeded scenario in *fast* (all fast paths on,
the default feature set) and optionally *baseline* (all fast paths off,
reproducing the historical implementations) mode, and a short traced run
digests the schedule so the two modes can be proven byte-identical.

Results append to a ``BENCH_*.json`` trajectory file, so the measured
speedups (and the determinism digests) are tracked over the repository's
history.  Wall-clock reads are legal here: this package is outside the
simulation hot scope the ``det-wallclock`` lint rule protects.
"""

from repro.perf.bench import (
    BENCHMARKS,
    BenchResult,
    ModeMetrics,
    benchmark_names,
    run_benchmark,
)
from repro.perf.orchestrator import (
    OrchestratorRun,
    PoolStats,
    ResultCache,
    TrialOutcome,
    TrialResult,
    TrialSpec,
    resolve_jobs,
    run_trials,
    source_tree_digest,
)
from repro.perf.store import (
    append_run,
    check_digests,
    format_results,
    load_trajectory,
)

__all__ = [
    "BENCHMARKS",
    "BenchResult",
    "ModeMetrics",
    "benchmark_names",
    "run_benchmark",
    "OrchestratorRun",
    "PoolStats",
    "ResultCache",
    "TrialOutcome",
    "TrialResult",
    "TrialSpec",
    "resolve_jobs",
    "run_trials",
    "source_tree_digest",
    "append_run",
    "check_digests",
    "format_results",
    "load_trajectory",
]

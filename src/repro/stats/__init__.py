"""Run metrics: utilization, idle-while-overloaded time, energy, tasks."""

from repro.stats.energy import (
    EnergyReport,
    PowerModel,
    energy_waste_vs,
    measure_energy,
)
from repro.stats.metrics import (
    IdleOverloadSampler,
    TaskSummary,
    machine_utilization,
    node_busy_times,
    summarize_tasks,
)

__all__ = [
    "EnergyReport",
    "IdleOverloadSampler",
    "PowerModel",
    "TaskSummary",
    "energy_waste_vs",
    "machine_utilization",
    "measure_energy",
    "node_busy_times",
    "summarize_tasks",
]

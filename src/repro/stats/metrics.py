"""Metrics collected from simulation runs.

The number the whole paper revolves around is the *idle-while-overloaded*
time: how long cores sat idle while runnable threads waited elsewhere.
:class:`IdleOverloadSampler` accumulates it tick by tick; the rest of the
module summarizes per-task and per-node outcomes for the experiment tables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional

from repro.core.invariant import has_violation
from repro.obs.tracepoints import TRACEPOINTS
from repro.sim.timebase import TICK_US

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sched.task import Task
    from repro.sim.system import System

#: Fired for every sampled tick that sees the invariant violated, so obs
#: traces show the violation density the paper's heatmaps plot.
_TP_VIOLATION_TICK = TRACEPOINTS.tracepoint("stats.violation_tick")


class IdleOverloadSampler:
    """Tick hook accumulating time spent violating the invariant.

    Also tracks the total idle core-time while *any* task waited anywhere
    (wasted capacity), which is the "decade of wasted cores" headline
    number for a run.
    """

    def __init__(self) -> None:
        self.violation_time_us = 0
        self.wasted_core_time_us = 0
        self.samples = 0
        self.violating_samples = 0
        self._system: Optional["System"] = None

    def attach(self, system: "System") -> None:
        if self._system is not None:
            raise RuntimeError("sampler already attached")
        self._system = system
        system.tick_hooks.append(self._on_tick)

    def detach(self) -> None:
        if self._system is None:
            return
        self._system.tick_hooks.remove(self._on_tick)
        self._system = None

    def _on_tick(self, now: int) -> None:
        assert self._system is not None
        sched = self._system.scheduler
        self.samples += 1
        violated = has_violation(sched, now)
        if violated:
            self.violating_samples += 1
            self.violation_time_us += TICK_US
            if _TP_VIOLATION_TICK.enabled:
                _TP_VIOLATION_TICK.emit(now)
            idle = sum(
                1 for c in sched.cpus if c.online and c.rq.nr_running == 0
            )
            queued = sum(
                c.rq.nr_queued for c in sched.cpus if c.online
            )
            self.wasted_core_time_us += min(idle, queued) * TICK_US

    @property
    def violation_fraction(self) -> float:
        """Fraction of sampled ticks spent in a violated state."""
        if self.samples == 0:
            return 0.0
        return self.violating_samples / self.samples


@dataclass
class TaskSummary:
    """Aggregate outcome for a set of tasks (one workload)."""

    count: int
    total_runtime_us: int
    total_spin_us: int
    total_wait_us: int
    total_migrations: int
    total_wakeups: int
    wakeups_on_busy: int
    completed: int
    makespan_us: Optional[int]

    @property
    def spin_fraction(self) -> float:
        """Share of CPU time burned spinning (wasted cycles)."""
        if self.total_runtime_us == 0:
            return 0.0
        return self.total_spin_us / self.total_runtime_us


def summarize_tasks(
    tasks: Iterable["Task"], start_us: int = 0
) -> TaskSummary:
    """Fold task statistics into a summary.

    ``makespan_us`` is the latest exit time minus ``start_us``; None when
    some task has not exited.
    """
    tasks = list(tasks)
    exits = [t.stats.exit_time_us for t in tasks]
    completed = sum(1 for e in exits if e is not None)
    makespan = None
    if tasks and completed == len(tasks):
        makespan = max(e for e in exits if e is not None) - start_us
    return TaskSummary(
        count=len(tasks),
        total_runtime_us=sum(t.stats.total_runtime_us for t in tasks),
        total_spin_us=sum(t.stats.spin_time_us for t in tasks),
        total_wait_us=sum(t.stats.wait_time_us for t in tasks),
        total_migrations=sum(t.stats.migrations for t in tasks),
        total_wakeups=sum(t.stats.wakeups for t in tasks),
        wakeups_on_busy=sum(
            t.stats.wakeups_on_busy_core for t in tasks
        ),
        completed=completed,
        makespan_us=makespan,
    )


def machine_utilization(system: "System") -> float:
    """Mean online-CPU busy fraction since time zero."""
    cpus = [c for c in system.scheduler.cpus if c.online]
    if not cpus or system.now == 0:
        return 0.0
    return sum(c.busy_time_us for c in cpus) / (len(cpus) * system.now)


def node_busy_times(system: "System") -> Dict[int, int]:
    """Total busy core-time per NUMA node (Figure 2's node structure)."""
    topo = system.topology
    out: Dict[int, int] = {}
    for node in range(topo.num_nodes):
        out[node] = sum(
            system.scheduler.cpus[c].busy_time_us
            for c in topo.cpus_of_node(node)
        )
    return out


def per_cpu_busy_fractions(system: "System") -> List[float]:
    """Busy fraction of each CPU since time zero."""
    if system.now == 0:
        return [0.0] * len(system.scheduler.cpus)
    return [
        c.busy_time_us / system.now for c in system.scheduler.cpus
    ]

"""Energy accounting: what the wasted cores cost in joules.

The paper's introduction: "Resulting performance degradations are in the
range 13-24% ... and reach 138x in some corner cases.  **Energy waste is
proportional.**"  The bugs waste energy twice over: the machine runs
longer than it should (static/package power for the extra makespan), and
spinning threads burn dynamic power producing nothing.

The model is a standard two-level per-core power model (busy/idle watts,
defaults in the right ballpark for the paper's 2.1 GHz Opteron cores) plus
a package constant.  It reports both the absolute energy of a run and the
*waste* attributable to invariant violations and spinning.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sched.task import Task
    from repro.sim.system import System


@dataclass(frozen=True)
class PowerModel:
    """Per-core and package power in watts."""

    busy_core_w: float = 6.0
    idle_core_w: float = 1.2
    #: Uncore/package power per NUMA node (always on while the node is up).
    package_w_per_node: float = 12.0

    def validate(self) -> None:
        if self.busy_core_w <= self.idle_core_w:
            raise ValueError("busy power must exceed idle power")
        if self.idle_core_w < 0 or self.package_w_per_node < 0:
            raise ValueError("power values must be non-negative")


@dataclass
class EnergyReport:
    """Energy accounting of one simulated run."""

    span_s: float
    busy_core_seconds: float
    idle_core_seconds: float
    spin_core_seconds: float
    total_joules: float
    spin_joules: float

    @property
    def spin_waste_fraction(self) -> float:
        """Share of the total energy burned by spinning threads."""
        if self.total_joules <= 0:
            return 0.0
        return self.spin_joules / self.total_joules

    def describe(self) -> str:
        return (
            f"energy over {self.span_s:.3f}s: {self.total_joules:.1f} J "
            f"({self.busy_core_seconds:.2f} busy core-s, "
            f"{self.idle_core_seconds:.2f} idle core-s); "
            f"spinning burned {self.spin_joules:.1f} J "
            f"({self.spin_waste_fraction:.1%} of total)"
        )


def measure_energy(
    system: "System",
    tasks: Optional[Iterable["Task"]] = None,
    model: Optional[PowerModel] = None,
) -> EnergyReport:
    """Energy of a run from CPU busy/idle time and task spin time.

    ``tasks`` defaults to every task the system ever spawned (spin time
    needs task statistics; CPU counters alone cannot distinguish useful
    cycles from spinning).
    """
    model = model or PowerModel()
    model.validate()
    span_s = system.now / 1e6
    cpus = [c for c in system.scheduler.cpus]
    busy_s = sum(c.busy_time_us for c in cpus) / 1e6
    online = sum(1 for c in cpus if c.online)
    idle_s = max(0.0, online * span_s - busy_s)
    task_list = list(tasks) if tasks is not None else list(system.spawned)
    spin_s = sum(t.stats.spin_time_us for t in task_list) / 1e6

    total = (
        busy_s * model.busy_core_w
        + idle_s * model.idle_core_w
        + span_s * model.package_w_per_node * system.topology.num_nodes
    )
    spin_j = spin_s * model.busy_core_w
    return EnergyReport(
        span_s=span_s,
        busy_core_seconds=busy_s,
        idle_core_seconds=idle_s,
        spin_core_seconds=spin_s,
        total_joules=total,
        spin_joules=spin_j,
    )


def energy_waste_vs(
    buggy: EnergyReport, fixed: EnergyReport
) -> float:
    """Fraction of energy the bug wasted for the same completed work.

    Comparable runs must perform the same total work; the waste is the
    buggy run's extra joules relative to its own total.
    """
    if buggy.total_joules <= 0:
        return 0.0
    return max(
        0.0, (buggy.total_joules - fixed.total_joules) / buggy.total_joules
    )

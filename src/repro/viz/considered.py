"""Considered-cores plots -- the paper's Figure 5.

Figure 5 shows, for one observer core, vertical lines marking which cores
each (failed) load-balancing call examined, overlaid on which cores were
busy.  With the Missing Scheduling Domains bug the lines never leave the
observer's node even though another node is overloaded.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.viz.events import ConsideredEvent, NrRunningEvent, TraceBuffer
from repro.viz.heatmap import HeatmapBuilder
from repro.viz.svg import SvgCanvas, heat_color, rgb


def considered_core_sets(
    trace: TraceBuffer,
    observer_cpu: int,
    op: Optional[str] = None,
) -> List[ConsideredEvent]:
    """All considered-core events issued by one core, optionally one op."""
    out = []
    for event in trace.of_type(ConsideredEvent):
        if event.cpu != observer_cpu:
            continue
        if op is not None and event.op != op:
            continue
        out.append(event)
    return out


def coverage_fraction(
    events: Sequence[ConsideredEvent], num_cpus: int
) -> float:
    """Fraction of the machine's cores ever considered by these events.

    The Figure 5 pathology in one number: with the Missing Scheduling
    Domains bug an observer on an 8-node machine covers only 1/8 of it.
    """
    if num_cpus <= 0:
        return 0.0
    covered: set = set()
    for event in events:
        covered.update(event.considered)
    return len(covered) / num_cpus


def render_ascii_considered(
    trace: TraceBuffer,
    observer_cpu: int,
    num_cpus: int,
    op: str = "load_balance",
    max_events: int = 60,
) -> str:
    """One text row per balancing call: '#' = considered, '.' = not."""
    events = considered_core_sets(trace, observer_cpu, op)[:max_events]
    lines = [
        f"cores considered by cpu {observer_cpu} ({op}), "
        f"{len(events)} call(s):"
    ]
    for event in events:
        row = "".join(
            "#" if c in event.considered else "." for c in range(num_cpus)
        )
        lines.append(f"t={event.time_us / 1000:9.1f}ms {row}")
    return "\n".join(lines)


def render_svg_considered(
    trace: TraceBuffer,
    observer_cpu: int,
    num_cpus: int,
    t0_us: int,
    t1_us: int,
    cores_per_node: Optional[int] = None,
    op: str = "load_balance",
    bins: int = 120,
    title: str = "",
) -> str:
    """Figure 5-style SVG: runqueue heatmap + considered-core tick marks."""
    builder = HeatmapBuilder(num_cpus, t0_us, t1_us, bins)
    matrix = builder.from_trace(trace, NrRunningEvent)
    max_value = max((v for row in matrix for v in row), default=1.0) or 1.0

    cell_w, cell_h = 6, 7
    margin_left, margin_top = 56, 34
    width = margin_left + bins * cell_w + 110
    height = margin_top + num_cpus * cell_h + 40
    canvas = SvgCanvas(width, height)
    if title:
        canvas.text(margin_left, 20, title, size=14)
    for r in range(num_cpus):
        y = margin_top + r * cell_h
        for c in range(bins):
            t = min(max(matrix[r][c] / max_value, 0.0), 1.0)
            canvas.rect(
                margin_left + c * cell_w, y, cell_w, cell_h, rgb(heat_color(t))
            )
    if cores_per_node:
        for r in range(cores_per_node, num_cpus, cores_per_node):
            y = margin_top + r * cell_h
            canvas.line(
                margin_left, y, margin_left + bins * cell_w, y,
                stroke="#3366cc",
            )
    # Vertical ticks: for each balancing call, a blue mark on every core it
    # considered at that time.
    span = t1_us - t0_us
    for event in considered_core_sets(trace, observer_cpu, op):
        if not t0_us <= event.time_us < t1_us:
            continue
        x = margin_left + (event.time_us - t0_us) / span * bins * cell_w
        for core in event.considered:
            if 0 <= core < num_cpus:
                y = margin_top + core * cell_h
                canvas.line(x, y + 1, x, y + cell_h - 1, stroke="#2244bb",
                            width=1.2)
    canvas.text(
        16, margin_top + num_cpus * cell_h / 2, "core", size=11,
        anchor="middle",
    )
    canvas.color_legend(
        margin_left + bins * cell_w + 14, margin_top,
        min(140, num_cpus * cell_h), heat_color,
        low_label="idle", high_label=f"{max_value:.0f} threads",
    )
    return canvas.to_svg()

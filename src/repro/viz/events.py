"""Scheduler event records, probes, and the fixed-size trace buffer.

The scheduler reports into a :class:`Probe`.  ``Probe`` itself is a no-op
(zero overhead when profiling is off, like the paper's tool);
:class:`TraceProbe` appends records to a :class:`TraceBuffer`;
:class:`FanoutProbe` multiplexes to several consumers (e.g. a trace buffer
plus the sanity checker's monitoring window).

The three record types mirror the paper's instrumentation exactly:
runqueue-size changes (``add_nr_running``/``sub_nr_running``), runqueue-load
changes (``account_entity_enqueue``), and considered-core bitfields
(``select_idle_sibling``, ``update_sg_lb_stats``, ``find_busiest_queue``,
``find_idlest_group``).  Migration and wakeup records are additions that the
offline analyzer uses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Tuple


@dataclass(frozen=True)
class NrRunningEvent:
    """Runqueue size changed on a core."""

    time_us: int
    cpu: int
    nr_running: int


@dataclass(frozen=True)
class LoadEvent:
    """Runqueue combined load changed on a core."""

    time_us: int
    cpu: int
    load: float


@dataclass(frozen=True)
class ConsideredEvent:
    """A balancing/wakeup decision examined a set of cores.

    ``op`` names the decision point (``"load_balance"``,
    ``"select_idle_sibling"``, ``"find_idlest_group"``, ...); ``cpu`` is the
    core making the decision; ``considered`` is the bitfield of examined
    cores, stored as a frozenset.
    """

    time_us: int
    cpu: int
    op: str
    considered: frozenset


@dataclass(frozen=True)
class MigrationEvent:
    """A task moved between runqueues."""

    time_us: int
    tid: int
    src_cpu: int
    dst_cpu: int
    reason: str


@dataclass(frozen=True)
class WakeupEvent:
    """A task was woken and placed on a core."""

    time_us: int
    tid: int
    cpu: int
    waker_cpu: Optional[int]
    was_idle: bool


@dataclass(frozen=True)
class BalanceEvent:
    """Outcome of one load-balancing attempt at one domain level.

    ``outcome`` is ``"balanced"`` (busiest not above local -- nothing to
    do), ``"moved:N"`` (N tasks migrated), or ``"blocked"`` (an imbalance
    was seen but no task could move, e.g. all candidates pinned away).
    """

    time_us: int
    cpu: int
    domain: str
    local_metric: float
    busiest_metric: Optional[float]
    outcome: str


@dataclass(frozen=True)
class LifecycleEvent:
    """A task was forked or exited (the checker monitors these)."""

    time_us: int
    tid: int
    kind: str  # "fork" | "exit"
    cpu: Optional[int]


@dataclass(frozen=True)
class SchedSwitchEvent:
    """A CPU switched what it executes (the kernel's ``sched_switch``).

    ``next_tid`` is ``None`` when the CPU stops executing (the previous
    task slept, blocked, exited, or was preempted off); ``prev_tid`` is
    ``None`` when the CPU picks up work after being empty.  The obs trace
    exporter reconstructs per-core running-task slices from this stream.
    """

    time_us: int
    cpu: int
    prev_tid: Optional[int]
    next_tid: Optional[int]
    next_name: str = ""


class Probe:
    """No-op probe: the scheduler's instrumentation hooks.

    Subclasses override the calls they care about.  All hooks must stay
    cheap; they run on the simulator's hottest paths.
    """

    #: False only on this no-op base class: the hottest call sites
    #: (runqueue notification, balance outcomes) check the flag and skip
    #: the hook call -- and the argument computation feeding it --
    #: entirely when nothing listens.  Every subclass is assumed to
    #: listen; one that wants the skip too can set ``active = False``
    #: in its class body.
    active = False

    def __init_subclass__(cls, **kwargs: object) -> None:
        super().__init_subclass__(**kwargs)
        if "active" not in cls.__dict__:
            cls.active = True

    def on_nr_running(self, now: int, cpu: int, nr_running: int) -> None:
        """Runqueue size changed."""

    def on_rq_load(self, now: int, cpu: int, load: float) -> None:
        """Runqueue load changed."""

    def wants_rq_load(self) -> bool:
        """True when :meth:`on_rq_load` actually consumes its samples.

        Computing a queue's load is the expensive half of a notification;
        the runqueue asks first and skips the summation when nobody
        listens.  The default detects an overridden ``on_rq_load``, so
        custom probes get load samples without doing anything; probes that
        can say "not right now" (a trace probe with ``record_load=False``,
        an empty fanout) override this to decline.
        """
        return type(self).on_rq_load is not Probe.on_rq_load

    def on_considered(
        self, now: int, cpu: int, op: str, considered: Iterable[int]
    ) -> None:
        """A decision examined a set of cores."""

    def on_migration(
        self, now: int, tid: int, src_cpu: int, dst_cpu: int, reason: str
    ) -> None:
        """A task migrated between runqueues."""

    def on_wakeup(
        self,
        now: int,
        tid: int,
        cpu: int,
        waker_cpu: Optional[int],
        was_idle: bool,
    ) -> None:
        """A task woke up on ``cpu``."""

    def on_lifecycle(
        self, now: int, tid: int, kind: str, cpu: Optional[int]
    ) -> None:
        """A task forked or exited."""

    def on_balance(
        self,
        now: int,
        cpu: int,
        domain: str,
        local_metric: float,
        busiest_metric: Optional[float],
        outcome: str,
    ) -> None:
        """A load-balancing attempt concluded."""

    def on_sched_switch(
        self,
        now: int,
        cpu: int,
        prev_tid: Optional[int],
        next_tid: Optional[int],
        next_name: str = "",
    ) -> None:
        """A CPU switched what it executes (either tid may be ``None``)."""


class TraceBuffer:
    """Fixed-capacity in-memory event array.

    The paper stores events in "a large global array in memory of a static
    size" (~20 bytes/event, 3.6 MB/s on their machine).  We keep the same
    contract: appends past capacity are dropped and counted, never resized.
    """

    def __init__(self, capacity: int = 1_000_000):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._events: List[object] = []
        self.dropped = 0

    def append(self, event: object) -> None:
        if len(self._events) < self.capacity:
            self._events.append(event)
        else:
            self.dropped += 1

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[object]:
        return iter(self._events)

    def clear(self) -> None:
        self._events.clear()
        self.dropped = 0

    def of_type(self, event_type: type) -> List[object]:
        """All recorded events of one record type, in order."""
        return [e for e in self._events if isinstance(e, event_type)]

    def time_span(self) -> Tuple[int, int]:
        """(first, last) event timestamps; (0, 0) when empty."""
        if not self._events:
            return (0, 0)
        times = [e.time_us for e in self._events]  # type: ignore[attr-defined]
        return (min(times), max(times))


class TraceProbe(Probe):
    """Probe that records every hook invocation into a trace buffer.

    Individual record classes can be disabled to keep traces small (the
    considered-core stream is by far the densest, as in the paper).
    """

    def __init__(
        self,
        buffer: Optional[TraceBuffer] = None,
        record_nr_running: bool = True,
        record_load: bool = True,
        record_considered: bool = True,
        record_migrations: bool = True,
        record_wakeups: bool = True,
        record_lifecycle: bool = True,
        record_switches: bool = True,
    ):
        self.buffer = buffer if buffer is not None else TraceBuffer()
        self.record_nr_running = record_nr_running
        self.record_load = record_load
        self.record_considered = record_considered
        self.record_migrations = record_migrations
        self.record_wakeups = record_wakeups
        self.record_lifecycle = record_lifecycle
        self.record_switches = record_switches

    def on_nr_running(self, now: int, cpu: int, nr_running: int) -> None:
        if self.record_nr_running:
            self.buffer.append(NrRunningEvent(now, cpu, nr_running))

    def on_rq_load(self, now: int, cpu: int, load: float) -> None:
        if self.record_load:
            self.buffer.append(LoadEvent(now, cpu, load))

    def wants_rq_load(self) -> bool:
        return self.record_load

    def on_considered(
        self, now: int, cpu: int, op: str, considered: Iterable[int]
    ) -> None:
        if self.record_considered:
            self.buffer.append(
                ConsideredEvent(now, cpu, op, frozenset(considered))
            )

    def on_migration(
        self, now: int, tid: int, src_cpu: int, dst_cpu: int, reason: str
    ) -> None:
        if self.record_migrations:
            self.buffer.append(
                MigrationEvent(now, tid, src_cpu, dst_cpu, reason)
            )

    def on_wakeup(
        self,
        now: int,
        tid: int,
        cpu: int,
        waker_cpu: Optional[int],
        was_idle: bool,
    ) -> None:
        if self.record_wakeups:
            self.buffer.append(WakeupEvent(now, tid, cpu, waker_cpu, was_idle))

    def on_lifecycle(
        self, now: int, tid: int, kind: str, cpu: Optional[int]
    ) -> None:
        if self.record_lifecycle:
            self.buffer.append(LifecycleEvent(now, tid, kind, cpu))

    def on_balance(
        self,
        now: int,
        cpu: int,
        domain: str,
        local_metric: float,
        busiest_metric: Optional[float],
        outcome: str,
    ) -> None:
        if self.record_considered:
            self.buffer.append(
                BalanceEvent(
                    now, cpu, domain, local_metric, busiest_metric, outcome
                )
            )

    def on_sched_switch(
        self,
        now: int,
        cpu: int,
        prev_tid: Optional[int],
        next_tid: Optional[int],
        next_name: str = "",
    ) -> None:
        if self.record_switches:
            self.buffer.append(
                SchedSwitchEvent(now, cpu, prev_tid, next_tid, next_name)
            )


class FanoutProbe(Probe):
    """Forwards every hook to an ordered list of probes.

    An *empty* fanout -- the default wiring of a :class:`System` nobody
    instrumented -- reports ``active = False`` (an instance attribute
    shadowing the subclass default), so the hot-path gates skip hook
    calls entirely until the first consumer is attached.
    """

    def __init__(self, probes: Iterable[Probe] = ()):
        self.probes: List[Probe] = list(probes)
        self.active = bool(self.probes)

    def add(self, probe: Probe) -> None:
        self.probes.append(probe)
        self.active = True

    def remove(self, probe: Probe) -> None:
        self.probes.remove(probe)
        self.active = bool(self.probes)

    def on_nr_running(self, now: int, cpu: int, nr_running: int) -> None:
        for probe in self.probes:
            probe.on_nr_running(now, cpu, nr_running)

    def on_rq_load(self, now: int, cpu: int, load: float) -> None:
        for probe in self.probes:
            probe.on_rq_load(now, cpu, load)

    def wants_rq_load(self) -> bool:
        # Plain loop, not any(genexp): this runs on every runqueue
        # notification and a generator allocation per call is measurable.
        for probe in self.probes:
            if probe.wants_rq_load():
                return True
        return False

    def on_considered(
        self, now: int, cpu: int, op: str, considered: Iterable[int]
    ) -> None:
        considered = frozenset(considered)
        for probe in self.probes:
            probe.on_considered(now, cpu, op, considered)

    def on_migration(
        self, now: int, tid: int, src_cpu: int, dst_cpu: int, reason: str
    ) -> None:
        for probe in self.probes:
            probe.on_migration(now, tid, src_cpu, dst_cpu, reason)

    def on_wakeup(
        self,
        now: int,
        tid: int,
        cpu: int,
        waker_cpu: Optional[int],
        was_idle: bool,
    ) -> None:
        for probe in self.probes:
            probe.on_wakeup(now, tid, cpu, waker_cpu, was_idle)

    def on_lifecycle(
        self, now: int, tid: int, kind: str, cpu: Optional[int]
    ) -> None:
        for probe in self.probes:
            probe.on_lifecycle(now, tid, kind, cpu)

    def on_balance(
        self,
        now: int,
        cpu: int,
        domain: str,
        local_metric: float,
        busiest_metric: Optional[float],
        outcome: str,
    ) -> None:
        for probe in self.probes:
            probe.on_balance(
                now, cpu, domain, local_metric, busiest_metric, outcome
            )

    def on_sched_switch(
        self,
        now: int,
        cpu: int,
        prev_tid: Optional[int],
        next_tid: Optional[int],
        next_name: str = "",
    ) -> None:
        for probe in self.probes:
            probe.on_sched_switch(now, cpu, prev_tid, next_tid, next_name)

"""Per-core execution timelines from migration/wakeup events.

A compact textual rendering of "which task ran where", useful when reading
traces of the Overload-on-Wakeup bug: straggler threads hop between busy
cores while an idle core sits untouched (the paper's Figure 3 narrative).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Tuple

from repro.viz.events import MigrationEvent, TraceBuffer, WakeupEvent


def task_placements(trace: TraceBuffer) -> Dict[int, List[Tuple[int, int]]]:
    """Per-task ordered (time_us, cpu) placement history."""
    history: Dict[int, List[Tuple[int, int]]] = defaultdict(list)
    for event in trace:
        if isinstance(event, WakeupEvent):
            history[event.tid].append((event.time_us, event.cpu))
        elif isinstance(event, MigrationEvent):
            history[event.tid].append((event.time_us, event.dst_cpu))
    for tid in history:
        history[tid].sort()
    return history


def migration_counts(trace: TraceBuffer) -> Dict[int, int]:
    """Number of migrations per task."""
    counts: Dict[int, int] = defaultdict(int)
    for event in trace.of_type(MigrationEvent):
        counts[event.tid] += 1
    return dict(counts)


def wakeup_busy_fraction(trace: TraceBuffer) -> float:
    """Fraction of wakeups landing on already-busy cores.

    The Overload-on-Wakeup signature: high under the bug while idle cores
    exist, low after the fix.
    """
    wakeups = trace.of_type(WakeupEvent)
    if not wakeups:
        return 0.0
    busy = sum(1 for w in wakeups if not w.was_idle)
    return busy / len(wakeups)


def render_task_timeline(
    trace: TraceBuffer, tid: int, width: int = 72
) -> str:
    """One text line showing a task's core over time (digits = core id).

    Cores are rendered modulo 10 with a caret row marking migrations.
    """
    placements = task_placements(trace).get(tid, [])
    if not placements:
        return f"tid {tid}: no placement events"
    t0 = placements[0][0]
    t1 = max(placements[-1][0], t0 + 1)
    cells = ["."] * width
    marks = [" "] * width
    prev_cpu = None
    for time_us, cpu in placements:
        pos = min(int((time_us - t0) / (t1 - t0) * (width - 1)), width - 1)
        cells[pos] = str(cpu % 10)
        if prev_cpu is not None and cpu != prev_cpu:
            marks[pos] = "^"
        prev_cpu = cpu
    return (
        f"tid {tid:5d} |{''.join(cells)}|\n"
        f"          |{''.join(marks)}| (^ = migration, digits = core%10)"
    )

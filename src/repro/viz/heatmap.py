"""Cores x time heatmaps -- the paper's Figures 2a/2b/2c and 3.

A :class:`HeatmapBuilder` replays the step function encoded in a trace's
runqueue-size (or load) events into a dense matrix: one row per core, one
column per time bin, each cell holding the value in effect during that bin
(time-weighted average when several events land in one bin).

Rendering is either ASCII (for terminals and test assertions) or SVG
(:func:`render_svg_heatmap`), with white = idle and warmer colors = more
threads, like the paper's tool.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Sequence, Tuple, Type

from repro.viz.events import NrRunningEvent, TraceBuffer
from repro.viz.svg import SvgCanvas, gray_color, heat_color, rgb

#: ASCII intensity ramp, blank = zero.
ASCII_RAMP = " .:-=+*#%@"


class HeatmapBuilder:
    """Builds a (cpus x bins) value matrix from trace events."""

    def __init__(
        self,
        num_cpus: int,
        t0_us: int,
        t1_us: int,
        bins: int = 120,
    ):
        if t1_us <= t0_us:
            raise ValueError(f"empty time range [{t0_us}, {t1_us}]")
        if bins <= 0:
            raise ValueError(f"bins must be positive, got {bins}")
        self.num_cpus = num_cpus
        self.t0_us = t0_us
        self.t1_us = t1_us
        self.bins = bins
        self.bin_width_us = (t1_us - t0_us) / bins

    def from_trace(
        self,
        trace: TraceBuffer,
        event_type: Type = NrRunningEvent,
    ) -> List[List[float]]:
        """Time-weighted per-bin averages of the event value per core."""
        field = "nr_running" if event_type is NrRunningEvent else "load"
        per_cpu: Dict[int, List[Tuple[int, float]]] = defaultdict(list)
        for event in trace.of_type(event_type):
            per_cpu[event.cpu].append(
                (event.time_us, float(getattr(event, field)))
            )
        matrix = [[0.0] * self.bins for _ in range(self.num_cpus)]
        for cpu in range(self.num_cpus):
            series = sorted(per_cpu.get(cpu, ()))
            matrix[cpu] = self._integrate(series)
        return matrix

    def _integrate(
        self, series: Sequence[Tuple[int, float]]
    ) -> List[float]:
        """Integrate a step function into per-bin time-weighted means."""
        out = [0.0] * self.bins
        if not series:
            return out
        # Value in effect at t0: the last event at or before t0 (0 if none).
        value = 0.0
        idx = 0
        for idx, (t, v) in enumerate(series):
            if t > self.t0_us:
                break
            value = v
            idx += 1
        cursor = self.t0_us
        weights = [0.0] * self.bins

        def accumulate(start: float, end: float, val: float) -> None:
            if end <= start:
                return
            b0 = int((start - self.t0_us) / self.bin_width_us)
            b1 = int((end - self.t0_us - 1e-9) / self.bin_width_us)
            b0 = min(max(b0, 0), self.bins - 1)
            b1 = min(max(b1, 0), self.bins - 1)
            for b in range(b0, b1 + 1):
                lo = max(start, self.t0_us + b * self.bin_width_us)
                hi = min(end, self.t0_us + (b + 1) * self.bin_width_us)
                if hi > lo:
                    out[b] += val * (hi - lo)
                    weights[b] += hi - lo

        for t, v in series[idx:]:
            if t >= self.t1_us:
                break
            accumulate(cursor, t, value)
            cursor = t
            value = v
        accumulate(cursor, self.t1_us, value)
        for b in range(self.bins):
            if weights[b] > 0:
                out[b] /= weights[b]
        return out


def render_ascii_heatmap(
    matrix: Sequence[Sequence[float]],
    max_value: Optional[float] = None,
    cores_per_node: Optional[int] = None,
    title: str = "",
) -> str:
    """Terminal heatmap: one row per core, intensity via a character ramp.

    ``cores_per_node`` inserts a separator line between NUMA nodes so the
    per-node patterns of Figure 2 stand out.
    """
    if max_value is None:
        max_value = max((v for row in matrix for v in row), default=1.0)
    if max_value <= 0:
        max_value = 1.0
    lines: List[str] = []
    if title:
        lines.append(title)
    for cpu, row in enumerate(matrix):
        if (
            cores_per_node
            and cpu > 0
            and cpu % cores_per_node == 0
        ):
            lines.append("     " + "-" * len(row))
        cells = []
        for v in row:
            t = min(max(v / max_value, 0.0), 1.0)
            idx = min(int(t * (len(ASCII_RAMP) - 1) + 0.5), len(ASCII_RAMP) - 1)
            cells.append(ASCII_RAMP[idx])
        lines.append(f"cpu{cpu:3d} {''.join(cells)}")
    lines.append(f"scale: max={max_value:.2f} ramp='{ASCII_RAMP}'")
    return "\n".join(lines)


def render_svg_heatmap(
    matrix: Sequence[Sequence[float]],
    max_value: Optional[float] = None,
    cores_per_node: Optional[int] = None,
    title: str = "",
    value_label: str = "runqueue size",
    grayscale: bool = False,
    t0_us: int = 0,
    t1_us: int = 0,
    cell_w: int = 6,
    cell_h: int = 7,
) -> str:
    """Standalone SVG heatmap in the style of the paper's Figures 2/3."""
    rows = len(matrix)
    cols = len(matrix[0]) if rows else 0
    if max_value is None:
        max_value = max((v for row in matrix for v in row), default=1.0)
    if max_value <= 0:
        max_value = 1.0
    margin_left, margin_top = 56, 34
    width = margin_left + cols * cell_w + 110
    height = margin_top + rows * cell_h + 40
    canvas = SvgCanvas(width, height)
    ramp = gray_color if grayscale else heat_color
    if title:
        canvas.text(margin_left, 20, title, size=14)
    for r, row in enumerate(matrix):
        y = margin_top + r * cell_h
        for c, v in enumerate(row):
            t = min(max(v / max_value, 0.0), 1.0)
            canvas.rect(
                margin_left + c * cell_w, y, cell_w, cell_h, rgb(ramp(t))
            )
        if r % 8 == 0:
            canvas.text(
                margin_left - 6, y + cell_h, f"{r}", size=9, anchor="end"
            )
    if cores_per_node:
        for r in range(cores_per_node, rows, cores_per_node):
            y = margin_top + r * cell_h
            canvas.line(
                margin_left, y, margin_left + cols * cell_w, y,
                stroke="#3366cc", width=1.0,
            )
    canvas.text(
        16, margin_top + rows * cell_h / 2, "core", size=11, anchor="middle"
    )
    if t1_us > t0_us:
        canvas.text(
            margin_left, margin_top + rows * cell_h + 16,
            f"{t0_us / 1e6:.2f}s", size=10,
        )
        canvas.text(
            margin_left + cols * cell_w,
            margin_top + rows * cell_h + 16,
            f"{t1_us / 1e6:.2f}s", size=10, anchor="end",
        )
    canvas.color_legend(
        margin_left + cols * cell_w + 14, margin_top,
        min(140, rows * cell_h), ramp,
        low_label="0", high_label=f"{max_value:.1f} {value_label}",
    )
    return canvas.to_svg()

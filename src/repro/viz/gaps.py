"""Straggler-gap analysis -- the paper's reading of Figure 3.

    "Many threads have gaps in their execution, i.e., they all sleep at
    the same time, waiting for 'straggler' threads that are sharing a
    core.  When all instances of the bug are resolved, the gaps
    disappear."

From the recorded runqueue-size events this module reconstructs the
machine-wide activity level over time, detects *gaps* (intervals where
most cores are simultaneously inactive while the workload is running) and
*episodes* of sustained imbalance (some cores idle, others overloaded),
including how long each episode took to recover.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Tuple

from repro.viz.events import NrRunningEvent, TraceBuffer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.offline import OfflineViolation


@dataclass(frozen=True)
class ActivityGap:
    """An interval where the machine went mostly inactive mid-run."""

    start_us: int
    end_us: int
    min_active_cores: int

    @property
    def duration_us(self) -> int:
        return self.end_us - self.start_us


def activity_series(
    trace: TraceBuffer, num_cpus: int
) -> List[Tuple[int, int]]:
    """(time, active-core-count) change points from runqueue events."""
    nr = [0] * num_cpus
    active = 0
    series: List[Tuple[int, int]] = []
    events = sorted(
        (e for e in trace.of_type(NrRunningEvent) if e.cpu < num_cpus),
        key=lambda e: e.time_us,
    )
    for event in events:
        was_active = nr[event.cpu] > 0
        nr[event.cpu] = event.nr_running
        is_active = event.nr_running > 0
        if was_active != is_active:
            active += 1 if is_active else -1
        if series and series[-1][0] == event.time_us:
            series[-1] = (event.time_us, active)
        else:
            series.append((event.time_us, active))
    return series


def find_gaps(
    trace: TraceBuffer,
    num_cpus: int,
    threshold_fraction: float = 0.5,
    min_duration_us: int = 500,
    span: Tuple[int, int] = (0, 0),
) -> List[ActivityGap]:
    """Intervals where active cores drop below a fraction of the peak.

    A gap is the Figure 3 signature: most workers sleep simultaneously
    waiting for stragglers.  ``span`` optionally clips to a window.
    """
    series = activity_series(trace, num_cpus)
    if not series:
        return []
    peak = max(count for _, count in series)
    if peak == 0:
        return []
    threshold = peak * threshold_fraction
    gaps: List[ActivityGap] = []
    gap_start = None
    gap_min = peak
    lo, hi = span
    for time_us, count in series:
        if hi and not lo <= time_us <= hi:
            continue
        if count < threshold:
            if gap_start is None:
                gap_start = time_us
                gap_min = count
            else:
                gap_min = min(gap_min, count)
        elif gap_start is not None:
            if time_us - gap_start >= min_duration_us:
                gaps.append(ActivityGap(gap_start, time_us, gap_min))
            gap_start = None
            gap_min = peak
    return gaps


@dataclass
class GapReport:
    """Gap and imbalance-episode statistics for one traced run."""

    gaps: List[ActivityGap]
    episodes: List["OfflineViolation"]
    span_us: int

    @property
    def gap_time_fraction(self) -> float:
        if self.span_us <= 0:
            return 0.0
        return sum(g.duration_us for g in self.gaps) / self.span_us

    @property
    def mean_recovery_us(self) -> float:
        """Mean imbalance-episode length (= time the balancer needed)."""
        if not self.episodes:
            return 0.0
        return sum(e.duration_us for e in self.episodes) / len(self.episodes)

    def describe(self) -> str:
        return (
            f"{len(self.gaps)} execution gap(s) "
            f"({self.gap_time_fraction:.1%} of the run); "
            f"{len(self.episodes)} imbalance episode(s), "
            f"mean recovery {self.mean_recovery_us / 1000:.1f}ms"
        )


def analyze_gaps(
    trace: TraceBuffer,
    num_cpus: int,
    span_us: int,
    episode_min_us: int = 2_000,
) -> GapReport:
    """Full Figure 3-style analysis of one trace."""
    # Imported here: repro.core depends on repro.viz.events, so a
    # top-level import would be circular during package init.
    from repro.core.offline import find_trace_violations

    return GapReport(
        gaps=find_gaps(trace, num_cpus),
        episodes=find_trace_violations(
            trace, num_cpus, min_duration_us=episode_min_us, end_us=span_us
        ),
        span_us=span_us,
    )

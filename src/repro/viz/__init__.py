"""Scheduler visualization: trace recording and plot rendering.

The paper's visual tool instruments the kernel to record, without sampling,
(1) every runqueue-size change, (2) every runqueue-load change, and (3) the
set of cores considered by each load-balancing or wakeup decision, into a
fixed-size in-memory array.  This package is the equivalent:

* :mod:`~repro.viz.events` -- event records, the probe interface the
  scheduler reports into, and the fixed-capacity trace buffer;
* :mod:`~repro.viz.heatmap` -- Figure 2/3-style heatmaps (cores x time,
  colored by runqueue size or load), rendered as ASCII or standalone SVG;
* :mod:`~repro.viz.considered` -- Figure 5-style considered-cores plots;
* :mod:`~repro.viz.timeline` -- per-core execution timelines.
"""

from repro.viz.events import (
    ConsideredEvent,
    FanoutProbe,
    LoadEvent,
    MigrationEvent,
    NrRunningEvent,
    Probe,
    TraceBuffer,
    TraceProbe,
    WakeupEvent,
)
from repro.viz.gaps import ActivityGap, GapReport, analyze_gaps, find_gaps
from repro.viz.heatmap import HeatmapBuilder, render_ascii_heatmap, render_svg_heatmap

__all__ = [
    "ActivityGap",
    "ConsideredEvent",
    "GapReport",
    "analyze_gaps",
    "find_gaps",
    "FanoutProbe",
    "HeatmapBuilder",
    "LoadEvent",
    "MigrationEvent",
    "NrRunningEvent",
    "Probe",
    "TraceBuffer",
    "TraceProbe",
    "WakeupEvent",
    "render_ascii_heatmap",
    "render_svg_heatmap",
]

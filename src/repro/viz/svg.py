"""Minimal standalone SVG writer (no third-party plotting available).

Just enough primitives for the paper's charts: rectangles, lines, text and
a vertical color ramp legend.  Output is a self-contained ``.svg`` string.
"""

from __future__ import annotations

from typing import List, Tuple

Color = Tuple[int, int, int]


def rgb(color: Color) -> str:
    r, g, b = color
    return f"rgb({r},{g},{b})"


def lerp_color(a: Color, b: Color, t: float) -> Color:
    """Linear interpolation between two colors, t clamped to [0, 1]."""
    t = min(max(t, 0.0), 1.0)
    return tuple(round(a[i] + (b[i] - a[i]) * t) for i in range(3))  # type: ignore[return-value]


def heat_color(t: float) -> Color:
    """White -> yellow -> orange -> red ramp (the paper's heatmap colours).

    ``t`` is the normalized value; white means idle.
    """
    t = min(max(t, 0.0), 1.0)
    stops: List[Tuple[float, Color]] = [
        (0.0, (255, 255, 255)),
        (0.34, (255, 237, 160)),
        (0.67, (254, 153, 41)),
        (1.0, (189, 0, 38)),
    ]
    for (t0, c0), (t1, c1) in zip(stops, stops[1:]):
        if t <= t1:
            span = t1 - t0
            return lerp_color(c0, c1, (t - t0) / span if span else 0.0)
    return stops[-1][1]


def gray_color(t: float) -> Color:
    """White -> black ramp (Figure 2b's load heatmap)."""
    t = min(max(t, 0.0), 1.0)
    v = round(255 * (1.0 - t))
    return (v, v, v)


class SvgCanvas:
    """Accumulates SVG elements and serializes a standalone document."""

    def __init__(self, width: int, height: int, background: str = "white"):
        self.width = width
        self.height = height
        self._parts: List[str] = [
            f'<rect x="0" y="0" width="{width}" height="{height}" '
            f'fill="{background}"/>'
        ]

    def rect(
        self,
        x: float,
        y: float,
        w: float,
        h: float,
        fill: str,
        stroke: str = "none",
    ) -> None:
        self._parts.append(
            f'<rect x="{x:.2f}" y="{y:.2f}" width="{w:.2f}" '
            f'height="{h:.2f}" fill="{fill}" stroke="{stroke}"/>'
        )

    def line(
        self,
        x1: float,
        y1: float,
        x2: float,
        y2: float,
        stroke: str = "black",
        width: float = 1.0,
        dash: str = "",
    ) -> None:
        extra = f' stroke-dasharray="{dash}"' if dash else ""
        self._parts.append(
            f'<line x1="{x1:.2f}" y1="{y1:.2f}" x2="{x2:.2f}" '
            f'y2="{y2:.2f}" stroke="{stroke}" '
            f'stroke-width="{width:.2f}"{extra}/>'
        )

    def text(
        self,
        x: float,
        y: float,
        content: str,
        size: int = 12,
        anchor: str = "start",
        color: str = "black",
    ) -> None:
        content = (
            content.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
        )
        self._parts.append(
            f'<text x="{x:.2f}" y="{y:.2f}" font-size="{size}" '
            f'font-family="sans-serif" text-anchor="{anchor}" '
            f'fill="{color}">{content}</text>'
        )

    def color_legend(
        self,
        x: float,
        y: float,
        height: float,
        ramp,
        low_label: str,
        high_label: str,
        steps: int = 32,
    ) -> None:
        """Vertical color-ramp legend with end labels."""
        cell = height / steps
        for i in range(steps):
            t = 1.0 - i / (steps - 1)
            self.rect(x, y + i * cell, 12, cell + 0.5, rgb(ramp(t)))
        self.text(x + 16, y + 10, high_label, size=10)
        self.text(x + 16, y + height, low_label, size=10)

    def to_svg(self) -> str:
        body = "\n".join(self._parts)
        return (
            f'<svg xmlns="http://www.w3.org/2000/svg" '
            f'width="{self.width}" height="{self.height}" '
            f'viewBox="0 0 {self.width} {self.height}">\n{body}\n</svg>\n'
        )

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as f:
            f.write(self.to_svg())

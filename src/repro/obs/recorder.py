"""Tracepoint consumer that folds the event stream into metrics.

The recorder subscribes to the obs bus and maintains exactly the numbers
the paper says standard tools throw away:

* ``sched_wakeup_to_run_latency_us`` -- histogram of the gap between a
  task's wakeup and its next switch-in, labeled by the CPU it ran on.
  Overload-on-Wakeup is *this* distribution growing a tail while idle
  cores exist.
* ``sched_idle_gap_us`` -- histogram of per-CPU idle-period lengths, the
  short gaps ``htop``-style sampling averages away.
* ``sched_slice_interarrival_us`` -- histogram of per-task gaps between
  consecutive switch-ins.  Its exact standard deviation (the histogram
  keeps a running sum of squares) is the *scheduling jitter* the SLO
  layer reports: a task that runs on a metronomic cadence has near-zero
  jitter; one starved behind an overloaded runqueue while cores idle
  shows a fat, erratic inter-arrival spread.
* ``sched_migrations_total`` by reason, ``sched_balance_total`` by
  (domain, outcome), ``sched_wakeups_total`` by idle/busy landing.
* ``checker_*_total`` -- the sanity checker's detection funnel (checks,
  violations seen, transients, confirmed bugs).
* ``engine_callbacks_total`` by event-loop label class, attributing heap
  callbacks (``tick``, ``phase-end``, ``wake``) in one counter.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.tracepoints import TRACEPOINTS, TracepointRegistry

#: Tracepoint patterns the recorder listens to.
_SUBSCRIPTIONS = (
    "sched.*",
    "checker.*",
    "engine.callback",
    "stats.violation_tick",
)


def _label_class(label: str) -> str:
    """Collapse per-task labels (``phase-end:17``) to their class."""
    if not label:
        return "unlabeled"
    return label.split(":", 1)[0]


class MetricsRecorder:
    """Subscribes to the tracepoint bus and updates a metrics registry."""

    def __init__(self, metrics: Optional[MetricsRegistry] = None):
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._registry: Optional[TracepointRegistry] = None
        #: Pending wakeups by tid: wakeup time, waiting for switch-in.
        self._wakeup_pending: Dict[int, int] = {}
        #: Per-CPU timestamp the runqueue last went empty; None while busy.
        self._idle_since: Dict[int, int] = {}
        #: Per-task timestamp of the previous switch-in (jitter tracking).
        self._last_switch_in: Dict[int, int] = {}

        m = self.metrics
        self._wakeup_latency = m.histogram(
            "sched_wakeup_to_run_latency_us",
            "gap between a task's wakeup and its next switch-in",
        )
        self._idle_gap = m.histogram(
            "sched_idle_gap_us", "per-CPU idle-period lengths"
        )
        self._slice_interarrival = m.histogram(
            "sched_slice_interarrival_us",
            "per-task gaps between consecutive switch-ins (jitter source)",
        )
        self._migrations = m.counter(
            "sched_migrations_total", "task migrations by reason"
        )
        self._wakeups = m.counter(
            "sched_wakeups_total", "wakeups by idle/busy landing core"
        )
        self._switches = m.counter(
            "sched_switches_total", "switch-ins per CPU"
        )
        self._balance = m.counter(
            "sched_balance_total", "balancing attempts by domain and outcome"
        )
        self._considered = m.counter(
            "sched_considered_total", "considered-core reports by operation"
        )
        self._forks = m.counter("sched_forks_total", "task forks")
        self._exits = m.counter("sched_exits_total", "task exits")
        self._checker = m.counter(
            "checker_events_total", "sanity-checker state transitions"
        )
        self._engine = m.counter(
            "engine_callbacks_total", "event-loop callbacks by label class"
        )
        self._sampler = m.counter(
            "stats_violation_ticks_total",
            "ticks the idle-overload sampler saw a violation",
        )

    # -- wiring --------------------------------------------------------------

    def attach(self, registry: Optional[TracepointRegistry] = None) -> None:
        """Subscribe to the bus (``TRACEPOINTS`` by default)."""
        if self._registry is not None:
            raise RuntimeError("recorder is already attached")
        reg = registry if registry is not None else TRACEPOINTS
        self._registry = reg
        for pattern in _SUBSCRIPTIONS:
            reg.subscribe(pattern, self._on_event)

    def detach(self) -> None:
        if self._registry is None:
            return
        for pattern in _SUBSCRIPTIONS:
            self._registry.unsubscribe(pattern, self._on_event)
        self._registry = None

    # -- event handling ------------------------------------------------------

    def _on_event(
        self, name: str, now: int, fields: Mapping[str, object]
    ) -> None:
        handler = self._HANDLERS.get(name)
        if handler is not None:
            handler(self, now, fields)
        elif name.startswith("checker."):
            self._checker.inc(event=name.split(".", 1)[1])

    def _on_wakeup(self, now: int, fields: Mapping[str, object]) -> None:
        tid = fields["tid"]
        self._wakeup_pending[tid] = now  # type: ignore[index]
        self._wakeups.inc(
            landing="idle_core" if fields["was_idle"] else "busy_core"
        )

    def _on_switch(self, now: int, fields: Mapping[str, object]) -> None:
        next_tid = fields["next_tid"]
        cpu = fields["cpu"]
        if next_tid is not None:
            self._switches.inc(cpu=cpu)
            woken_at = self._wakeup_pending.pop(next_tid, None)  # type: ignore[arg-type]
            if woken_at is not None:
                self._wakeup_latency.observe(now - woken_at, cpu=cpu)
            prev_run = self._last_switch_in.get(next_tid)  # type: ignore[arg-type]
            if prev_run is not None and now > prev_run:
                self._slice_interarrival.observe(now - prev_run)
            self._last_switch_in[next_tid] = now  # type: ignore[index]

    def _on_nr_running(self, now: int, fields: Mapping[str, object]) -> None:
        cpu = fields["cpu"]
        if fields["nr_running"] == 0:
            self._idle_since.setdefault(cpu, now)  # type: ignore[arg-type]
        else:
            since = self._idle_since.pop(cpu, None)  # type: ignore[arg-type]
            if since is not None and now > since:
                self._idle_gap.observe(now - since, cpu=cpu)

    def _on_migration(self, now: int, fields: Mapping[str, object]) -> None:
        self._migrations.inc(reason=fields["reason"])

    def _on_balance(self, now: int, fields: Mapping[str, object]) -> None:
        outcome = str(fields["outcome"]).split(":", 1)[0]
        self._balance.inc(domain=fields["domain"], outcome=outcome)

    def _on_considered(self, now: int, fields: Mapping[str, object]) -> None:
        self._considered.inc(op=fields["op"])

    def _on_lifecycle(self, now: int, fields: Mapping[str, object]) -> None:
        if fields["kind"] == "fork":
            self._forks.inc()
            # A fork is also a placement: its first switch-in closes a
            # wakeup-to-run sample, like the kernel's sched_wakeup_new.
            self._wakeup_pending[fields["tid"]] = now  # type: ignore[index]
        elif fields["kind"] == "exit":
            self._exits.inc()
            self._wakeup_pending.pop(fields["tid"], None)  # type: ignore[arg-type]
            self._last_switch_in.pop(fields["tid"], None)  # type: ignore[arg-type]

    def _on_engine(self, now: int, fields: Mapping[str, object]) -> None:
        self._engine.inc(label=_label_class(str(fields.get("label", ""))))

    def _on_sampler(self, now: int, fields: Mapping[str, object]) -> None:
        self._sampler.inc()

    _HANDLERS = {
        "sched.wakeup": _on_wakeup,
        "sched.switch": _on_switch,
        "sched.nr_running": _on_nr_running,
        "sched.migration": _on_migration,
        "sched.balance": _on_balance,
        "sched.considered": _on_considered,
        "sched.lifecycle": _on_lifecycle,
        "engine.callback": _on_engine,
        "stats.violation_tick": _on_sampler,
    }

    # -- conveniences --------------------------------------------------------

    @property
    def wakeup_latency(self) -> Histogram:
        """The wakeup-to-run latency histogram (acceptance metric)."""
        return self._wakeup_latency

    @property
    def slice_interarrival(self) -> Histogram:
        """Per-task switch-in inter-arrival histogram (jitter source)."""
        return self._slice_interarrival

    def jitter_us(self) -> float:
        """Scheduling jitter: exact stddev of switch-in inter-arrivals."""
        return self._slice_interarrival.stddev()

    def latency_line(self) -> str:
        """One-line percentile summary for experiment tables."""
        h = self._wakeup_latency
        if h.count() == 0:
            return "wakeup-to-run latency: no samples"
        return (
            f"wakeup-to-run latency: n={h.count()} "
            f"p50={h.percentile(50):.0f}us p95={h.percentile(95):.0f}us "
            f"p99={h.percentile(99):.0f}us"
        )

"""Named tracepoints: the unifying event bus of the obs subsystem.

The paper's tools share one design rule: instrumentation must cost nothing
while nobody is listening ("systemtap costs ~7%, so profiling is never left
on").  A :class:`Tracepoint` follows the kernel's static-tracepoint idiom:
the instrumented module materializes its tracepoints once at import time
and guards every emission with a single attribute check::

    _TP_CALLBACK = TRACEPOINTS.tracepoint("engine.callback")
    ...
    if _TP_CALLBACK.enabled:
        _TP_CALLBACK.emit(now, label=event.label)

``enabled`` is simply "someone subscribed", so the disabled path is one
attribute load and one branch -- measured against a benchmark run in
``tests/test_obs_overhead.py``.

Producers are the simulator (:mod:`repro.sim.engine`), the scheduler (via
:class:`repro.obs.bridge.ProbeTracepointBridge`, which forwards every
:class:`~repro.viz.events.Probe` hook), the sanity checker, and the
idle-overload sampler.  Consumers are the metrics recorder and the Chrome
trace builder; anything else can subscribe by name or prefix pattern.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional, Tuple

#: A tracepoint consumer: ``fn(name, now_us, fields)``.
Subscriber = Callable[[str, int, Mapping[str, object]], None]

#: Every event name the bus carries, with a one-line description.  This is
#: the authoritative registry: ``repro lint`` cross-checks it against every
#: ``tracepoint("...")`` / ``span("...")`` call site in the tree, so an
#: undeclared emission ("orphan emit") or an unemitted declaration ("dead
#: declaration") fails CI.  Add the name here in the same change that adds
#: the producer.
TRACEPOINT_NAMES: Dict[str, str] = {
    "engine.callback": "one executed event-loop callback, with its label",
    "sched.nr_running": "a runqueue's nr_running changed",
    "sched.rq_load": "a runqueue's load changed",
    "sched.considered": "CPUs a placement/balancing decision examined",
    "sched.migration": "a queued task moved between runqueues",
    "sched.wakeup": "wakeup placement chose a CPU",
    "sched.lifecycle": "task fork/exit",
    "sched.balance": "one balancing attempt and its outcome",
    "sched.switch": "context switch on a CPU",
    "checker.check": "one sanity-checker invariant sweep",
    "checker.violation_detected": "invariant violation first observed",
    "checker.transient": "violation cleared before the threshold",
    "checker.bug_confirmed": "violation persisted past the threshold",
    "checker.profile_done": "the checker's profiling window closed",
    "stats.violation_tick": "idle-while-overloaded sampler hit",
}


class Tracepoint:
    """One named event source; no-op until somebody subscribes."""

    __slots__ = ("name", "enabled", "_subscribers")

    def __init__(self, name: str):
        self.name = name
        #: True exactly when at least one subscriber is attached.  Call
        #: sites check this before building the fields dict, so a disabled
        #: tracepoint never allocates.
        self.enabled = False
        self._subscribers: List[Subscriber] = []

    def emit(self, now: int, **fields: object) -> None:
        """Deliver one event to every subscriber (caller checks ``enabled``)."""
        for subscriber in self._subscribers:
            subscriber(self.name, now, fields)

    def subscribe(self, fn: Subscriber) -> None:
        self._subscribers.append(fn)
        self.enabled = True

    def unsubscribe(self, fn: Subscriber) -> None:
        self._subscribers.remove(fn)
        self.enabled = bool(self._subscribers)

    def __repr__(self) -> str:
        state = f"{len(self._subscribers)} subscriber(s)" if self.enabled \
            else "disabled"
        return f"Tracepoint({self.name!r}, {state})"


class TracepointRegistry:
    """All tracepoints by name, with prefix-pattern subscription.

    Patterns are either exact names (``"sched.migration"``) or a prefix
    followed by ``*`` (``"sched.*"``, or ``"*"`` for everything).  Every
    subscription also covers tracepoints created *after* it, so consumers
    need not know the full producer set (or its import order) up front.
    """

    def __init__(self) -> None:
        self._points: Dict[str, Tracepoint] = {}
        #: Live (pattern, fn) pairs, applied to late-created tracepoints.
        self._subscriptions: List[Tuple[str, Subscriber]] = []

    def tracepoint(self, name: str) -> Tracepoint:
        """Create-or-get the tracepoint with this name."""
        point = self._points.get(name)
        if point is None:
            point = Tracepoint(name)
            self._points[name] = point
            for pattern, fn in self._subscriptions:
                if _matches(pattern, name):
                    point.subscribe(fn)
        return point

    def names(self) -> List[str]:
        return sorted(self._points)

    def subscribe(self, pattern: str, fn: Subscriber) -> None:
        """Attach ``fn`` to every tracepoint matching ``pattern``."""
        self._subscriptions.append((pattern, fn))
        for name, point in self._points.items():
            if _matches(pattern, name):
                point.subscribe(fn)

    def unsubscribe(self, pattern: str, fn: Subscriber) -> None:
        """Reverse a :meth:`subscribe` with the same arguments."""
        self._subscriptions.remove((pattern, fn))
        for name, point in self._points.items():
            if _matches(pattern, name) and fn in point._subscribers:
                point.unsubscribe(fn)

    def __repr__(self) -> str:
        live = sum(1 for p in self._points.values() if p.enabled)
        return f"TracepointRegistry({len(self._points)} points, {live} live)"


def _matches(pattern: str, name: str) -> bool:
    if pattern.endswith("*"):
        return name.startswith(pattern[:-1])
    return pattern == name


#: The process-wide registry every instrumented module reports through,
#: mirroring the kernel's single static tracepoint table.  Tests and tools
#: may build private registries, but producers compiled into the simulator
#: (engine, checker, sampler, probe bridge) use this one.
TRACEPOINTS = TracepointRegistry()


class Span:
    """A named interval emitted as paired begin/end tracepoint events.

    Spans ride the same bus as point events (``ph`` field ``"B"``/``"E"``),
    so the Chrome exporter can render them as slices on the obs track::

        span = Span(tp, system.now, bug="group_imbalance")
        ...   # run the experiment
        span.end(system.now)
    """

    __slots__ = ("tracepoint", "fields", "start_us", "_open")

    def __init__(self, tracepoint: Tracepoint, now: int, **fields: object):
        self.tracepoint = tracepoint
        self.fields = fields
        self.start_us = now
        self._open = True
        if tracepoint.enabled:
            tracepoint.emit(now, ph="B", **fields)

    def end(self, now: int) -> None:
        """Close the span; idempotent."""
        if not self._open:
            return
        self._open = False
        if self.tracepoint.enabled:
            self.tracepoint.emit(now, ph="E", **self.fields)


def span(
    name: str,
    now: int,
    registry: Optional[TracepointRegistry] = None,
    **fields: object,
) -> Span:
    """Open a :class:`Span` on ``name`` (in ``TRACEPOINTS`` by default)."""
    reg = registry if registry is not None else TRACEPOINTS
    return Span(reg.tracepoint(name), now, **fields)

"""Metrics primitives: counters, gauges, log-bucketed histograms.

Standard tools aggregate scheduler behavior into averages -- exactly how
the paper's bugs stayed invisible (``htop``/``sar`` smooth over short idle
periods).  These metrics keep the distributions: every histogram is
log-bucketed (powers of two, microsecond resolution), so a 4 ms
wakeup-to-run stall stays visible next to a million 10 us ones.

Every metric accepts labels (``counter.inc(reason="balance:NUMA")``); a
(metric, label-set) pair is one independent series, which is how per-cpu
and per-domain breakdowns are stored.  :class:`MetricsRegistry` is the
create-or-get namespace; :meth:`MetricsRegistry.snapshot` freezes the
registry into a :class:`MetricsSnapshot` whose :meth:`~MetricsSnapshot.render`
prints the plain-text table the ``repro metrics`` subcommand shows.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    Type,
    TypeVar,
    cast,
)

from repro.sim.timebase import format_time

#: A frozen label set: sorted (key, value) pairs.
LabelKey = Tuple[Tuple[str, str], ...]

#: Histograms hold one bucket per power of two; 64 covers any int64 value.
_NUM_BUCKETS = 64

_M = TypeVar("_M", bound="Metric")


def _label_key(labels: Dict[str, object]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _format_labels(key: LabelKey) -> str:
    return ", ".join(f"{k}={v}" for k, v in key)


class Metric:
    """Common naming/labeling behavior of every metric kind."""

    kind = "metric"

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help

    def label_keys(self) -> List[LabelKey]:
        raise NotImplementedError


class Counter(Metric):
    """A monotonically increasing count, one per label set."""

    kind = "counter"

    def __init__(self, name: str, help: str = ""):
        super().__init__(name, help)
        self._series: Dict[LabelKey, float] = {}

    def inc(self, amount: float = 1, **labels: object) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        key = _label_key(labels)
        self._series[key] = self._series.get(key, 0) + amount

    def value(self, **labels: object) -> float:
        return self._series.get(_label_key(labels), 0)

    def total(self) -> float:
        """Sum over every label set."""
        return sum(self._series.values())

    def label_keys(self) -> List[LabelKey]:
        return sorted(self._series)


class Gauge(Metric):
    """A point-in-time value, one per label set."""

    kind = "gauge"

    def __init__(self, name: str, help: str = ""):
        super().__init__(name, help)
        self._series: Dict[LabelKey, float] = {}

    def set(self, value: float, **labels: object) -> None:
        self._series[_label_key(labels)] = value

    def add(self, amount: float, **labels: object) -> None:
        key = _label_key(labels)
        self._series[key] = self._series.get(key, 0) + amount

    def value(self, **labels: object) -> float:
        return self._series.get(_label_key(labels), 0)

    def label_keys(self) -> List[LabelKey]:
        return sorted(self._series)


@dataclass
class _HistogramSeries:
    """Bucket counts plus exact count/sum/sum-of-squares/min/max."""

    buckets: List[int] = field(
        default_factory=lambda: [0] * _NUM_BUCKETS
    )
    count: int = 0
    sum: float = 0.0
    sum_sq: float = 0.0
    min: Optional[float] = None
    max: Optional[float] = None


def _bucket_index(value: float) -> int:
    """Bucket ``i`` covers ``[2**(i-1), 2**i)``; bucket 0 is ``[0, 1)``."""
    v = int(value)
    if v <= 0:
        return 0
    return min(v.bit_length(), _NUM_BUCKETS - 1)


class Histogram(Metric):
    """A log-bucketed latency/duration histogram (microsecond units).

    The bucket layout is the paper-friendly one: short and long events
    land in different buckets no matter how lopsided the mix, so tail
    percentiles survive aggregation.  ``percentile`` answers from the
    buckets (upper-edge estimate, exact min/max clamped).

    **Percentile error bound.**  Bucket ``i`` covers ``[2**(i-1), 2**i)``
    (bucket 0 is ``[0, 1)``) and :meth:`percentile` reports the bucket's
    inclusive upper edge ``2**i - 1``, clamped to the observed
    ``[min, max]``.  For an integer-valued true percentile ``v >= 1``
    falling in bucket ``i`` (all simulator times are integer
    microseconds), the estimate ``e`` therefore satisfies

    .. math::  v \\le e < 2v

    -- the estimate never *under*-reports a latency and over-reports by
    strictly less than a factor of two; values below 1 (bucket 0) are
    reported as 0.  The clamp can only tighten this (``min``/``max`` are
    exact), so the bound holds for every ``p``.
    :func:`assert_percentile_bound` turns this contract into an
    executable check against a list of raw samples -- the SLO test suite
    runs it over every histogram it asserts on, so a bucket-layout change
    that silently widens the estimation error fails loudly.

    ``mean``, :meth:`variance` and :meth:`stddev` are exact (computed
    from the running count/sum/sum-of-squares, not the buckets), which is
    why jitter -- a standard deviation -- is SLO-gradeable while
    percentiles carry the factor-of-two bound.
    """

    kind = "histogram"

    def __init__(self, name: str, help: str = "", unit: str = "us"):
        super().__init__(name, help)
        self.unit = unit
        self._series: Dict[LabelKey, _HistogramSeries] = {}

    def observe(self, value: float, **labels: object) -> None:
        if value < 0:
            raise ValueError(
                f"histogram {self.name} got negative value {value}"
            )
        key = _label_key(labels)
        series = self._series.get(key)
        if series is None:
            series = self._series[key] = _HistogramSeries()
        series.buckets[_bucket_index(value)] += 1
        series.count += 1
        series.sum += value
        series.sum_sq += value * value
        series.min = value if series.min is None else min(series.min, value)
        series.max = value if series.max is None else max(series.max, value)

    # -- queries ------------------------------------------------------------

    def _merged(self, labels: Dict[str, object]) -> _HistogramSeries:
        """All series, or only those matching every given label."""
        wanted = _label_key(labels)
        merged = _HistogramSeries()
        for key, series in self._series.items():
            if wanted and not set(wanted).issubset(set(key)):
                continue
            merged.count += series.count
            merged.sum += series.sum
            merged.sum_sq += series.sum_sq
            for i, n in enumerate(series.buckets):
                merged.buckets[i] += n
            if series.min is not None:
                merged.min = series.min if merged.min is None \
                    else min(merged.min, series.min)
            if series.max is not None:
                merged.max = series.max if merged.max is None \
                    else max(merged.max, series.max)
        return merged

    def count(self, **labels: object) -> int:
        return self._merged(labels).count

    def mean(self, **labels: object) -> float:
        series = self._merged(labels)
        return series.sum / series.count if series.count else 0.0

    def variance(self, **labels: object) -> float:
        """Exact population variance of every observation (not estimated).

        Computed from the running count/sum/sum-of-squares, so unlike
        :meth:`percentile` it carries no bucketing error.  Clamped at 0
        against floating-point cancellation.
        """
        series = self._merged(labels)
        if series.count == 0:
            return 0.0
        mean = series.sum / series.count
        return max(0.0, series.sum_sq / series.count - mean * mean)

    def stddev(self, **labels: object) -> float:
        """Exact population standard deviation (the jitter metric)."""
        return self.variance(**labels) ** 0.5

    def fraction_above(self, threshold: float, **labels: object) -> float:
        """Estimated fraction of observations strictly above ``threshold``.

        A bucket counts as above exactly when its inclusive upper edge
        ``2**i - 1`` exceeds ``threshold``.  For integer observations
        (all simulator times are integer microseconds) and thresholds of
        the form ``2**k - 1`` (a bucket's upper edge) the answer is
        therefore *exact*; for any other threshold the straddled bucket
        is counted fully, so the estimate errs on the high (pessimistic)
        side by at most that one bucket's mass.  SLO deadline specs use
        ``2**k - 1`` thresholds to stay in the exact regime.
        """
        if threshold < 0:
            raise ValueError(f"threshold must be >= 0, got {threshold}")
        series = self._merged(labels)
        if series.count == 0:
            return 0.0
        above = 0
        for i, n in enumerate(series.buckets):
            upper = float((1 << i) - 1) if i else 0.0
            if upper > threshold:
                above += n
        return above / series.count

    def percentile(self, p: float, **labels: object) -> float:
        """Estimated value at percentile ``p`` in [0, 100]."""
        if not 0 <= p <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        series = self._merged(labels)
        if series.count == 0:
            return 0.0
        rank = p / 100.0 * series.count
        seen = 0
        for i, n in enumerate(series.buckets):
            seen += n
            if seen >= rank and n:
                # Upper-edge estimate, clamped to the observed range.
                upper = float((1 << i) - 1) if i else 0.0
                lo = series.min if series.min is not None else 0.0
                hi = series.max if series.max is not None else upper
                return min(max(upper, lo), hi)
        return series.max if series.max is not None else 0.0

    def label_keys(self) -> List[LabelKey]:
        return sorted(self._series)


class MetricsRegistry:
    """Create-or-get namespace for every metric of one run."""

    def __init__(self) -> None:
        self._metrics: Dict[str, Metric] = {}

    def _get(self, name: str, cls: Type[_M], *args: str) -> _M:
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name, *args)
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} already registered as {metric.kind}"
            )
        return cast(_M, metric)

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get(name, Counter, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get(name, Gauge, help)

    def histogram(
        self, name: str, help: str = "", unit: str = "us"
    ) -> Histogram:
        return self._get(name, Histogram, help, unit)

    def get(self, name: str) -> Optional[Metric]:
        return self._metrics.get(name)

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def snapshot(self) -> "MetricsSnapshot":
        return MetricsSnapshot(self)


class MetricsSnapshot:
    """A renderable view of a registry (the ``repro metrics`` table)."""

    def __init__(self, registry: MetricsRegistry):
        self.registry = registry

    def render(self) -> str:
        """Plain-text table: one line per series, histograms summarized."""
        lines: List[str] = []
        for name in self.registry.names():
            metric = self.registry._metrics[name]
            if isinstance(metric, Histogram):
                lines.extend(self._render_histogram(metric))
            elif isinstance(metric, (Counter, Gauge)):
                lines.extend(self._render_scalar(metric))
        if not lines:
            return "no metrics recorded"
        width = max(
            (len(line[0]) for line in lines if isinstance(line, tuple)),
            default=0,
        )
        rendered: List[str] = []
        for line in lines:
            if isinstance(line, tuple):
                rendered.append(f"  {line[0]:<{width}}  {line[1]}")
            else:
                rendered.append(line)
        return "\n".join(rendered)

    def _render_scalar(self, metric: Metric) -> List[object]:
        out: List[object] = [f"{metric.kind} {metric.name}"]
        series = metric._series  # type: ignore[attr-defined]
        for key in metric.label_keys():
            label = _format_labels(key) or "(no labels)"
            value = series[key]
            text = f"{value:g}"
            out.append((label, text))
        if not series:
            out.append(("(no labels)", "0"))
        return out

    def _render_histogram(self, metric: Histogram) -> List[object]:
        merged = metric._merged({})
        out: List[object] = [
            f"histogram {metric.name} ({metric.unit}): "
            f"count={merged.count}"
        ]
        if merged.count == 0:
            return out
        fmt: Callable[[int], str] = (
            format_time if metric.unit == "us" else lambda v: f"{v:g}"
        )
        out[0] = (
            f"histogram {metric.name} ({metric.unit}): "
            f"count={merged.count} mean={fmt(int(metric.mean()))} "
            f"p50={fmt(int(metric.percentile(50)))} "
            f"p95={fmt(int(metric.percentile(95)))} "
            f"p99={fmt(int(metric.percentile(99)))} "
            f"max={fmt(int(merged.max or 0))}"
        )
        for key in metric.label_keys():
            label = _format_labels(key)
            if not label:
                continue
            out.append(
                (
                    label,
                    f"count={metric._series[key].count}",
                )
            )
        return out


# -- exact-mode verification helpers -----------------------------------------
#
# The SLO test suite records the raw samples next to the histogram and uses
# these helpers to bound the log-bucket estimation error at runtime.  They
# live here (not in the tests) so the documented contract and its
# executable form cannot drift apart.


def exact_percentile(samples: Sequence[float], p: float) -> float:
    """Nearest-rank percentile of raw samples (the exact reference)."""
    if not 0 <= p <= 100:
        raise ValueError(f"percentile must be in [0, 100], got {p}")
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = max(1, math.ceil(p / 100.0 * len(ordered)))
    return ordered[rank - 1]


def assert_percentile_bound(
    histogram: Histogram,
    samples: Sequence[float],
    p: float,
    **labels: object,
) -> float:
    """Assert the documented factor-of-two percentile bound; return it.

    ``samples`` must be the raw values observed into ``histogram`` (for
    the given label subset).  Checks ``exact <= estimate < 2 * exact``
    for exact values >= 1, and ``estimate <= exact`` below 1 (bucket 0
    reports 0).  Returns the estimate so tests can chain further checks.
    Raises :class:`AssertionError` with both values on violation.
    """
    estimate = histogram.percentile(p, **labels)
    exact = exact_percentile(samples, p)
    if exact >= 1.0:
        if not exact <= estimate < 2.0 * exact:
            raise AssertionError(
                f"histogram {histogram.name} p{p}: estimate {estimate} "
                f"outside [exact, 2*exact) for exact {exact}"
            )
    else:
        if estimate > exact:
            raise AssertionError(
                f"histogram {histogram.name} p{p}: estimate {estimate} "
                f"exceeds sub-unit exact value {exact}"
            )
    return estimate

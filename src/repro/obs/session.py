"""One-call wiring of the obs subsystem onto a simulated system.

:class:`ObsSession` owns the three moving parts -- the probe-to-tracepoint
bridge, the metrics recorder, and (optionally) the Chrome trace builder --
and attaches/detaches them as a unit:

.. code-block:: python

    obs = ObsSession.attach_to(system, trace=True)
    try:
        ...  # run the experiment
    finally:
        obs.close()
    obs.write_chrome_trace("trace.json")
    print(obs.metrics.snapshot().render())

Sessions are observation-only: attaching one must not perturb the
schedule (``tests/test_obs_overhead.py`` asserts identical migration
counts with and without a session).  Like kernel tracepoints, the bus is
global by default (``TRACEPOINTS``) -- that is how the session also hears
the event loop, the sanity checker and the stats sampler, which emit
directly rather than through the scheduler's probe.  :meth:`close` always
unsubscribes, so sequential sessions never cross-talk; pass a private
:class:`~repro.obs.tracepoints.TracepointRegistry` for full isolation
when scheduler-probe events are all you need.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Optional

from repro.obs.bridge import ProbeTracepointBridge
from repro.obs.metrics import MetricsRegistry, MetricsSnapshot
from repro.obs.recorder import MetricsRecorder
from repro.obs.trace_export import ChromeTraceBuilder
from repro.obs.tracepoints import TRACEPOINTS, TracepointRegistry

if TYPE_CHECKING:  # the engine imports the bus, so avoid a runtime cycle
    from repro.sim.system import System


class ObsSession:
    """Bundles bridge + recorder (+ trace builder) for one observed run."""

    def __init__(
        self,
        num_cpus: int,
        trace: bool = False,
        metrics: Optional[MetricsRegistry] = None,
        registry: Optional[TracepointRegistry] = None,
        max_trace_events: int = 2_000_000,
    ):
        self.registry = registry if registry is not None else TRACEPOINTS
        self.bridge = ProbeTracepointBridge(self.registry)
        self.recorder = MetricsRecorder(metrics)
        self.recorder.attach(self.registry)
        self.trace_builder: Optional[ChromeTraceBuilder] = None
        if trace:
            self.trace_builder = ChromeTraceBuilder(
                num_cpus, max_events=max_trace_events
            )
            self.trace_builder.attach(self.registry)
        self._system: Optional["System"] = None

    @property
    def metrics(self) -> MetricsRegistry:
        return self.recorder.metrics

    # -- wiring --------------------------------------------------------------

    @classmethod
    def attach_to(
        cls, system: "System", trace: bool = False, **kwargs: Any
    ) -> "ObsSession":
        """Create a session and plug it into a system's probe fanout."""
        session = cls(system.topology.num_cpus, trace=trace, **kwargs)
        system.attach_probe(session.bridge)
        session._system = system
        return session

    def close(self) -> None:
        """Detach everything; idempotent.  Call before reading results."""
        if self._system is not None:
            end = self._system.now
            self._system.detach_probe(self.bridge)
            self._system = None
            if self.trace_builder is not None:
                self.trace_builder.finish(end)
        self.recorder.detach()
        if self.trace_builder is not None:
            self.trace_builder.detach()

    # -- results -------------------------------------------------------------

    def snapshot(self) -> MetricsSnapshot:
        return self.metrics.snapshot()

    def write_chrome_trace(self, path: str) -> int:
        """Write the collected trace; returns the number of events."""
        if self.trace_builder is None:
            raise RuntimeError(
                "session was created without trace=True; nothing to write"
            )
        if self._system is not None:
            self.trace_builder.finish(self._system.now)
        return self.trace_builder.write(path)

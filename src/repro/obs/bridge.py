"""Probe-to-tracepoint bridge: the scheduler's hooks on the obs bus.

The scheduler already reports every decision through the
:class:`~repro.viz.events.Probe` protocol.  :class:`ProbeTracepointBridge`
is a probe that forwards each hook to a named tracepoint
(``sched.nr_running``, ``sched.migration``, ...), which is what lets the
metrics recorder and the trace exporter consume scheduler, engine, checker
and sampler events through one uniform interface.

Attach it to a system's probe fanout (``system.attach_probe(bridge)``) --
usually via :class:`repro.obs.session.ObsSession`, which does the wiring.
Each forward is guarded by the tracepoint's ``enabled`` flag, so a bridge
whose consumers detached costs one branch per hook.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.obs.tracepoints import TRACEPOINTS, TracepointRegistry
from repro.viz.events import Probe

#: Tracepoint names the bridge produces, in Probe-hook order.
SCHED_TRACEPOINTS = (
    "sched.nr_running",
    "sched.rq_load",
    "sched.considered",
    "sched.migration",
    "sched.wakeup",
    "sched.lifecycle",
    "sched.balance",
    "sched.switch",
)


class ProbeTracepointBridge(Probe):
    """Forwards every Probe hook onto the tracepoint bus."""

    def __init__(self, registry: Optional[TracepointRegistry] = None):
        reg = registry if registry is not None else TRACEPOINTS
        self.registry = reg
        self._tp_nr_running = reg.tracepoint("sched.nr_running")
        self._tp_rq_load = reg.tracepoint("sched.rq_load")
        self._tp_considered = reg.tracepoint("sched.considered")
        self._tp_migration = reg.tracepoint("sched.migration")
        self._tp_wakeup = reg.tracepoint("sched.wakeup")
        self._tp_lifecycle = reg.tracepoint("sched.lifecycle")
        self._tp_balance = reg.tracepoint("sched.balance")
        self._tp_switch = reg.tracepoint("sched.switch")

    def on_nr_running(self, now: int, cpu: int, nr_running: int) -> None:
        tp = self._tp_nr_running
        if tp.enabled:
            tp.emit(now, cpu=cpu, nr_running=nr_running)

    def on_rq_load(self, now: int, cpu: int, load: float) -> None:
        tp = self._tp_rq_load
        if tp.enabled:
            tp.emit(now, cpu=cpu, load=load)

    def wants_rq_load(self) -> bool:
        # The runqueue skips the load summation when the tracepoint has no
        # subscriber -- the compiled-in-but-not-traced path must stay free.
        return self._tp_rq_load.enabled

    def on_considered(
        self, now: int, cpu: int, op: str, considered: Iterable[int]
    ) -> None:
        tp = self._tp_considered
        if tp.enabled:
            tp.emit(now, cpu=cpu, op=op, considered=frozenset(considered))

    def on_migration(
        self, now: int, tid: int, src_cpu: int, dst_cpu: int, reason: str
    ) -> None:
        tp = self._tp_migration
        if tp.enabled:
            tp.emit(
                now, tid=tid, src_cpu=src_cpu, dst_cpu=dst_cpu, reason=reason
            )

    def on_wakeup(
        self,
        now: int,
        tid: int,
        cpu: int,
        waker_cpu: Optional[int],
        was_idle: bool,
    ) -> None:
        tp = self._tp_wakeup
        if tp.enabled:
            tp.emit(
                now, tid=tid, cpu=cpu, waker_cpu=waker_cpu, was_idle=was_idle
            )

    def on_lifecycle(
        self, now: int, tid: int, kind: str, cpu: Optional[int]
    ) -> None:
        tp = self._tp_lifecycle
        if tp.enabled:
            tp.emit(now, tid=tid, kind=kind, cpu=cpu)

    def on_balance(
        self,
        now: int,
        cpu: int,
        domain: str,
        local_metric: float,
        busiest_metric: Optional[float],
        outcome: str,
    ) -> None:
        tp = self._tp_balance
        if tp.enabled:
            tp.emit(
                now,
                cpu=cpu,
                domain=domain,
                local_metric=local_metric,
                busiest_metric=busiest_metric,
                outcome=outcome,
            )

    def on_sched_switch(
        self,
        now: int,
        cpu: int,
        prev_tid: Optional[int],
        next_tid: Optional[int],
        next_name: str = "",
    ) -> None:
        tp = self._tp_switch
        if tp.enabled:
            tp.emit(
                now,
                cpu=cpu,
                prev_tid=prev_tid,
                next_tid=next_tid,
                next_name=next_name,
            )

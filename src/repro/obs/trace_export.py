"""Chrome trace-event / Perfetto JSON export of one simulated run.

The paper's second tool is a scheduling visualizer because "the tools we
used without success include htop, sar and perf" -- only a timeline makes
short idle periods and misplaced wakeups visible.  This module renders a
run in the `Chrome trace-event format
<https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU>`_,
loadable in ``chrome://tracing`` or https://ui.perfetto.dev:

* one **process track per CPU** ("cpu 0" ... "cpu N-1") carrying the
  running-task slices reconstructed from ``sched.switch`` events and a
  ``nr_running`` counter track (the runqueue depth over time);
* **migrations as flow arrows** (``s``/``f`` pairs) from source to
  destination CPU, named by reason;
* **wakeups** as thread-scoped instant events on the landing CPU;
* **sanity-checker detections/confirmations** and the idle-overload
  sampler's violating ticks as instant events on a dedicated
  "sanity-checker" track -- the violation markers to read against the
  runqueue tracks;
* **event-loop callbacks** as instants on an "engine" track, labeled with
  each heap callback's ``label`` so simulator activity is attributable;
* **obs spans** (``obs.span`` begin/end) as slices on the engine track.

Timestamps are simulator microseconds, which is exactly the unit the
trace-event format expects.
"""

from __future__ import annotations

import json
from typing import Dict, List, Mapping, Optional, Tuple

from repro.obs.tracepoints import TRACEPOINTS, TracepointRegistry

#: Synthetic pids for the non-CPU tracks (CPU n uses pid n).
ENGINE_PID = 100_000
CHECKER_PID = 100_001

_SUBSCRIPTIONS = (
    "sched.switch",
    "sched.migration",
    "sched.wakeup",
    "sched.nr_running",
    "checker.*",
    "stats.violation_tick",
    "engine.callback",
    "obs.*",
)


class ChromeTraceBuilder:
    """Collects tracepoint events and renders trace-event JSON."""

    def __init__(
        self,
        num_cpus: int,
        include_engine: bool = True,
        include_counters: bool = True,
        max_events: int = 2_000_000,
    ):
        self.num_cpus = num_cpus
        self.include_engine = include_engine
        self.include_counters = include_counters
        self.max_events = max_events
        self.dropped = 0
        self._events: List[Dict[str, object]] = []
        self._registry: Optional[TracepointRegistry] = None
        #: Open running-task slice per CPU: (start_us, tid, name).
        self._open_slices: Dict[int, Tuple[int, object, str]] = {}
        #: Open obs spans keyed by span name: start time.
        self._open_spans: Dict[str, int] = {}
        self._flow_id = 0
        self._emit_metadata()

    # -- wiring --------------------------------------------------------------

    def attach(self, registry: Optional[TracepointRegistry] = None) -> None:
        if self._registry is not None:
            raise RuntimeError("trace builder is already attached")
        reg = registry if registry is not None else TRACEPOINTS
        self._registry = reg
        for pattern in _SUBSCRIPTIONS:
            reg.subscribe(pattern, self._on_event)

    def detach(self) -> None:
        if self._registry is None:
            return
        for pattern in _SUBSCRIPTIONS:
            self._registry.unsubscribe(pattern, self._on_event)
        self._registry = None

    # -- event intake --------------------------------------------------------

    def _add(self, event: Dict[str, object]) -> None:
        if len(self._events) >= self.max_events:
            self.dropped += 1
            return
        self._events.append(event)

    def _emit_metadata(self) -> None:
        for cpu in range(self.num_cpus):
            self._add(
                {
                    "ph": "M", "pid": cpu, "name": "process_name",
                    "args": {"name": f"cpu {cpu}"},
                }
            )
            self._add(
                {
                    "ph": "M", "pid": cpu, "name": "process_sort_index",
                    "args": {"sort_index": cpu},
                }
            )
        for pid, name in (
            (CHECKER_PID, "sanity-checker"),
            (ENGINE_PID, "engine"),
        ):
            self._add(
                {
                    "ph": "M", "pid": pid, "name": "process_name",
                    "args": {"name": name},
                }
            )
            self._add(
                {
                    "ph": "M", "pid": pid, "name": "process_sort_index",
                    "args": {"sort_index": pid},
                }
            )

    def _on_event(
        self, name: str, now: int, fields: Mapping[str, object]
    ) -> None:
        if name == "sched.switch":
            self._on_switch(now, fields)
        elif name == "sched.migration":
            self._on_migration(now, fields)
        elif name == "sched.wakeup":
            self._on_wakeup(now, fields)
        elif name == "sched.nr_running":
            if self.include_counters:
                self._add(
                    {
                        "ph": "C", "pid": fields["cpu"], "tid": 0,
                        "ts": now, "name": "nr_running",
                        "args": {"nr": fields["nr_running"]},
                    }
                )
        elif name == "stats.violation_tick":
            self._add(
                {
                    "ph": "i", "s": "t", "pid": CHECKER_PID, "tid": 0,
                    "ts": now, "name": "idle-while-overloaded tick",
                    "cat": "sampler",
                }
            )
        elif name.startswith("checker."):
            self._on_checker(name, now, fields)
        elif name == "engine.callback":
            if self.include_engine:
                label = str(fields.get("label", "")) or "callback"
                self._add(
                    {
                        "ph": "i", "s": "t", "pid": ENGINE_PID, "tid": 0,
                        "ts": now, "name": label, "cat": "engine",
                    }
                )
        elif name.startswith("obs."):
            self._on_span(name, now, fields)

    def _on_switch(self, now: int, fields: Mapping[str, object]) -> None:
        cpu = int(fields["cpu"])  # type: ignore[arg-type]
        next_tid = fields["next_tid"]
        self._close_slice(cpu, now)
        if next_tid is not None:
            name = str(fields.get("next_name", "")) or f"tid {next_tid}"
            self._open_slices[cpu] = (now, next_tid, name)

    def _close_slice(self, cpu: int, now: int) -> None:
        opened = self._open_slices.pop(cpu, None)
        if opened is None:
            return
        start, tid, name = opened
        self._add(
            {
                "ph": "X", "pid": cpu, "tid": 0, "ts": start,
                "dur": max(now - start, 1), "name": name, "cat": "task",
                "args": {"tid": tid},
            }
        )

    def _on_migration(self, now: int, fields: Mapping[str, object]) -> None:
        self._flow_id += 1
        name = f"migrate:{fields['reason']}"
        common = {
            "name": name, "cat": "migration", "id": self._flow_id, "tid": 0,
            "args": {"tid": fields["tid"], "reason": fields["reason"]},
        }
        self._add({"ph": "s", "pid": fields["src_cpu"], "ts": now, **common})
        self._add(
            {
                "ph": "f", "bp": "e", "pid": fields["dst_cpu"],
                "ts": now + 1, **common,
            }
        )

    def _on_wakeup(self, now: int, fields: Mapping[str, object]) -> None:
        landing = "idle" if fields["was_idle"] else "busy"
        self._add(
            {
                "ph": "i", "s": "t", "pid": fields["cpu"], "tid": 0,
                "ts": now, "name": f"wakeup tid {fields['tid']} ({landing})",
                "cat": "wakeup",
            }
        )

    def _on_checker(
        self, name: str, now: int, fields: Mapping[str, object]
    ) -> None:
        kind = name.split(".", 1)[1]
        if kind == "check":
            return  # one instant per second adds noise, metrics count them
        scope = "g" if kind in ("violation_detected", "bug_confirmed") else "t"
        text = {
            "violation_detected": "invariant violation detected",
            "bug_confirmed": "BUG CONFIRMED (survived monitoring window)",
            "transient": "transient violation (recovered in window)",
            "profile_done": "post-detection profile complete",
        }.get(kind, kind)
        event: Dict[str, object] = {
            "ph": "i", "s": scope, "pid": CHECKER_PID, "tid": 0,
            "ts": now, "name": text, "cat": "checker",
        }
        args = {
            k: v for k, v in fields.items()
            if isinstance(v, (int, float, str, bool)) or v is None
        }
        if "pairs" in fields:
            args["pairs"] = str(fields["pairs"])
        if args:
            event["args"] = args
        self._add(event)

    def _on_span(
        self, tp_name: str, now: int, fields: Mapping[str, object]
    ) -> None:
        ph = fields.get("ph")
        name = str(fields.get("name", "")) or tp_name
        if ph == "B":
            self._open_spans[name] = now
        elif ph == "E":
            start = self._open_spans.pop(name, None)
            if start is not None:
                self._add(
                    {
                        "ph": "X", "pid": ENGINE_PID, "tid": 1, "ts": start,
                        "dur": max(now - start, 1), "name": name,
                        "cat": "obs",
                    }
                )

    # -- output --------------------------------------------------------------

    def finish(self, end_us: int) -> None:
        """Close still-open slices at the end of the observed run."""
        for cpu in list(self._open_slices):
            self._close_slice(cpu, end_us)

    def to_json(self) -> Dict[str, object]:
        """The trace as a Chrome trace-event object."""
        return {
            "traceEvents": list(self._events),
            "displayTimeUnit": "ms",
            "otherData": {
                "producer": "repro.obs",
                "dropped_events": self.dropped,
            },
        }

    def write(self, path: str, end_us: Optional[int] = None) -> int:
        """Finish and write the trace; returns the number of events."""
        if end_us is not None:
            self.finish(end_us)
        with open(path, "w", encoding="utf-8") as f:
            json.dump(self.to_json(), f)
        return len(self._events)

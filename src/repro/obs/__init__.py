"""Unified observability: tracepoints, metrics, and trace export.

The paper's diagnosis chapter is an argument that the bugs stayed
invisible for years because the standard tools (``htop``, ``sar``,
``perf``) aggregate away short-lived invariant violations.  This package
is the repo's answer -- one bus, three consumers:

* :mod:`repro.obs.tracepoints` -- named tracepoints with a kernel-style
  ``enabled`` fast path (one branch when nobody listens);
* :mod:`repro.obs.metrics` -- counters, gauges, and log-bucketed
  histograms (wakeup-to-run latency, idle-gap lengths, migrations by
  reason, balance outcomes by domain);
* :mod:`repro.obs.trace_export` -- Chrome trace-event / Perfetto JSON
  with per-CPU tracks, migration flow arrows, and sanity-checker
  violation instants;
* :mod:`repro.obs.session` -- :class:`ObsSession`, the one-call wiring
  of all of the above onto a simulated system.
"""

from repro.obs.bridge import SCHED_TRACEPOINTS, ProbeTracepointBridge
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsSnapshot,
)
from repro.obs.recorder import MetricsRecorder
from repro.obs.session import ObsSession
from repro.obs.trace_export import ChromeTraceBuilder
from repro.obs.tracepoints import (
    TRACEPOINT_NAMES,
    TRACEPOINTS,
    Span,
    Tracepoint,
    TracepointRegistry,
    span,
)

__all__ = [
    "ChromeTraceBuilder",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRecorder",
    "MetricsRegistry",
    "MetricsSnapshot",
    "ObsSession",
    "ProbeTracepointBridge",
    "SCHED_TRACEPOINTS",
    "Span",
    "TRACEPOINT_NAMES",
    "TRACEPOINTS",
    "Tracepoint",
    "TracepointRegistry",
    "span",
]

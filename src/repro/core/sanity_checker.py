"""The online sanity checker (paper Section 4.1).

The checker wakes every ``check_interval_us`` (the paper's S, default 1 s)
and evaluates the work-conserving invariant.  A hit opens a *monitoring
window* of ``monitor_window_us`` (the paper's M, 100 ms -- the balancer
runs every 4 ms, but hierarchical recovery can take several rounds): during
the window the checker watches, at every tick, whether the scheduler
recovers on its own, while counting the thread migrations, creations and
destructions that could constitute recovery.  Only a violation that
survives the whole window is flagged as a bug; a :class:`BugReport` is
filed and the balance profiler records decisions for
``profile_duration_us`` (20 ms, like the paper's systemtap capture).

Attach with :meth:`SanityChecker.attach`; reports accumulate in
``checker.reports``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional

from repro.core.invariant import Violation, find_violations, has_violation
from repro.core.profiler import BalanceProfiler
from repro.obs.tracepoints import TRACEPOINTS
from repro.sim.timebase import MS, SEC
from repro.viz.events import Probe

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.system import System

#: The checker's detection funnel on the obs bus: every check, each
#: violation that opens a monitoring window, and the window's verdict.
_TP_CHECK = TRACEPOINTS.tracepoint("checker.check")
_TP_DETECTED = TRACEPOINTS.tracepoint("checker.violation_detected")
_TP_TRANSIENT = TRACEPOINTS.tracepoint("checker.transient")
_TP_CONFIRMED = TRACEPOINTS.tracepoint("checker.bug_confirmed")
_TP_PROFILE_DONE = TRACEPOINTS.tracepoint("checker.profile_done")


@dataclass
class MonitorSummary:
    """Scheduler activity observed during one monitoring window."""

    migrations: int = 0
    forks: int = 0
    exits: int = 0
    wakeups: int = 0

    def total(self) -> int:
        return self.migrations + self.forks + self.exits + self.wakeups


@dataclass
class BugReport:
    """A confirmed long-term invariant violation."""

    detected_at_us: int
    confirmed_at_us: int
    violations: List[Violation]
    monitor: MonitorSummary
    #: Filled in once the post-detection profile window closes.
    profile_summary: str = ""
    profile_failed_fraction: float = 0.0

    def describe(self) -> str:
        pairs = sorted({(v.idle_cpu, v.busy_cpu) for v in self.violations})
        lines = [
            f"invariant violated from {self.detected_at_us}us, confirmed at "
            f"{self.confirmed_at_us}us ({len(self.violations)} pair(s))",
            f"  idle/overloaded pairs: {pairs[:8]}"
            + ("..." if len(pairs) > 8 else ""),
            f"  during monitoring: {self.monitor.migrations} migrations, "
            f"{self.monitor.forks} forks, {self.monitor.exits} exits, "
            f"{self.monitor.wakeups} wakeups",
        ]
        if self.profile_summary:
            lines.append(self.profile_summary)
        return "\n".join(lines)


class _MonitorProbe(Probe):
    """Counts recovery-relevant scheduler events during a window."""

    def __init__(self) -> None:
        self.summary = MonitorSummary()

    def on_migration(self, now, tid, src_cpu, dst_cpu, reason) -> None:
        self.summary.migrations += 1

    def on_wakeup(self, now, tid, cpu, waker_cpu, was_idle) -> None:
        self.summary.wakeups += 1

    def on_lifecycle(self, now, tid, kind, cpu) -> None:
        if kind == "fork":
            self.summary.forks += 1
        elif kind == "exit":
            self.summary.exits += 1


class SanityChecker:
    """Online invariant checker attached to a simulated system."""

    IDLE = "idle"
    MONITORING = "monitoring"
    PROFILING = "profiling"

    def __init__(
        self,
        check_interval_us: int = 1 * SEC,
        monitor_window_us: int = 100 * MS,
        profile_duration_us: int = 20 * MS,
    ):
        if check_interval_us <= 0 or monitor_window_us <= 0:
            raise ValueError("intervals must be positive")
        self.check_interval_us = check_interval_us
        self.monitor_window_us = monitor_window_us
        self.profile_duration_us = profile_duration_us
        self.reports: List[BugReport] = []
        self.checks_performed = 0
        self.violations_seen = 0
        self.transient_violations = 0
        self._state = self.IDLE
        self._system: Optional["System"] = None
        self._next_check_us = 0
        self._window_end_us = 0
        self._detected_at_us = 0
        self._cleared_during_window = False
        self._monitor_probe: Optional[_MonitorProbe] = None
        self._profiler: Optional[BalanceProfiler] = None
        self._profile_end_us = 0
        self._pending_report: Optional[BugReport] = None

    # -- wiring ----------------------------------------------------------------

    def attach(self, system: "System") -> None:
        """Start checking on a system (registers a tick hook)."""
        if self._system is not None:
            raise RuntimeError("checker is already attached")
        self._system = system
        self._next_check_us = system.now + self.check_interval_us
        system.tick_hooks.append(self._on_tick)

    def detach(self) -> None:
        if self._system is None:
            return
        self._system.tick_hooks.remove(self._on_tick)
        self._teardown_window()
        self._stop_profile()
        self._system = None
        self._state = self.IDLE

    # -- state machine ------------------------------------------------------------

    def _on_tick(self, now: int) -> None:
        assert self._system is not None
        if self._state == self.IDLE:
            if now >= self._next_check_us:
                self._next_check_us = now + self.check_interval_us
                self._run_check(now)
        elif self._state == self.MONITORING:
            self._monitor_tick(now)
        elif self._state == self.PROFILING:
            if now >= self._profile_end_us:
                self._stop_profile()
                self._state = self.IDLE

    def _run_check(self, now: int) -> None:
        assert self._system is not None
        self.checks_performed += 1
        violations = find_violations(self._system.scheduler, now)
        if _TP_CHECK.enabled:
            _TP_CHECK.emit(now, violations=len(violations))
        if not violations:
            return
        self.violations_seen += 1
        if _TP_DETECTED.enabled:
            pairs = sorted({(v.idle_cpu, v.busy_cpu) for v in violations})
            _TP_DETECTED.emit(
                now,
                violations=len(violations),
                pairs=tuple(pairs[:8]),
                window_us=self.monitor_window_us,
            )
        # Open the monitoring window: is this a legal transient state?
        self._state = self.MONITORING
        self._detected_at_us = now
        self._window_end_us = now + self.monitor_window_us
        self._cleared_during_window = False
        self._monitor_probe = _MonitorProbe()
        self._system.attach_probe(self._monitor_probe)

    def _monitor_tick(self, now: int) -> None:
        assert self._system is not None and self._monitor_probe is not None
        if now < self._window_end_us:
            # Mid-window ticks only need "did the scheduler recover at
            # least once?" -- the early-exit check suffices, and once the
            # sticky cleared flag is set there is nothing left to learn.
            if not self._cleared_during_window and not has_violation(
                self._system.scheduler, now
            ):
                self._cleared_during_window = True
            return
        violations = find_violations(self._system.scheduler, now)
        if not violations:
            self._cleared_during_window = True
        # Window over: decide.
        monitor = self._monitor_probe.summary
        self._teardown_window()
        if self._cleared_during_window:
            # The scheduler recovered at least once: a legal short-term
            # violation, not a bug.
            self.transient_violations += 1
            self._state = self.IDLE
            if _TP_TRANSIENT.enabled:
                _TP_TRANSIENT.emit(
                    now, detected_at_us=self._detected_at_us
                )
            return
        report = BugReport(
            detected_at_us=self._detected_at_us,
            confirmed_at_us=now,
            violations=violations,
            monitor=monitor,
        )
        if _TP_CONFIRMED.enabled:
            _TP_CONFIRMED.emit(
                now,
                detected_at_us=self._detected_at_us,
                violations=len(violations),
                migrations=monitor.migrations,
                forks=monitor.forks,
                exits=monitor.exits,
                wakeups=monitor.wakeups,
            )
        self.reports.append(report)
        self._pending_report = report
        self._start_profile(now)

    def _start_profile(self, now: int) -> None:
        assert self._system is not None
        self._profiler = BalanceProfiler()
        self._profiler.start()
        self._system.attach_probe(self._profiler)
        self._profile_end_us = now + self.profile_duration_us
        self._state = self.PROFILING

    def _stop_profile(self) -> None:
        if self._profiler is None:
            return
        self._profiler.stop()
        if self._system is not None:
            self._system.detach_probe(self._profiler)
        if self._pending_report is not None:
            self._pending_report.profile_summary = self._profiler.summarize()
            self._pending_report.profile_failed_fraction = (
                self._profiler.failed_fraction()
            )
            if _TP_PROFILE_DONE.enabled and self._system is not None:
                _TP_PROFILE_DONE.emit(
                    self._system.now,
                    failed_fraction=(
                        self._pending_report.profile_failed_fraction
                    ),
                )
            self._pending_report = None
        self._profiler = None

    def _teardown_window(self) -> None:
        if self._monitor_probe is not None and self._system is not None:
            self._system.detach_probe(self._monitor_probe)
        self._monitor_probe = None

    # -- reporting ---------------------------------------------------------------

    @property
    def bug_detected(self) -> bool:
        return bool(self.reports)

    def save_reports(self, path: str) -> int:
        """Persist bug reports as JSON lines (for offline triage).

        Returns the number of reports written.  The format is stable:
        one object per report with detection times, violation pairs, the
        monitoring summary, and the profiling verdict.
        """
        import json

        with open(path, "w", encoding="utf-8") as f:
            for report in self.reports:
                obj = {
                    "detected_at_us": report.detected_at_us,
                    "confirmed_at_us": report.confirmed_at_us,
                    "violations": [
                        {
                            "time_us": v.time_us,
                            "idle_cpu": v.idle_cpu,
                            "busy_cpu": v.busy_cpu,
                            "busy_nr_running": v.busy_nr_running,
                            "stealable_tids": list(v.stealable_tids),
                        }
                        for v in report.violations
                    ],
                    "monitor": {
                        "migrations": report.monitor.migrations,
                        "forks": report.monitor.forks,
                        "exits": report.monitor.exits,
                        "wakeups": report.monitor.wakeups,
                    },
                    "profile_failed_fraction":
                        report.profile_failed_fraction,
                    "profile_summary": report.profile_summary,
                }
                f.write(json.dumps(obj) + "\n")
        return len(self.reports)

    def summary(self) -> str:
        return (
            f"sanity checker: {self.checks_performed} checks, "
            f"{self.violations_seen} violations seen, "
            f"{self.transient_violations} transient, "
            f"{len(self.reports)} confirmed bug(s)"
        )

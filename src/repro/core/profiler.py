"""Post-detection profiling -- the systemtap stand-in.

When the sanity checker flags a bug it starts one of these for a short
window (the paper profiles for 20 ms; systemtap costs ~7%, so profiling is
never left on).  The profiler records every load-balancing decision
(domain, local vs busiest metric, outcome) and every considered-core set,
which is exactly what the paper used to understand why all balancing calls
failed during a violation.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, List, Optional

from repro.viz.events import (
    BalanceEvent,
    ConsideredEvent,
    Probe,
    TraceBuffer,
)


class BalanceProfiler(Probe):
    """Records balancing decisions into a bounded trace buffer."""

    def __init__(self, capacity: int = 100_000):
        self.buffer = TraceBuffer(capacity)
        self.active = False

    def start(self) -> None:
        self.active = True

    def stop(self) -> None:
        self.active = False

    def on_balance(
        self,
        now: int,
        cpu: int,
        domain: str,
        local_metric: float,
        busiest_metric: Optional[float],
        outcome: str,
    ) -> None:
        if self.active:
            self.buffer.append(
                BalanceEvent(
                    now, cpu, domain, local_metric, busiest_metric, outcome
                )
            )

    def on_considered(
        self, now: int, cpu: int, op: str, considered: Iterable[int]
    ) -> None:
        if self.active:
            self.buffer.append(
                ConsideredEvent(now, cpu, op, frozenset(considered))
            )

    # -- analysis ------------------------------------------------------------

    def balance_events(self) -> List[BalanceEvent]:
        return self.buffer.of_type(BalanceEvent)  # type: ignore[return-value]

    def outcome_counts(self) -> Counter:
        """How often each balancing outcome occurred, by (domain, outcome)."""
        counts: Counter = Counter()
        for event in self.balance_events():
            outcome = event.outcome.split(":")[0]
            counts[(event.domain, outcome)] += 1
        return counts

    def failed_fraction(self, domain: Optional[str] = None) -> float:
        """Fraction of balancing calls that moved nothing.

        During a live violation this is the paper's smoking gun: every call
        concludes "balanced" even though cores sit idle.
        """
        events = self.balance_events()
        if domain is not None:
            events = [e for e in events if e.domain == domain]
        if not events:
            return 0.0
        failed = sum(
            1 for e in events if not e.outcome.startswith("moved")
        )
        return failed / len(events)

    def summarize(self) -> str:
        """Readable profile summary for bug reports."""
        counts = self.outcome_counts()
        if not counts:
            return "no balancing activity recorded"
        lines = ["balancing decisions during profile window:"]
        for (domain, outcome), n in sorted(counts.items()):
            lines.append(f"  {domain:12s} {outcome:10s} x{n}")
        lines.append(
            f"  failed fraction: {self.failed_fraction():.2%}"
        )
        return "\n".join(lines)

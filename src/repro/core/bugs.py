"""The bug registry (the paper's Table 4).

Each entry ties a bug's published metadata (kernel versions, affected
applications, maximum measured impact) to the feature flag that fixes it in
this reproduction, so experiments and reports can be generated from one
source of truth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple


@dataclass(frozen=True)
class Bug:
    """One scheduler performance bug from the paper."""

    name: str
    description: str
    kernel_versions: str
    impacted_applications: str
    paper_max_impact: str
    fix_flag: str
    paper_section: str


BUGS: Tuple[Bug, ...] = (
    Bug(
        name="Group Imbalance",
        description=(
            "When launching multiple applications with different thread "
            "counts, some CPUs are idle while other CPUs are overloaded: "
            "comparing scheduling-group average loads lets one high-load "
            "thread conceal idle cores on its node."
        ),
        kernel_versions="2.6.38+",
        impacted_applications="All",
        paper_max_impact="13x",
        fix_flag="fix_group_imbalance",
        paper_section="3.1",
    ),
    Bug(
        name="Scheduling Group Construction",
        description=(
            "No load balancing between nodes that are 2 hops apart: "
            "cross-node scheduling groups are constructed from core 0's "
            "perspective, so two distant nodes can appear together in every "
            "group and their imbalance becomes invisible."
        ),
        kernel_versions="3.9+",
        impacted_applications="All (requires taskset across distant nodes)",
        paper_max_impact="27x",
        fix_flag="fix_group_construction",
        paper_section="3.2",
    ),
    Bug(
        name="Overload-on-Wakeup",
        description=(
            "Threads wake up on overloaded cores while some other cores "
            "are idle: wakeup placement only considers the waker's node for "
            "cache reuse."
        ),
        kernel_versions="2.6.32+",
        impacted_applications="Applications that sleep or wait",
        paper_max_impact="22%",
        fix_flag="fix_overload_on_wakeup",
        paper_section="3.3",
    ),
    Bug(
        name="Missing Scheduling Domains",
        description=(
            "The load is not balanced between NUMA nodes after a core is "
            "disabled and re-enabled: domain regeneration drops the "
            "cross-node step."
        ),
        kernel_versions="3.19+",
        impacted_applications="All (requires a CPU hotplug cycle)",
        paper_max_impact="138x",
        fix_flag="fix_missing_domains",
        paper_section="3.4",
    ),
)


def bug_by_name(name: str) -> Bug:
    """Case-insensitive lookup by (partial) bug name."""
    needle = name.lower()
    for bug in BUGS:
        if needle in bug.name.lower():
            return bug
    raise KeyError(f"no bug matching {name!r}")


def table4_rows() -> List[Tuple[str, str, str, str]]:
    """(name, kernel versions, impacted applications, max impact) rows."""
    return [
        (b.name, b.kernel_versions, b.impacted_applications,
         b.paper_max_impact)
        for b in BUGS
    ]

"""The work-conserving invariant (the paper's Algorithm 2).

    "No core remains idle while another core is overloaded."

A *violation* pairs an idle CPU with an overloaded CPU (two or more
runnable threads) from which at least one waiting thread could legally
migrate (``can_steal`` respects taskset affinity).  Short-lived violations
are expected -- threads block, wake, fork and exit all the time -- so the
checker that consumes these results (:mod:`~repro.core.sanity_checker`)
only flags violations that persist.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sched.scheduler import Scheduler


@dataclass(frozen=True)
class Violation:
    """One (idle CPU, overloaded CPU) invariant violation."""

    time_us: int
    idle_cpu: int
    busy_cpu: int
    busy_nr_running: int
    stealable_tids: Tuple[int, ...]

    def describe(self) -> str:
        return (
            f"t={self.time_us}us: cpu {self.idle_cpu} idle while cpu "
            f"{self.busy_cpu} runs {self.busy_nr_running} threads "
            f"(stealable: {list(self.stealable_tids)})"
        )


def find_violations(sched: "Scheduler", now: int) -> List[Violation]:
    """Algorithm 2, literally.

    For every idle CPU1, for every CPU2 with at least two runnable threads,
    report a violation when CPU1 could steal from CPU2.  Quadratic like the
    paper's version -- they "strived to keep the code simple, perhaps at
    the expense of a higher algorithmic complexity".
    """
    violations: List[Violation] = []
    cpus = sched.cpus
    for cpu1 in cpus:
        if not cpu1.online:
            continue
        if cpu1.rq.nr_running >= 1:
            continue  # CPU1 is not idle
        for cpu2 in cpus:
            if cpu2.cpu_id == cpu1.cpu_id or not cpu2.online:
                continue
            if cpu2.rq.nr_running < 2:
                continue
            stealable = tuple(
                t.tid
                for t in cpu2.rq.queued_tasks()
                if t.can_run_on(cpu1.cpu_id)
            )
            if stealable:
                violations.append(
                    Violation(
                        time_us=now,
                        idle_cpu=cpu1.cpu_id,
                        busy_cpu=cpu2.cpu_id,
                        busy_nr_running=cpu2.rq.nr_running,
                        stealable_tids=stealable,
                    )
                )
    return violations


def has_violation(sched: "Scheduler", now: int) -> bool:
    """Cheap early-exit variant of :func:`find_violations`."""
    cpus = sched.cpus
    idle = [c for c in cpus if c.online and c.rq.nr_running == 0]
    if not idle:
        return False
    for cpu2 in cpus:
        if not cpu2.online or cpu2.rq.nr_running < 2:
            continue
        for task in cpu2.rq.queued_tasks():
            for cpu1 in idle:
                if task.can_run_on(cpu1.cpu_id):
                    return True
    return False


def violation_pairs(violations: List[Violation]) -> List[Tuple[int, int]]:
    """(idle, busy) CPU pairs, order preserved (for report summaries)."""
    return [(v.idle_cpu, v.busy_cpu) for v in violations]

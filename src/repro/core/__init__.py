"""The paper's contribution: invariant tools for the scheduler.

* :mod:`~repro.core.invariant` -- the work-conserving invariant ("no core
  remains idle while another core is overloaded", Algorithm 2) as pure
  checks over a live scheduler;
* :mod:`~repro.core.sanity_checker` -- the online sanity checker: periodic
  invariant checks (period S), a short monitoring window (M) to discard
  legal transient violations, and on-detection profiling;
* :mod:`~repro.core.profiler` -- the systemtap stand-in: records every
  balancing decision and considered-core set while a bug is being profiled;
* :mod:`~repro.core.offline` -- invariant analysis over recorded traces
  (including JSON-serialized ones);
* :mod:`~repro.core.bugs` -- the bug registry behind Table 4.
"""

from repro.core.bugs import BUGS, Bug, bug_by_name
from repro.core.invariant import Violation, find_violations, has_violation
from repro.core.offline import (
    OfflineViolation,
    find_trace_violations,
    load_trace,
    save_trace,
)
from repro.core.profiler import BalanceProfiler
from repro.core.sanity_checker import BugReport, SanityChecker

__all__ = [
    "BUGS",
    "BalanceProfiler",
    "Bug",
    "BugReport",
    "OfflineViolation",
    "SanityChecker",
    "Violation",
    "bug_by_name",
    "find_trace_violations",
    "find_violations",
    "has_violation",
    "load_trace",
    "save_trace",
]

"""Offline invariant analysis over recorded traces.

The online checker works on a live system; this module answers the same
question from a trace: reconstruct every CPU's ``nr_running`` step function
from the recorded events and find the intervals where some core sat idle
while another held two or more runnable threads for longer than a
threshold.  Traces round-trip through JSON-lines files so externally
captured scheduling traces can be analyzed with the same code.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.viz.events import (
    BalanceEvent,
    ConsideredEvent,
    LifecycleEvent,
    LoadEvent,
    MigrationEvent,
    NrRunningEvent,
    SchedSwitchEvent,
    TraceBuffer,
    WakeupEvent,
)

_EVENT_TYPES = {
    "nr_running": NrRunningEvent,
    "load": LoadEvent,
    "considered": ConsideredEvent,
    "migration": MigrationEvent,
    "wakeup": WakeupEvent,
    "lifecycle": LifecycleEvent,
    "balance": BalanceEvent,
    "switch": SchedSwitchEvent,
}
_TYPE_NAMES = {v: k for k, v in _EVENT_TYPES.items()}


@dataclass(frozen=True)
class OfflineViolation:
    """An interval during which the invariant was continuously violated."""

    start_us: int
    end_us: int
    idle_cpus: Tuple[int, ...]
    overloaded_cpus: Tuple[int, ...]

    @property
    def duration_us(self) -> int:
        return self.end_us - self.start_us

    def describe(self) -> str:
        return (
            f"[{self.start_us}us, {self.end_us}us] "
            f"({self.duration_us / 1000:.1f}ms): idle {list(self.idle_cpus)}"
            f" vs overloaded {list(self.overloaded_cpus)}"
        )


def _nr_running_steps(
    trace: Iterable[object], num_cpus: int
) -> List[Tuple[int, int, int]]:
    """Sorted (time, cpu, nr_running) change points."""
    steps = [
        (e.time_us, e.cpu, e.nr_running)
        for e in trace
        if isinstance(e, NrRunningEvent) and 0 <= e.cpu < num_cpus
    ]
    steps.sort()
    return steps


def find_trace_violations(
    trace: TraceBuffer,
    num_cpus: int,
    min_duration_us: int = 100_000,
    end_us: Optional[int] = None,
) -> List[OfflineViolation]:
    """Intervals >= ``min_duration_us`` with an idle core and an overloaded core.

    Affinity is not recorded in runqueue-size events, so this is the
    affinity-blind version of the invariant -- an over-approximation that
    the paper's heatmaps also show.  ``min_duration_us`` plays the role of
    the online checker's monitoring window (default 100 ms).
    """
    steps = _nr_running_steps(trace, num_cpus)
    if not steps:
        return []
    horizon = end_us if end_us is not None else steps[-1][0]
    nr = [0] * num_cpus
    violations: List[OfflineViolation] = []
    active_since: Optional[int] = None
    idle_seen: set = set()
    over_seen: set = set()

    def violated() -> bool:
        return any(n == 0 for n in nr) and any(n >= 2 for n in nr)

    def close(at: int) -> None:
        nonlocal active_since
        if active_since is not None:
            if at - active_since >= min_duration_us:
                violations.append(
                    OfflineViolation(
                        start_us=active_since,
                        end_us=at,
                        idle_cpus=tuple(sorted(idle_seen)),
                        overloaded_cpus=tuple(sorted(over_seen)),
                    )
                )
            active_since = None
            idle_seen.clear()
            over_seen.clear()

    i = 0
    while i < len(steps):
        t = steps[i][0]
        while i < len(steps) and steps[i][0] == t:
            _, cpu, value = steps[i]
            nr[cpu] = value
            i += 1
        if violated():
            if active_since is None:
                active_since = t
            idle_seen.update(c for c, n in enumerate(nr) if n == 0)
            over_seen.update(c for c, n in enumerate(nr) if n >= 2)
        else:
            close(t)
    close(max(horizon, steps[-1][0]))
    return violations


def violation_time_fraction(
    trace: TraceBuffer,
    num_cpus: int,
    span_us: int,
    min_duration_us: int = 0,
) -> float:
    """Fraction of the observed span spent in a violated state."""
    if span_us <= 0:
        return 0.0
    violations = find_trace_violations(
        trace, num_cpus, min_duration_us=max(min_duration_us, 1)
    )
    total = sum(v.duration_us for v in violations)
    return min(total / span_us, 1.0)


# ---------------------------------------------------------------------------
# JSON round-trip
# ---------------------------------------------------------------------------


def _event_to_obj(event: object) -> Dict[str, object]:
    # The record-type marker key must not collide with any event field
    # (LifecycleEvent has its own "kind"), hence "@event".
    data = {
        f: getattr(event, f)
        for f in event.__dataclass_fields__  # type: ignore[attr-defined]
    }
    if isinstance(data.get("considered"), frozenset):
        data["considered"] = sorted(data["considered"])
    return {"@event": _TYPE_NAMES[type(event)], **data}


def save_trace(trace: TraceBuffer, path: str) -> int:
    """Write a trace as JSON lines; returns the number of events written."""
    count = 0
    with open(path, "w", encoding="utf-8") as f:
        for event in trace:
            f.write(json.dumps(_event_to_obj(event)) + "\n")
            count += 1
    return count


def load_trace(path: str, capacity: Optional[int] = None) -> TraceBuffer:
    """Read a JSON-lines trace produced by :func:`save_trace`."""
    events: List[object] = []
    with open(path, "r", encoding="utf-8") as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            obj = json.loads(line)
            cls = _EVENT_TYPES[obj.pop("@event")]
            if "considered" in obj:
                obj["considered"] = frozenset(obj["considered"])
            events.append(cls(**obj))
    buffer = TraceBuffer(capacity or max(len(events), 1))
    for event in events:
        buffer.append(event)
    return buffer

"""A parallel kernel build (``make -j N``).

``make`` keeps N worker threads busy compiling translation units pulled
from a shared job pool; each compile is a CPU burst with a short I/O pause
around it.  All workers belong to one autogroup (one tty), which is what
makes each thread's load ~1/N of a single-threaded job's and arms the
Group Imbalance bug.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional

from repro.workloads.base import Run, Sleep, Spawn, TaskSpec, jittered


@dataclass
class MakeJob:
    """Shared state of one ``make`` invocation: the compile-job pool."""

    total_jobs: int
    compile_mean_us: int = 8_000
    io_pause_us: int = 300
    jitter: float = 0.5
    seed: int = 1
    remaining: int = field(init=False)
    completed: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        if self.total_jobs <= 0:
            raise ValueError("total_jobs must be positive")
        self.remaining = self.total_jobs
        self._rng = random.Random(self.seed)

    def take_job(self) -> Optional[int]:
        """Claim one compile job; None when the pool is drained."""
        if self.remaining <= 0:
            return None
        self.remaining -= 1
        return jittered(self._rng, self.compile_mean_us, self.jitter)

    @property
    def done(self) -> bool:
        return self.completed >= self.total_jobs


def _worker_program(job: MakeJob):
    def program():
        while True:
            duration = job.take_job()
            if duration is None:
                return
            # Read sources / write objects: a short blocking pause, then
            # the compile burst.
            if job.io_pause_us > 0:
                yield Sleep(job.io_pause_us)
            yield Run(duration)
            job.completed += 1

    return program


def make_workers(
    job: MakeJob,
    nr_workers: int,
    tty: str = "tty-make",
) -> List[TaskSpec]:
    """Specs for the N compile workers of one ``make -j N``."""
    if nr_workers <= 0:
        raise ValueError("nr_workers must be positive")
    return [
        TaskSpec(
            name=f"make-w{i}",
            program=_worker_program(job),
            tty=tty,
            tags={"app": "make", "job": id(job)},
        )
        for i in range(nr_workers)
    ]


def _compile_spec(job: MakeJob, duration_us: int, index: int,
                  tty: str) -> TaskSpec:
    """One compiler invocation: read sources, compile, exit."""

    def factory():
        def program():
            if job.io_pause_us > 0:
                yield Sleep(job.io_pause_us)
            yield Run(duration_us)
            job.completed += 1

        return program()

    return TaskSpec(
        name=f"cc-{index}",
        program=factory,
        tty=tty,
        tags={"app": "make", "job": id(job)},
    )


def make_driver(
    job: MakeJob,
    parallelism: int = 64,
    tty: str = "tty-make",
) -> TaskSpec:
    """``make -j N`` as it really behaves: forking one short-lived
    compiler *process* per translation unit.

    This is the paper's actual workload shape -- compile processes are
    constantly created (on make's node, since children start near their
    parent) and exit within milliseconds.  The resulting churn keeps the
    origin node under fork pressure; whether the rest of the machine
    absorbs it is exactly what the Group Imbalance bug decides.
    """
    if parallelism <= 0:
        raise ValueError("parallelism must be positive")

    def factory():
        def program():
            index = 0
            while True:
                duration = job.take_job()
                if duration is None:
                    break
                # make keeps at most -j N compiles in flight.
                while (index - job.completed) >= parallelism:
                    yield Sleep(500)
                index += 1
                yield Spawn(_compile_spec(job, duration, index, tty))
                yield Run(30)  # make's own bookkeeping between jobs
            while not job.done:
                yield Sleep(1_000)

        return program()

    return TaskSpec(
        name="make-driver", program=factory, tty=tty,
        tags={"app": "make-driver", "job": id(job)},
    )


def kernel_make(
    nr_workers: int = 64,
    total_jobs: int = 600,
    compile_mean_us: int = 8_000,
    tty: str = "tty-make",
    seed: int = 1,
) -> List[TaskSpec]:
    """A ready-made kernel build: N workers over a shared job pool."""
    job = MakeJob(
        total_jobs=total_jobs,
        compile_mean_us=compile_mean_us,
        seed=seed,
    )
    return make_workers(job, nr_workers, tty=tty)

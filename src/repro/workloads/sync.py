"""Synchronization primitives: spinlocks, mutexes, barriers, channels.

The primitives are passive state machines; the simulator's executor
performs the actual scheduling actions (spinning, blocking, waking).  The
distinction that drives the paper's super-linear slowdowns is **spinning
vs. blocking**: NAS applications use spinlocks and spin-barriers, so a
waiter burns its whole timeslice when the lock holder (or a barrier
straggler) is descheduled -- the executor models exactly that.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sched.task import Task

_next_sync_id = itertools.count(1)


class LockBase:
    """Common bookkeeping for spinlocks and mutexes."""

    #: "spin" or "block"; the executor dispatches on this.
    kind = "abstract"

    def __init__(self, name: str = ""):
        self.sync_id = next(_next_sync_id)
        self.name = name or f"{type(self).__name__.lower()}-{self.sync_id}"
        self.holder: Optional["Task"] = None
        self.waiters: List["Task"] = []
        self.acquisitions = 0
        self.contended_acquisitions = 0

    def acquire(self, task: "Task") -> bool:
        """Try to take the lock; False means the task must wait.

        On failure the task is appended to the FIFO waiter list; the
        executor decides whether waiting means spinning or blocking.
        """
        if self.holder is task:
            raise RuntimeError(f"{task} already holds {self.name}")
        if self.holder is None:
            self.holder = task
            self.acquisitions += 1
            return True
        self.waiters.append(task)
        self.contended_acquisitions += 1
        return False

    def is_waiting(self, task: "Task") -> bool:
        return task in self.waiters

    def __repr__(self) -> str:
        holder = self.holder.tid if self.holder else None
        return (
            f"{type(self).__name__}({self.name!r}, holder={holder}, "
            f"waiters={len(self.waiters)})"
        )


class SpinLock(LockBase):
    """A busy-waiting lock (kernel spinlock / NAS userspace spinlock).

    Waiters burn CPU.  On release, ownership passes to the first waiter
    currently *on a CPU*; if every waiter has been preempted the lock is
    left free, and a preempted waiter claims it when it next runs (the
    executor calls :meth:`try_steal` at dispatch time).
    """

    kind = "spin"

    def release(self, task: "Task") -> Optional["Task"]:
        """Drop the lock; returns the waiter granted ownership, if any."""
        from repro.sched.task import TaskState  # local: avoid import cycle

        if self.holder is not task:
            raise RuntimeError(f"{task} does not hold {self.name}")
        self.holder = None
        for waiter in self.waiters:
            if waiter.state is TaskState.RUNNING:
                self.waiters.remove(waiter)
                self.holder = waiter
                self.acquisitions += 1
                return waiter
        return None

    def try_steal(self, task: "Task") -> bool:
        """A preempted spinner, now running again, grabs the free lock."""
        if self.holder is None and task in self.waiters:
            self.waiters.remove(task)
            self.holder = task
            self.acquisitions += 1
            return True
        return False


class Mutex(LockBase):
    """A blocking lock (futex): waiters sleep and are woken FIFO."""

    kind = "block"

    def release(self, task: "Task") -> Optional["Task"]:
        """Drop the lock, handing it to the first waiter (to be woken)."""
        if self.holder is not task:
            raise RuntimeError(f"{task} does not hold {self.name}")
        if self.waiters:
            self.holder = self.waiters.pop(0)
            self.acquisitions += 1
            return self.holder
        self.holder = None
        return None


class Barrier:
    """A reusable barrier for a fixed number of parties.

    ``mode="spin"`` (NAS spin-barrier): waiters burn CPU until the last
    participant arrives.  ``mode="block"``: waiters sleep and the last
    arrival wakes them.  Each completion bumps ``generation``; a waiter has
    passed once the generation moved beyond the one it arrived in.
    """

    def __init__(self, parties: int, mode: str = "spin", name: str = ""):
        if parties <= 0:
            raise ValueError(f"parties must be positive, got {parties}")
        if mode not in ("spin", "block"):
            raise ValueError(f"unknown barrier mode {mode!r}")
        self.sync_id = next(_next_sync_id)
        self.name = name or f"barrier-{self.sync_id}"
        self.parties = parties
        self.mode = mode
        self.generation = 0
        self.waiting: List["Task"] = []
        self.completions = 0

    def arrive(self, task: "Task") -> Tuple[bool, List["Task"]]:
        """Register arrival.

        Returns ``(passed, released)``: ``passed`` is True when this was
        the last participant (the barrier trips); ``released`` lists the
        other tasks that were waiting and may now proceed.
        """
        if task in self.waiting:
            raise RuntimeError(f"{task} already waits on {self.name}")
        if len(self.waiting) + 1 >= self.parties:
            released = self.waiting
            self.waiting = []
            self.generation += 1
            self.completions += 1
            return True, released
        self.waiting.append(task)
        return False, []

    def has_passed(self, arrival_generation: int) -> bool:
        """True when the barrier tripped after ``arrival_generation``."""
        return self.generation > arrival_generation

    def __repr__(self) -> str:
        return (
            f"Barrier({self.name!r}, {len(self.waiting)}/{self.parties} "
            f"waiting, gen={self.generation}, mode={self.mode})"
        )


class SpinFlag:
    """A monotonically increasing counter spun on by consumers.

    This is how pipeline-parallel codes (the paper's ``lu``) wait for a
    neighbor's progress: the consumer busy-polls ``value >= threshold``.
    Waiters burn CPU like spinlock waiters; a descheduled producer therefore
    stalls every spinning consumer -- the heart of lu's 138x blowup.
    """

    def __init__(self, name: str = ""):
        self.sync_id = next(_next_sync_id)
        self.name = name or f"spinflag-{self.sync_id}"
        self.value = 0
        #: Spinning (task, threshold) pairs, arrival order.
        self.waiters: List[Tuple["Task", int]] = []

    def satisfied(self, threshold: int) -> bool:
        return self.value >= threshold

    def wait(self, task: "Task", threshold: int) -> bool:
        """Start waiting; True when already satisfied (no spin needed)."""
        if self.value >= threshold:
            return True
        self.waiters.append((task, threshold))
        return False

    def advance(self, amount: int = 1) -> List["Task"]:
        """Bump the counter; returns now-satisfied waiters (any state)."""
        if amount <= 0:
            raise ValueError(f"advance amount must be positive, got {amount}")
        self.value += amount
        released = [t for t, thr in self.waiters if self.value >= thr]
        self.waiters = [
            (t, thr) for t, thr in self.waiters if self.value < thr
        ]
        return released

    def drop_waiter(self, task: "Task") -> None:
        """Forget a waiter (task teardown)."""
        self.waiters = [(t, thr) for t, thr in self.waiters if t is not task]

    def __repr__(self) -> str:
        return (
            f"SpinFlag({self.name!r}, value={self.value}, "
            f"waiters={len(self.waiters)})"
        )


class Channel:
    """A counting token channel (condition variable / pipe stand-in).

    Producers :meth:`put` tokens; consumers :meth:`get` them, blocking when
    none are available.  The database model uses channels for its
    producer/consumer query pipelines -- each ``put`` is a wakeup with the
    producer as the waker, which is what arms the Overload-on-Wakeup bug.
    """

    def __init__(self, name: str = ""):
        self.sync_id = next(_next_sync_id)
        self.name = name or f"channel-{self.sync_id}"
        self.tokens = 0
        self.waiters: List["Task"] = []
        self.puts = 0
        self.gets = 0

    def put(self) -> Optional["Task"]:
        """Add a token; returns a blocked consumer to wake, if any."""
        self.puts += 1
        if self.waiters:
            return self.waiters.pop(0)
        self.tokens += 1
        return None

    def get(self, task: "Task") -> bool:
        """Consume a token; False means the task must block."""
        self.gets += 1
        if self.tokens > 0:
            self.tokens -= 1
            return True
        self.waiters.append(task)
        return False

    def __repr__(self) -> str:
        return (
            f"Channel({self.name!r}, tokens={self.tokens}, "
            f"waiters={len(self.waiters)})"
        )

"""Transient kernel threads: sub-millisecond background tasks.

The Overload-on-Wakeup bug "is typically caused when a transient thread is
scheduled on a core that runs a database thread ... the kernel launches
tasks that last less than a millisecond to perform background operations,
such as logging or irq handling".  The load balancer then sees a heavier
node and may migrate a *database* thread away -- after which the wakeup
path keeps it on the wrong node.

:class:`TransientLoad` injects such tasks: a tick hook spawns short-lived
threads on random online cores at a configurable rate (deterministic for a
fixed seed).
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Optional

from repro.sim.timebase import SEC, TICK_US
from repro.workloads.base import Run, TaskSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.system import System


def transient_spec(name: str, duration_us: int) -> TaskSpec:
    """One short-lived kernel-thread stand-in."""

    def factory():
        def program():
            yield Run(duration_us)

        return program()

    return TaskSpec(name=name, program=factory, tags={"app": "ktransient"})


class TransientLoad:
    """Injects short background tasks at an average rate (per second)."""

    def __init__(
        self,
        rate_per_sec: float = 50.0,
        duration_us: int = 600,
        duration_jitter: float = 0.5,
        seed: int = 23,
        busy_core_bias: float = 0.7,
    ):
        if rate_per_sec < 0:
            raise ValueError("rate must be non-negative")
        self.rate_per_sec = rate_per_sec
        self.duration_us = duration_us
        self.duration_jitter = duration_jitter
        self.busy_core_bias = busy_core_bias
        self.rng = random.Random(seed)
        self.spawned_count = 0
        self._system: Optional["System"] = None
        self._per_tick_probability = rate_per_sec * TICK_US / SEC

    def attach(self, system: "System") -> None:
        if self._system is not None:
            raise RuntimeError("transient load already attached")
        self._system = system
        system.tick_hooks.append(self._on_tick)

    def detach(self) -> None:
        if self._system is None:
            return
        self._system.tick_hooks.remove(self._on_tick)
        self._system = None

    def _on_tick(self, now: int) -> None:
        assert self._system is not None
        if self.rng.random() >= self._per_tick_probability:
            return
        system = self._system
        online = [c for c in system.scheduler.cpus if c.online]
        if not online:
            return
        # IRQs and kworkers favor already-active cores (timer/IO locality),
        # which is precisely how they perturb a loaded node.
        busy = [c for c in online if not c.is_idle]
        pool = busy if busy and self.rng.random() < self.busy_core_bias else online
        target = self.rng.choice(pool).cpu_id
        lo = max(1, int(self.duration_us * (1 - self.duration_jitter)))
        hi = int(self.duration_us * (1 + self.duration_jitter))
        duration = self.rng.randint(lo, max(lo, hi))
        self.spawned_count += 1
        system.spawn(
            transient_spec(f"ktrans-{self.spawned_count}", duration),
            on_cpu=target,
        )

"""NAS Parallel Benchmark models (bt, cg, ep, ft, is, lu, mg, sp, ua).

The paper uses the NAS suite to quantify the Scheduling Group Construction
(Table 1) and Missing Scheduling Domains (Table 3) bugs.  What matters for
those results is not the numerics but the *synchronization shape*: NAS
applications iterate compute phases separated by **spin barriers**, some
take **spinlocks** in inner loops, and ``lu`` parallelizes with a fine-
grained pipeline where "threads wait for the data processed by other
threads".  When the bugs cram all threads onto one node, a spinning waiter
can occupy the core its own lock holder needs, which is how slowdowns blow
past the raw loss of CPUs (27x for lu in Table 1, 138x in Table 3).

Each model is parameterized by compute-grain size, barrier frequency, and
critical-section length; the profiles below order the applications by
synchronization sensitivity the way the paper's tables do (``ep`` nearly
embarrassingly parallel, ``lu``/``ua`` extremely tightly coupled).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.workloads.base import (
    BarrierWait,
    FlagAdvance,
    FlagWait,
    LockAcquire,
    LockRelease,
    Run,
    Sleep,
    TaskSpec,
    jittered,
)
from repro.workloads.sync import Barrier, SpinFlag, SpinLock


@dataclass(frozen=True)
class NasProfile:
    """Synchronization shape of one NAS application."""

    name: str
    #: Mean per-iteration compute grain (microseconds).
    work_us: int
    #: Iterations between spin-barrier synchronizations (1 = every).
    barrier_every: int
    #: Spinlock critical-section length per iteration (0 = no lock).
    lock_hold_us: int
    #: Number of iterations each thread executes.
    iterations: int
    #: Blocking I/O pause per iteration (0 = none); ``is`` reads/writes keys.
    io_sleep_us: int = 0
    #: Work-grain jitter (load imbalance between threads).
    jitter: float = 0.25
    #: True for pipeline-parallel codes (lu): thread i's iteration depends
    #: on thread i-1's, modeled as a chain of handoff spinlocks.
    pipeline: bool = False
    #: Number of striped locks contended for (1 = one global lock); more
    #: stripes mean less serialization in the healthy case.
    nr_locks: int = 1


#: The nine applications the paper runs, ordered as in its tables.
NAS_PROFILES: Dict[str, NasProfile] = {
    "bt": NasProfile("bt", work_us=1500, barrier_every=1, lock_hold_us=0,
                     iterations=50),
    "cg": NasProfile("cg", work_us=600, barrier_every=1, lock_hold_us=0,
                     iterations=100),
    "ep": NasProfile("ep", work_us=4000, barrier_every=25, lock_hold_us=0,
                     iterations=60),
    "ft": NasProfile("ft", work_us=1000, barrier_every=1, lock_hold_us=0,
                     iterations=70),
    "is": NasProfile("is", work_us=4500, barrier_every=4, lock_hold_us=0,
                     iterations=40, io_sleep_us=400),
    "lu": NasProfile("lu", work_us=80, barrier_every=10, lock_hold_us=0,
                     iterations=250, pipeline=True),
    "mg": NasProfile("mg", work_us=900, barrier_every=1, lock_hold_us=0,
                     iterations=70),
    "sp": NasProfile("sp", work_us=850, barrier_every=1, lock_hold_us=0,
                     iterations=80),
    "ua": NasProfile("ua", work_us=180, barrier_every=1, lock_hold_us=30,
                     iterations=150, nr_locks=16),
}


class NasApp:
    """One NAS application instance: shared barrier/locks + thread specs."""

    def __init__(
        self,
        profile: NasProfile,
        nr_threads: int,
        allowed_cpus: Optional[FrozenSet[int]] = None,
        tty: Optional[str] = None,
        seed: int = 7,
        scale: float = 1.0,
    ):
        if nr_threads <= 0:
            raise ValueError("nr_threads must be positive")
        self.profile = profile
        self.nr_threads = nr_threads
        self.allowed_cpus = allowed_cpus
        self.tty = tty
        self.seed = seed
        self.iterations = max(1, int(profile.iterations * scale))
        self.barrier = Barrier(nr_threads, mode="spin",
                               name=f"{profile.name}-barrier")
        self.locks: List[SpinLock] = (
            [
                SpinLock(f"{profile.name}-lock{i}")
                for i in range(profile.nr_locks)
            ]
            if profile.lock_hold_us > 0
            else []
        )
        # Pipeline progress flags: thread i spins until flag[i-1] reaches
        # its current iteration (the predecessor produced its data).
        self.stage_flags: List[SpinFlag] = (
            [SpinFlag(f"{profile.name}-flag{i}") for i in range(nr_threads)]
            if profile.pipeline and nr_threads > 1
            else []
        )

    def thread_specs(self) -> List[TaskSpec]:
        return [
            TaskSpec(
                name=f"{self.profile.name}-t{i}",
                program=self._program_factory(i),
                tty=self.tty,
                allowed_cpus=self.allowed_cpus,
                tags={"app": self.profile.name, "rank": i},
            )
            for i in range(self.nr_threads)
        ]

    def _program_factory(self, rank: int):
        profile = self.profile
        rng = random.Random(self.seed * 1_000_003 + rank)

        def program():
            for it in range(self.iterations):
                if self.stage_flags:
                    # Wavefront lockstep (lu's SSOR sweeps): both neighbors
                    # must have produced iteration ``it - 1``'s boundary
                    # data before this rank can sweep iteration ``it``.  A
                    # descheduled rank therefore stalls *two* spinning
                    # neighbors, and stalls cascade along the pipeline.
                    if rank > 0:
                        yield FlagWait(self.stage_flags[rank - 1], it)
                    if rank + 1 < self.nr_threads:
                        yield FlagWait(self.stage_flags[rank + 1], it)
                yield Run(jittered(rng, profile.work_us, profile.jitter))
                if self.stage_flags:
                    yield FlagAdvance(self.stage_flags[rank])
                if self.locks:
                    lock = self.locks[rng.randrange(len(self.locks))]
                    yield LockAcquire(lock)
                    yield Run(jittered(rng, profile.lock_hold_us, 0.1))
                    yield LockRelease(lock)
                if profile.io_sleep_us > 0 and it % 4 == 3:
                    yield Sleep(jittered(rng, profile.io_sleep_us, 0.3))
                if (it + 1) % profile.barrier_every == 0:
                    yield BarrierWait(self.barrier)

        return program


def nas_app(
    name: str,
    nr_threads: int,
    allowed_cpus: Optional[FrozenSet[int]] = None,
    tty: Optional[str] = None,
    seed: int = 7,
    scale: float = 1.0,
) -> NasApp:
    """Instantiate a NAS application model by name (``"lu"``, ``"cg"``...)."""
    if name not in NAS_PROFILES:
        raise KeyError(
            f"unknown NAS app {name!r}; choose from {sorted(NAS_PROFILES)}"
        )
    return NasApp(
        NAS_PROFILES[name], nr_threads, allowed_cpus, tty, seed, scale
    )


def all_nas_names() -> Tuple[str, ...]:
    """The nine application names, table order."""
    return tuple(NAS_PROFILES)

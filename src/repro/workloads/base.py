"""The program model: tasks as generators of phases.

A program is a Python generator yielding :class:`Phase` records.  The
simulator's executor interprets them:

* :class:`Run` -- execute for a duration (may be preempted and resumed);
* :class:`Sleep` -- leave the CPU with a timer wakeup;
* :class:`LockAcquire` / :class:`LockRelease` -- take and drop a lock
  (:class:`~repro.workloads.sync.SpinLock` burns CPU while waiting,
  :class:`~repro.workloads.sync.Mutex` blocks);
* :class:`BarrierWait` -- synchronize with sibling threads;
* :class:`WaitOn` / :class:`Notify` -- blocking producer/consumer channels;
* :class:`Spawn` -- fork a child task (a :class:`TaskSpec`);
* :class:`Exit` -- finish early (returning from the generator also exits).

Programs never see wall-clock time or the scheduler; all randomness comes
from an ``random.Random`` instance owned by the workload, so runs are
reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, FrozenSet, Iterator, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.workloads.sync import Barrier, Channel, LockBase, SpinFlag


class Phase:
    """Base class for program phases (marker only)."""

    __slots__ = ()


@dataclass(frozen=True)
class Run(Phase):
    """Compute for ``duration_us`` microseconds of CPU time."""

    duration_us: int

    def __post_init__(self) -> None:
        if self.duration_us < 0:
            raise ValueError(f"negative run duration {self.duration_us}")


@dataclass(frozen=True)
class Sleep(Phase):
    """Leave the CPU; a timer wakes the task after ``duration_us``."""

    duration_us: int

    def __post_init__(self) -> None:
        if self.duration_us < 0:
            raise ValueError(f"negative sleep duration {self.duration_us}")


@dataclass(frozen=True)
class LockAcquire(Phase):
    """Take a lock; spin or block according to the lock's kind."""

    lock: "LockBase"


@dataclass(frozen=True)
class LockRelease(Phase):
    """Drop a lock previously acquired by this task."""

    lock: "LockBase"


@dataclass(frozen=True)
class BarrierWait(Phase):
    """Wait until every participant has arrived at the barrier."""

    barrier: "Barrier"


@dataclass(frozen=True)
class WaitOn(Phase):
    """Consume one token from a channel, blocking while it is empty."""

    channel: "Channel"


@dataclass(frozen=True)
class Notify(Phase):
    """Produce one token on a channel, waking one blocked consumer."""

    channel: "Channel"


@dataclass(frozen=True)
class FlagWait(Phase):
    """Spin until ``flag.value >= threshold`` (pipeline dependency)."""

    flag: "SpinFlag"
    threshold: int


@dataclass(frozen=True)
class FlagAdvance(Phase):
    """Bump a spin flag, releasing satisfied spinners."""

    flag: "SpinFlag"
    amount: int = 1


@dataclass(frozen=True)
class Exit(Phase):
    """Terminate the task immediately."""


#: A program: what one task does, as a phase generator.
Program = Iterator[Phase]
#: Factory producing a fresh program (each task needs its own generator).
ProgramFactory = Callable[[], Program]


@dataclass
class TaskSpec:
    """Blueprint for creating a task (directly or via :class:`Spawn`)."""

    name: str
    program: ProgramFactory
    nice: int = 0
    #: tty session for autogroup placement; None = root group.
    tty: Optional[str] = None
    #: Explicit cgroup name (overrides tty); None = tty/root.
    cgroup: Optional[str] = None
    #: CPU affinity (taskset); None = all CPUs.
    allowed_cpus: Optional[FrozenSet[int]] = None
    #: Extra metadata for experiments (e.g. which NAS app).
    tags: dict = field(default_factory=dict)


@dataclass(frozen=True)
class Spawn(Phase):
    """Fork a child task from a spec; the parent continues immediately."""

    spec: TaskSpec


def run_us(duration_us: int) -> Run:
    """Convenience constructor used heavily by workload modules."""
    return Run(int(duration_us))


def jittered(rng, mean_us: int, jitter: float = 0.2) -> int:
    """A duration near ``mean_us`` with +/- ``jitter`` uniform noise."""
    if mean_us <= 0:
        return 0
    lo = max(1, int(mean_us * (1.0 - jitter)))
    hi = int(mean_us * (1.0 + jitter))
    return rng.randint(lo, max(lo, hi))

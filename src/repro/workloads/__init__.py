"""Workload models: programs, synchronization, and the paper's applications.

A workload is a generator of *phases* (:mod:`~repro.workloads.base`):
compute bursts, sleeps, lock/barrier operations, channel waits, forks.  The
simulator executes phases against the scheduler; synchronization primitives
(:mod:`~repro.workloads.sync`) decide who spins (burning CPU, like the NAS
spinlocks) and who blocks (sleeping until woken, like database workers).

Application models:

* :mod:`~repro.workloads.cpubound` -- single-threaded CPU hogs (the paper's
  R processes) and simple spinners;
* :mod:`~repro.workloads.make` -- a parallel kernel build (64 compile
  workers fed from a job queue);
* :mod:`~repro.workloads.nas` -- the nine NAS parallel benchmarks as
  synchronization *shapes* (spin-barriers, spinlocks, lu's pipeline);
* :mod:`~repro.workloads.database` -- a commercial-database stand-in running
  TPC-H-like queries on pools of worker threads, plus the transient kernel
  threads that trigger the Overload-on-Wakeup bug.
"""

from repro.workloads.base import (
    BarrierWait,
    Exit,
    FlagAdvance,
    FlagWait,
    LockAcquire,
    LockRelease,
    Notify,
    Phase,
    Run,
    Sleep,
    Spawn,
    TaskSpec,
    WaitOn,
)
from repro.workloads.sync import Barrier, Channel, Mutex, SpinFlag, SpinLock

__all__ = [
    "Barrier",
    "BarrierWait",
    "Channel",
    "Exit",
    "FlagAdvance",
    "FlagWait",
    "LockAcquire",
    "LockRelease",
    "Mutex",
    "Notify",
    "Phase",
    "Run",
    "Sleep",
    "Spawn",
    "SpinFlag",
    "SpinLock",
    "TaskSpec",
    "WaitOn",
]

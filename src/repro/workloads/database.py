"""A commercial-database stand-in executing a TPC-H-like workload.

The paper's trigger workload: a widely used commercial DBMS "relies on
pools of worker threads: a handful of container processes each provide
several dozens of worker threads", each container in its own autogroup.
Workers execute queries as a sequence of *rounds* (scan, join, aggregate):
in each round every worker computes, then blocks on a barrier until the
slowest worker -- the straggler -- arrives.  Workers therefore sleep and
wake constantly, which is exactly the behavior the Overload-on-Wakeup bug
punishes: "any two threads that are stuck on the same core end up slowing
down all the remaining threads".

:class:`TpchQuery` parameterizes one query's round count and per-round
work; :func:`tpch_queries` provides the 22-query mix, with query 18 the
heaviest (the paper's most-affected request).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.workloads.base import (
    BarrierWait,
    Notify,
    Run,
    Sleep,
    TaskSpec,
    WaitOn,
    jittered,
)
from repro.workloads.sync import Barrier, Channel


@dataclass(frozen=True)
class TpchQuery:
    """One TPC-H request: rounds of parallel work with fan-in sync."""

    number: int
    rounds: int
    work_us: int
    #: Work-grain jitter between workers within a round.
    jitter: float = 0.35

    @property
    def name(self) -> str:
        return f"Q{self.number}"


def tpch_queries(scale: float = 1.0) -> List[TpchQuery]:
    """The 22 TPC-H queries, with relative weights echoing the benchmark.

    Query 18 (large-volume customers: a huge multi-way join and sort) is
    the heaviest -- and the paper's most bug-sensitive request.
    """
    rounds = {
        1: 10, 2: 4, 3: 8, 4: 6, 5: 10, 6: 4, 7: 10, 8: 10, 9: 14, 10: 8,
        11: 4, 12: 6, 13: 8, 14: 4, 15: 4, 16: 6, 17: 10, 18: 20, 19: 6,
        20: 8, 21: 16, 22: 4,
    }
    work = {
        1: 900, 2: 350, 3: 650, 4: 500, 5: 800, 6: 400, 7: 700, 8: 650,
        9: 900, 10: 600, 11: 350, 12: 500, 13: 700, 14: 400, 15: 400,
        16: 450, 17: 750, 18: 1000, 19: 500, 20: 550, 21: 850, 22: 350,
    }
    return [
        TpchQuery(
            number=q,
            rounds=max(1, int(rounds[q] * scale)),
            work_us=work[q],
        )
        for q in sorted(rounds)
    ]


def query18(scale: float = 1.0) -> TpchQuery:
    """The paper's most-affected request."""
    return [q for q in tpch_queries(scale) if q.number == 18][0]


@dataclass
class QueryResult:
    """Measured latency of one executed query."""

    query: TpchQuery
    start_us: int
    end_us: int

    @property
    def latency_us(self) -> int:
        return self.end_us - self.start_us


class Database:
    """Worker pools + a query driver.

    ``containers`` lists the worker count of each container process; each
    container is one cgroup (autogroup), so containers with different pool
    sizes give their workers different loads -- the Group Imbalance
    trigger from the paper's footnote 4.
    """

    def __init__(
        self,
        containers: Sequence[int] = (32, 16, 8, 8),
        seed: int = 11,
        think_time_us: int = 2_000,
    ):
        if not containers or any(c <= 0 for c in containers):
            raise ValueError("containers must be positive worker counts")
        self.containers = tuple(containers)
        self.nr_workers = sum(containers)
        self.seed = seed
        self.think_time_us = think_time_us
        self.rng = random.Random(seed)
        #: Work distribution channel: the driver posts one token per
        #: worker per round.
        self.work_channel = Channel("db-work")
        #: Fan-in barrier per round (blocking: DB workers sleep).
        self.round_barrier = Barrier(
            self.nr_workers + 1, mode="block", name="db-round"
        )
        self.results: List[QueryResult] = []
        self._clock = None
        self._shutdown = False
        #: Per-round work durations, re-rolled by the driver per round.
        self._round_work: Dict[int, int] = {}
        self._round_no = 0

    # -- programs ---------------------------------------------------------

    def worker_specs(self) -> List[TaskSpec]:
        """One spec per worker, grouped into per-container cgroups."""
        specs = []
        rank = 0
        for c_idx, count in enumerate(self.containers):
            for _ in range(count):
                specs.append(
                    TaskSpec(
                        name=f"db-c{c_idx}-w{rank}",
                        program=self._worker_program(rank),
                        cgroup=f"db-container-{c_idx}",
                        tags={"app": "db", "container": c_idx},
                    )
                )
                rank += 1
        return specs

    def _worker_program(self, rank: int):
        def program():
            while True:
                yield WaitOn(self.work_channel)
                if self._shutdown:
                    return
                duration = self._round_work.get(rank, 500)
                yield Run(duration)
                yield BarrierWait(self.round_barrier)

        return program

    def bind(self, system) -> None:
        """Point query-latency measurement at a system's virtual clock.

        Must be called before the driver task starts running.
        """
        self._clock = lambda: system.now

    def driver_spec(self, queries: Sequence[TpchQuery]) -> TaskSpec:
        """The query coordinator: issues rounds, collects fan-ins."""

        def program():
            if self._clock is None:
                raise RuntimeError("call Database.bind(system) first")
            for query in queries:
                start = self._clock()
                for _ in range(query.rounds):
                    self._round_no += 1
                    for rank in range(self.nr_workers):
                        self._round_work[rank] = jittered(
                            self.rng, query.work_us, query.jitter
                        )
                        yield Notify(self.work_channel)
                    # Small coordination cost, then wait for every worker.
                    yield Run(50)
                    yield BarrierWait(self.round_barrier)
                self.results.append(
                    QueryResult(query, start, self._clock())
                )
                if self.think_time_us > 0:
                    yield Sleep(self.think_time_us)
            self._shutdown = True
            for _ in range(self.nr_workers):
                yield Notify(self.work_channel)

        return TaskSpec(
            name="db-driver", program=program, cgroup="db-driver",
            tags={"app": "db-driver"},
        )

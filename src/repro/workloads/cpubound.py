"""CPU-bound single-thread workloads: the paper's R processes.

The multi-user scenario behind the Group Imbalance bug ran two R machine-
learning jobs, each a single thread that computes flat out for a long time
from its own ssh session (tty).  A nice-0 single-thread autogroup member
carries the full 1024 load -- ~64x one ``make`` thread's.
"""

from __future__ import annotations

from typing import Optional

from repro.workloads.base import Run, Sleep, TaskSpec

#: Work chunk size; long enough to be visible to the balancer, short enough
#: to interleave with ticks.
_CHUNK_US = 5_000


def cpu_hog_program(total_us: Optional[int] = None):
    """Compute for ``total_us`` microseconds (forever when None)."""

    def factory():
        def program():
            if total_us is None:
                while True:
                    yield Run(_CHUNK_US)
            else:
                remaining = total_us
                while remaining > 0:
                    chunk = min(_CHUNK_US, remaining)
                    remaining -= chunk
                    yield Run(chunk)

        return program()

    return factory


def r_process(
    name: str,
    tty: str,
    total_us: Optional[int] = None,
    nice: int = 0,
) -> TaskSpec:
    """A single-threaded R data-analysis job from its own tty session."""
    return TaskSpec(
        name=name,
        program=cpu_hog_program(total_us),
        nice=nice,
        tty=tty,
        tags={"app": "R"},
    )


def periodic_task(
    name: str,
    run_us: int,
    sleep_us: int,
    cycles: Optional[int] = None,
    tty: Optional[str] = None,
) -> TaskSpec:
    """A run/sleep cycler (interactive or daemon-like load)."""

    def factory():
        def program():
            n = 0
            while cycles is None or n < cycles:
                yield Run(run_us)
                yield Sleep(sleep_us)
                n += 1

        return program()

    return TaskSpec(
        name=name, program=factory, tty=tty, tags={"app": "periodic"}
    )

"""Control groups and autogroups.

Since 2.6.38 Linux divides a thread's load by the number of threads in its
cgroup so CPU time is fair *between groups* rather than between threads; the
autogroup feature automatically puts each tty session (each ssh connection in
the paper's scenario) in its own group.  The Group Imbalance bug is a direct
consequence: one thread of a 64-thread ``make`` autogroup carries ~1/64 of
the load of a single-threaded R process.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Set

from repro.sched.load import LoadEpoch

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.sched.task import Task


class CGroup:
    """A group of tasks whose combined load is normalized to one thread's.

    ``nr_threads`` counts *live* member tasks; a task leaves the group when
    it exits.  The root group performs no normalization (kernel root
    task_group behaves the same for our purposes).

    ``metric`` selects the divisor flavor: ``"classic"`` (instantaneous
    thread count, pre-4.3 kernels) or ``"v43"`` (the Linux 4.3 rework,
    modeled as a smoothed thread count -- group shares react to membership
    changes gradually instead of instantly).  Section 3.5 of the paper
    verified the Group Imbalance bug survives the 4.3 rework; both flavors
    reproduce it here.
    """

    #: EWMA step for the v43 smoothed divisor.
    _SMOOTHING = 0.25

    def __init__(self, name: str, is_root: bool = False,
                 metric: str = "classic"):
        if metric not in ("classic", "v43"):
            raise ValueError(f"unknown load metric {metric!r}")
        self.name = name
        self.is_root = is_root
        self.metric = metric
        self._members: Set["Task"] = set()
        self._avg_threads = 0.0

    @property
    def nr_threads(self) -> int:
        """Number of live tasks in the group."""
        return len(self._members)

    @property
    def load_divisor(self) -> float:
        """What a member task's load is divided by (>= 1)."""
        if self.is_root:
            return 1
        if self.metric == "v43":
            return max(1.0, self._avg_threads)
        return max(1, len(self._members))

    def add(self, task: "Task") -> None:
        self._members.add(task)
        self._update_avg()

    def discard(self, task: "Task") -> None:
        self._members.discard(task)
        self._update_avg()

    def _update_avg(self) -> None:
        n = len(self._members)
        self._avg_threads += (n - self._avg_threads) * self._SMOOTHING

    def members(self) -> Iterator["Task"]:
        """Member tasks in tid order.

        ``_members`` is a set of identity-hashed Task objects, so raw set
        order varies between runs; sorting keeps every consumer
        deterministic for a fixed seed.
        """
        return iter(sorted(self._members, key=lambda t: t.tid))

    def __repr__(self) -> str:
        kind = "root" if self.is_root else "cgroup"
        return f"CGroup({self.name!r}, {kind}, threads={self.nr_threads})"


class Autogroup(CGroup):
    """A cgroup automatically created for one tty session."""

    def __init__(self, tty: str, metric: str = "classic"):
        super().__init__(name=f"autogroup:{tty}", metric=metric)
        self.tty = tty


class CGroupManager:
    """Creates groups, places tasks, and models the autogroup feature.

    When ``autogroup_enabled`` is False every task is placed in the root
    group and loads are not divided (``noautogroup`` boot parameter).
    ``metric`` is inherited by every created group.
    """

    def __init__(self, autogroup_enabled: bool = True,
                 metric: str = "classic"):
        self.autogroup_enabled = autogroup_enabled
        self.metric = metric
        self.root = CGroup("root", is_root=True, metric=metric)
        self._autogroups: Dict[str, Autogroup] = {}
        self._groups: Dict[str, CGroup] = {"root": self.root}
        #: Load-epoch counter shared with the scheduler's runqueues, if
        #: bound.  Membership changes move the group divisor of *every*
        #: member thread without touching any runqueue, so they must
        #: invalidate the cached queue loads too.
        self._load_epoch: Optional[LoadEpoch] = None
        self._divisor_epoch: Optional[LoadEpoch] = None

    def bind_load_epoch(
        self,
        epoch: LoadEpoch,
        divisor_epoch: Optional[LoadEpoch] = None,
    ) -> None:
        """Share the scheduler's dirty counters (called at scheduler init).

        ``divisor_epoch`` is the finer-grained counter the per-queue load
        caches key on; membership changes bump both.
        """
        self._load_epoch = epoch
        self._divisor_epoch = divisor_epoch

    def create_group(self, name: str) -> CGroup:
        """An explicit (non-auto) cgroup; raises on duplicate names."""
        if name in self._groups:
            raise ValueError(f"cgroup {name!r} already exists")
        group = CGroup(name, metric=self.metric)
        self._groups[name] = group
        return group

    def autogroup_for_tty(self, tty: str) -> CGroup:
        """The autogroup of a tty session (created on first use).

        With autogroups disabled this returns the root group, matching the
        kernel's fallback.
        """
        if not self.autogroup_enabled:
            return self.root
        if tty not in self._autogroups:
            group = Autogroup(tty, metric=self.metric)
            self._autogroups[tty] = group
            self._groups[group.name] = group
        return self._autogroups[tty]

    def group(self, name: str) -> CGroup:
        """Lookup by name; raises ``KeyError`` when missing."""
        return self._groups[name]

    def groups(self) -> List[CGroup]:
        """All groups including root, creation order not guaranteed."""
        return list(self._groups.values())

    def attach(self, task: "Task", group: Optional[CGroup] = None) -> None:
        """Move a task into ``group`` (default root), leaving its old group."""
        target = group or self.root
        if task.cgroup is not None:
            task.cgroup.discard(task)
        target.add(task)
        task.cgroup = target
        if self._load_epoch is not None:
            self._load_epoch.bump()
        if self._divisor_epoch is not None:
            self._divisor_epoch.bump()

    def detach(self, task: "Task") -> None:
        """Remove an exiting task from its group."""
        if task.cgroup is not None:
            task.cgroup.discard(task)
            task.cgroup = None
            if self._load_epoch is not None:
                self._load_epoch.bump()
            if self._divisor_epoch is not None:
                self._divisor_epoch.bump()

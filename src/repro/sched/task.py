"""Tasks (threads) and their scheduling state.

A :class:`Task` carries exactly the state the scheduler decisions in the
paper depend on: weight (nice), vruntime, decaying utilization, cgroup
membership, CPU affinity (taskset), and the CPU it last ran on.  Workload
behavior (what the thread *does*) is attached as a generator program and
driven by the simulator's executor; the scheduler never looks inside it.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, FrozenSet, Iterator, Optional

from repro.sched.load import LoadTracker, task_load
from repro.sched.weights import weight_for_nice

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sched.cgroup import CGroup

_next_tid = itertools.count(1)


class TaskState(enum.Enum):
    """Lifecycle of a task, as the scheduler sees it."""

    #: Created but not yet enqueued anywhere.
    NEW = "new"
    #: Waiting in a runqueue.
    RUNNABLE = "runnable"
    #: Executing on a CPU.
    RUNNING = "running"
    #: Off the runqueue with a timer wakeup pending.
    SLEEPING = "sleeping"
    #: Off the runqueue waiting on a synchronization object or I/O.
    BLOCKED = "blocked"
    #: Finished; never scheduled again.
    EXITED = "exited"


@dataclass
class TaskStats:
    """Counters used by the experiments and the test-suite."""

    total_runtime_us: int = 0
    spin_time_us: int = 0
    wait_time_us: int = 0
    sleep_time_us: int = 0
    migrations: int = 0
    wakeups: int = 0
    wakeups_on_busy_core: int = 0
    preemptions: int = 0
    last_enqueue_us: int = 0
    exit_time_us: Optional[int] = None


class Task:
    """One schedulable thread."""

    def __init__(
        self,
        name: str,
        nice: int = 0,
        program: Optional[Iterator[Any]] = None,
        allowed_cpus: Optional[FrozenSet[int]] = None,
        now: int = 0,
        tid: Optional[int] = None,
    ):
        self.tid = tid if tid is not None else next(_next_tid)
        self.name = name
        self.nice = nice
        self.weight = weight_for_nice(nice)
        self.state = TaskState.NEW
        self.vruntime = 0
        #: CPU currently hosting the task (running or enqueued); None while
        #: sleeping/blocked/new.
        self.cpu: Optional[int] = None
        #: CPU the task last ran on; wakeup placement starts from here.
        self.prev_cpu: Optional[int] = None
        #: Taskset/cpuset affinity mask; None means "all CPUs allowed".
        self.allowed_cpus = allowed_cpus
        self.cgroup: Optional["CGroup"] = None
        self.tracker = LoadTracker(now)
        self.stats = TaskStats()

        # --- executor state (owned by repro.sim, opaque to the scheduler) --
        #: Generator yielding workload phases.
        self.program = program
        #: Phase currently being executed (set by the executor).
        self.current_phase: Any = None
        #: Remaining run time of the current phase, microseconds.
        self.phase_left_us = 0
        #: Synchronization object the task is spinning on, if any.
        self.spinning_on: Any = None
        #: Synchronization object the task is blocked on, if any.
        self.blocked_on: Any = None
        #: Timestamp execution last (re)started, for runtime accounting.
        self.exec_start_us: Optional[int] = None
        #: Timestamp the current Run phase last (re)started on a CPU.
        self.phase_started_us: Optional[int] = None
        #: Timestamp the current on-CPU spin episode started.
        self.spin_started_us: Optional[int] = None
        #: Barrier generation observed when this task started spin-waiting.
        self.barrier_generation = 0
        #: Spin-flag threshold this task is waiting to reach.
        self.flag_threshold = 0

    # -- affinity ----------------------------------------------------------

    def can_run_on(self, cpu_id: int) -> bool:
        """True when affinity allows this task on ``cpu_id``."""
        return self.allowed_cpus is None or cpu_id in self.allowed_cpus

    def set_affinity(self, allowed_cpus: Optional[FrozenSet[int]]) -> None:
        """Pin the task to a CPU set (``taskset``); ``None`` unpins."""
        if allowed_cpus is not None and not allowed_cpus:
            raise ValueError("affinity mask must not be empty")
        self.allowed_cpus = (
            None if allowed_cpus is None else frozenset(allowed_cpus)
        )

    # -- load ----------------------------------------------------------------

    def load(self, now: Optional[int] = None) -> float:
        """Current balancing load: weight x utilization / cgroup divisor."""
        divisor = self.cgroup.load_divisor if self.cgroup is not None else 1
        if now is None:
            util = self.tracker.util
        else:
            util = self.tracker.peek(now, self.state is TaskState.RUNNING)
        return task_load(self.weight, util, divisor)

    # -- state helpers -------------------------------------------------------

    @property
    def on_rq(self) -> bool:
        """True when the task occupies a runqueue slot (running or waiting)."""
        return self.state in (TaskState.RUNNABLE, TaskState.RUNNING)

    @property
    def alive(self) -> bool:
        return self.state is not TaskState.EXITED

    def __repr__(self) -> str:
        return (
            f"Task(tid={self.tid}, name={self.name!r}, "
            f"state={self.state.value}, cpu={self.cpu}, "
            f"vruntime={self.vruntime})"
        )


def reset_tid_counter(start: int = 1) -> None:
    """Restart tid allocation (tests and deterministic experiment setup)."""
    global _next_tid
    _next_tid = itertools.count(start)

"""Per-CPU scheduler state: runqueue, idle tracking, hotplug, NOHZ.

A :class:`Cpu` is the scheduler-side view of one core: its runqueue, whether
it is online (hotplug), when it last became idle (the fixed wakeup path picks
the *longest*-idle core), and whether it is in the tickless (NOHZ) idle state
the paper's Section 2.2.2 describes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.sched.load import LoadEpoch
from repro.sched.runqueue import RunQueue

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.viz.events import Probe


class Cpu:
    """One logical CPU as the scheduler manages it."""

    def __init__(
        self,
        cpu_id: int,
        probe: Optional["Probe"] = None,
        load_epoch: Optional[LoadEpoch] = None,
        load_cache: bool = True,
        idle_epoch: Optional[LoadEpoch] = None,
        divisor_epoch: Optional[LoadEpoch] = None,
        sanitize: bool = False,
    ):
        self.cpu_id = cpu_id
        self.rq = RunQueue(
            cpu_id, probe, load_epoch=load_epoch, load_cache=load_cache,
            idle_epoch=idle_epoch, divisor_epoch=divisor_epoch,
            sanitize=sanitize,
        )
        #: Hotplug state; offline CPUs host no tasks and join no domain.
        self.online = True
        #: Timestamp the CPU last became idle; None while busy.  CPUs boot
        #: idle and tickless, so they are NOHZ-balanceable from time zero.
        self.idle_since_us: Optional[int] = 0
        #: True when the CPU stopped its periodic tick (tickless idle).
        self.tickless = True
        #: Set when this idle CPU was kicked to act as the NOHZ balancer.
        self.nohz_balancer = False
        #: EWMA of recent idle-period lengths (the kernel's ``avg_idle``):
        #: newidle balancing is skipped when expected idleness is shorter
        #: than the cost of balancing.  Boot value is large: a never-used
        #: CPU is long-term idle.
        self.avg_idle_us = 1_000_000
        #: Timestamp of the last accounting update for the running task.
        self.last_account_us = 0
        #: Accumulated busy/idle time, for utilization reports.
        self.busy_time_us = 0
        self.idle_time_us = 0
        #: Per-domain-level next periodic balance timestamps.
        self.next_balance_us: list = []
        #: Per-domain-level [idle_epoch, winner] designated-CPU memo used
        #: by the fast balancing path; valid while the idle epoch matches.
        self.designated_memo: list = []
        #: Vectorized-path balance plan: (domain, local group, solo
        #: winner) per level, cached until the domain generation moves
        #: (see ``periodic_balance``).
        self.balance_plan: Optional[list] = None
        self.balance_plan_gen = -1

    @property
    def is_idle(self) -> bool:
        """True when nothing runs here and nothing waits in the queue."""
        return self.online and self.rq.is_idle()

    def mark_idle(self, now: int) -> None:
        """Record the busy -> idle transition (enters tickless state)."""
        if self.idle_since_us is None:
            self.idle_since_us = now
            self.tickless = True

    def mark_busy(self, now: int) -> None:
        """Record the idle -> busy transition (leaves tickless state)."""
        if self.idle_since_us is not None:
            idle_period = now - self.idle_since_us
            self.idle_time_us += idle_period
            # Kernel ``update_avg``: avg += (sample - avg) / 8.
            self.avg_idle_us += (idle_period - self.avg_idle_us) // 8
            self.idle_since_us = None
        self.tickless = False
        self.nohz_balancer = False

    def idle_duration(self, now: int) -> int:
        """Microseconds spent idle so far, 0 when busy."""
        if self.idle_since_us is None:
            return 0
        return now - self.idle_since_us

    def __repr__(self) -> str:
        state = "offline" if not self.online else (
            "idle" if self.is_idle else "busy"
        )
        return f"Cpu({self.cpu_id}, {state}, nr_running={self.rq.nr_running})"

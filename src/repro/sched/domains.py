"""Scheduling domains and scheduling groups.

CFS organizes cores in a hierarchy (the paper's Figure 1): SMT pairs, then
cores sharing an LLC (a NUMA node), then nodes one hop apart, then nodes two
hops apart, and so on up to the machine.  Each level is a *scheduling
domain*; inside a domain, load balancing moves work between *scheduling
groups*.

Two of the paper's bugs live here:

* **Scheduling Group Construction** (Section 3.2): on the buggy path, the
  groups of the cross-node levels are constructed from the perspective of
  core 0 and shared by every core.  On an asymmetric interconnect two nodes
  that are two hops apart (nodes 1 and 2 on the paper's machine) can end up
  together in *every* group, making their relative imbalance invisible.
  The fixed path builds groups from each core's own perspective.

* **Missing Scheduling Domains** (Section 3.4): regenerating domains after
  CPU hotplug is a two-step process -- inside nodes, then across nodes.  The
  buggy path drops the second step (as the refactored kernel code did), so
  after any core is disabled and re-enabled no domain spans multiple nodes
  and NUMA load balancing stops entirely.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.sched.features import SchedFeatures
from repro.topology.interconnect import hop_levels
from repro.topology.machine import MachineTopology


@dataclass(frozen=True)
class SchedGroup:
    """A set of CPUs balanced as a unit within a domain.

    ``balance_cpus`` is the group's *balance mask*: the CPUs eligible to be
    the designated balancer when this is the local group.  For ordinary
    (non-overlapping) groups it is the whole group.  For overlapping NUMA
    groups built per-perspective (the Scheduling Group Construction fix) it
    is the seed node's CPUs -- the CPUs whose perspective produced the
    group -- which is what lets an idle remote node elect its own balancer
    instead of deferring forever to an idle CPU of another node.
    """

    cpus: FrozenSet[int]
    balance_cpus: Optional[FrozenSet[int]] = None

    def __contains__(self, cpu_id: int) -> bool:
        return cpu_id in self.cpus

    def __len__(self) -> int:
        return len(self.cpus)

    @cached_property
    def _cpus_sorted(self) -> Tuple[int, ...]:
        # cached_property writes the instance __dict__ directly, which is
        # legal on a frozen dataclass and safe here: ``cpus`` is immutable,
        # and hotplug regeneration builds entirely new group objects (see
        # DomainBuilder.rebuild), so a cached tuple can never go stale.
        return tuple(sorted(self.cpus))

    @cached_property
    def _balance_mask_sorted(self) -> Tuple[int, ...]:
        return tuple(sorted(self.balance_mask()))

    def sorted_cpus(self) -> Tuple[int, ...]:
        return self._cpus_sorted

    def sorted_balance_mask(self) -> Tuple[int, ...]:
        """The balance mask in CPU order (cached; hot in the balancer)."""
        return self._balance_mask_sorted

    def balance_mask(self) -> FrozenSet[int]:
        """CPUs that may act as this group's designated balancer."""
        return self.balance_cpus if self.balance_cpus is not None else self.cpus

    def __repr__(self) -> str:
        return f"SchedGroup({self.sorted_cpus()})"


@dataclass(frozen=True)
class SchedDomain:
    """One level of the hierarchy, as seen from a particular CPU.

    ``span`` is every CPU in the domain; ``groups`` partitions (or, on the
    buggy construction path, *covers* -- possibly with overlap) the span.
    ``level`` indexes the domain bottom-up, and ``balance_interval_us`` is
    the periodic-balance period at this level.
    """

    name: str
    level: int
    span: FrozenSet[int]
    groups: Tuple[SchedGroup, ...]
    balance_interval_us: int
    #: True for cross-node levels; fork/exec placement does not descend
    #: these (no ``SD_BALANCE_FORK``), so children stay on the parent's
    #: node and only load balancing moves threads across nodes.
    numa: bool = False
    #: Kernel ``sd->imbalance_pct`` (as a ratio): the busiest group must
    #: exceed the local group by this factor before a steal is worthwhile;
    #: damps migration ping-pong when loads cannot divide evenly.
    imbalance_ratio: float = 1.17

    @cached_property
    def _group_by_cpu(self) -> Dict[int, SchedGroup]:
        # First-wins over the groups tuple, preserving the "first group
        # containing the CPU" rule for overlapping NUMA groups.  Cached on
        # the frozen instance (see SchedGroup._cpus_sorted for why that is
        # safe): local_group is called on every balancing attempt.
        mapping: Dict[int, SchedGroup] = {}
        for group in self.groups:
            for c in group.cpus:
                if c not in mapping:
                    mapping[c] = group
        return mapping

    def local_group(self, cpu_id: int) -> SchedGroup:
        """The group containing ``cpu_id`` (the first one, on overlap)."""
        group = self._group_by_cpu.get(cpu_id)
        if group is None:
            raise ValueError(f"cpu {cpu_id} not in domain {self.name}")
        return group

    def __repr__(self) -> str:
        return (
            f"SchedDomain({self.name!r}, level={self.level}, "
            f"span={sorted(self.span)}, groups={len(self.groups)})"
        )


class DomainBuilder:
    """Builds per-CPU scheduling-domain lists from a machine topology.

    The builder is also the hotplug bookkeeper: it tracks which CPUs are
    online and whether a hotplug event has occurred (which is what arms the
    Missing Scheduling Domains bug).
    """

    def __init__(self, topology: MachineTopology, features: SchedFeatures):
        self.topology = topology
        self.features = features
        self._online: Set[int] = set(range(topology.num_cpus))
        #: True once any core was disabled then re-enabled; the buggy
        #: regeneration path truncates domains from that point on.
        self.hotplug_happened = False
        #: Per-CPU bottom-up domain lists.
        self._domains: Dict[int, List[SchedDomain]] = {}
        #: Rebuild-scoped intern pool of groups, keyed by membership.
        self._group_pool: Dict[
            Tuple[FrozenSet[int], Optional[FrozenSet[int]]], SchedGroup
        ] = {}
        #: Rebuild-scoped intern pool of domains: every CPU of a node sees
        #: identical (name, level, span, groups) at the shared levels, so
        #: one SchedDomain object serves them all and id-keyed caches (the
        #: vectorized mirror's per-domain gather plans) are shared across
        #: perspectives instead of built per CPU.
        self._domain_pool: Dict[object, SchedDomain] = {}
        #: Bumped by every rebuild; consumers caching per-CPU domain
        #: plans (``Cpu.balance_plan``) key their validity off it.
        self.generation = 0
        self.rebuild()

    # -- hotplug -----------------------------------------------------------

    def online_cpus(self) -> FrozenSet[int]:
        return frozenset(self._online)

    def is_online(self, cpu_id: int) -> bool:
        return cpu_id in self._online

    def set_cpu_online(self, cpu_id: int, online: bool) -> None:
        """Hotplug a CPU and regenerate domains (the /proc interface path)."""
        if not 0 <= cpu_id < self.topology.num_cpus:
            raise ValueError(f"cpu {cpu_id} out of range")
        if online and cpu_id not in self._online:
            self._online.add(cpu_id)
            self.hotplug_happened = True
        elif not online and cpu_id in self._online:
            if len(self._online) == 1:
                raise ValueError("cannot offline the last CPU")
            self._online.discard(cpu_id)
            self.hotplug_happened = True
        self.rebuild()

    # -- construction ------------------------------------------------------

    def rebuild(self) -> None:
        """Regenerate every CPU's domain list.

        Mirrors the kernel's two-step regeneration: intra-node levels first,
        then the cross-node levels.  When the Missing Scheduling Domains bug
        is active (no ``fix_missing_domains``) and a hotplug has happened,
        the second step is skipped -- exactly the dropped function call the
        paper describes.
        """
        self._domains = {}
        self.generation += 1
        # Equal groups are interned to one shared object per rebuild:
        # every CPU of a node sees the *same* group instances, so
        # per-object caches (sorted tuples, balance-pass memos) are shared
        # across perspectives instead of recomputed 64 times.  A rebuild
        # starts from an empty pool, which is exactly the hotplug
        # invalidation the cached tuples rely on.
        self._group_pool = {}
        self._domain_pool = {}
        drop_numa_levels = (
            self.hotplug_happened and not self.features.fix_missing_domains
        )
        for cpu_id in sorted(self._online):
            domains = self._build_intra_node(cpu_id)
            if not drop_numa_levels:
                domains.extend(self._build_cross_node(cpu_id, len(domains)))
            self._domains[cpu_id] = domains
        self._group_pool = {}
        self._domain_pool = {}

    def _make_group(
        self,
        cpus: FrozenSet[int],
        balance_cpus: Optional[FrozenSet[int]] = None,
    ) -> SchedGroup:
        """Create-or-reuse a group with this exact membership."""
        key = (cpus, balance_cpus)
        group = self._group_pool.get(key)
        if group is None:
            group = SchedGroup(cpus, balance_cpus)
            self._group_pool[key] = group
        return group

    def _make_domain(
        self,
        name: str,
        level: int,
        span: FrozenSet[int],
        groups: Tuple[SchedGroup, ...],
        interval: int,
        numa: bool = False,
        imbalance_ratio: float = 1.17,
    ) -> SchedDomain:
        """Create-or-reuse a domain with these exact parameters.

        Groups are already interned within the rebuild, so the tuple
        compares by the shared objects; like the group pool, the domain
        pool is cleared per rebuild, which is exactly the invalidation
        the frozen instances' cached properties rely on.
        """
        key = (name, level, span, groups, interval, numa, imbalance_ratio)
        domain = self._domain_pool.get(key)
        if domain is None:
            domain = SchedDomain(
                name, level, span, groups, interval,
                numa=numa, imbalance_ratio=imbalance_ratio,
            )
            self._domain_pool[key] = domain
        return domain

    def domains_of(self, cpu_id: int) -> List[SchedDomain]:
        """Bottom-up domain list of one CPU (empty when offline)."""
        return self._domains.get(cpu_id, [])

    def top_level_span(self, cpu_id: int) -> FrozenSet[int]:
        """Widest CPU set this CPU's balancing can ever reach."""
        domains = self.domains_of(cpu_id)
        if not domains:
            return frozenset()
        return domains[-1].span

    def _interval(self, level: int) -> int:
        base = self.features.balance_base_us
        growth = self.features.balance_interval_growth
        return base * (growth ** level)

    def _online_in(self, cpus: Sequence[int]) -> FrozenSet[int]:
        return frozenset(c for c in cpus if c in self._online)

    def _build_intra_node(self, cpu_id: int) -> List[SchedDomain]:
        """SMT-pair level (when the machine has SMT) and the LLC/node level."""
        topo = self.topology
        domains: List[SchedDomain] = []
        level = 0

        smt_span = self._online_in(sorted(topo.smt_siblings(cpu_id)))
        if topo.smt_width > 1 and len(smt_span) > 1:
            groups = tuple(
                self._make_group(frozenset([c])) for c in sorted(smt_span)
            )
            domains.append(
                self._make_domain(
                    "SMT", level, smt_span, groups, self._interval(level),
                    imbalance_ratio=1.05,
                )
            )
            level += 1

        node_cpus = self._online_in(topo.llc_siblings(cpu_id))
        if len(node_cpus) > 1:
            if topo.smt_width > 1:
                # Groups are the SMT sibling sets inside the node.
                seen: Set[int] = set()
                group_list = []
                for c in sorted(node_cpus):
                    if c in seen:
                        continue
                    sibs = self._online_in(topo.smt_siblings(c)) & node_cpus
                    seen.update(sibs)
                    group_list.append(self._make_group(sibs))
            else:
                group_list = [
                    self._make_group(frozenset([c]))
                    for c in sorted(node_cpus)
                ]
            domains.append(
                self._make_domain(
                    "MC", level, node_cpus, tuple(group_list),
                    self._interval(level), imbalance_ratio=1.10,
                )
            )
            level += 1
        return domains

    def _build_cross_node(
        self, cpu_id: int, start_level: int
    ) -> List[SchedDomain]:
        """One domain per hop distance present in the interconnect."""
        topo = self.topology
        if topo.num_nodes <= 1:
            return []
        domains: List[SchedDomain] = []
        own_node = topo.node_of(cpu_id)
        level = start_level
        for hops in hop_levels(topo.interconnect):
            span_nodes = topo.interconnect.nodes_within(own_node, hops)
            span = self._online_in(topo.cpus_of_nodes(sorted(span_nodes)))
            if len(span) <= 1:
                level += 1
                continue
            groups = self._numa_groups(cpu_id, span_nodes, hops)
            # Skip degenerate levels that add no balancing scope.
            if domains and span == domains[-1].span:
                continue
            domains.append(
                self._make_domain(
                    f"NUMA-{hops}hop", level, span, groups,
                    self._interval(level), numa=True,
                    imbalance_ratio=1.05,
                )
            )
            level += 1
        return domains

    def _numa_groups(
        self,
        cpu_id: int,
        span_nodes: FrozenSet[int],
        hops: int,
    ) -> Tuple[SchedGroup, ...]:
        """Groups of a cross-node domain.

        Each group is "a seed node plus every node within ``hops - 1`` hops
        of it", i.e. the span of the level below, clipped to this domain.
        Seeds are chosen until every node in the domain is covered.

        * Buggy path: seeds are taken in ascending global node order --
          the "perspective of core 0" construction.  On asymmetric
          interconnects the produced groups can overlap such that two
          distant nodes appear together in every group.
        * Fixed path: the first seed is the perspective CPU's own node, so
          the local group never hides a distant node behind overlap.
        """
        topo = self.topology
        own_node = topo.node_of(cpu_id)
        if self.features.fix_group_construction:
            seed_order = [own_node] + [
                n for n in sorted(span_nodes) if n != own_node
            ]
        else:
            seed_order = sorted(span_nodes)

        groups: List[SchedGroup] = []
        covered: Set[int] = set()
        for seed in seed_order:
            if seed in covered:
                continue
            member_nodes = (
                topo.interconnect.nodes_within(seed, hops - 1) & span_nodes
            )
            cpus = self._online_in(topo.cpus_of_nodes(sorted(member_nodes)))
            if not cpus:
                covered.add(seed)
                continue
            covered.update(member_nodes)
            if self.features.fix_group_construction:
                # Per-perspective groups carry a balance mask: only the
                # seed node's CPUs may act as designated balancer.
                mask = self._online_in(topo.cpus_of_node(seed)) or cpus
                groups.append(self._make_group(cpus, balance_cpus=mask))
            else:
                groups.append(self._make_group(cpus))
        return tuple(groups)


def describe_domains(builder: DomainBuilder, cpu_id: int) -> str:
    """Readable dump of one CPU's hierarchy (Figure 1-style)."""
    lines = [f"scheduling domains of cpu {cpu_id}:"]
    for domain in builder.domains_of(cpu_id):
        lines.append(
            f"  level {domain.level} [{domain.name}] "
            f"span={sorted(domain.span)}"
        )
        for group in domain.groups:
            lines.append(f"    group {list(group.sorted_cpus())}")
    return "\n".join(lines)

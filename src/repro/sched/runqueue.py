"""Per-CPU runqueue (the kernel's ``cfs_rq``).

Runnable tasks wait in a red-black tree sorted by vruntime; the running task
is kept outside the tree (like the kernel).  ``nr_running`` counts both, and
is the quantity both the paper's heatmaps (Figure 2a) and the sanity
checker's invariant are defined over.

The queue reports every ``nr_running`` and load change to an optional probe,
mirroring the paper's instrumentation of ``add_nr_running`` /
``sub_nr_running`` and ``account_entity_enqueue``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, List, Optional

from repro.sched.rbtree import RBTree
from repro.sched.task import Task, TaskState
from repro.sched.timebase import SCHED_LATENCY_US

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.viz.events import Probe


class RunQueue:
    """The CFS runqueue of one CPU."""

    def __init__(self, cpu_id: int, probe: Optional["Probe"] = None):
        self.cpu_id = cpu_id
        self.probe = probe
        self._tree = RBTree()
        #: Task currently on the CPU (not in the tree), if any.
        self.curr: Optional[Task] = None
        #: Monotonic floor for newcomers' vruntime.
        self.min_vruntime = 0

    # -- size ----------------------------------------------------------------

    @property
    def nr_running(self) -> int:
        """Runnable tasks on this CPU, including the one executing."""
        return len(self._tree) + (1 if self.curr is not None else 0)

    @property
    def nr_queued(self) -> int:
        """Tasks waiting in the tree (excluding the running one)."""
        return len(self._tree)

    def is_idle(self) -> bool:
        return self.nr_running == 0

    # -- enqueue / dequeue -----------------------------------------------------

    def enqueue(self, task: Task, now: int, wakeup: bool = False) -> None:
        """Add a runnable task to the tree.

        On wakeup the task's vruntime is clamped to
        ``min_vruntime - latency/2`` like the kernel's ``place_entity``: a
        long sleeper gets a small bonus but cannot starve the queue.
        """
        if task.state is TaskState.RUNNING:
            raise ValueError(f"{task} is running; dequeue it first")
        if wakeup or task.state is TaskState.NEW:
            bonus = SCHED_LATENCY_US // 2 if wakeup else 0
            floor = max(self.min_vruntime - bonus, 0)
            task.vruntime = max(task.vruntime, floor)
        task.state = TaskState.RUNNABLE
        task.cpu = self.cpu_id
        task.stats.last_enqueue_us = now
        self._tree.insert((task.vruntime, task.tid), task)
        self._notify(now)

    def dequeue(self, task: Task, now: int) -> None:
        """Remove a queued (not running) task from the tree."""
        self._tree.remove((task.vruntime, task.tid))
        self._notify(now)

    def requeue(self, task: Task, now: int) -> None:
        """Re-sort a queued task after its vruntime changed."""
        self._tree.remove((task.vruntime, task.tid))
        self._tree.insert((task.vruntime, task.tid), task)

    def set_current(self, task: Optional[Task], now: int) -> None:
        """Install (or clear) the task executing on this CPU."""
        self.curr = task
        if task is not None:
            task.state = TaskState.RUNNING
            task.cpu = self.cpu_id
            task.prev_cpu = self.cpu_id
        self._notify(now)

    def put_prev(self, task: Task, now: int) -> None:
        """Return the previously-running task to the tree (preemption)."""
        if self.curr is not task:
            raise ValueError(f"{task} is not current on cpu {self.cpu_id}")
        self.curr = None
        task.state = TaskState.RUNNABLE
        task.stats.last_enqueue_us = now
        self._tree.insert((task.vruntime, task.tid), task)
        self._notify(now)

    # -- selection -------------------------------------------------------------

    def pick_next(self) -> Optional[Task]:
        """The leftmost (least-vruntime) waiting task, without removing it."""
        pair = self._tree.leftmost()
        return None if pair is None else pair[1]

    def take(self, task: Task, now: int) -> Task:
        """Remove a specific waiting task (for migration or dispatch)."""
        self._tree.remove((task.vruntime, task.tid))
        self._notify(now)
        return task

    def leftmost_vruntime(self) -> Optional[int]:
        pair = self._tree.leftmost()
        return None if pair is None else pair[0][0]

    def update_min_vruntime(self) -> None:
        """Advance the monotonic vruntime floor (kernel semantics)."""
        candidates = []
        if self.curr is not None:
            candidates.append(self.curr.vruntime)
        left = self.leftmost_vruntime()
        if left is not None:
            candidates.append(left)
        if candidates:
            self.min_vruntime = max(self.min_vruntime, min(candidates))

    # -- introspection -----------------------------------------------------------

    def queued_tasks(self) -> Iterator[Task]:
        """Waiting tasks in vruntime order (excludes the running task)."""
        return self._tree.values()

    def all_tasks(self) -> List[Task]:
        """Running + waiting tasks."""
        tasks = list(self._tree.values())
        if self.curr is not None:
            tasks.append(self.curr)
        return tasks

    def load(self, now: Optional[int] = None) -> float:
        """Combined load of every task on this queue (Figure 2b's metric)."""
        return sum(task.load(now) for task in self.all_tasks())

    def total_weight(self) -> int:
        """Sum of raw weights (used for timeslice computation)."""
        return sum(task.weight for task in self.all_tasks())

    def _notify(self, now: int) -> None:
        if self.probe is not None:
            self.probe.on_nr_running(now, self.cpu_id, self.nr_running)
            self.probe.on_rq_load(now, self.cpu_id, self.load(now))

    def __repr__(self) -> str:
        return (
            f"RunQueue(cpu={self.cpu_id}, nr_running={self.nr_running}, "
            f"min_vruntime={self.min_vruntime})"
        )

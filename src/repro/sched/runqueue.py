"""Per-CPU runqueue (the kernel's ``cfs_rq``).

Runnable tasks wait in a red-black tree sorted by vruntime; the running task
is kept outside the tree (like the kernel).  ``nr_running`` counts both, and
is the quantity both the paper's heatmaps (Figure 2a) and the sanity
checker's invariant are defined over.

The queue reports every ``nr_running`` and load change to an optional probe,
mirroring the paper's instrumentation of ``add_nr_running`` /
``sub_nr_running`` and ``account_entity_enqueue``.

``load(now)`` memoizes its per-task summation, keyed by ``(now, mutations,
divisor epoch)``: the queue's private mutation counter is bumped by every
local load-affecting change, and the shared divisor epoch by cgroup
attach/detach (which re-weights member loads without any runqueue event).
One CPU's churn therefore never dirties its siblings' caches.  A cache hit
returns the *same float object* the miss produced -- the cached value is the
plain summation, never a closed-form shortcut -- so traces are byte-identical
with the cache on or off.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, List, Optional

from repro.sched.load import LoadEpoch
from repro.sched.rbtree import RBTree
from repro.sched.sanitizer import CoherenceError, verify_rq_load
from repro.sched.task import Task, TaskState
from repro.sched.timebase import SCHED_LATENCY_US

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.viz.events import Probe


class RunQueue:
    """The CFS runqueue of one CPU."""

    def __init__(
        self,
        cpu_id: int,
        probe: Optional["Probe"] = None,
        load_epoch: Optional[LoadEpoch] = None,
        load_cache: bool = True,
        idle_epoch: Optional[LoadEpoch] = None,
        divisor_epoch: Optional[LoadEpoch] = None,
        sanitize: bool = False,
    ):
        self.cpu_id = cpu_id
        self.probe = probe
        self._tree = RBTree()
        #: Task currently on the CPU (not in the tree), if any.
        self.curr: Optional[Task] = None
        #: Monotonic floor for newcomers' vruntime.
        self.min_vruntime = 0
        #: Shared dirty counter; every mutation bumps it (invalidating the
        #: balance-pass memos of *all* queues sharing it, conservatively).
        self.load_epoch = load_epoch if load_epoch is not None else LoadEpoch()
        #: Shared counter bumped only on idle<->busy transitions (and
        #: hotplug); the designated-balancer memo keys off it.
        self.idle_epoch = idle_epoch if idle_epoch is not None else LoadEpoch()
        #: Shared counter bumped when any cgroup divisor changes (an attach
        #: or detach re-weights member loads without any runqueue event).
        self.divisor_epoch = (
            divisor_epoch if divisor_epoch is not None else LoadEpoch()
        )
        self._load_cache_enabled = load_cache
        #: Coherence sanitizer: cross-check every load-memo hit against a
        #: from-scratch recompute (see ``repro.sched.sanitizer``).
        self._sanitize = sanitize
        #: This queue's own mutation counter: unlike ``load_epoch`` it is
        #: private, so one CPU's churn does not dirty its siblings' caches.
        self.mutations = 0
        #: Optional vectorized mirror (repro.sched.vecstate.VecState) set
        #: by the scheduler; every mutation that bumps ``mutations`` also
        #: marks this queue's mirror slot dirty.  ``requeue``/``put_prev``
        #: deliberately bump neither (the task *set* is unchanged), so the
        #: mirror's coherence contract is exactly the memo contract.
        self.vec = None
        #: Optional array-backed pick index
        #: (repro.sched.pickindex.PickIndex), set by the scheduler under
        #: the same vectorized gate as ``vec``.  Mirrored at exactly the
        #: tree's own mutation sites, so its coherence contract is the
        #: tree's; the rbtree stays authoritative for ordered iteration
        #: and the sanitizer cross-check.
        self.pidx = None
        #: Memo of the last load(now) summation, keyed by
        #: (now, own mutations, divisor epoch).
        self._cached_load_now = -1
        self._cached_load_mut = -1
        self._cached_load_div = -1
        self._cached_load = 0.0
        #: True when the last load summation found every member tracker
        #: exactly converged to its state's target (see LoadTracker's
        #: convergence shortcut): the summation is then a constant of
        #: time until the task set or some member's running state
        #: changes, and the vectorized mirror may carry the sample
        #: across timestamps.  Cleared by the two non-bumping mutators
        #: (``put_prev``/``requeue``) whose state flips are invisible to
        #: the memo key; every bumping mutator forces a recompute (and
        #: thus a re-derivation) through the key itself.
        self._cached_load_invariant = False
        #: Incrementally-maintained mirrors of the tree + curr aggregates
        #: (task weights are fixed at construction, so integer bookkeeping
        #: is exact).  ``nr_running`` and ``total_weight`` are hot in the
        #: balancer and the tick path.
        self._nr_running = 0
        self._total_weight = 0
        #: Cache-hit/miss accounting (bench introspection).
        self.load_cache_hits = 0
        self.load_cache_misses = 0

    # -- size ----------------------------------------------------------------

    @property
    def nr_running(self) -> int:
        """Runnable tasks on this CPU, including the one executing."""
        if self._load_cache_enabled:
            return self._nr_running
        # Baseline (fast path off) recounts from scratch, reproducing the
        # pre-incremental implementation for `repro bench --compare`.
        return len(self._tree) + (1 if self.curr is not None else 0)

    @property
    def nr_queued(self) -> int:
        """Tasks waiting in the tree (excluding the running one)."""
        return len(self._tree)

    def is_idle(self) -> bool:
        return self.nr_running == 0

    # -- enqueue / dequeue -----------------------------------------------------

    def enqueue(self, task: Task, now: int, wakeup: bool = False) -> None:
        """Add a runnable task to the tree.

        On wakeup the task's vruntime is clamped to
        ``min_vruntime - latency/2`` like the kernel's ``place_entity``: a
        long sleeper gets a small bonus but cannot starve the queue.
        """
        if task.state is TaskState.RUNNING:
            raise ValueError(f"{task} is running; dequeue it first")
        if wakeup or task.state is TaskState.NEW:
            bonus = SCHED_LATENCY_US // 2 if wakeup else 0
            floor = max(self.min_vruntime - bonus, 0)
            task.vruntime = max(task.vruntime, floor)
        task.state = TaskState.RUNNABLE
        task.cpu = self.cpu_id
        task.stats.last_enqueue_us = now
        self._tree.insert((task.vruntime, task.tid), task)
        if self.pidx is not None:
            self.pidx.insert(task.vruntime, task.tid, task)
        self._nr_running += 1
        self._total_weight += task.weight
        self.mutations += 1
        if self.vec is not None:
            self.vec.mark_dirty(self.cpu_id)
        if self._nr_running == 1:
            self.idle_epoch.bump()
            if self.vec is not None:
                self.vec.mark_idle_change(self.cpu_id)
        self.load_epoch.bump()
        self._notify(now)

    def dequeue(self, task: Task, now: int) -> None:
        """Remove a queued (not running) task from the tree."""
        self._tree.remove((task.vruntime, task.tid))
        if self.pidx is not None:
            self.pidx.remove(task.tid)
        self._nr_running -= 1
        self._total_weight -= task.weight
        self.mutations += 1
        if self.vec is not None:
            self.vec.mark_dirty(self.cpu_id)
        if self._nr_running == 0:
            self.idle_epoch.bump()
            if self.vec is not None:
                self.vec.mark_idle_change(self.cpu_id)
        self.load_epoch.bump()
        self._notify(now)

    def requeue(self, task: Task, new_vruntime: int, now: int) -> None:
        """Re-sort a queued task to ``new_vruntime``.

        A queued task's vruntime *is* its tree key, so the move must be
        keyed by the old value and the attribute updated in between --
        callers pass the new vruntime instead of mutating the task
        first.  The task *set* is unchanged -- the tree entry merely
        moves to its new sort position -- so load, nr_running, and
        idleness are all exactly what every cache already holds: no
        epoch or mutation bump, by design (hence the inline coherence
        suppressions).
        """
        self._tree.remove((task.vruntime, task.tid))  # repro: noqa[coherence-unbumped-write]
        task.vruntime = new_vruntime
        self._tree.insert((task.vruntime, task.tid), task)  # repro: noqa[coherence-unbumped-write]
        if self.pidx is not None:
            self.pidx.remove(task.tid)
            self.pidx.insert(task.vruntime, task.tid, task)
        # Not a load-affecting change, but the invariance flag is keyed
        # to the summation the memo last saw; drop it conservatively.
        self._cached_load_invariant = False

    def set_current(self, task: Optional[Task], now: int) -> None:
        """Install (or clear) the task executing on this CPU."""
        prev = self.curr
        was_empty = self._nr_running == 0
        if prev is not None:
            self._nr_running -= 1
            self._total_weight -= prev.weight
        self.curr = task
        if task is not None:
            self._nr_running += 1
            self._total_weight += task.weight
            task.state = TaskState.RUNNING
            task.cpu = self.cpu_id
            task.prev_cpu = self.cpu_id
        self.mutations += 1
        if self.vec is not None:
            self.vec.mark_dirty(self.cpu_id)
        if was_empty != (self._nr_running == 0):
            self.idle_epoch.bump()
            if self.vec is not None:
                self.vec.mark_idle_change(self.cpu_id)
        self.load_epoch.bump()
        self._notify(now)

    def put_prev(self, task: Task, now: int) -> None:
        """Return the previously-running task to the tree (preemption)."""
        if self.curr is not task:
            raise ValueError(f"{task} is not current on cpu {self.cpu_id}")
        self.curr = None
        task.state = TaskState.RUNNABLE
        task.stats.last_enqueue_us = now
        self._tree.insert((task.vruntime, task.tid), task)
        if self.pidx is not None:
            self.pidx.insert(task.vruntime, task.tid, task)
        # The task set (and therefore load, nr_running, idleness) is
        # unchanged -- curr merely moved into the tree -- so no epoch or
        # mutation bump: every cached aggregate stays exactly valid.
        # The *time-invariance* of the load summation is not: the task's
        # running-state target flipped without a memo-key event, so the
        # flag (and only the flag) is dropped here.
        self._cached_load_invariant = False
        self._notify(now)

    # -- selection -------------------------------------------------------------

    def pick_next(self) -> Optional[Task]:
        """The leftmost (least-vruntime) waiting task, without removing it.

        With the pick index attached this is a cached-min probe instead
        of a tree descent; the index orders by the tree's own composite
        ``(vruntime, tid)`` key, so the two agree task-for-task (and the
        sanitizer holds them to it on every probe).
        """
        pidx = self.pidx
        if pidx is not None:
            task = pidx.peek()
            if self._sanitize:
                pair = self._tree.leftmost()
                ref = None if pair is None else pair[1]
                if ref is not task:
                    raise CoherenceError(
                        "pick-index", "leftmost", task, ref
                    )
            return task
        pair = self._tree.leftmost()
        return None if pair is None else pair[1]

    def take(self, task: Task, now: int) -> Task:
        """Remove a specific waiting task (for migration or dispatch)."""
        self._tree.remove((task.vruntime, task.tid))
        if self.pidx is not None:
            self.pidx.remove(task.tid)
        self._nr_running -= 1
        self._total_weight -= task.weight
        self.mutations += 1
        if self.vec is not None:
            self.vec.mark_dirty(self.cpu_id)
        if self._nr_running == 0:
            self.idle_epoch.bump()
            if self.vec is not None:
                self.vec.mark_idle_change(self.cpu_id)
        self.load_epoch.bump()
        self._notify(now)
        return task

    def leftmost_vruntime(self) -> Optional[int]:
        # A queued task's vruntime equals its tree key (it only changes
        # while running), so the pick index's task is key-exact too.
        pidx = self.pidx
        if pidx is not None:
            task = pidx.peek()
            return None if task is None else task.vruntime
        pair = self._tree.leftmost()
        return None if pair is None else pair[0][0]

    def update_min_vruntime(self) -> None:
        """Advance the monotonic vruntime floor (kernel semantics).

        Equivalent to ``max(min_vruntime, min(candidates))`` over the
        running task's vruntime and the tree's leftmost key, written
        branch-by-branch because this runs on every accounting point.
        The pick index, when attached, supplies the leftmost in O(1).
        """
        curr = self.curr
        pidx = self.pidx
        if pidx is not None:
            left = pidx.peek()
            leftmost_vr = None if left is None else left.vruntime
        else:
            pair = self._tree.leftmost()
            leftmost_vr = None if pair is None else pair[0][0]
        if curr is not None:
            floor = curr.vruntime
            if leftmost_vr is not None and leftmost_vr < floor:
                floor = leftmost_vr
        elif leftmost_vr is not None:
            floor = leftmost_vr
        else:
            return
        if floor > self.min_vruntime:
            self.min_vruntime = floor

    # -- introspection -----------------------------------------------------------

    def queued_tasks(self) -> Iterator[Task]:
        """Waiting tasks in vruntime order (excludes the running task)."""
        return self._tree.values()

    def all_tasks(self) -> List[Task]:
        """Running + waiting tasks."""
        tasks = list(self._tree.values())
        if self.curr is not None:
            tasks.append(self.curr)
        return tasks

    def load(self, now: Optional[int] = None) -> float:
        """Combined load of every task on this queue (Figure 2b's metric).

        O(1) on a cache hit: the summation is memoized per ``(now, epoch)``
        and every load-affecting mutation bumps the shared epoch.  Misses
        recompute the exact same per-task sum the uncached path uses, so
        the returned floats are identical either way.
        """
        if now is None or not self._load_cache_enabled:
            return sum(task.load(now) for task in self.all_tasks())
        div = self.divisor_epoch.value
        if (
            self._cached_load_mut == self.mutations
            and self._cached_load_div == div
            and (
                self._cached_load_now == now
                # Time-invariance carry-across: the memoized summation
                # found every member exactly converged, so it is a
                # constant of time until the next mutation (key above)
                # or running-state flip (flag cleared by put_prev/
                # requeue) -- re-stamp the timestamp and keep the value.
                # The sanitizer cross-checks this against a fresh
                # recompute at the new timestamp on every such hit.
                or self._cached_load_invariant
            )
        ):
            self._cached_load_now = now
            self.load_cache_hits += 1
            if self._sanitize:
                verify_rq_load(self, now, self._cached_load)
            return self._cached_load
        # Explicit loop with the exact float-op order of the builtin
        # ``sum`` (int 0 start, sequential left-to-right adds), which
        # additionally derives the time-invariance flag: every member
        # tracker sitting exactly on its state's target (1.0 running,
        # 0.0 waiting) decays to itself at any future timestamp, so the
        # summation -- and therefore this sample -- is a constant of
        # time until the next mutation or state flip.
        value: float = 0
        invariant = True
        for task in self.all_tasks():
            value = value + task.load(now)
            # Raw util read is deliberate: exact convergence (util ==
            # target) is decay-invariant -- the decayed value IS the raw
            # value on this path -- so no staleness can be observed.
            if task.tracker.util != (  # repro: noqa[perf-load-bypass]
                1.0 if task.state is TaskState.RUNNING else 0.0
            ):
                invariant = False
        self._cached_load_invariant = invariant
        self._cached_load_now = now
        self._cached_load_mut = self.mutations
        self._cached_load_div = div
        self._cached_load = value
        self.load_cache_misses += 1
        return value

    def total_weight(self) -> int:
        """Sum of raw weights (used for timeslice computation).  O(1)."""
        if self._load_cache_enabled:
            return self._total_weight
        return sum(task.weight for task in self.all_tasks())

    def _notify(self, now: int) -> None:
        probe = self.probe
        # An inert probe (the no-op base class, ``active`` False) costs
        # one attribute check per mutation instead of two hook calls.
        if probe is None or not probe.active:
            return
        probe.on_nr_running(now, self.cpu_id, self.nr_running)
        # The load summation is the expensive part of a notification;
        # skip it entirely when no attached probe consumes load samples.
        # Baseline mode computes it eagerly like the pre-fast-path code
        # did; probes that ignore the sample produce the same trace, so
        # the two modes stay byte-identical.
        if not self._load_cache_enabled or probe.wants_rq_load():
            probe.on_rq_load(now, self.cpu_id, self.load(now))

    def __repr__(self) -> str:
        return (
            f"RunQueue(cpu={self.cpu_id}, nr_running={self.nr_running}, "
            f"min_vruntime={self.min_vruntime})"
        )

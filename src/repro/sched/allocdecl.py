"""Declared allocation classes for the hot roots.

Each :data:`~repro.analysis.effects.HOT_ROOTS` label commits to a tier
on the ``alloc-free`` < ``amortized`` < ``allocating`` lattice (see
:mod:`repro.analysis.costmodel`):

``alloc-free``
    No Python-level allocation on any reachable path.  Certified
    statically by the ``hot-path-alloc`` rule *and* enforced at runtime
    by ``repro demo <bug> --alloc-check`` -- a single tracked allocation
    event inside the root's frames fails the soak.
``amortized``
    Allocations happen only on memo/epoch miss paths; the steady state
    (hit path) is allocation-free.  Certified statically; the runtime
    tracker reports hit/miss allocation counts for these roots but does
    not gate on them, because hit rates are workload-dependent (e.g.
    ``RunQueue.load`` under the vectorized mirror is *only* invoked on
    staleness, so every observed call allocates by design).
``allocating``
    Per-call allocation is part of the contract (fold scratch state,
    backend array temporaries).  Listed so a future PR that tightens
    one of these shows up as an improvement in the committed baseline
    rather than silent drift.

The static analyzer may infer a *weaker* class than declared for a few
documented roots (see ``CONSERVATIVE``): declarations are allowed to be
conservative, never optimistic.  A root whose declaration is *stronger*
than the inference is a ``hot-path-alloc`` error.
"""

from __future__ import annotations

from typing import Dict, FrozenSet

#: label -> declared allocation class, one entry per hot root.
DECLARED_ALLOC: Dict[str, str] = {
    # Per-cpu load memo: O(1) hit path reading the incremental mirror;
    # the miss path re-folds the queued set (a genexp).
    "runqueue-load": "amortized",
    # Incremental total-weight mirror, same shape as load.
    "runqueue-total-weight": "amortized",
    # Per-pass per-cpu (load, nr) sample memo.
    "balance-cpu-sample": "amortized",
    # Per-pass per-group stats memo keyed by epoch signature.
    "balance-group-stats": "amortized",
    # Designated-cpu election memo over group stats.
    "balance-designated": "amortized",
    # The scalar fold materializes a fresh GroupStats each miss; it is
    # only ever invoked *from* the memoized paths above.
    "group-stats-fold": "allocating",
    # Pure arithmetic over a cached tuple -- the strongest tier, and
    # the runtime-gated one.
    "designated-election": "alloc-free",
    # ``return self._live``: a field read.
    "event-pending": "alloc-free",
    # Dirty-set drain: allocates only for dirtied cpus (miss work).
    "vec-sync": "amortized",
    # Columnar group stats behind the epoch signature check.
    "vec-group-stats": "amortized",
    # The columnar fold builds its stats row per entry -- unless its
    # generation-sum probe revalidates the stale-stamped memo in place,
    # which allocates nothing; the row build is the probe's miss path.
    "vec-fold": "amortized",
    # Busiest-group scan over cached folds; the singleton-stats bridge
    # on the pair path is inline-suppressed churn (see vecstate.py).
    "vec-find-busiest": "amortized",
    # Designated memo over the columnar mirror.
    "vec-designated": "amortized",
    # Backend kernels: array temporaries are per-call by design -- and
    # invisible to the AST scan (numpy allocates in C), so these two
    # are pinned conservatively rather than inferred.
    "vec-kernel-numpy": "allocating",
    "vec-kernel-python": "allocating",
    # Batched tick body: both backends return fresh (new_vr, preempt)
    # rows per call -- the cohort's scratch is the contract.
    "vec-tick-kernel-numpy": "allocating",
    "vec-tick-kernel-python": "allocating",
    # Pick-index argmin: the numpy twin stages the columns as array
    # temporaries (in C, below the AST scan); the python twin is a pure
    # in-place scan -- the strongest tier, runtime-gated.
    "vec-pick-argmin-numpy": "allocating",
    "vec-pick-argmin-python": "alloc-free",
    # PickIndex.peek: the cached-min probe is the steady state; a probe
    # miss rescans, and at machine width the rescan goes through the
    # backend argmin whose temporaries are below AST visibility.
    "vec-pick-index": "amortized",
    # Whole-walk balance gate: two field reads.
    "vec-balance-gate": "alloc-free",
    # The due-CPU reduction materializes the ascending id list per call
    # -- through the union-typed backend attribute, so the sites are
    # invisible to the scan and the tier is pinned, not inferred.
    "vec-balance-due": "allocating",
}

#: Roots whose declaration is deliberately *weaker* than what the AST
#: scan can prove, because the real allocations happen below Python
#: syntax (numpy array temporaries register with tracemalloc but are
#: not source-level sites; the python kernel's tuple churn depends on
#: freelist state).  The baseline drift test allows declared >= inferred
#: only for these.
CONSERVATIVE: FrozenSet[str] = frozenset({
    "vec-kernel-numpy",
    "vec-kernel-python",
    "vec-tick-kernel-numpy",
    "vec-pick-argmin-numpy",
    "vec-pick-index",
    "vec-balance-due",
})

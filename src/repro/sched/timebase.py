"""Time units and scheduler timing constants.

All simulation timestamps and durations are integers in microseconds.

This module lives in :mod:`repro.sched` (not :mod:`repro.sim`) because the
scheduler's tunables -- target latency, granularities, balance periods --
are *scheduler* policy, and the scheduler is layered below the simulator:
``repro.sched`` must never import ``repro.sim`` (the ``Scheduler``
docstring's "simulation-agnostic" contract, enforced by the
``layer-sched-sim`` rule of :mod:`repro.analysis`).  :mod:`repro.sim.timebase`
re-exports every name for backward compatibility.
"""

from __future__ import annotations

#: One microsecond (the base unit).
US = 1
#: One millisecond in microseconds.
MS = 1000
#: One second in microseconds.
SEC = 1_000_000

#: Scheduler tick period: 1 ms, i.e. a 1000 Hz kernel.
TICK_US = 1 * MS

#: Base period of the periodic load balancer at the lowest domain level
#: ("The load balancer runs every 4ms" -- paper, section 4.1).
BALANCE_BASE_US = 4 * MS

#: Target scheduling latency: every runnable thread should run at least once
#: within this interval (Linux ``sched_latency_ns`` is 6 ms scaled by CPU
#: count; we keep the base value and scale in the CFS module).
SCHED_LATENCY_US = 6 * MS

#: Minimum timeslice granted to a task before it can be preempted
#: (Linux ``sched_min_granularity_ns``).
MIN_GRANULARITY_US = 750

#: Wakeup preemption granularity (Linux ``sched_wakeup_granularity_ns``).
WAKEUP_GRANULARITY_US = 1 * MS


def format_time(us: int) -> str:
    """Render a microsecond timestamp in the most readable unit."""
    if us < 0:
        return f"-{format_time(-us)}"
    if us >= SEC:
        return f"{us / SEC:.3f}s"
    if us >= MS:
        return f"{us / MS:.3f}ms"
    return f"{us}us"

"""Wakeup and fork placement (``select_task_rq_fair``).

Home of the **Overload-on-Wakeup** bug (paper Section 3.3): on the mainline
path, when the waker runs on the same node where the sleeping thread last
ran, only that node's cores are considered -- for cache reuse -- so the
thread can wake on a busy core while other nodes have idle cores.

The fixed path (the paper's patch) wakes the thread on its previous core if
idle, otherwise on the core that has been idle the **longest** in the whole
system (constant-time: the kernel already keeps an idle-core list), and only
falls back to the original algorithm when no core is idle.  The fix steps
aside when the power policy allows deep idle states.

Fork placement walks ``find_idlest_group`` down the domain hierarchy, which
is why the Scheduling Group Construction bug also pins *new* threads to
their parent's node: the descent compares the same (buggy) group loads the
balancer uses.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sched.domains import SchedDomain, SchedGroup
    from repro.sched.scheduler import Scheduler
    from repro.sched.task import Task


def select_task_rq_wake(
    sched: "Scheduler",
    task: "Task",
    waker_cpu: Optional[int],
    now: int,
) -> int:
    """Choose the CPU a woken task runs on."""
    prev = _usable_prev(sched, task, waker_cpu)

    if _fix_active(sched):
        prev_cpu_obj = sched.cpu(prev)
        if prev_cpu_obj.online and prev_cpu_obj.is_idle:
            return prev
        idle = _longest_idle_cpu(sched, task, now)
        if idle is not None:
            return idle
        # No idle core anywhere: fall back to the original algorithm.

    return _mainline_wake(sched, task, prev, waker_cpu, now)


def select_task_rq_fork(
    sched: "Scheduler",
    task: "Task",
    parent_cpu: int,
    now: int,
) -> int:
    """Choose the CPU a newly-forked task starts on.

    Linux spawns threads on the same core as their parent and lets
    ``find_idlest_group`` spread them; the descent inherits whatever group
    structure (buggy or fixed) the domain builder produced.
    """
    if not sched.cpu(parent_cpu).online:
        parent_cpu = _any_allowed_cpu(sched, task, parent_cpu)
    target = find_idlest_cpu(
        sched, task, parent_cpu, now, numa_levels=False
    )
    if task.can_run_on(target):
        return target
    return _any_allowed_cpu(sched, task, parent_cpu)


# ---------------------------------------------------------------------------
# mainline path
# ---------------------------------------------------------------------------


def _mainline_wake(
    sched: "Scheduler",
    task: "Task",
    prev: int,
    waker_cpu: Optional[int],
    now: int,
) -> int:
    """The cache-affine wakeup the paper found in kernels 2.6.32+.

    When waker and sleeper share a node, only that node is examined
    (``select_idle_sibling`` scoped to the LLC domain).  When they differ,
    ``wake_affine`` picks the less-loaded of the two ends and the idle-core
    search happens around it -- still a single node.
    """
    topo = sched.topology
    if waker_cpu is None or not sched.cpu(waker_cpu).online:
        target = prev
    elif topo.node_of(waker_cpu) == topo.node_of(prev):
        # The Overload-on-Wakeup trigger: stay on the shared node.
        target = prev
    else:
        waker_load = sched.cpu(waker_cpu).rq.load(now)
        prev_load = sched.cpu(prev).rq.load(now)
        target = waker_cpu if waker_load < prev_load else prev
        if not task.can_run_on(target):
            target = prev if task.can_run_on(prev) else target
    return _select_idle_sibling(sched, task, target, now)


def _select_idle_sibling(
    sched: "Scheduler", task: "Task", target: int, now: int
) -> int:
    """An idle allowed core in ``target``'s LLC domain, else ``target``.

    This never looks outside the node -- exactly the scoping that causes
    wakeups to pile onto busy cores while remote nodes sit idle.
    """
    topo = sched.topology
    candidates = [
        c
        for c in sorted(topo.llc_siblings(target))
        if sched.cpu(c).online and task.can_run_on(c)
    ]
    probe = sched.probe
    if probe.active:
        probe.on_considered(now, target, "select_idle_sibling", candidates)
    if task.can_run_on(target) and sched.cpu(target).is_idle:
        return target
    # Prefer an idle SMT sibling (shared FPU, hottest cache), then any
    # idle core in the node.
    siblings = topo.smt_siblings(target)
    for cpu_id in candidates:
        if cpu_id in siblings and sched.cpu(cpu_id).is_idle:
            return cpu_id
    for cpu_id in candidates:
        if sched.cpu(cpu_id).is_idle:
            return cpu_id
    if task.can_run_on(target):
        return target
    if candidates:
        return min(candidates, key=lambda c: sched.cpu(c).rq.load(now))
    return _any_allowed_cpu(sched, task, target)


# ---------------------------------------------------------------------------
# fixed path
# ---------------------------------------------------------------------------


def _fix_active(sched: "Scheduler") -> bool:
    features = sched.features
    return features.fix_overload_on_wakeup and not features.power_aware_wakeup


def _longest_idle_cpu(
    sched: "Scheduler", task: "Task", now: int
) -> Optional[int]:
    """The allowed online core idle for the longest time, if any.

    The kernel keeps idle cores in a list ordered by idle entry, so taking
    the head is O(1); our scan is O(cpus) but equivalent in result.
    """
    best: Optional[int] = None
    best_since: Optional[int] = None
    considered: List[int] = []
    for cpu in sched.cpus:
        if not cpu.online or not cpu.is_idle:
            continue
        if not task.can_run_on(cpu.cpu_id):
            continue
        considered.append(cpu.cpu_id)
        since = cpu.idle_since_us if cpu.idle_since_us is not None else now
        if best_since is None or since < best_since:
            best = cpu.cpu_id
            best_since = since
    if considered and sched.probe.active:
        sched.probe.on_considered(
            now, considered[0], "wake_longest_idle", considered
        )
    return best


# ---------------------------------------------------------------------------
# find_idlest_group descent (fork / remote wake fallback)
# ---------------------------------------------------------------------------


def find_idlest_cpu(
    sched: "Scheduler",
    task: "Task",
    start_cpu: int,
    now: int,
    numa_levels: bool = True,
) -> int:
    """Walk the domain hierarchy top-down toward the idlest allowed CPU.

    ``numa_levels=False`` restricts the walk to intra-node domains (the
    fork path: NUMA levels carry no ``SD_BALANCE_FORK``), so a child starts
    on its parent's node no matter how loaded it is.
    """

    def eligible(domains: List["SchedDomain"]) -> List["SchedDomain"]:
        return [
            d for d in domains if numa_levels or not d.numa
        ]

    cpu_id = start_cpu
    domains = eligible(sched.domain_builder.domains_of(cpu_id))
    level = len(domains) - 1
    while level >= 0:
        domains = eligible(sched.domain_builder.domains_of(cpu_id))
        if level >= len(domains):
            level = len(domains) - 1
            continue
        domain = domains[level]
        group = _find_idlest_group(sched, domain, cpu_id, task, now)
        if group is not None:
            chosen = _idlest_cpu_in(sched, group.cpus, task, now)
            if chosen is not None:
                cpu_id = chosen
        level -= 1
    if task.can_run_on(cpu_id) and sched.cpu(cpu_id).online:
        return cpu_id
    return _any_allowed_cpu(sched, task, cpu_id)


def _find_idlest_group(
    sched: "Scheduler",
    domain: "SchedDomain",
    cpu_id: int,
    task: "Task",
    now: int,
) -> Optional["SchedGroup"]:
    """The group worth descending into, or None to stay local.

    Uses the same group-load metric as the balancer; the local group wins
    ties and small differences (the kernel's imbalance percentage), which is
    what keeps freshly-forked threads near their parent.
    """
    local: Optional[Tuple["SchedGroup", float]] = None
    best: Optional["SchedGroup"] = None
    best_load: Optional[float] = None
    examined: List[int] = []
    for group in domain.groups:
        allowed = [
            c
            for c in group.cpus
            if sched.cpu(c).online and task.can_run_on(c)
        ]
        if not allowed:
            continue
        examined.extend(allowed)
        load = _group_avg_load(sched, allowed, now)
        if cpu_id in group.cpus and local is None:
            local = (group, load)
            continue
        if best_load is None or load < best_load:
            best = group
            best_load = load
    if sched.probe.active:
        sched.probe.on_considered(now, cpu_id, "find_idlest_group", examined)
    if best is None:
        return local[0] if local is not None else None
    if local is None:
        return best
    local_group, local_load = local
    # Kernel imbalance margin (~12%): stay local unless clearly idler.
    if best_load is not None and best_load * 1.12 < local_load:
        return best
    return local_group


def _group_avg_load(
    sched: "Scheduler", cpus: Iterable[int], now: int
) -> float:
    cpus = list(cpus)
    if not cpus:
        return 0.0
    return sum(sched.cpu(c).rq.load(now) for c in cpus) / len(cpus)


def _idlest_cpu_in(
    sched: "Scheduler", cpus: Iterable[int], task: "Task", now: int
) -> Optional[int]:
    best: Optional[int] = None
    best_key: Optional[Tuple[int, float]] = None
    for cpu_id in sorted(cpus):
        cpu = sched.cpu(cpu_id)
        if not cpu.online or not task.can_run_on(cpu_id):
            continue
        key = (cpu.rq.nr_running, cpu.rq.load(now))
        if best_key is None or key < best_key:
            best = cpu_id
            best_key = key
    return best


def _usable_prev(
    sched: "Scheduler", task: "Task", waker_cpu: Optional[int]
) -> int:
    prev = task.prev_cpu
    if prev is None or not sched.cpu(prev).online or not task.can_run_on(prev):
        if waker_cpu is not None and task.can_run_on(waker_cpu) and sched.cpu(
            waker_cpu
        ).online:
            return waker_cpu
        return _any_allowed_cpu(sched, task, prev if prev is not None else 0)
    return prev


def _any_allowed_cpu(sched: "Scheduler", task: "Task", hint: int) -> int:
    """Deterministic fallback: the lowest-id online allowed CPU."""
    for cpu in sched.cpus:
        if cpu.online and task.can_run_on(cpu.cpu_id):
            return cpu.cpu_id
    raise RuntimeError(
        f"no online CPU allowed for task {task.tid} (hint {hint})"
    )

"""Feature flags: one per bug fix, plus scheduler tunables.

The paper's four bugs are *behaviors* of specific decision points in the
scheduler.  Each fix is a flag so any combination of buggy/fixed variants can
run side by side (Table 2 evaluates exactly such combinations).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict

from repro.sched.timebase import (
    BALANCE_BASE_US,
    MIN_GRANULARITY_US,
    SCHED_LATENCY_US,
    WAKEUP_GRANULARITY_US,
)


@dataclass(frozen=True)
class SchedFeatures:
    """Configuration of the simulated scheduler.

    Fix flags (all default to ``False`` = the buggy mainline behavior the
    paper found):

    * ``fix_group_imbalance`` -- compare scheduling-group **minimum** loads
      instead of average loads in the balancing algorithm (Section 3.1).
    * ``fix_group_construction`` -- build cross-node scheduling groups from
      each core's own perspective instead of core 0's (Section 3.2).
    * ``fix_overload_on_wakeup`` -- wake a thread on its previous core when
      idle, else on the longest-idle core in the system (Section 3.3).
    * ``fix_missing_domains`` -- regenerate cross-NUMA scheduling domains
      after CPU hotplug (Section 3.4).
    """

    fix_group_imbalance: bool = False
    fix_group_construction: bool = False
    fix_overload_on_wakeup: bool = False
    fix_missing_domains: bool = False

    #: Divide a task's load by its autogroup's thread count (cgroup/autogroup
    #: feature, Linux >= 2.6.38).  Group Imbalance requires it; the paper's
    #: Overload-on-Wakeup experiments disable it.
    autogroup_enabled: bool = True

    #: Which load metric the balancer sees: ``"classic"`` divides a task's
    #: load by the group's instantaneous thread count; ``"v43"`` models the
    #: Linux 4.3 rework ("done in a way that significantly reduces
    #: complexity of the code") with a smoothed group divisor.  The paper
    #: (Section 3.5) confirmed the Group Imbalance bug survives the rework
    #: -- and it does here too (see test_bug_group_imbalance).
    load_metric: str = "classic"

    #: When True the power-management policy allows deep idle states, and the
    #: Overload-on-Wakeup fix steps aside (the paper only enforces the new
    #: wakeup strategy when the policy forbids low-power states).
    power_aware_wakeup: bool = False

    #: Target scheduling latency (``sched_latency_ns`` analog), microseconds.
    sched_latency_us: int = SCHED_LATENCY_US
    #: Minimum preemption granularity, microseconds.
    min_granularity_us: int = MIN_GRANULARITY_US
    #: Wakeup preemption granularity, microseconds.
    wakeup_granularity_us: int = WAKEUP_GRANULARITY_US
    #: Periodic balance interval at the lowest domain level, microseconds.
    balance_base_us: int = BALANCE_BASE_US
    #: Kernel ``sysctl_sched_migration_cost``: a CPU whose average idle
    #: period is shorter than this skips newidle balancing -- short-term
    #: idle cores are not worth balancing onto (and this is what keeps the
    #: Overload-on-Wakeup imbalance alive between periodic balances).
    migration_cost_us: int = 500
    #: Ablation switches (on in mainline; the ablation benchmarks turn
    #: them off to quantify each mechanism's contribution).
    nohz_idle_balance_enabled: bool = True
    newidle_balance_enabled: bool = True
    wakeup_preemption_enabled: bool = True
    #: Each domain level doubles the balance interval of the previous one.
    balance_interval_growth: int = 2

    #: Simulator fast-path switches.  These change *how fast* the
    #: simulation runs, never *what* it computes: every seeded trace is
    #: byte-identical with them on or off (pinned by regression test), and
    #: ``repro bench --compare`` quantifies the speedup by toggling them.
    #: Memoize each runqueue's load summation per (timestamp, dirty epoch).
    perf_load_cache: bool = True
    #: Share per-CPU (load, nr_running) stats across one rebalance pass.
    perf_balance_stats: bool = True
    #: Compact the event heap when cancelled entries dominate.
    perf_event_compaction: bool = True
    #: Vectorized array-backed core: a persistent struct-of-arrays mirror
    #: of per-CPU state (repro.sched.vecstate) serves balance sampling,
    #: folding, and busiest-group selection in bulk, and the event loop
    #: drains same-timestamp batches through one dispatch pass.  Builds
    #: on the fast paths (it replaces the per-pass BalancePass), so it is
    #: only honored when ``perf_load_cache``/``perf_balance_stats`` are
    #: also on -- use :meth:`with_vectorized`.
    perf_vectorized: bool = False
    #: Array backend for the vectorized core: ``"auto"`` picks numpy when
    #: importable, else the pure-Python fallback; ``"numpy"``/``"python"``
    #: force one (the bench digest cross-check runs both in-process).
    vec_backend: str = "auto"

    #: Coherence sanitizer: every fast-path memo *hit* recomputes the
    #: value from scratch and raises
    #: :class:`~repro.sched.sanitizer.CoherenceError` naming the divergent
    #: field on any drift.  The runtime twin of the static
    #: ``coherence-unbumped-write`` analyzer rule; meant for CI soaks,
    #: never benchmarks (it makes every cache as slow as a miss).
    sanitize_coherence: bool = False

    def with_fixes(self, *names: str) -> "SchedFeatures":
        """A copy with the named fixes enabled.

        Accepts short names (``"group_imbalance"``) or full flag names.
        ``with_fixes("all")`` enables every fix.
        """
        updates: Dict[str, bool] = {}
        for name in names:
            if name == "all":
                updates.update(
                    fix_group_imbalance=True,
                    fix_group_construction=True,
                    fix_overload_on_wakeup=True,
                    fix_missing_domains=True,
                )
                continue
            flag = name if name.startswith("fix_") else f"fix_{name}"
            if not hasattr(self, flag):
                raise ValueError(f"unknown fix {name!r}")
            updates[flag] = True
        return replace(self, **updates)

    def without_autogroup(self) -> "SchedFeatures":
        """A copy with the autogroup feature disabled."""
        return replace(self, autogroup_enabled=False)

    def with_v43_load_metric(self) -> "SchedFeatures":
        """A copy using the Linux 4.3 reworked load metric."""
        return replace(self, load_metric="v43")

    def with_fastpath(self, enabled: bool = True) -> "SchedFeatures":
        """A copy with every simulator fast-path toggled together.

        ``with_fastpath(False)`` is the bench harness's baseline mode: the
        simulation recomputes everything from scratch, as the pre-fast-path
        code did.
        """
        return replace(
            self,
            perf_load_cache=enabled,
            perf_balance_stats=enabled,
            perf_event_compaction=enabled,
        )

    def with_vectorized(
        self, enabled: bool = True, backend: str = "auto"
    ) -> "SchedFeatures":
        """A copy with the vectorized array-backed core toggled.

        The vectorized layer subsumes the per-pass fast paths, so
        enabling it also enables them; disabling leaves the ordinary
        fast paths as they were.  ``backend`` selects the array kernels
        (``"auto"``/``"numpy"``/``"python"``) -- every choice is
        digest-identical, only the throughput differs.
        """
        if enabled:
            return replace(
                self.with_fastpath(True),
                perf_vectorized=True,
                vec_backend=backend,
            )
        return replace(self, perf_vectorized=False)

    def with_sanitizer(self, enabled: bool = True) -> "SchedFeatures":
        """A copy with the coherence sanitizer toggled.

        Sanitizing only makes sense with the fast paths on (it checks
        their memo hits), so enabling it also enables them.
        """
        if enabled:
            return replace(
                self.with_fastpath(True), sanitize_coherence=True
            )
        return replace(self, sanitize_coherence=False)

    def describe(self) -> str:
        """One line per fix flag, kernel-boot-param style."""
        flags = [
            ("group_imbalance", self.fix_group_imbalance),
            ("group_construction", self.fix_group_construction),
            ("overload_on_wakeup", self.fix_overload_on_wakeup),
            ("missing_domains", self.fix_missing_domains),
        ]
        fixes = ", ".join(
            f"{name}={'fixed' if on else 'buggy'}" for name, on in flags
        )
        return f"{fixes}, autogroup={'on' if self.autogroup_enabled else 'off'}"


#: The scheduler exactly as the paper found it: all four bugs present.
MAINLINE = SchedFeatures()

#: The scheduler with all four fixes applied.
ALL_FIXED = SchedFeatures().with_fixes("all")

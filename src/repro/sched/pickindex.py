"""Array-backed min-vruntime pick index (the rbtree's O(1) twin).

:class:`PickIndex` mirrors one runqueue's *waiting* task set as flat
parallel arrays -- ``(vruntime, tid, task)`` per slot plus a tid ->
slot map -- so ``pick_next`` becomes a cached-min probe instead of an
rbtree descent.  The rbtree stays authoritative (ordered iteration for
migration scans, and the reference/sanitizer path); the index is kept
coherent by the exact same call sites that maintain the tree, wired in
:mod:`repro.sched.runqueue` under the vectorized-core gate.

**Tie order.**  The cached minimum and the recompute kernel both order
by the composite ``(vruntime, tid)`` key -- the rbtree's insertion key
-- so equal-vruntime tasks pick in exactly rbtree order (tids are
unique, so the order is total); ``repro bench --check-digests`` holds
every variant to that.

**Cached-min protocol.**  ``(_min_vr, _min_tid)`` is maintained as a
*lower bound* of every present key: inserts either update it or insert
above it, and removals never lower any key.  A probe is valid when the
cached tid is present at the cached vruntime -- then the lower bound is
attained and therefore *is* the minimum.  Removing the minimum leaves
the cache stale (the tid misses, or re-appears at a different
vruntime), which the probe detects, falling back to an argmin recompute
through the backend kernel (:meth:`~repro.sched.vec._PythonOps.
argmin_pairs`; the numpy twin engages above the gather crossover).
Staleness is always *detected*, never silently wrong: a passing probe
proves minimality, a failing probe recomputes from the arrays.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sched.task import Task
    from repro.sched.vec import VecOps

#: Cached-min sentinel: above any real (vruntime, tid), so the first
#: insert into an empty index always installs itself as the minimum.
_NO_MIN = 1 << 62


class PickIndex:
    """Flat (vruntime, tid) index over one runqueue's waiting tasks."""

    __slots__ = (
        "ops", "_bulk", "_vrs", "_tids", "_tasks", "_pos",
        "_min_vr", "_min_tid",
    )

    def __init__(self, ops: "VecOps"):
        self.ops = ops
        self._bulk = ops.bulk_min
        self._vrs: List[int] = []
        self._tids: List[int] = []
        self._tasks: List["Task"] = []
        #: tid -> slot; removal swap-pops, so slots stay dense.
        self._pos: Dict[int, int] = {}
        self._min_vr = _NO_MIN
        self._min_tid = _NO_MIN

    def __len__(self) -> int:
        return len(self._vrs)

    def insert(self, vr: int, tid: int, task: "Task") -> None:
        """Mirror one tree insert (key must be absent)."""
        self._pos[tid] = len(self._vrs)
        self._vrs.append(vr)
        self._tids.append(tid)
        self._tasks.append(task)
        min_vr = self._min_vr
        if vr < min_vr or (vr == min_vr and tid < self._min_tid):
            self._min_vr = vr
            self._min_tid = tid

    def remove(self, tid: int) -> None:
        """Mirror one tree remove (tid must be present)."""
        vrs = self._vrs
        tids = self._tids
        tasks = self._tasks
        i = self._pos.pop(tid)
        last = len(vrs) - 1
        if i != last:
            vrs[i] = vrs[last]
            tids[i] = tids[last]
            tasks[i] = tasks[last]
            self._pos[tids[i]] = i
        del vrs[last]
        del tids[last]
        del tasks[last]
        if not vrs:
            # Empty: reset the lower bound so the next insert re-seeds
            # the cache instead of inheriting a stale (smaller) one.
            self._min_vr = _NO_MIN
            self._min_tid = _NO_MIN

    def peek(self) -> Optional["Task"]:
        """The task with the least ``(vruntime, tid)``, or None.

        O(1) while the cached minimum is attained; an argmin sweep over
        the flat arrays otherwise (the minimum was removed since).
        """
        vrs = self._vrs
        if not vrs:
            return None
        i = self._pos.get(self._min_tid, -1)
        if i >= 0 and vrs[i] == self._min_vr:
            return self._tasks[i]
        n = len(vrs)
        tids = self._tids
        if n < self._bulk:
            # In-frame scalar argmin (the kernels' own sub-crossover
            # loop, hoisted here to spare the call on tiny queues).
            best = 0
            bv = vrs[0]
            bt = tids[0]
            j = 1
            while j < n:
                v = vrs[j]
                if v < bv or (v == bv and tids[j] < bt):
                    best = j
                    bv = v
                    bt = tids[j]
                j += 1
        else:
            best = self.ops.argmin_pairs(vrs, tids, n)
            bv = vrs[best]
            bt = tids[best]
        self._min_vr = bv
        self._min_tid = bt
        return self._tasks[best]

    def __repr__(self) -> str:
        return (
            f"PickIndex(n={len(self._vrs)}, "
            f"min=({self._min_vr}, {self._min_tid}))"
        )

"""Array-kernel backends for the vectorized core (numpy optional).

The vectorized balance layer (:mod:`repro.sched.vecstate`) keeps per-CPU
state in flat struct-of-arrays mirrors and folds group statistics from
them in bulk.  Two interchangeable backends provide the wide-group fold
kernel:

* :class:`_NumpyOps` -- the integer reductions run as ``int64`` vector
  ops over the gathered member slots.
* :class:`_PythonOps` -- the pure-Python fallback, selected
  automatically when numpy is not importable (or forced with
  ``REPRO_NO_NUMPY=1``).  Same semantics, no dependency.

**Adaptive dispatch.**  Groups narrower than ``bulk_min`` members are
folded by an in-frame scalar loop in :mod:`repro.sched.vecstate`: below
that width the gather (one Python-level indexing op per member) costs
more than any C reduction saves, and profile runs on the 64-CPU
reference topology (groups of 1..32 members) show the crossover well
above it.  The backend kernel therefore only engages for machine-scale
groups; on small boxes the numpy and fallback variants intentionally
run the identical scalar loop -- which is also what makes their digest
equality structural rather than coincidental.

**Float-summation discipline.**  Group *load sums* feed threshold
comparisons that decide migrations, so they must reproduce the scalar
path's sequential left-to-right ``sum()`` bit for bit.  numpy's
``ndarray.sum``/``add.reduceat`` use pairwise summation, which rounds
differently; the load fold therefore runs Python's sequential ``sum()``
over the gathered member values.  Integer reductions (``nr_running``
sums, min/max queue depths) are exact in any order, so the numpy
backend folds those as true vector ops over an ``int64`` mirror.

**Object-exactness discipline.**  Load *values* are mirrored as the
exact Python objects ``RunQueue.load(now)`` returned -- never copied
into a ``float64`` buffer.  An idle queue's load is ``sum([]) == 0``,
the *int* zero; the schedule digest hashes ints and skips floats, so a
mirror that coerced it to ``0.0`` would silently drop the group-metric
field from ``BalanceEvent`` records whenever the Group Imbalance fix
selects ``min_load``.  Folding ``sum``/``min``/``max`` over the
original objects (Python ``min``/``max`` return the first minimal /
maximal *element*, matching the scalar fold's tie-breaking) keeps every
variant's schedule digest byte-identical (see
``repro bench --check-digests``).

Likewise, per-task utilization decay stays on scalar ``math.exp`` in
:mod:`repro.sched.load`: ``numpy.exp`` differs from ``math.exp`` in the
last ulp for a measurable fraction of inputs, so the tracker is *read*,
never re-derived, by the vector layer.
"""

from __future__ import annotations

import os
from typing import Sequence, Tuple, Union

#: Set to any non-empty value to pretend numpy is not installed (CI's
#: fallback leg and the in-process digest cross-check use this).
NO_NUMPY_ENV = "REPRO_NO_NUMPY"


def _import_numpy():  # pragma: no cover - trivial import guard
    if os.environ.get(NO_NUMPY_ENV):
        return None
    try:
        import numpy
    except ImportError:
        return None
    return numpy


_NUMPY = _import_numpy()

#: True when the numpy backend is available in this process.
HAVE_NUMPY = _NUMPY is not None

#: (load_sum, load_min, load_max, nr_sum, nr_min, nr_max) of one group.
#: The load fields are whatever objects the fold's sum/min/max produce
#: over the mirrored queue loads -- the int zero included (see above).
GroupFold = Tuple[float, float, float, int, int, int]


class _NumpyOps:
    """numpy-backed wide-group fold kernel."""

    name = "numpy"

    #: Narrowest group the vector kernel pays off for (see module doc).
    bulk_min = 64

    def __init__(self) -> None:
        if _NUMPY is None:
            raise RuntimeError(
                "numpy backend requested but numpy is unavailable "
                f"(not installed, or {NO_NUMPY_ENV} is set)"
            )
        self._np = _NUMPY

    def fold_group(
        self, loads: Sequence[float], nrs: Sequence[int], cpus: Sequence[int]
    ) -> GroupFold:
        # The load fold walks the exact mirrored objects (sequential sum,
        # first-wins min/max -- see the module docstring); the integer
        # side gathers into an int64 vector and reduces in C (exact in
        # any order).
        np = self._np
        vals = [loads[c] for c in cpus]
        ns = np.fromiter(
            (nrs[c] for c in cpus), dtype=np.int64, count=len(cpus)
        )
        return (
            sum(vals),
            min(vals),
            max(vals),
            int(ns.sum()),
            int(ns.min()),
            int(ns.max()),
        )


class _PythonOps:
    """Dependency-free fallback: builtin reductions over gathered lists."""

    name = "python"

    #: Same crossover as the numpy backend, so both backends take the
    #: same code path for the same group widths (structural identity).
    bulk_min = 64

    def fold_group(
        self, loads: Sequence[float], nrs: Sequence[int], cpus: Sequence[int]
    ) -> GroupFold:
        vals = [loads[c] for c in cpus]
        ns = [nrs[c] for c in cpus]
        return (sum(vals), min(vals), max(vals), sum(ns), min(ns), max(ns))


VecOps = Union[_NumpyOps, _PythonOps]


def make_ops(backend: str = "auto") -> VecOps:
    """Instantiate the array backend.

    ``"auto"`` picks numpy when importable (and not disabled via
    ``REPRO_NO_NUMPY``), else the pure-Python fallback.  ``"numpy"`` and
    ``"python"`` force a specific backend -- the bench harness runs both
    in one process to cross-check their digests.
    """
    if backend == "auto":
        backend = "numpy" if HAVE_NUMPY else "python"
    if backend == "numpy":
        return _NumpyOps()
    if backend == "python":
        return _PythonOps()
    raise ValueError(f"unknown vec backend {backend!r}")

"""Array-kernel backends for the vectorized core (numpy optional).

The vectorized balance layer (:mod:`repro.sched.vecstate`) keeps per-CPU
state in flat struct-of-arrays mirrors and folds group statistics from
them in bulk.  Two interchangeable backends provide the wide-group fold
kernel:

* :class:`_NumpyOps` -- the integer reductions run as ``int64`` vector
  ops over the gathered member slots.
* :class:`_PythonOps` -- the pure-Python fallback, selected
  automatically when numpy is not importable (or forced with
  ``REPRO_NO_NUMPY=1``).  Same semantics, no dependency.

**Adaptive dispatch.**  Groups narrower than ``bulk_min`` members are
folded by an in-frame scalar loop in :mod:`repro.sched.vecstate`: below
that width the gather (one Python-level indexing op per member) costs
more than any C reduction saves, and profile runs on the 64-CPU
reference topology (groups of 1..32 members) show the crossover well
above it.  The backend kernel therefore only engages for machine-scale
groups; on small boxes the numpy and fallback variants intentionally
run the identical scalar loop -- which is also what makes their digest
equality structural rather than coincidental.

**Float-summation discipline.**  Group *load sums* feed threshold
comparisons that decide migrations, so they must reproduce the scalar
path's sequential left-to-right ``sum()`` bit for bit.  numpy's
``ndarray.sum``/``add.reduceat`` use pairwise summation, which rounds
differently; the load fold therefore runs Python's sequential ``sum()``
over the gathered member values.  Integer reductions (``nr_running``
sums, min/max queue depths) are exact in any order, so the numpy
backend folds those as true vector ops over an ``int64`` mirror.

**Object-exactness discipline.**  Load *values* are mirrored as the
exact Python objects ``RunQueue.load(now)`` returned -- never copied
into a ``float64`` buffer.  An idle queue's load is ``sum([]) == 0``,
the *int* zero; the schedule digest hashes ints and skips floats, so a
mirror that coerced it to ``0.0`` would silently drop the group-metric
field from ``BalanceEvent`` records whenever the Group Imbalance fix
selects ``min_load``.  Folding ``sum``/``min``/``max`` over the
original objects (Python ``min``/``max`` return the first minimal /
maximal *element*, matching the scalar fold's tie-breaking) keeps every
variant's schedule digest byte-identical (see
``repro bench --check-digests``).

Likewise, per-task utilization decay stays on scalar ``math.exp`` in
:mod:`repro.sched.load`: ``numpy.exp`` differs from ``math.exp`` in the
last ulp for a measurable fraction of inputs, so the tracker is *read*,
never re-derived, by the vector layer.
"""

from __future__ import annotations

import os
from typing import List, Sequence, Tuple, Union

from repro.sched.weights import NICE_0_WEIGHT

#: Set to any non-empty value to pretend numpy is not installed (CI's
#: fallback leg and the in-process digest cross-check use this).
NO_NUMPY_ENV = "REPRO_NO_NUMPY"


def _import_numpy():  # pragma: no cover - trivial import guard
    if os.environ.get(NO_NUMPY_ENV):
        return None
    try:
        import numpy
    except ImportError:
        return None
    return numpy


_NUMPY = _import_numpy()

#: True when the numpy backend is available in this process.
HAVE_NUMPY = _NUMPY is not None

#: (load_sum, load_min, load_max, nr_sum, nr_min, nr_max) of one group.
#: The load fields are whatever objects the fold's sum/min/max produce
#: over the mirrored queue loads -- the int zero included (see above).
GroupFold = Tuple[float, float, float, int, int, int]

#: Batched-tick kernel result: per-row new vruntimes and preemption
#: verdicts (plain Python ints/bools on every backend -- vruntimes are
#: digest-hashed fields, so the numpy twin converts its ``int64`` lanes
#: back via ``tolist()``).
TickBatch = Tuple[List[int], List[bool]]


class _NumpyOps:
    """numpy-backed wide-group fold kernel."""

    name = "numpy"

    #: Narrowest group the vector kernel pays off for (see module doc).
    bulk_min = 64

    #: Narrowest tick cohort the batched kernel pays off for: each row
    #: amortizes ~8 vector ops (vs one gather), so the crossover sits
    #: well below the single-reduction folds'.
    tick_bulk_min = 32

    def __init__(self) -> None:
        if _NUMPY is None:
            raise RuntimeError(
                "numpy backend requested but numpy is unavailable "
                f"(not installed, or {NO_NUMPY_ENV} is set)"
            )
        self._np = _NUMPY

    def fold_group(
        self, loads: Sequence[float], nrs: Sequence[int], cpus: Sequence[int]
    ) -> GroupFold:
        # The load fold walks the exact mirrored objects (sequential sum,
        # first-wins min/max -- see the module docstring); the integer
        # side gathers into an int64 vector and reduces in C (exact in
        # any order).
        np = self._np
        vals = [loads[c] for c in cpus]
        ns = np.fromiter(
            (nrs[c] for c in cpus), dtype=np.int64, count=len(cpus)
        )
        return (
            sum(vals),
            min(vals),
            max(vals),
            int(ns.sum()),
            int(ns.min()),
            int(ns.max()),
        )

    def argmin_pairs(
        self, vrs: Sequence[int], tids: Sequence[int], n: int
    ) -> int:
        """Slot of the minimum ``(vruntime, tid)`` pair (rbtree order).

        Everything is integer, so the vector reduction is exact; ties on
        vruntime break by tid exactly like the rbtree's composite key.
        Narrow inputs run the fallback's scalar scan (same crossover
        story as the group fold: the gather costs more than C saves).
        """
        if n < self.bulk_min:
            best = 0
            bv = vrs[0]
            bt = tids[0]
            i = 1
            while i < n:
                v = vrs[i]
                if v < bv or (v == bv and tids[i] < bt):
                    best = i
                    bv = v
                    bt = tids[i]
                i += 1
            return best
        np = self._np
        v = np.fromiter(vrs, dtype=np.int64, count=n)
        ties = np.nonzero(v == v.min())[0]
        if len(ties) == 1:
            return int(ties[0])
        t = np.fromiter(
            (tids[int(i)] for i in ties), dtype=np.int64, count=len(ties)
        )
        return int(ties[int(t.argmin())])

    def due_cpus(
        self, gates: Sequence[int], arms: Sequence[int], tok: int, now: int
    ) -> List[int]:
        """Ascending ids of CPUs whose balance gate has expired.

        A gate is live only while its arming token still matches the
        global flip token (any idle flip invalidates every gate at
        once); a stale or expired gate means "due".  One two-array
        compare-and-nonzero reduction; indices (not floats) come back,
        so the result is exact by construction on either backend.
        """
        n = len(gates)
        if n < self.bulk_min:
            return [
                i for i in range(n) if gates[i] <= now or arms[i] != tok
            ]
        np = self._np
        g = np.fromiter(gates, dtype=np.int64, count=n)
        a = np.fromiter(arms, dtype=np.int64, count=n)
        return [int(i) for i in np.nonzero((g <= now) | (a != tok))[0]]

    def tick_batch(
        self,
        deltas: Sequence[int],
        weights: Sequence[int],
        vrs: Sequence[int],
        rans: Sequence[int],
        nrs: Sequence[int],
        tws: Sequence[int],
        wait_vrs: Sequence[int],
        latency: int,
        min_gran: int,
        wakeup_gran: int,
    ) -> TickBatch:
        """Batched tick body over one same-timestamp cohort.

        Per row (one busy CPU with a convergence-stable mirror):
        the vruntime charge ``vr + delta * NICE_0_WEIGHT // weight`` and
        the ``check_preempt_tick`` verdict against the row's timeslice
        ``max(max(latency, nr * min_gran) * weight // tw, min_gran)``.
        ``wait_vrs`` carries -1 for rows with an empty wait queue (a
        vruntime is never negative).  All lanes are int64 and every
        operand is non-negative, so the vector floor-divisions match
        Python's exactly; narrow cohorts run the fallback's scalar loop.
        """
        n = len(deltas)
        if n < self.tick_bulk_min:
            return _tick_batch_scalar(
                deltas, weights, vrs, rans, nrs, tws, wait_vrs,
                latency, min_gran, wakeup_gran, n,
            )
        np = self._np
        d = np.fromiter(deltas, dtype=np.int64, count=n)
        w = np.fromiter(weights, dtype=np.int64, count=n)
        v = np.fromiter(vrs, dtype=np.int64, count=n)
        r = np.fromiter(rans, dtype=np.int64, count=n)
        q = np.fromiter(nrs, dtype=np.int64, count=n)
        tw = np.fromiter(tws, dtype=np.int64, count=n)
        wv = np.fromiter(wait_vrs, dtype=np.int64, count=n)
        new_vr = v + (d * NICE_0_WEIGHT) // w
        period = np.maximum(q * min_gran, latency)
        slices = np.maximum((period * w) // tw, min_gran)
        preempt = (wv >= 0) & (
            (r >= slices)
            | ((r >= min_gran) & (new_vr > wv + wakeup_gran))
        )
        return new_vr.tolist(), preempt.tolist()


def _tick_batch_scalar(
    deltas: Sequence[int],
    weights: Sequence[int],
    vrs: Sequence[int],
    rans: Sequence[int],
    nrs: Sequence[int],
    tws: Sequence[int],
    wait_vrs: Sequence[int],
    latency: int,
    min_gran: int,
    wakeup_gran: int,
    n: int,
) -> TickBatch:
    """Row-at-a-time tick body: the expression-for-expression scalar
    reference both backends run below the crossover (and the fallback
    backend runs at every width).  Integer-only, so it is exact."""
    new_vrs: List[int] = []
    preempts: List[bool] = []
    i = 0
    while i < n:
        new_vr = vrs[i] + (deltas[i] * NICE_0_WEIGHT) // weights[i]
        new_vrs.append(new_vr)
        wv = wait_vrs[i]
        if wv < 0:
            preempts.append(False)
        else:
            period = nrs[i] * min_gran
            if period < latency:
                period = latency
            slice_us = (period * weights[i]) // tws[i]
            if slice_us < min_gran:
                slice_us = min_gran
            ran = rans[i]
            preempts.append(
                ran >= slice_us
                or (ran >= min_gran and new_vr > wv + wakeup_gran)
            )
        i += 1
    return new_vrs, preempts


class _PythonOps:
    """Dependency-free fallback: builtin reductions over gathered lists."""

    name = "python"

    #: Same crossover as the numpy backend, so both backends take the
    #: same code path for the same group widths (structural identity).
    bulk_min = 64

    #: Mirrors the numpy backend's tick crossover (same reasoning).
    tick_bulk_min = 32

    def fold_group(
        self, loads: Sequence[float], nrs: Sequence[int], cpus: Sequence[int]
    ) -> GroupFold:
        vals = [loads[c] for c in cpus]
        ns = [nrs[c] for c in cpus]
        return (sum(vals), min(vals), max(vals), sum(ns), min(ns), max(ns))

    def argmin_pairs(
        self, vrs: Sequence[int], tids: Sequence[int], n: int
    ) -> int:
        """Slot of the minimum ``(vruntime, tid)`` pair (rbtree order)."""
        best = 0
        bv = vrs[0]
        bt = tids[0]
        i = 1
        while i < n:
            v = vrs[i]
            if v < bv or (v == bv and tids[i] < bt):
                best = i
                bv = v
                bt = tids[i]
            i += 1
        return best

    def due_cpus(
        self, gates: Sequence[int], arms: Sequence[int], tok: int, now: int
    ) -> List[int]:
        """Ascending ids of CPUs whose balance gate has expired."""
        return [
            i
            for i in range(len(gates))
            if gates[i] <= now or arms[i] != tok
        ]

    def tick_batch(
        self,
        deltas: Sequence[int],
        weights: Sequence[int],
        vrs: Sequence[int],
        rans: Sequence[int],
        nrs: Sequence[int],
        tws: Sequence[int],
        wait_vrs: Sequence[int],
        latency: int,
        min_gran: int,
        wakeup_gran: int,
    ) -> TickBatch:
        """Batched tick body -- always the scalar reference loop."""
        return _tick_batch_scalar(
            deltas, weights, vrs, rans, nrs, tws, wait_vrs,
            latency, min_gran, wakeup_gran, len(deltas),
        )


VecOps = Union[_NumpyOps, _PythonOps]


def make_ops(backend: str = "auto") -> VecOps:
    """Instantiate the array backend.

    ``"auto"`` picks numpy when importable (and not disabled via
    ``REPRO_NO_NUMPY``), else the pure-Python fallback.  ``"numpy"`` and
    ``"python"`` force a specific backend -- the bench harness runs both
    in one process to cross-check their digests.
    """
    if backend == "auto":
        backend = "numpy" if HAVE_NUMPY else "python"
    if backend == "numpy":
        return _NumpyOps()
    if backend == "python":
        return _PythonOps()
    raise ValueError(f"unknown vec backend {backend!r}")

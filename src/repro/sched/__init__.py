"""The CFS model: everything the paper's Section 2 describes.

Per-CPU runqueues ordered by vruntime on a red-black tree, the
weight-and-utilization load metric with cgroup/autogroup division, the
scheduling-domain hierarchy with per-level scheduling groups, the hierarchical
load-balancing algorithm (the paper's Algorithm 1), wakeup placement, NOHZ
idle balancing, and CPU hotplug with domain regeneration.

Each of the paper's four bugs lives at a specific decision point in this
package and is toggled by :class:`~repro.sched.features.SchedFeatures`.
"""

from repro.sched.cgroup import Autogroup, CGroup, CGroupManager
from repro.sched.domains import DomainBuilder, SchedDomain, SchedGroup
from repro.sched.features import SchedFeatures
from repro.sched.rbtree import RBTree
from repro.sched.runqueue import RunQueue
from repro.sched.task import Task, TaskState
from repro.sched.weights import (
    NICE_0_WEIGHT,
    weight_for_nice,
)

__all__ = [
    "Autogroup",
    "CGroup",
    "CGroupManager",
    "DomainBuilder",
    "NICE_0_WEIGHT",
    "RBTree",
    "RunQueue",
    "SchedDomain",
    "SchedFeatures",
    "SchedGroup",
    "Task",
    "TaskState",
    "weight_for_nice",
]

"""The scheduler facade: per-CPU CFS + domains + balancing + wakeup.

:class:`Scheduler` owns the per-CPU state (:class:`~repro.sched.cpu.Cpu`),
the domain hierarchy, and the cgroup manager, and exposes the decision
points the simulator drives:

* :meth:`place_new_task` / :meth:`wake_task` -- fork and wakeup placement;
* :meth:`pick_next_task` / :meth:`deschedule` -- context switching;
* :meth:`tick` -- 1 ms accounting, preemption checks, periodic and NOHZ
  balancing;
* :meth:`set_cpu_online` -- hotplug with domain regeneration.

The scheduler is simulation-agnostic: it never touches the event loop.  It
reports CPUs that need the simulator's attention through ``pending_dispatch``
(an idle CPU received work) and ``pending_resched`` (a running task must be
preempted), which the simulator drains after every call.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.sched import balance as lb
from repro.sched import cfs
from repro.sched import wakeup as wk
from repro.sched.cgroup import CGroupManager
from repro.sched.cpu import Cpu
from repro.sched.domains import DomainBuilder
from repro.sched.features import SchedFeatures
from repro.sched.load import LoadEpoch
from repro.sched.pickindex import PickIndex
from repro.sched.task import Task, TaskState
from repro.sched.vecstate import VecState
from repro.topology.machine import MachineTopology
from repro.viz.events import Probe


class Scheduler:
    """The simulated kernel scheduler for one machine."""

    def __init__(
        self,
        topology: MachineTopology,
        features: Optional[SchedFeatures] = None,
        probe: Optional[Probe] = None,
        cgroups: Optional[CGroupManager] = None,
    ):
        self.topology = topology
        self.features = features or SchedFeatures()
        self.probe = probe or Probe()
        self.cgroups = cgroups or CGroupManager(
            autogroup_enabled=self.features.autogroup_enabled,
            metric=self.features.load_metric,
        )
        #: Machine-wide dirty counter for cached runqueue loads; shared by
        #: every runqueue and the cgroup manager (divisor changes dirty
        #: member loads without any runqueue event).
        self.load_epoch = LoadEpoch()
        #: Bumped only on idle<->busy transitions (and hotplug): the
        #: designated-balancer election reads nothing else, so its memo
        #: survives ordinary load churn.
        self.idle_epoch = LoadEpoch()
        #: Bumped when a cgroup divisor changes (attach/detach), dirtying
        #: per-queue load caches without any runqueue event.
        self.divisor_epoch = LoadEpoch()
        self.cgroups.bind_load_epoch(self.load_epoch, self.divisor_epoch)
        self.cpus: List[Cpu] = [
            Cpu(
                cpu_id,
                self.probe,
                load_epoch=self.load_epoch,
                load_cache=self.features.perf_load_cache,
                idle_epoch=self.idle_epoch,
                divisor_epoch=self.divisor_epoch,
                sanitize=self.features.sanitize_coherence,
            )
            for cpu_id in range(topology.num_cpus)
        ]
        self.domain_builder = DomainBuilder(topology, self.features)
        #: Persistent array-backed sampling layer (the vectorized core).
        #: It subsumes the per-pass BalancePass, so it is only built when
        #: the fast paths it replaces are on; every runqueue gets a
        #: write-through hook so mutations mark their mirror slot dirty.
        self.vec: Optional[VecState] = None
        if (
            self.features.perf_vectorized
            and self.features.perf_balance_stats
            and self.features.perf_load_cache
        ):
            self.vec = VecState(self)
            for cpu in self.cpus:
                cpu.rq.vec = self.vec
                # The array-backed pick index rides the same gate: the
                # rbtree stays authoritative, the index makes pick_next
                # a cached-min probe (argmin on stale-min misses).
                cpu.rq.pidx = PickIndex(self.vec.ops)
        #: Live tasks by tid.
        self.tasks: Dict[int, Task] = {}
        #: Idle CPUs that received work and need a dispatch.
        self.pending_dispatch: Set[int] = set()
        #: Busy CPUs whose running task should be preempted.
        self.pending_resched: Set[int] = set()
        #: Aggregate counters for experiments.
        self.total_migrations = 0
        self.balance_calls = 0

    # -- lookups -------------------------------------------------------------

    def cpu(self, cpu_id: int) -> Cpu:
        return self.cpus[cpu_id]

    def vec_pass(self, now: int) -> Optional[lb.SamplingPass]:
        """The sampling layer for one rebalance pass at ``now``.

        The persistent vectorized mirror when enabled (one instance, so
        the synchronized newidle bursts sharing a timestamp hit its
        memos), else a fresh per-pass :class:`~repro.sched.balance.
        BalancePass`, else None (the baseline recompute-everything mode).
        """
        if self.vec is not None:
            return self.vec.begin(now)
        if self.features.perf_balance_stats:
            return lb.BalancePass(self, now)
        return None

    def online_cpus(self) -> List[Cpu]:
        return [c for c in self.cpus if c.online]

    def idle_cpus(self) -> List[Cpu]:
        """Online idle CPUs, longest-idle first."""
        idle = [c for c in self.cpus if c.online and c.is_idle]
        idle.sort(
            key=lambda c: (
                c.idle_since_us if c.idle_since_us is not None else 1 << 62
            )
        )
        return idle

    def drain_pending(self) -> Tuple[Set[int], Set[int]]:
        """(dispatch, resched) CPU sets accumulated since the last drain."""
        dispatch, resched = self.pending_dispatch, self.pending_resched
        self.pending_dispatch = set()
        self.pending_resched = set()
        return dispatch, resched

    # -- task lifecycle --------------------------------------------------------

    def register_task(self, task: Task) -> None:
        """Track a task and attach it to its cgroup (root if unset)."""
        self.tasks[task.tid] = task
        if task.cgroup is None:
            self.cgroups.attach(task)

    def place_new_task(
        self, task: Task, parent_cpu: int, now: int
    ) -> int:
        """Fork-time placement: find the idlest CPU and enqueue there."""
        self.register_task(task)
        target = wk.select_task_rq_fork(self, task, parent_cpu, now)
        self.probe.on_lifecycle(now, task.tid, "fork", target)
        self._enqueue_on(task, target, now, wakeup=False)
        return target

    def enqueue_task_on(self, task: Task, cpu_id: int, now: int) -> None:
        """Force a task onto a specific runqueue (experiment setup).

        Bypasses placement decisions; affinity is still enforced.
        """
        if not task.can_run_on(cpu_id):
            raise ValueError(f"{task} affinity forbids cpu {cpu_id}")
        if task.tid not in self.tasks:
            self.register_task(task)
        self.probe.on_lifecycle(now, task.tid, "fork", cpu_id)
        self._enqueue_on(task, cpu_id, now, wakeup=False)

    def wake_task(
        self, task: Task, waker_cpu: Optional[int], now: int
    ) -> int:
        """Wakeup placement: run ``select_task_rq`` and enqueue.

        Sets ``pending_dispatch`` when the chosen CPU was idle, or
        ``pending_resched`` when the woken task should preempt.
        """
        if task.state not in (TaskState.SLEEPING, TaskState.BLOCKED,
                              TaskState.NEW):
            raise ValueError(f"cannot wake {task} in state {task.state}")
        target = wk.select_task_rq_wake(self, task, waker_cpu, now)
        was_idle = self.cpu(target).is_idle
        task.tracker.update(now, was_running=False)
        task.stats.wakeups += 1
        if not was_idle:
            task.stats.wakeups_on_busy_core += 1
        if task.prev_cpu is not None and task.prev_cpu != target:
            task.stats.migrations += 1
            self.total_migrations += 1
        self.probe.on_wakeup(now, task.tid, target, waker_cpu, was_idle)
        self._enqueue_on(task, target, now, wakeup=True)
        return target

    def task_exited(self, task: Task, now: int) -> None:
        """Tear down an exiting task (must not be enqueued anywhere)."""
        task.state = TaskState.EXITED
        task.stats.exit_time_us = now
        task.cpu = None
        self.cgroups.detach(task)
        self.probe.on_lifecycle(now, task.tid, "exit", task.prev_cpu)
        self.tasks.pop(task.tid, None)

    def _enqueue_on(
        self, task: Task, cpu_id: int, now: int, wakeup: bool
    ) -> None:
        cpu = self.cpus[cpu_id]
        if not cpu.online:
            raise ValueError(f"cpu {cpu_id} is offline")
        was_idle = cpu.is_idle
        cpu.rq.enqueue(task, now, wakeup=wakeup)
        if was_idle:
            self.pending_dispatch.add(cpu_id)
        elif (
            wakeup
            and self.features.wakeup_preemption_enabled
            and cfs.should_preempt_on_wakeup(self.features, cpu.rq.curr, task)
        ):
            self.pending_resched.add(cpu_id)

    # -- context switching -------------------------------------------------------

    def pick_next_task(self, cpu_id: int, now: int) -> Optional[Task]:
        """Pick the leftmost task; try newidle balancing before idling.

        The caller must have descheduled the previous task.  Returns None
        (and marks the CPU idle) when no work could be found or stolen.
        """
        cpu = self.cpus[cpu_id]
        if cpu.rq.curr is not None:
            raise RuntimeError(
                f"cpu {cpu_id} still runs {cpu.rq.curr}; deschedule first"
            )
        task = cpu.rq.pick_next()
        if (
            task is None
            and cpu.online
            and self.features.newidle_balance_enabled
            and cpu.avg_idle_us >= self.features.migration_cost_us
        ):
            # Short-term idle CPUs skip newidle balancing (avg_idle below
            # the migration cost), exactly like the kernel -- and exactly
            # why they are useless for recovering from wakeup pile-ups.
            lb.newidle_balance(self, cpu_id, now)
            task = cpu.rq.pick_next()
        if task is None:
            cpu.mark_idle(now)
            return None
        cpu.rq.take(task, now)
        cpu.rq.set_current(task, now)
        cpu.mark_busy(now)
        cpu.last_account_us = now
        task.exec_start_us = now
        task.stats.wait_time_us += max(0, now - task.stats.last_enqueue_us)
        self.pending_dispatch.discard(cpu_id)
        self.probe.on_sched_switch(now, cpu_id, None, task.tid, task.name)
        return task

    def account(self, cpu_id: int, now: int) -> int:
        """Charge runtime since the last accounting point; returns the delta."""
        cpu = self.cpus[cpu_id]
        delta = now - cpu.last_account_us
        if delta <= 0:
            return 0
        curr = cpu.rq.curr
        if curr is not None:
            cfs.account_runtime(curr, now, delta)
            cpu.busy_time_us += delta
        cpu.last_account_us = now
        cpu.rq.update_min_vruntime()
        return delta

    def deschedule(
        self, cpu_id: int, now: int, requeue: bool
    ) -> Optional[Task]:
        """Remove the running task from the CPU.

        ``requeue=True`` puts it back in the runqueue (preemption);
        ``requeue=False`` leaves it dequeued (sleep/block/exit -- the caller
        sets the final state).  Runtime is accounted first.
        """
        cpu = self.cpus[cpu_id]
        curr = cpu.rq.curr
        if curr is None:
            return None
        self.account(cpu_id, now)
        if requeue:
            cpu.rq.put_prev(curr, now)
            curr.stats.preemptions += 1
        else:
            cpu.rq.set_current(None, now)
            curr.cpu = None
        curr.exec_start_us = None
        self.probe.on_sched_switch(now, cpu_id, curr.tid, None)
        return curr

    def migrate_task(
        self, task: Task, src_cpu: int, dst_cpu: int, now: int, reason: str
    ) -> None:
        """Move a queued (not running) task between runqueues."""
        if task.state is not TaskState.RUNNABLE:
            raise ValueError(f"cannot migrate {task} in state {task.state}")
        src = self.cpu(src_cpu)
        dst = self.cpu(dst_cpu)
        src.rq.take(task, now)
        task.stats.migrations += 1
        self.total_migrations += 1
        self.probe.on_migration(now, task.tid, src_cpu, dst_cpu, reason)
        was_idle = dst.is_idle
        dst.rq.enqueue(task, now, wakeup=False)
        if was_idle:
            self.pending_dispatch.add(dst_cpu)

    # -- tick ---------------------------------------------------------------------

    def tick(self, now: int) -> None:
        """The periodic scheduler tick (1 ms).

        Busy CPUs account runtime, check tick preemption, and run the
        periodic balancer (designated-core + interval rules apply).  Idle
        CPUs are tickless; if some CPU is overloaded, the first tickless
        idle CPU is kicked as the NOHZ balancer and balances on behalf of
        every idle CPU.
        """
        if self.vec is not None:
            self._tick_vec(now)
            return
        overloaded = False
        # One stats pass serves every CPU balanced this tick (and the NOHZ
        # sweep below): they all observe the same timestamp, so per-CPU
        # samples and folded group stats carry across until a migration
        # dirties the load epoch.
        bpass = self.vec_pass(now)
        for cpu in self.cpus:
            if not cpu.online:
                continue
            curr = cpu.rq.curr
            if curr is None:
                continue  # tickless idle: no tick runs here
            self.account(cpu.cpu_id, now)
            if cpu.rq.nr_running >= 2:
                overloaded = True
            started = curr.exec_start_us if curr.exec_start_us is not None else now
            ran = now - started
            if cfs.should_preempt_at_tick(self.features, cpu.rq, curr, ran):
                self.pending_resched.add(cpu.cpu_id)
            self.balance_calls += 1
            lb.periodic_balance(self, cpu.cpu_id, now, bpass=bpass)
        if overloaded and self.features.nohz_idle_balance_enabled:
            balancer = lb.nohz_kick_target(self)
            if balancer is not None:
                lb.nohz_idle_balance(self, balancer, now, bpass=bpass)

    def _tick_vec(self, now: int) -> None:
        """The tick body, batched over the busy-CPU cohort (vec gate).

        Two phases, digest-identical to the scalar loop above:

        **Gather** walks the busy CPUs once, hoisting each row's
        accounting inputs (account delta, vruntime, ran, slice operands,
        leftmost waiting vruntime) into flat arrays and running the
        vruntime/preempt arithmetic as one ``tick_batch`` kernel call.
        Rows whose tracker has not exactly converged (``util != 1.0``)
        fall back to the scalar ``account_runtime`` in-frame -- the
        cohort-divergence rule.  Hoisting account effects above earlier
        CPUs' balances is safe because balancing reads only queue loads
        (value-equal before/after an account at the same timestamp --
        ``LoadTracker.peek``/``update`` compute the same expression),
        ``nr_running``, affinity, and *queued* task keys; it never reads
        the running task's vruntime, tracker stamps, or busy time.

        **Apply** then replays the remaining per-CPU effects in exact
        scalar order: batch results land, ``update_min_vruntime`` runs at
        the scalar position (earlier CPUs' balances may have migrated
        tasks, changing the leftmost), the overloaded flag samples the
        post-balance queue depth, and the precomputed preempt verdict is
        honored only if the queue's private mutation counter is unchanged
        since the gather (else the scalar check reruns on live state).
        """
        vec = self.vec
        assert vec is not None  # routed here only under the vec gate
        feats = self.features
        bpass = vec.begin(now)
        latency = feats.sched_latency_us
        min_gran = feats.min_granularity_us
        wakeup_gran = feats.wakeup_granularity_us
        cohort: List[Tuple[Cpu, Task, int, int, bool]] = []
        deltas: List[int] = []
        weights: List[int] = []
        vrs: List[int] = []
        rans: List[int] = []
        nrs: List[int] = []
        tws: List[int] = []
        wait_vrs: List[int] = []
        muts: List[int] = []
        for cpu in self.cpus:
            if not cpu.online:
                continue
            rq = cpu.rq
            curr = rq.curr
            if curr is None:
                continue  # tickless idle: no tick runs here
            started = (
                curr.exec_start_us if curr.exec_start_us is not None else now
            )
            ran = now - started
            delta = now - cpu.last_account_us
            accounted = delta > 0
            slot = -1
            if accounted:
                # Raw util read is deliberate: testing exact convergence
                # (util == target), which decay cannot change -- the
                # batched row reproduces update()'s shortcut bit-for-bit.
                if curr.tracker.util == 1.0:  # repro: noqa[perf-load-bypass]
                    # Converged row: the tracker update is a pure
                    # timestamp re-stamp, so the whole account body is
                    # batchable integer arithmetic.
                    slot = len(deltas)
                    deltas.append(delta)
                    weights.append(curr.weight)
                    vrs.append(curr.vruntime)
                    rans.append(ran)
                    nrs.append(rq._nr_running)
                    tws.append(rq._total_weight)
                    waiting = rq.pick_next()
                    wait_vrs.append(
                        -1 if waiting is None else waiting.vruntime
                    )
                    muts.append(rq.mutations)
                else:
                    # Divergent row (tracker mid-decay): scalar account,
                    # minus update_min_vruntime, which phase 2 replays
                    # at the exact scalar position for every row.
                    cfs.account_runtime(curr, now, delta)
                    cpu.busy_time_us += delta
                    cpu.last_account_us = now
            cohort.append((cpu, curr, ran, slot, accounted))
        if deltas:
            new_vrs, preempts = vec.ops.tick_batch(
                deltas, weights, vrs, rans, nrs, tws, wait_vrs,
                latency, min_gran, wakeup_gran,
            )
        overloaded = False
        resched = self.pending_resched
        for cpu, curr, ran, slot, accounted in cohort:
            rq = cpu.rq
            if slot >= 0:
                delta = deltas[slot]
                curr.vruntime = new_vrs[slot]
                curr.stats.total_runtime_us += delta
                curr.tracker.last_update_us = now
                cpu.busy_time_us += delta
                cpu.last_account_us = now
            if accounted:
                rq.update_min_vruntime()
            if rq._nr_running >= 2:
                overloaded = True
            if slot >= 0 and rq.mutations == muts[slot]:
                preempt = preempts[slot]
            else:
                preempt = cfs.should_preempt_at_tick(feats, rq, curr, ran)
            if preempt:
                resched.add(cpu.cpu_id)
            self.balance_calls += 1
            lb.periodic_balance(self, cpu.cpu_id, now, bpass=bpass)
        if overloaded and feats.nohz_idle_balance_enabled:
            balancer = lb.nohz_kick_target(self)
            if balancer is not None:
                lb.nohz_idle_balance(self, balancer, now, bpass=bpass)

    # -- hotplug -------------------------------------------------------------------

    def set_cpu_online(self, cpu_id: int, online: bool, now: int) -> List[Task]:
        """Hotplug a CPU; returns tasks evicted from it (queued ones only).

        The caller (simulator) is responsible for stopping a task that was
        *running* there before calling this, and for re-placing the returned
        tasks via :meth:`wake_task`.
        """
        cpu = self.cpu(cpu_id)
        evicted: List[Task] = []
        if not online:
            if cpu.rq.curr is not None:
                raise RuntimeError(
                    f"cpu {cpu_id} still runs {cpu.rq.curr}; stop it first"
                )
            for task in list(cpu.rq.queued_tasks()):
                cpu.rq.take(task, now)
                task.state = TaskState.BLOCKED
                task.cpu = None
                evicted.append(task)
            cpu.online = False
            cpu.mark_idle(now)
        else:
            cpu.online = True
            cpu.idle_since_us = now
            cpu.tickless = True
        self.domain_builder.set_cpu_online(cpu_id, online)
        # Online-state changes alter designated-balancer elections.
        self.idle_epoch.bump()
        if self.vec is not None:
            # The rebuild dropped every interned group/domain object; the
            # mirror's id-keyed gather plans must go with them.
            self.vec.on_topology_change()
        return evicted

    # -- invariants ------------------------------------------------------------------

    def can_steal(self, idle_cpu: int, busy_cpu: int) -> bool:
        """Algorithm 2's ``can_steal``: some waiting task may move over."""
        if idle_cpu == busy_cpu:
            return False
        idle = self.cpu(idle_cpu)
        busy = self.cpu(busy_cpu)
        if not idle.online or not busy.online:
            return False
        return any(
            t.can_run_on(idle_cpu) for t in busy.rq.queued_tasks()
        )

    def runnable_count(self) -> int:
        """Total runnable (running + queued) tasks across the machine."""
        return sum(c.rq.nr_running for c in self.cpus if c.online)

    def __repr__(self) -> str:
        busy = sum(1 for c in self.cpus if c.online and not c.is_idle)
        return (
            f"Scheduler(cpus={len(self.cpus)}, busy={busy}, "
            f"tasks={len(self.tasks)}, features=[{self.features.describe()}])"
        )

"""Red-black tree: the CFS timeline structure.

CFS keeps runnable tasks sorted by vruntime in a red-black tree and always
picks the leftmost node.  This is a full, from-scratch implementation with
insert, delete, leftmost lookup and an in-order iterator; keys are arbitrary
comparable tuples (the runqueue uses ``(vruntime, tid)`` so keys are unique).

Invariants (checked by :meth:`RBTree.validate` and exercised by the
hypothesis test-suite):

1. every node is red or black;
2. the root is black;
3. a red node has no red child;
4. every root-to-leaf path contains the same number of black nodes.
"""

from __future__ import annotations

from typing import Any, Iterator, Optional, Tuple

RED = True
BLACK = False


class _Node:
    __slots__ = ("key", "value", "color", "left", "right", "parent")

    def __init__(self, key: Any, value: Any):
        self.key = key
        self.value = value
        self.color = RED
        self.left: Optional["_Node"] = None
        self.right: Optional["_Node"] = None
        self.parent: Optional["_Node"] = None


class RBTree:
    """A classic red-black tree with unique, totally-ordered keys."""

    def __init__(self) -> None:
        self._root: Optional[_Node] = None
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    def __contains__(self, key: Any) -> bool:
        return self._find(key) is not None

    def insert(self, key: Any, value: Any = None) -> None:
        """Insert ``key`` -> ``value``; raises ``KeyError`` on duplicates."""
        parent = None
        cur = self._root
        while cur is not None:
            parent = cur
            if key < cur.key:
                cur = cur.left
            elif cur.key < key:
                cur = cur.right
            else:
                raise KeyError(f"duplicate key {key!r}")
        node = _Node(key, value)
        node.parent = parent
        if parent is None:
            self._root = node
        elif key < parent.key:
            parent.left = node
        else:
            parent.right = node
        self._size += 1
        self._insert_fixup(node)

    def remove(self, key: Any) -> Any:
        """Remove ``key`` and return its value; raises ``KeyError`` if absent."""
        node = self._find(key)
        if node is None:
            raise KeyError(f"key {key!r} not in tree")
        value = node.value
        self._delete(node)
        self._size -= 1
        return value

    def get(self, key: Any, default: Any = None) -> Any:
        """Value stored at ``key``, or ``default``."""
        node = self._find(key)
        return default if node is None else node.value

    def leftmost(self) -> Optional[Tuple[Any, Any]]:
        """The smallest ``(key, value)`` pair, or ``None`` when empty.

        This is CFS's "pick next": the task with the least vruntime.
        """
        if self._root is None:
            return None
        node = self._root
        while node.left is not None:
            node = node.left
        return node.key, node.value

    def rightmost(self) -> Optional[Tuple[Any, Any]]:
        """The largest ``(key, value)`` pair, or ``None`` when empty."""
        if self._root is None:
            return None
        node = self._root
        while node.right is not None:
            node = node.right
        return node.key, node.value

    def pop_leftmost(self) -> Tuple[Any, Any]:
        """Remove and return the smallest pair; raises ``KeyError`` if empty."""
        pair = self.leftmost()
        if pair is None:
            raise KeyError("pop from empty RBTree")
        self.remove(pair[0])
        return pair

    def items(self) -> Iterator[Tuple[Any, Any]]:
        """In-order (ascending key) iterator over ``(key, value)`` pairs."""
        yield from self._inorder(self._root)

    def keys(self) -> Iterator[Any]:
        for key, _value in self.items():
            yield key

    def values(self) -> Iterator[Any]:
        for _key, value in self.items():
            yield value

    def height(self) -> int:
        """Tree height in edges; -1 for an empty tree (diagnostics only)."""

        def depth(node: Optional[_Node]) -> int:
            if node is None:
                return -1
            return 1 + max(depth(node.left), depth(node.right))

        return depth(self._root)

    def validate(self) -> None:
        """Check all red-black invariants; raises ``AssertionError``."""
        if self._root is not None:
            assert self._root.color == BLACK, "root must be black"
        count = self._validate_node(self._root, None, None)[1]
        assert count == self._size, (
            f"size mismatch: counted {count}, recorded {self._size}"
        )

    # -- internals ---------------------------------------------------------

    def _validate_node(
        self, node: Optional["_Node"], lo: Any, hi: Any
    ) -> Tuple[int, int]:
        """Return (black-height, node-count) of the subtree; assert order."""
        if node is None:
            return 1, 0
        if lo is not None:
            assert lo < node.key, "BST order violated (left bound)"
        if hi is not None:
            assert node.key < hi, "BST order violated (right bound)"
        if node.color == RED:
            for child in (node.left, node.right):
                assert child is None or child.color == BLACK, (
                    "red node has a red child"
                )
        lh, lc = self._validate_node(node.left, lo, node.key)
        rh, rc = self._validate_node(node.right, node.key, hi)
        assert lh == rh, "black heights differ"
        return lh + (1 if node.color == BLACK else 0), lc + rc + 1

    def _inorder(self, node: Optional[_Node]) -> Iterator[Tuple[Any, Any]]:
        # Iterative traversal: recursion would blow the stack on big queues.
        stack = []
        cur = node
        while stack or cur is not None:
            while cur is not None:
                stack.append(cur)
                cur = cur.left
            cur = stack.pop()
            yield cur.key, cur.value
            cur = cur.right

    def _find(self, key: Any) -> Optional[_Node]:
        cur = self._root
        while cur is not None:
            if key < cur.key:
                cur = cur.left
            elif cur.key < key:
                cur = cur.right
            else:
                return cur
        return None

    def _rotate_left(self, x: _Node) -> None:
        y = x.right
        assert y is not None
        x.right = y.left
        if y.left is not None:
            y.left.parent = x
        y.parent = x.parent
        if x.parent is None:
            self._root = y
        elif x is x.parent.left:
            x.parent.left = y
        else:
            x.parent.right = y
        y.left = x
        x.parent = y

    def _rotate_right(self, x: _Node) -> None:
        y = x.left
        assert y is not None
        x.left = y.right
        if y.right is not None:
            y.right.parent = x
        y.parent = x.parent
        if x.parent is None:
            self._root = y
        elif x is x.parent.right:
            x.parent.right = y
        else:
            x.parent.left = y
        y.right = x
        x.parent = y

    def _insert_fixup(self, z: _Node) -> None:
        while z.parent is not None and z.parent.color == RED:
            grand = z.parent.parent
            assert grand is not None  # red parent implies a grandparent
            if z.parent is grand.left:
                uncle = grand.right
                if uncle is not None and uncle.color == RED:
                    z.parent.color = BLACK
                    uncle.color = BLACK
                    grand.color = RED
                    z = grand
                else:
                    if z is z.parent.right:
                        z = z.parent
                        self._rotate_left(z)
                    z.parent.color = BLACK
                    grand.color = RED
                    self._rotate_right(grand)
            else:
                uncle = grand.left
                if uncle is not None and uncle.color == RED:
                    z.parent.color = BLACK
                    uncle.color = BLACK
                    grand.color = RED
                    z = grand
                else:
                    if z is z.parent.left:
                        z = z.parent
                        self._rotate_right(z)
                    z.parent.color = BLACK
                    grand.color = RED
                    self._rotate_left(grand)
        assert self._root is not None
        self._root.color = BLACK

    def _transplant(self, u: _Node, v: Optional[_Node]) -> None:
        if u.parent is None:
            self._root = v
        elif u is u.parent.left:
            u.parent.left = v
        else:
            u.parent.right = v
        if v is not None:
            v.parent = u.parent

    def _minimum(self, node: _Node) -> _Node:
        while node.left is not None:
            node = node.left
        return node

    def _delete(self, z: _Node) -> None:
        # CLRS delete with a None-safe fixup (no sentinel node): track the
        # fixup position by (node, parent) so a None child still fixes up.
        y = z
        y_original_color = y.color
        if z.left is None:
            x, x_parent = z.right, z.parent
            self._transplant(z, z.right)
        elif z.right is None:
            x, x_parent = z.left, z.parent
            self._transplant(z, z.left)
        else:
            y = self._minimum(z.right)
            y_original_color = y.color
            x = y.right
            if y.parent is z:
                x_parent = y
            else:
                x_parent = y.parent
                self._transplant(y, y.right)
                y.right = z.right
                y.right.parent = y
            self._transplant(z, y)
            y.left = z.left
            y.left.parent = y
            y.color = z.color
        if y_original_color == BLACK:
            self._delete_fixup(x, x_parent)

    def _delete_fixup(self, x: Optional[_Node], parent: Optional[_Node]) -> None:
        while x is not self._root and (x is None or x.color == BLACK):
            assert parent is not None
            if x is parent.left:
                sibling = parent.right
                assert sibling is not None  # black-height guarantees it
                if sibling.color == RED:
                    sibling.color = BLACK
                    parent.color = RED
                    self._rotate_left(parent)
                    sibling = parent.right
                    assert sibling is not None
                if (sibling.left is None or sibling.left.color == BLACK) and (
                    sibling.right is None or sibling.right.color == BLACK
                ):
                    sibling.color = RED
                    x, parent = parent, parent.parent
                else:
                    if sibling.right is None or sibling.right.color == BLACK:
                        if sibling.left is not None:
                            sibling.left.color = BLACK
                        sibling.color = RED
                        self._rotate_right(sibling)
                        sibling = parent.right
                        assert sibling is not None
                    sibling.color = parent.color
                    parent.color = BLACK
                    if sibling.right is not None:
                        sibling.right.color = BLACK
                    self._rotate_left(parent)
                    x = self._root
                    parent = None
            else:
                sibling = parent.left
                assert sibling is not None
                if sibling.color == RED:
                    sibling.color = BLACK
                    parent.color = RED
                    self._rotate_right(parent)
                    sibling = parent.left
                    assert sibling is not None
                if (sibling.left is None or sibling.left.color == BLACK) and (
                    sibling.right is None or sibling.right.color == BLACK
                ):
                    sibling.color = RED
                    x, parent = parent, parent.parent
                else:
                    if sibling.left is None or sibling.left.color == BLACK:
                        if sibling.right is not None:
                            sibling.right.color = BLACK
                        sibling.color = RED
                        self._rotate_left(sibling)
                        sibling = parent.left
                        assert sibling is not None
                    sibling.color = parent.color
                    parent.color = BLACK
                    if sibling.left is not None:
                        sibling.left.color = BLACK
                    self._rotate_right(parent)
                    x = self._root
                    parent = None
        if x is not None:
            x.color = BLACK

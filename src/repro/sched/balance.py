"""Hierarchical load balancing -- the paper's Algorithm 1.

For every scheduling domain of a CPU, bottom-up:

1. only the *designated* core balances the domain -- the first idle core of
   the domain if any core is idle, otherwise its first core (Lines 2-9);
2. the load of every scheduling group is computed (Line 10-12);
3. the busiest group is picked, preferring overloaded then imbalanced groups
   (Line 13);
4. if the busiest group's load does not exceed the local group's, the level
   is considered balanced (Lines 15-16);
5. otherwise tasks move from the busiest CPU of that group to the balancing
   CPU, excluding CPUs whose tasks are all pinned elsewhere (Lines 18-23).

The **Group Imbalance** bug (Section 3.1) is step 3/4's metric: mainline
compares group *average* loads, so one very loaded core (a high-load R
thread) conceals idle cores on its node.  The fix compares group *minimum*
loads: if another group's least-loaded core is still busier than ours, a
steal is always justified.

Also here: ``newidle_balance`` ("emergency" balancing when a core is about
to idle) and the NOHZ machinery that lets tickless idle cores be balanced on
behalf of (Section 2.2.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, FrozenSet, List, Optional, Sequence, Set, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sched.domains import SchedDomain, SchedGroup
    from repro.sched.scheduler import Scheduler
    from repro.sched.task import Task


@dataclass
class GroupStats:
    """Load statistics of one scheduling group, as the balancer sees it."""

    group: "SchedGroup"
    cpus: Tuple[int, ...]
    avg_load: float
    min_load: float
    max_load: float
    nr_running: int
    capacity: int

    @property
    def overloaded(self) -> bool:
        """More runnable tasks than CPUs."""
        return self.nr_running > self.capacity

    @property
    def imbalanced(self) -> bool:
        """Uneven queue depths inside the group (taskset corner cases)."""
        return self.max_nr - self.min_nr >= 2

    # populated alongside load stats
    min_nr: int = 0
    max_nr: int = 0


def group_metric(sched: "Scheduler", stats: GroupStats) -> float:
    """The load value groups are compared by.

    Average on the buggy path; minimum when the Group Imbalance fix is on.
    Computing either has the same cost, as the paper notes.
    """
    if sched.features.fix_group_imbalance:
        return stats.min_load
    return stats.avg_load


def compute_group_stats(
    sched: "Scheduler", group: "SchedGroup", now: int
) -> Optional[GroupStats]:
    """Per-CPU loads folded into group statistics; None if no CPU is online."""
    cpus = tuple(
        sorted(c for c in group.cpus if sched.cpu(c).online)
    )
    if not cpus:
        return None
    loads = [sched.cpu(c).rq.load(now) for c in cpus]
    nrs = [sched.cpu(c).rq.nr_running for c in cpus]
    return GroupStats(
        group=group,
        cpus=cpus,
        avg_load=sum(loads) / len(loads),
        min_load=min(loads),
        max_load=max(loads),
        nr_running=sum(nrs),
        capacity=len(cpus),
        min_nr=min(nrs),
        max_nr=max(nrs),
    )


def find_busiest_group(
    sched: "Scheduler",
    domain: "SchedDomain",
    dst_cpu: int,
    now: int,
) -> Tuple[Optional[GroupStats], Optional[GroupStats]]:
    """(busiest, local) group stats for a balancing attempt.

    Busiest is the overloaded group with the highest metric, else the
    imbalanced group with the highest metric, else the group with the
    highest metric -- the paper's Line 13.  Returns ``(None, local)`` when
    the domain is already balanced from ``dst_cpu``'s point of view.
    """
    local_stats: Optional[GroupStats] = None
    others: List[GroupStats] = []
    examined: List[int] = []
    for group in domain.groups:
        stats = compute_group_stats(sched, group, now)
        if stats is None:
            continue
        examined.extend(stats.cpus)
        if dst_cpu in group.cpus and local_stats is None:
            local_stats = stats
        else:
            others.append(stats)
    sched.probe.on_considered(now, dst_cpu, "load_balance", examined)
    if local_stats is None or not others:
        return None, local_stats

    def best_of(candidates: Sequence[GroupStats]) -> Optional[GroupStats]:
        return max(
            candidates, key=lambda s: group_metric(sched, s), default=None
        )

    busiest = best_of([s for s in others if s.overloaded])
    if busiest is None:
        busiest = best_of([s for s in others if s.imbalanced])
    if busiest is None:
        busiest = best_of(others)
    if busiest is None:
        return None, local_stats
    # The busiest group must exceed the local one by the domain's
    # imbalance percentage, or migrating is not worth the disturbance
    # (and integer task counts would ping-pong forever).
    threshold = group_metric(sched, local_stats) * domain.imbalance_ratio
    if group_metric(sched, busiest) <= threshold:
        return None, local_stats
    return busiest, local_stats


def pick_busiest_cpu(
    sched: "Scheduler",
    stats: GroupStats,
    excluded: FrozenSet[int],
    now: int,
) -> Optional[int]:
    """The CPU with the most queued work in the group (Line 18)."""
    best = None
    best_key = None
    for cpu_id in stats.cpus:
        if cpu_id in excluded:
            continue
        rq = sched.cpu(cpu_id).rq
        if rq.nr_queued == 0:
            continue  # nothing stealable: the running task cannot move
        if rq.curr is None and rq.nr_queued < 2:
            # A queue with work but no running task is mid-dispatch (the
            # resched IPI window); stealing its only task would just move
            # the imbalance around.
            continue
        key = (rq.load(now), rq.nr_running)
        if best_key is None or key > best_key:
            best = cpu_id
            best_key = key
    return best


def detach_candidates(
    sched: "Scheduler", src_cpu: int, dst_cpu: int
) -> List["Task"]:
    """Queued tasks on ``src_cpu`` whose affinity allows ``dst_cpu``."""
    rq = sched.cpu(src_cpu).rq
    return [t for t in rq.queued_tasks() if t.can_run_on(dst_cpu)]


def compute_imbalance(
    sched: "Scheduler", busiest: GroupStats, local: GroupStats
) -> float:
    """The load budget a balancing attempt may migrate.

    The kernel's ``calculate_imbalance``: the amount of load that would
    bring the two groups to their common level, expressed in task-load
    units.  When the group metrics are nearly equal this is ~0 and nothing
    moves -- the precise mechanism that makes the Group Imbalance bug
    silent (the averages look equal even though cores idle).
    """
    gap = group_metric(sched, busiest) - group_metric(sched, local)
    if gap <= 0:
        return 0.0
    return gap / 2.0 * min(busiest.capacity, local.capacity)


def move_tasks(
    sched: "Scheduler",
    src_cpu: int,
    dst_cpu: int,
    now: int,
    reason: str,
    budget: float,
) -> int:
    """Migrate queued tasks from ``src_cpu``, spending at most ``budget``
    load (the kernel's ``detach_tasks`` loop).

    A task moves only when half its load fits the remaining budget; at
    least one task moves when the destination is idle and the budget is
    positive (the work-conserving "emergency" case).  Returns the number
    moved.
    """
    if budget <= 0:
        return 0
    moved = 0
    src_rq = sched.cpu(src_cpu).rq
    dst_rq = sched.cpu(dst_cpu).rq
    remaining = budget
    while True:
        candidates = detach_candidates(sched, src_cpu, dst_cpu)
        if not candidates:
            break
        if src_rq.load(now) <= dst_rq.load(now):
            break  # pairwise overshoot guard
        must_move = moved == 0 and dst_rq.nr_running == 0
        fitting = [t for t in candidates if 2 * t.load(now) <= remaining]
        if fitting:
            task = max(fitting, key=lambda t: t.load(now))
        elif must_move:
            task = min(candidates, key=lambda t: t.load(now))
        else:
            break
        sched.migrate_task(task, src_cpu, dst_cpu, now, reason)
        remaining -= task.load(now)
        moved += 1
        if dst_rq.nr_running >= src_rq.nr_running:
            break
    return moved


def balance_domain(
    sched: "Scheduler",
    domain: "SchedDomain",
    dst_cpu: int,
    now: int,
) -> int:
    """One balancing attempt at one domain level (Lines 10-23)."""
    busiest, local = find_busiest_group(sched, domain, dst_cpu, now)
    local_metric = group_metric(sched, local) if local is not None else 0.0
    if busiest is None:
        sched.probe.on_balance(
            now, dst_cpu, domain.name, local_metric, None, "balanced"
        )
        return 0
    busiest_metric = group_metric(sched, busiest)
    budget = compute_imbalance(sched, busiest, local)
    excluded: Set[int] = set()
    while True:
        src_cpu = pick_busiest_cpu(sched, busiest, frozenset(excluded), now)
        if src_cpu is None or src_cpu == dst_cpu:
            sched.probe.on_balance(
                now, dst_cpu, domain.name, local_metric, busiest_metric,
                "blocked",
            )
            return 0
        moved = move_tasks(
            sched, src_cpu, dst_cpu, now, f"balance:{domain.name}", budget
        )
        if moved:
            sched.probe.on_balance(
                now, dst_cpu, domain.name, local_metric, busiest_metric,
                f"moved:{moved}",
            )
            return moved
        # Lines 20-22: every candidate was pinned away from us; try the
        # next busiest CPU of the group.
        excluded.add(src_cpu)


def designated_cpu(
    sched: "Scheduler", domain: "SchedDomain", cpu_id: int
) -> int:
    """The core responsible for balancing this domain (Lines 2-6).

    The first idle core of the balancing CPU's local group when one exists
    (its free cycles pay for the balancing), otherwise the group's first
    core -- the kernel's ``should_we_balance`` election.  Overlapping NUMA
    groups restrict the election to the group's balance mask: that is what
    allows an idle remote node to balance on its own behalf once the
    Scheduling Group Construction fix builds per-perspective groups.
    """
    try:
        local = domain.local_group(cpu_id)
    except ValueError:
        return -1
    online = sorted(
        c for c in local.balance_mask() if sched.cpu(c).online
    )
    for candidate in online:
        if sched.cpu(candidate).is_idle:
            return candidate
    return online[0] if online else -1


def periodic_balance(
    sched: "Scheduler", cpu_id: int, now: int, force: bool = False
) -> int:
    """Run Algorithm 1 for one CPU across all its domains, bottom-up.

    Honors the designated-core rule and each level's balancing interval
    unless ``force`` is set (used by tests and the NOHZ path's first kick).
    """
    moved = 0
    cpu = sched.cpu(cpu_id)
    domains = sched.domain_builder.domains_of(cpu_id)
    while len(cpu.next_balance_us) < len(domains):
        cpu.next_balance_us.append(-1)
    for domain in domains:
        if cpu_id != designated_cpu(sched, domain, cpu_id):
            continue
        stamp = cpu.next_balance_us[domain.level]
        if stamp < 0:
            # A level never balanced before is immediately due: domains
            # were created long "before" the workload (the machine has
            # been up), so the first interval has long expired.
            stamp = now
        if not force and now < stamp:
            cpu.next_balance_us[domain.level] = stamp
            continue
        cpu.next_balance_us[domain.level] = now + domain.balance_interval_us
        moved += balance_domain(sched, domain, cpu_id, now)
    return moved


def newidle_balance(sched: "Scheduler", cpu_id: int, now: int) -> int:
    """Emergency balancing when a core is about to go idle.

    Walks the domains bottom-up and stops at the first level that yields
    work.  Uses the same ``find_busiest_group`` logic -- and therefore
    inherits the same bugs.
    """
    moved = 0
    for domain in sched.domain_builder.domains_of(cpu_id):
        moved += balance_domain(sched, domain, cpu_id, now)
        if moved:
            break
    return moved


def nohz_kick_target(sched: "Scheduler") -> Optional[int]:
    """The tickless idle core to wake as the NOHZ balancer (lowest id)."""
    for cpu in sched.cpus:
        if cpu.online and cpu.is_idle and cpu.tickless:
            return cpu.cpu_id
    return None


def nohz_idle_balance(sched: "Scheduler", balancer_cpu: int, now: int) -> int:
    """Periodic balancing run by the NOHZ balancer for all tickless cores.

    The balancer core runs the load-balancing routine "for itself and on
    behalf of all tickless idle cores" -- each idle core is balanced from
    its own perspective (steals land on that core).
    """
    sched.cpu(balancer_cpu).nohz_balancer = True
    moved = 0
    for cpu in sched.cpus:
        if not cpu.online or not cpu.is_idle:
            continue
        moved += periodic_balance(sched, cpu.cpu_id, now)
    return moved

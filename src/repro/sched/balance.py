"""Hierarchical load balancing -- the paper's Algorithm 1.

For every scheduling domain of a CPU, bottom-up:

1. only the *designated* core balances the domain -- the first idle core of
   the domain if any core is idle, otherwise its first core (Lines 2-9);
2. the load of every scheduling group is computed (Line 10-12);
3. the busiest group is picked, preferring overloaded then imbalanced groups
   (Line 13);
4. if the busiest group's load does not exceed the local group's, the level
   is considered balanced (Lines 15-16);
5. otherwise tasks move from the busiest CPU of that group to the balancing
   CPU, excluding CPUs whose tasks are all pinned elsewhere (Lines 18-23).

The **Group Imbalance** bug (Section 3.1) is step 3/4's metric: mainline
compares group *average* loads, so one very loaded core (a high-load R
thread) conceals idle cores on its node.  The fix compares group *minimum*
loads: if another group's least-loaded core is still busier than ours, a
steal is always justified.

Also here: ``newidle_balance`` ("emergency" balancing when a core is about
to idle) and the NOHZ machinery that lets tickless idle cores be balanced on
behalf of (Section 2.2.2).

A rebalance invocation reads every CPU's (load, nr_running) once per domain
level per group -- quadratic re-reads in the domain depth.  A
:class:`BalancePass` collects those per-CPU samples once into flat arrays
keyed by cpu id and folds every group's stats from them, memoized until a
migration dirties the load epoch.  The folds use the identical expressions
(and float-op order) as the uncached path, so balancing decisions -- and
therefore traces -- are byte-identical with the pass on or off.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Dict,
    FrozenSet,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
    cast,
)

from repro.sched.sanitizer import verify_designated, verify_group_stats

#: Gate sentinel above any reachable deadline: a CPU that currently wins
#: no level parks its gate here and is only re-armed by a watched idle
#: flip or a topology change (both zero the gate).
_NEVER_DUE = 1 << 62

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sched.domains import SchedDomain, SchedGroup
    from repro.sched.scheduler import Scheduler
    from repro.sched.task import Task
    from repro.sched.vecstate import VecState


@dataclass
class GroupStats:
    """Load statistics of one scheduling group, as the balancer sees it."""

    group: "SchedGroup"
    cpus: Tuple[int, ...]
    avg_load: float
    min_load: float
    max_load: float
    nr_running: int
    capacity: int

    @property
    def overloaded(self) -> bool:
        """More runnable tasks than CPUs."""
        return self.nr_running > self.capacity

    @property
    def imbalanced(self) -> bool:
        """Uneven queue depths inside the group (taskset corner cases)."""
        return self.max_nr - self.min_nr >= 2

    # populated alongside load stats
    min_nr: int = 0
    max_nr: int = 0


def group_metric(sched: "Scheduler", stats: GroupStats) -> float:
    """The load value groups are compared by.

    Average on the buggy path; minimum when the Group Imbalance fix is on.
    Computing either has the same cost, as the paper notes.
    """
    if sched.features.fix_group_imbalance:
        return stats.min_load
    return stats.avg_load


class BalancePass:
    """Per-CPU (load, nr_running) samples shared across one rebalance pass.

    The scheduler-lifetime :class:`~repro.sched.vecstate.VecState` is a
    drop-in alternative implementing the same sampling interface
    (``group_stats``/``designated_for``) plus a bulk busiest-group
    selection; every ``bpass`` parameter below accepts either.

    Samples fill flat arrays indexed by cpu id, lazily; each slot carries
    the runqueue mutation count it was sampled at, so a migration this
    very pass triggers re-samples only the two queues it touched.  Group
    stats are memoized per group with a member-mutation signature, and the
    designated-balancer memo keys off the idle epoch (elections read only
    online/idle flags).  One instance serves a whole tick: every
    designated CPU's domain walk *and* the NOHZ balancer's sweep over all
    idle CPUs reuse the same samples, since they all observe the same
    timestamp.
    """

    #: find_busiest_group routes to the bulk selection path when True.
    vectorized = False

    __slots__ = (
        "sched", "now", "_idle_epoch", "_div_epoch", "_loads", "_nrs",
        "_muts", "_groups", "_designated", "_sanitize",
    )

    def __init__(self, sched: "Scheduler", now: int):
        self.sched = sched
        self.now = now
        self._sanitize = sched.features.sanitize_coherence
        n = len(sched.cpus)
        self._idle_epoch = -1
        self._div_epoch = sched.divisor_epoch.value
        self._loads = [0.0] * n
        self._nrs = [0] * n
        #: Mutation count each slot was sampled at; -1 = never sampled.
        self._muts = [-1] * n
        # Memos are keyed by group identity: dataclass hashing of a
        # SchedGroup hashes its frozensets on every lookup, which shows up
        # in profiles.  Storing the group in the value keeps it alive, so
        # an id can never be recycled while its entry exists.  Groups are
        # interned per rebuild (DomainBuilder._make_group), so the same id
        # recurs across every CPU's domain walk and the memos are shared
        # between perspectives.  Entries are [group, stats, signature,
        # epoch]: the signature is the members' mutation counts at fold
        # time, the epoch the global load epoch the entry was last
        # validated at (when it is current, even the signature walk is
        # skipped).
        self._groups: Dict[
            int, List[object]
        ] = {}
        self._designated: Dict[int, Tuple["SchedGroup", int]] = {}

    def _refresh(self) -> None:
        # A cgroup divisor change re-weights loads without any runqueue
        # event, so it drops every sample and fold.  (It cannot actually
        # happen mid-pass -- attach/detach run from the event loop, not
        # from tick or balance code -- but the guard costs one compare.)
        div = self.sched.divisor_epoch.value
        if div != self._div_epoch:
            self._div_epoch = div
            self._muts = [-1] * len(self._muts)
            self._groups.clear()
        # The designated election reads only online/idle flags, so its
        # memo survives ordinary load churn and is dropped only when some
        # CPU crossed the idle<->busy boundary (or was hotplugged).
        idle = self.sched.idle_epoch.value
        if idle != self._idle_epoch:
            self._idle_epoch = idle
            self._designated.clear()

    def cpu_load_nr(self, cpu_id: int) -> Tuple[float, int]:
        """This CPU's (load, nr_running) at the pass timestamp."""
        self._refresh()
        rq = self.sched.cpus[cpu_id].rq
        mut = rq.mutations
        if self._muts[cpu_id] != mut:
            self._loads[cpu_id] = rq.load(self.now)
            # The incremental counter is maintained (and exact) in every
            # mode; reading it directly skips a property dispatch on the
            # hottest sampling path.
            self._nrs[cpu_id] = rq._nr_running
            self._muts[cpu_id] = mut
        return self._loads[cpu_id], self._nrs[cpu_id]

    def _signature(self, group: "SchedGroup") -> Tuple[int, ...]:
        cpus = self.sched.cpus
        return tuple(cpus[c].rq.mutations for c in group.sorted_cpus())

    def group_stats(self, group: "SchedGroup") -> Optional[GroupStats]:
        """Memoized :func:`compute_group_stats` for this pass.

        A memoized fold stays valid exactly while no member queue mutated
        (checked via the signature), so churn on one node never refolds
        another node's groups.
        """
        self._refresh()
        epoch = self.sched.load_epoch.value
        entry = self._groups.get(id(group))
        sig: Optional[Tuple[int, ...]] = None
        if entry is not None:
            if entry[3] == epoch:
                return self._stats_hit(group, entry[1])
            sig = self._signature(group)
            if entry[2] == sig:
                entry[3] = epoch
                return self._stats_hit(group, entry[1])
        stats = _fold_group_stats(self.sched, group, self.now, self)
        if sig is None:
            sig = self._signature(group)
        self._groups[id(group)] = [group, stats, sig, epoch]
        return stats

    def _stats_hit(
        self, group: "SchedGroup", cached: object
    ) -> Optional[GroupStats]:
        """A group-stats memo hit; sanitizer mode refolds and cross-checks.

        The refold bypasses this memo (``bpass=None``); its per-queue
        ``load()`` reads hit the runqueue memos, whose own sanitizer check
        recounts their mirrors, so the whole dependency chain is verified.
        """
        stats = cast(Optional[GroupStats], cached)
        if self._sanitize:
            fresh = _fold_group_stats(self.sched, group, self.now, None)
            verify_group_stats(group, stats, fresh)
        return stats

    def designated_for(self, group: "SchedGroup") -> int:
        """Memoized designated-balancer election for one local group."""
        mask = group.sorted_balance_mask()
        if len(mask) == 1:
            # A one-CPU mask (bottom-level groups) elects itself whether
            # idle or busy; no memo traffic needed.
            only = mask[0]
            return only if self.sched.cpus[only].online else -1
        self._refresh()
        entry = self._designated.get(id(group))
        if entry is not None:
            if self._sanitize:
                verify_designated(
                    group, entry[1], _elect_designated(self.sched, group)
                )
            return entry[1]
        winner = _elect_designated(self.sched, group)
        self._designated[id(group)] = (group, winner)
        return winner


#: Either sampling layer: the per-pass scalar ``BalancePass`` or the
#: persistent array-backed ``VecState`` -- same interface, and (by the
#: digest gate) byte-identical decisions.
SamplingPass = Union[BalancePass, "VecState"]


def _fold_group_stats(
    sched: "Scheduler",
    group: "SchedGroup",
    now: int,
    bpass: Optional[BalancePass],
) -> Optional[GroupStats]:
    """Fold per-CPU samples into one group's statistics.

    The fold mirrors the historical implementation expression for
    expression (same float-op order) so cached and uncached passes agree
    bit for bit.  The group's CPU tuple is already sorted (cached on the
    group; hotplug rebuilds make fresh groups), leaving only the online
    filter per call.
    """
    cpus = tuple(c for c in group.sorted_cpus() if sched.cpu(c).online)
    if not cpus:
        return None
    if bpass is not None:
        samples = [bpass.cpu_load_nr(c) for c in cpus]
        loads = [s[0] for s in samples]
        nrs = [s[1] for s in samples]
    else:
        loads = [sched.cpu(c).rq.load(now) for c in cpus]
        nrs = [sched.cpu(c).rq.nr_running for c in cpus]
    return GroupStats(
        group=group,
        cpus=cpus,
        avg_load=sum(loads) / len(loads),
        min_load=min(loads),
        max_load=max(loads),
        nr_running=sum(nrs),
        capacity=len(cpus),
        min_nr=min(nrs),
        max_nr=max(nrs),
    )


def compute_group_stats(
    sched: "Scheduler",
    group: "SchedGroup",
    now: int,
    bpass: Optional[SamplingPass] = None,
) -> Optional[GroupStats]:
    """Per-CPU loads folded into group statistics; None if no CPU is online."""
    if bpass is not None:
        return bpass.group_stats(group)
    return _fold_group_stats(sched, group, now, None)


def find_busiest_group(
    sched: "Scheduler",
    domain: "SchedDomain",
    dst_cpu: int,
    now: int,
    bpass: Optional[SamplingPass] = None,
) -> Tuple[Optional[GroupStats], Optional[GroupStats]]:
    """(busiest, local) group stats for a balancing attempt.

    Busiest is the overloaded group with the highest metric, else the
    imbalanced group with the highest metric, else the group with the
    highest metric -- the paper's Line 13.  Returns ``(None, local)`` when
    the domain is already balanced from ``dst_cpu``'s point of view.
    """
    if bpass is not None and bpass.vectorized:
        # Bulk path: folds and the three-tier selection run over the
        # persistent array mirror; decision-identical to the loop below
        # (the digest gate holds it to that).  The probe sees the same
        # examined set, in the same group order.
        probe = sched.probe
        active = probe.active
        busiest, local_stats, examined_t = cast(
            "VecState", bpass
        ).find_busiest(domain, dst_cpu, active)
        if active:
            probe.on_considered(now, dst_cpu, "load_balance", examined_t)
        return busiest, local_stats
    local_stats = None
    others: List[GroupStats] = []
    examined: List[int] = []
    for group in domain.groups:
        stats = compute_group_stats(sched, group, now, bpass)
        if stats is None:
            continue
        examined.extend(stats.cpus)
        if dst_cpu in group.cpus and local_stats is None:
            local_stats = stats
        else:
            others.append(stats)
    if sched.probe.active:
        sched.probe.on_considered(now, dst_cpu, "load_balance", examined)
    if local_stats is None or not others:
        return None, local_stats

    def best_of(candidates: Sequence[GroupStats]) -> Optional[GroupStats]:
        return max(
            candidates, key=lambda s: group_metric(sched, s), default=None
        )

    busiest = best_of([s for s in others if s.overloaded])
    if busiest is None:
        busiest = best_of([s for s in others if s.imbalanced])
    if busiest is None:
        busiest = best_of(others)
    if busiest is None:
        return None, local_stats
    # The busiest group must exceed the local one by the domain's
    # imbalance percentage, or migrating is not worth the disturbance
    # (and integer task counts would ping-pong forever).
    threshold = group_metric(sched, local_stats) * domain.imbalance_ratio
    if group_metric(sched, busiest) <= threshold:
        return None, local_stats
    return busiest, local_stats


def pick_busiest_cpu(
    sched: "Scheduler",
    stats: GroupStats,
    excluded: FrozenSet[int],
    now: int,
) -> Optional[int]:
    """The CPU with the most queued work in the group (Line 18)."""
    best = None
    best_key = None
    for cpu_id in stats.cpus:
        if cpu_id in excluded:
            continue
        rq = sched.cpu(cpu_id).rq
        if rq.nr_queued == 0:
            continue  # nothing stealable: the running task cannot move
        if rq.curr is None and rq.nr_queued < 2:
            # A queue with work but no running task is mid-dispatch (the
            # resched IPI window); stealing its only task would just move
            # the imbalance around.
            continue
        key = (rq.load(now), rq.nr_running)
        if best_key is None or key > best_key:
            best = cpu_id
            best_key = key
    return best


def detach_candidates(
    sched: "Scheduler", src_cpu: int, dst_cpu: int
) -> List["Task"]:
    """Queued tasks on ``src_cpu`` whose affinity allows ``dst_cpu``."""
    rq = sched.cpu(src_cpu).rq
    return [t for t in rq.queued_tasks() if t.can_run_on(dst_cpu)]


def compute_imbalance(
    sched: "Scheduler", busiest: GroupStats, local: GroupStats
) -> float:
    """The load budget a balancing attempt may migrate.

    The kernel's ``calculate_imbalance``: the amount of load that would
    bring the two groups to their common level, expressed in task-load
    units.  When the group metrics are nearly equal this is ~0 and nothing
    moves -- the precise mechanism that makes the Group Imbalance bug
    silent (the averages look equal even though cores idle).
    """
    gap = group_metric(sched, busiest) - group_metric(sched, local)
    if gap <= 0:
        return 0.0
    return gap / 2.0 * min(busiest.capacity, local.capacity)


def move_tasks(
    sched: "Scheduler",
    src_cpu: int,
    dst_cpu: int,
    now: int,
    reason: str,
    budget: float,
) -> int:
    """Migrate queued tasks from ``src_cpu``, spending at most ``budget``
    load (the kernel's ``detach_tasks`` loop).

    A task moves only when half its load fits the remaining budget; at
    least one task moves when the destination is idle and the budget is
    positive (the work-conserving "emergency" case).  Returns the number
    moved.
    """
    if budget <= 0:
        return 0
    moved = 0
    src_rq = sched.cpu(src_cpu).rq
    dst_rq = sched.cpu(dst_cpu).rq
    remaining = budget
    while True:
        candidates = detach_candidates(sched, src_cpu, dst_cpu)
        if not candidates:
            break
        if src_rq.load(now) <= dst_rq.load(now):
            break  # pairwise overshoot guard
        must_move = moved == 0 and dst_rq.nr_running == 0
        fitting = [t for t in candidates if 2 * t.load(now) <= remaining]
        if fitting:
            task = max(fitting, key=lambda t: t.load(now))
        elif must_move:
            task = min(candidates, key=lambda t: t.load(now))
        else:
            break
        sched.migrate_task(task, src_cpu, dst_cpu, now, reason)
        remaining -= task.load(now)
        moved += 1
        if dst_rq.nr_running >= src_rq.nr_running:
            break
    return moved


def balance_domain(
    sched: "Scheduler",
    domain: "SchedDomain",
    dst_cpu: int,
    now: int,
    bpass: Optional[SamplingPass] = None,
) -> int:
    """One balancing attempt at one domain level (Lines 10-23)."""
    busiest, local = find_busiest_group(sched, domain, dst_cpu, now, bpass)
    probe = sched.probe
    active = probe.active
    if busiest is None:
        # The metric values feed only the probe record; an inert probe
        # (no consumer attached) skips computing them entirely.
        if active:
            probe.on_balance(
                now, dst_cpu, domain.name,
                group_metric(sched, local) if local is not None else 0.0,
                None, "balanced",
            )
        return 0
    # busiest is never returned without a local group.
    local_metric = group_metric(sched, local) if active else 0.0
    busiest_metric = group_metric(sched, busiest) if active else 0.0
    budget = compute_imbalance(sched, busiest, local)
    excluded: Set[int] = set()
    while True:
        src_cpu = pick_busiest_cpu(sched, busiest, frozenset(excluded), now)
        if src_cpu is None or src_cpu == dst_cpu:
            if active:
                probe.on_balance(
                    now, dst_cpu, domain.name, local_metric,
                    busiest_metric, "blocked",
                )
            return 0
        moved = move_tasks(
            sched, src_cpu, dst_cpu, now, f"balance:{domain.name}", budget
        )
        if moved:
            if active:
                probe.on_balance(
                    now, dst_cpu, domain.name, local_metric,
                    busiest_metric, f"moved:{moved}",
                )
            return moved
        # Lines 20-22: every candidate was pinned away from us; try the
        # next busiest CPU of the group.
        excluded.add(src_cpu)


def _elect_designated(sched: "Scheduler", group: "SchedGroup") -> int:
    # Fast-path election: the mask is pre-sorted on the group (no per-call
    # sort); one walk finds the first idle candidate and remembers the
    # first online one.  Reads the incremental nr_running counter directly
    # (exact in every mode) instead of chaining two properties.
    cpus = sched.cpus
    first_online = -1
    for candidate in group.sorted_balance_mask():
        cpu = cpus[candidate]
        if not cpu.online:
            continue
        if cpu.rq._nr_running == 0:
            return candidate
        if first_online < 0:
            first_online = candidate
    return first_online


def _elect_designated_baseline(sched: "Scheduler", group: "SchedGroup") -> int:
    # Historical implementation, kept verbatim for the fast-paths-off mode
    # so `repro bench --compare` measures against pre-optimization costs.
    online = sorted(
        c for c in group.balance_mask() if sched.cpu(c).online
    )
    for candidate in online:
        if sched.cpu(candidate).is_idle:
            return candidate
    return online[0] if online else -1


def designated_cpu(
    sched: "Scheduler",
    domain: "SchedDomain",
    cpu_id: int,
    bpass: Optional[SamplingPass] = None,
) -> int:
    """The core responsible for balancing this domain (Lines 2-6).

    The first idle core of the balancing CPU's local group when one exists
    (its free cycles pay for the balancing), otherwise the group's first
    core -- the kernel's ``should_we_balance`` election.  Overlapping NUMA
    groups restrict the election to the group's balance mask: that is what
    allows an idle remote node to balance on its own behalf once the
    Scheduling Group Construction fix builds per-perspective groups.
    """
    try:
        local = domain.local_group(cpu_id)
    except ValueError:
        return -1
    if bpass is not None:
        return bpass.designated_for(local)
    return _elect_designated_baseline(sched, local)


def periodic_balance(
    sched: "Scheduler",
    cpu_id: int,
    now: int,
    force: bool = False,
    bpass: Optional[SamplingPass] = None,
) -> int:
    """Run Algorithm 1 for one CPU across all its domains, bottom-up.

    Honors the designated-core rule and each level's balancing interval
    unless ``force`` is set (used by tests and the NOHZ path's first kick).
    """
    moved = 0
    cpu = sched.cpus[cpu_id]
    if bpass is not None and bpass.vectorized:
        # Whole-walk gate: the mirror records, per CPU, the earliest
        # next-balance deadline among the levels the CPU currently wins.
        # While that sits in the future, every level below is either not
        # due or not won -- the walk would attempt nothing, emit nothing,
        # and stamp nothing -- so it is skipped wholesale.  Any idle
        # flip (the only election input that moves between topology
        # rebuilds) disarms every gate via the global flip token;
        # ``force`` bypasses the check and leaves the gate untouched (a
        # disarmed gate only costs one extra real walk).
        vstate = cast("VecState", bpass)
        if not force and vstate.gated(cpu_id, now):
            return 0
        # Token snapshot: this walk's own migrations flip idle states
        # that may re-elect this very CPU; set_gate refuses the final
        # stamp if the token moved under the walk.
        gate_tok = vstate.gate_token()
        # Vectorized path: the per-level (domain, local group, solo
        # winner) triple never changes between topology rebuilds, so it
        # is planned once per domain generation and cached on the Cpu.
        # Single-CPU balance masks (every bottom-level group) elect
        # themselves without even a memo probe; wider masks go through
        # VecState's election memo, which is invalidated per CPU on
        # real idle<->busy transitions and therefore outlives the
        # global idle epoch (which sleeper churn bumps thousands of
        # times a second).
        builder = sched.domain_builder
        plan = cpu.balance_plan
        if plan is None or cpu.balance_plan_gen != builder.generation:
            domains = builder.domains_of(cpu_id)
            while len(cpu.next_balance_us) < len(domains):
                cpu.next_balance_us.append(-1)
            plan = []
            for domain in domains:
                try:
                    local = domain.local_group(cpu_id)
                except ValueError:
                    plan.append((domain, None, -1))
                    continue
                mask = local.sorted_balance_mask()
                solo = mask[0] if len(mask) == 1 else -1
                plan.append((domain, local, solo))
            cpu.balance_plan = plan
            cpu.balance_plan_gen = builder.generation
        cpus = sched.cpus
        next_balance = cpu.next_balance_us
        gate = _NEVER_DUE
        for domain, local, solo in plan:
            if local is None:
                continue  # no local group here: never the winner
            # Election before the interval check (the reverse of the
            # scalar loop): elections read only idle/online flags, are
            # memoized, and emit nothing, so the reorder is unobservable
            # -- and the gate needs the winner of non-due levels too.
            if solo >= 0:
                winner = solo if cpus[solo].online else -1
            else:
                winner = bpass.designated_for(local)
            if cpu_id != winner:
                continue
            stamp = next_balance[domain.level]
            if not force and 0 <= stamp and now < stamp:
                if stamp < gate:
                    gate = stamp
                continue
            stamp = now + domain.balance_interval_us
            next_balance[domain.level] = stamp
            if stamp < gate:
                gate = stamp
            moved += balance_domain(sched, domain, cpu_id, now, bpass)
        if not force:
            vstate.set_gate(cpu_id, gate, gate_tok)
        return moved
    domains = sched.domain_builder.domains_of(cpu_id)
    while len(cpu.next_balance_us) < len(domains):
        cpu.next_balance_us.append(-1)
    memo = cpu.designated_memo
    while len(memo) < len(domains):
        memo.append([-1, -1])
    for domain in domains:
        # Interval gate first: a level that is not due yet skips the
        # designated-CPU election entirely (the election only reads
        # idle/online state, so skipping it is unobservable).  A level
        # never balanced before (stamp < 0) is immediately due: domains
        # were created long "before" the workload (the machine has been
        # up), so the first interval has long expired.
        stamp = cpu.next_balance_us[domain.level]
        if not force and 0 <= stamp and now < stamp:
            continue
        if bpass is not None:
            # Elections depend only on idle/online flags, so a per-level
            # memo on the Cpu stays valid across ticks until some CPU
            # crosses the idle<->busy boundary.  Re-read the epoch per
            # level: balancing the level below may have migrated work.
            slot = memo[domain.level]
            idle_epoch = sched.idle_epoch.value
            if slot[0] == idle_epoch:
                winner = slot[1]
                if sched.features.sanitize_coherence:
                    # Memo-free baseline election (reads live online/idle
                    # state only) cross-checks the per-level memo hit.
                    verify_designated(
                        None, winner,
                        designated_cpu(sched, domain, cpu_id, None),
                    )
            else:
                winner = designated_cpu(sched, domain, cpu_id, bpass)
                slot[0] = idle_epoch
                slot[1] = winner
        else:
            winner = designated_cpu(sched, domain, cpu_id, None)
        if cpu_id != winner:
            continue
        cpu.next_balance_us[domain.level] = now + domain.balance_interval_us
        moved += balance_domain(sched, domain, cpu_id, now, bpass)
    return moved


def newidle_balance(sched: "Scheduler", cpu_id: int, now: int) -> int:
    """Emergency balancing when a core is about to go idle.

    Walks the domains bottom-up and stops at the first level that yields
    work.  Uses the same ``find_busiest_group`` logic -- and therefore
    inherits the same bugs.
    """
    bpass = sched.vec_pass(now)
    moved = 0
    for domain in sched.domain_builder.domains_of(cpu_id):
        moved += balance_domain(sched, domain, cpu_id, now, bpass)
        if moved:
            break
    return moved


def nohz_kick_target(sched: "Scheduler") -> Optional[int]:
    """The tickless idle core to wake as the NOHZ balancer (lowest id)."""
    for cpu in sched.cpus:
        if cpu.online and cpu.is_idle and cpu.tickless:
            return cpu.cpu_id
    return None


def nohz_idle_balance(
    sched: "Scheduler",
    balancer_cpu: int,
    now: int,
    bpass: Optional[SamplingPass] = None,
) -> int:
    """Periodic balancing run by the NOHZ balancer for all tickless cores.

    The balancer core runs the load-balancing routine "for itself and on
    behalf of all tickless idle cores" -- each idle core is balanced from
    its own perspective (steals land on that core).  All those
    perspectives share one timestamp, so a shared :class:`BalancePass`
    collapses their group-stats reads into one sampling sweep.
    """
    sched.cpu(balancer_cpu).nohz_balancer = True
    moved = 0
    if bpass is not None and bpass.vectorized:
        # Due-reduction: a non-due CPU's periodic_balance would hit its
        # gate and return 0 with no observables, so asking the mirror
        # "which gates have expired?" in one array reduction and walking
        # only those (in ascending id order, matching the scalar sweep)
        # is trace-identical.  Offline/busy CPUs may appear (gates are
        # not maintained for them) and are filtered exactly as below.
        # One wrinkle: a walk's migrations can zero a *later* CPU's gate
        # mid-sweep, which the lazy reference would observe on reaching
        # that CPU -- the global gate token detects that and recomputes
        # the due set for the ids not yet visited.
        vstate = cast("VecState", bpass)
        cpus = sched.cpus
        tok = vstate.gate_token()
        due = vstate.balance_due(now)
        i = 0
        while i < len(due):
            cpu_id = due[i]
            i += 1
            cpu = cpus[cpu_id]
            if not cpu.online or not cpu.is_idle:
                continue
            moved += periodic_balance(sched, cpu_id, now, bpass=bpass)
            fresh = vstate.gate_token()
            if fresh != tok:
                tok = fresh
                due = [c for c in vstate.balance_due(now) if c > cpu_id]
                i = 0
        return moved
    for cpu in sched.cpus:
        if not cpu.online or not cpu.is_idle:
            continue
        moved += periodic_balance(sched, cpu.cpu_id, now, bpass=bpass)
    return moved

"""Runtime cross-checks of the fast-path coherence contract.

The static half of this contract lives in
``repro.analysis.rules.coherence``: a whole-program pass derives, for each
cached accessor, the fields its memoized value depends on, and proves every
write to those fields is dominated by the matching epoch/mutation bump.
This module is the *dynamic* half, generated from the same dependency
facts: with ``SchedFeatures.sanitize_coherence`` on, every memo **hit**
recomputes the value from first principles and raises
:class:`CoherenceError` naming the divergent field if the cached copy
drifted.  A hit is exactly the moment a missing bump becomes observable --
on a miss the caches are refilled and any staleness is silently healed.

``FACTS`` pins the analyzer's derived dependency sets.  The ``sched``
layer must not import ``repro.analysis`` (layering contract), so the facts
are restated here and a test asserts they equal
``repro.analysis.rules.coherence.derived_facts()`` run over the shipped
tree -- if a cached accessor grows a new dependency, both the analyzer
and this table notice.

The checks are deliberately O(recompute): the sanitizer mode exists for
CI soaks and bug hunts, not production runs.  ``repro bench`` never
enables it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, FrozenSet, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sched.balance import GroupStats
    from repro.sched.domains import SchedGroup
    from repro.sched.runqueue import RunQueue

#: (class, field) dependency sets of each cached accessor, as derived by
#: the static analyzer (``derived_facts`` in the coherence rule).  Keys
#: match the analyzer's accessor labels.
FACTS: Dict[str, FrozenSet[Tuple[str, str]]] = {
    "runqueue-load": frozenset(
        {
            ("RunQueue", "_tree"),
            ("RunQueue", "curr"),
            ("CGroup", "_members"),
            ("CGroup", "_avg_threads"),
        }
    ),
    "group-stats": frozenset(
        {
            ("RunQueue", "_tree"),
            ("RunQueue", "curr"),
            ("RunQueue", "_nr_running"),
            ("CGroup", "_members"),
            ("CGroup", "_avg_threads"),
            ("Cpu", "online"),
        }
    ),
    "designated-balancer": frozenset(
        {
            ("Cpu", "online"),
            ("RunQueue", "_nr_running"),
        }
    ),
}


class CoherenceError(AssertionError):
    """A cached value diverged from its from-scratch recomputation.

    Raised only in sanitizer mode, at the memo hit that exposed the
    drift.  ``field`` names the stale quantity; ``cached`` and ``fresh``
    carry both values for the failure report.
    """

    def __init__(
        self, accessor: str, field: str, cached: object, fresh: object
    ):
        self.accessor = accessor
        self.field = field
        self.cached = cached
        self.fresh = fresh
        super().__init__(
            f"coherence violation in {accessor}: {field} cached as "
            f"{cached!r} but recomputes to {fresh!r} -- some write to a "
            f"dependency of {accessor} skipped its epoch/mutation bump"
        )


def verify_rq_load(rq: "RunQueue", now: int, cached: float) -> None:
    """Cross-check a load-memo hit against the from-scratch summation.

    Also recounts the incremental ``_nr_running`` / ``_total_weight``
    mirrors: they share the memo's dependency set (tree + curr), and a
    direct, unbumped write to either mirror is invisible to the load memo
    key but corrupts every balancing decision reading it.
    """
    fresh = sum(task.load(now) for task in rq.all_tasks())
    if fresh != cached:
        raise CoherenceError("runqueue-load", "load", cached, fresh)
    nr = len(rq._tree) + (1 if rq.curr is not None else 0)
    if nr != rq._nr_running:
        raise CoherenceError(
            "runqueue-load", "_nr_running", rq._nr_running, nr
        )
    weight = sum(task.weight for task in rq.all_tasks())
    if weight != rq._total_weight:
        raise CoherenceError(
            "runqueue-load", "_total_weight", rq._total_weight, weight
        )


def verify_group_stats(
    group: "SchedGroup",
    cached: Optional["GroupStats"],
    fresh: Optional["GroupStats"],
) -> None:
    """Cross-check a group-stats memo hit against a memo-free refold."""
    if (cached is None) != (fresh is None):
        raise CoherenceError("group-stats", "stats", cached, fresh)
    if cached is None or fresh is None:
        return
    for field in (
        "cpus",
        "avg_load",
        "min_load",
        "max_load",
        "nr_running",
        "capacity",
        "min_nr",
        "max_nr",
    ):
        got = getattr(cached, field)
        want = getattr(fresh, field)
        if got != want:
            raise CoherenceError("group-stats", field, got, want)


def verify_designated(
    group: Optional["SchedGroup"], cached: int, fresh: int
) -> None:
    """Cross-check a designated-balancer memo hit against a re-election."""
    if cached != fresh:
        raise CoherenceError("designated-balancer", "winner", cached, fresh)

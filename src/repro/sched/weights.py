"""Nice-level weight table.

CFS converts a task's nice level (-20 .. +19) into a weight via a fixed
table (kernel ``sched_prio_to_weight``); CPU time is divided among runnable
tasks in proportion to weight.  Each step of nice is ~1.25x, so a task at
nice ``n`` receives about 10% more CPU than one at ``n + 1``.
"""

from __future__ import annotations

#: Weight of a nice-0 task; the unit in which runqueue load is expressed.
NICE_0_WEIGHT = 1024

#: Kernel ``sched_prio_to_weight`` table, indexed by ``nice + 20``.
PRIO_TO_WEIGHT = (
    88761, 71755, 56483, 46273, 36291,
    29154, 23254, 18705, 14949, 11916,
    9548, 7620, 6100, 4904, 3906,
    3121, 2501, 1991, 1586, 1277,
    1024, 820, 655, 526, 423,
    335, 272, 215, 172, 137,
    110, 87, 70, 56, 45,
    36, 29, 23, 18, 15,
)

#: Inverse weights (2**32 / weight) used by the kernel to turn divisions
#: into multiplications; we expose it for parity and tests.
PRIO_TO_WMULT = tuple((1 << 32) // w for w in PRIO_TO_WEIGHT)

MIN_NICE = -20
MAX_NICE = 19


def weight_for_nice(nice: int) -> int:
    """Weight for a nice level; raises ``ValueError`` outside -20..19."""
    if not MIN_NICE <= nice <= MAX_NICE:
        raise ValueError(f"nice {nice} out of range [{MIN_NICE}, {MAX_NICE}]")
    return PRIO_TO_WEIGHT[nice - MIN_NICE]


def nice_for_weight(weight: int) -> int:
    """Closest nice level whose table weight matches ``weight``.

    Used when reconstructing nice levels from recorded loads in traces.
    """
    if weight <= 0:
        raise ValueError(f"weight must be positive, got {weight}")
    best_nice = MIN_NICE
    best_diff = None
    for idx, w in enumerate(PRIO_TO_WEIGHT):
        diff = abs(w - weight)
        if best_diff is None or diff < best_diff:
            best_diff = diff
            best_nice = idx + MIN_NICE
    return best_nice


def vruntime_delta(exec_time_us: int, weight: int) -> int:
    """Weighted runtime charged to a task's vruntime.

    A nice-0 task accrues vruntime equal to wall execution time; heavier
    tasks accrue it more slowly, lighter tasks faster:
    ``delta = exec_time * NICE_0_WEIGHT / weight``.
    """
    if exec_time_us < 0:
        raise ValueError(f"negative exec time {exec_time_us}")
    if weight <= 0:
        raise ValueError(f"weight must be positive, got {weight}")
    return (exec_time_us * NICE_0_WEIGHT) // weight

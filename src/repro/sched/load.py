"""The load-tracking metric.

The paper (Section 2.2.1): *"CFS balances runqueues not just based on
weights, but based on a metric called load, which is the combination of the
thread's weight and its average CPU utilization"*, further divided by the
thread count of the task's autogroup.

We model the kernel's decaying utilization average (PELT) with a continuous
exponential moving average over run/idle intervals: utilization converges
toward 1 while the task runs and toward 0 while it sleeps, with the kernel's
~32 ms half-life.  The tracker is timestamp-based so sleeping tasks cost
nothing until they are observed again.
"""

from __future__ import annotations

import math

#: Half-life of the utilization average, microseconds (PELT uses 32 ms).
UTIL_HALFLIFE_US = 32_000

#: Exponential time constant tau such that 0.5 = exp(-halflife / tau).
UTIL_TAU_US = UTIL_HALFLIFE_US / math.log(2.0)


class LoadEpoch:
    """A shared dirty counter for everything that can change a task's load.

    One instance is shared by every runqueue of a scheduler and by its
    cgroup manager.  Any mutation that can alter any queue's load -- a task
    enqueued, dequeued, migrated, its running state flipped, or a cgroup
    membership change (which moves the autogroup divisor of *every* member
    thread, with no runqueue event at all) -- bumps the counter.

    Caches key themselves by ``(now, epoch.value)``: a hit is guaranteed
    fresh because nothing load-affecting happened since the cached
    computation.  Invalidation is deliberately global and conservative; the
    win comes from balance passes that read every queue several times at the
    same timestamp between mutations.
    """

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def bump(self) -> None:
        self.value += 1

    def __repr__(self) -> str:
        return f"LoadEpoch({self.value})"


class LoadTracker:
    """Decaying CPU-utilization average for one task.

    ``util`` is a float in [0, 1]: the fraction of recent wall time the task
    spent executing.  Call :meth:`update` whenever the task's running state
    is about to change (or when a fresh value is needed), passing whether the
    task was running *since the previous update*.
    """

    __slots__ = ("util", "last_update_us")

    def __init__(self, now: int = 0, initial_util: float = 1.0):
        # New tasks start at full utilization like the kernel, which makes a
        # fork-heavy workload immediately visible to the balancer.
        self.util = initial_util
        self.last_update_us = now

    def update(self, now: int, was_running: bool) -> float:
        """Fold the interval ``[last_update, now]`` into the average.

        Returns the new utilization.  ``now`` earlier than the last update
        is ignored (can happen when several subsystems observe the same
        microsecond).
        """
        delta = now - self.last_update_us
        if delta <= 0:
            return self.util
        target = 1.0 if was_running else 0.0
        if self.util == target:
            # Converged average: target + (util - target) * decay is
            # exactly target for any decay, so skip the exp().  A task
            # that runs (or sleeps) for ~53 half-lives converges to the
            # target *exactly* in IEEE double -- steady-state hogs hit
            # this on every subsequent update.
            self.last_update_us = now
            return self.util
        decay = math.exp(-delta / UTIL_TAU_US)
        self.util = target + (self.util - target) * decay
        self.last_update_us = now
        return self.util

    def peek(self, now: int, is_running: bool) -> float:
        """Utilization at ``now`` without mutating the tracker."""
        delta = now - self.last_update_us
        if delta <= 0:
            return self.util
        target = 1.0 if is_running else 0.0
        if self.util == target:
            # Same exact-convergence shortcut as update(): the decayed
            # value is bit-identical to the target, no exp() needed.
            return self.util
        decay = math.exp(-delta / UTIL_TAU_US)
        return target + (self.util - target) * decay

    def __repr__(self) -> str:
        return f"LoadTracker(util={self.util:.3f}, at={self.last_update_us})"


def task_load(weight: int, util: float, group_divisor: int) -> float:
    """The balancing load of one task.

    ``weight * utilization / autogroup-thread-count`` -- exactly the three
    ingredients the paper names.  A sleeping-but-runnable task keeps its
    recent utilization, so load decays smoothly rather than dropping to zero.
    """
    if weight <= 0:
        raise ValueError(f"weight must be positive, got {weight}")
    if group_divisor <= 0:
        raise ValueError(f"group divisor must be positive, got {group_divisor}")
    util = min(max(util, 0.0), 1.0)
    return weight * util / group_divisor

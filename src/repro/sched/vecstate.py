"""Persistent struct-of-arrays mirror of per-CPU scheduler state.

:class:`VecState` is the vectorized successor of
:class:`~repro.sched.balance.BalancePass`: instead of rebuilding flat
sample arrays for every rebalance pass, one scheduler-lifetime instance
keeps flat (load, nr_running) mirrors -- the loads as the exact objects
the queues returned (see the object-exactness note in
:mod:`repro.sched.vec`) -- and keeps them coherent through the existing
epoch-bump protocol:

* every load-affecting runqueue mutation calls :meth:`mark_dirty` (wired
  next to the queue's own ``mutations`` bump), which queues the slot for
  resampling and advances the private fold version;
* a new pass timestamp invalidates every load sample at once (loads are
  a function of ``now``); the resample sweep reads each queue's
  memoized ``load(now)``, so the mirrored floats are the *same objects*
  the scalar path computes;
* cgroup divisor bumps drop all load samples, idle-epoch bumps drop the
  designated-balancer memo, hotplug (:meth:`on_topology_change`) drops
  the interned group/domain index caches -- exactly the invalidation
  triggers ``BalancePass._refresh`` honors, checked per lookup so
  mid-pass epoch traffic is observed just like the per-pass layer.

Group folds gather member slots through pre-built gather plans (one per
interned :class:`~repro.sched.domains.SchedGroup`) and reduce them with
an in-frame scalar loop below the backend's ``bulk_min`` width, the
backend kernel at or above it; sums keep the scalar path's sequential
float-op order (see :mod:`repro.sched.vec` for why), so folded
:class:`~repro.sched.balance.GroupStats` are bit-identical to the
uncached fold and schedule digests match across all variants.  A fold
is memoized as a flat list of its six reductions keyed ``(now,
version)``; the :class:`~repro.sched.balance.GroupStats` object is
materialized from it lazily, only when a caller actually receives the
group (most folds lose the three-tier selection and are never handed
out).  Because the instance persists, the synchronized bursts of
newidle passes that share one timestamp -- which previously each
rebuilt a fresh ``BalancePass`` -- collapse into memo hits.

The vruntime floor and idle flags of the issue's mirror are exposed via
:meth:`snapshot`; ``min_vruntime`` advances without epoch traffic (by
design -- see ``RunQueue.update_min_vruntime``), so the floor is sampled
on read rather than pretending an incremental mirror could stay
coherent.  No balancing decision consumes it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.sched import vec
from repro.sched.balance import (
    GroupStats,
    _elect_designated,
    _fold_group_stats,
)
from repro.sched.sanitizer import verify_designated, verify_group_stats

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sched.domains import SchedDomain, SchedGroup
    from repro.sched.scheduler import Scheduler

#: A group's cached gather plan: (group, online members sorted, member
#: count).  The group reference keeps the interned object alive so its
#: id can never be recycled while the entry exists.
_GroupEntry = Tuple["SchedGroup", Tuple[int, ...], int]

#: Flat fold-memo entry (a list, for in-place re-stamping):
#: [group, now, version, load_sum, load_min, load_max,
#:  nr_sum, nr_min, nr_max, stats-or-None, cpus, member count,
#:  group dirty count].
#: Slots 3..8 are the six reductions in the exact objects the scalar
#: fold produces; slot 9 caches the lazily-materialized GroupStats.
#: Slot 12 is the group's dirty counter at fold time: the counter only
#: moves when a member slot's mirrored value actually changed, so a
#: matching count revalidates the fold across timestamps in O(1) (and
#: the entry is re-stamped in place, like BalancePass's epoch slot).
_F_STATS = 9
_F_DIRTY = 12


class _DomainCache:
    """Per-domain selection plan: nonempty groups, in declaration order."""

    __slots__ = (
        "domain", "entries", "examined", "local_slot", "ratio", "pair",
    )

    def __init__(
        self,
        domain: "SchedDomain",
        entries: List[_GroupEntry],
        examined: Tuple[int, ...],
        local_slot: Dict[int, int],
    ):
        self.domain = domain
        self.entries = entries
        #: Concatenation of every nonempty group's member tuple -- the
        #: ``examined`` list find_busiest_group reports to the probe.
        self.examined = examined
        #: First group slot containing each CPU (the scalar path's
        #: "first group with stats containing dst_cpu" local rule).
        self.local_slot = local_slot
        #: The domain's imbalance threshold, hoisted off the dataclass.
        self.ratio = domain.imbalance_ratio
        #: The two member CPUs when the domain is exactly two one-CPU
        #: groups (every SMT level on the reference topology -- half of
        #: all balancing attempts), else None.  Such domains get a
        #: closed-form selection that never touches the fold memo: a
        #: singleton's fold is used by no other domain, so memoizing it
        #: is pure overhead (the designated rule already guarantees one
        #: attempt per domain per timestamp).
        self.pair = (
            (entries[0][1][0], entries[1][1][0])
            if len(entries) == 2 and entries[0][2] == 1 and entries[1][2] == 1
            else None
        )


class VecState:
    """Array-backed balance sampling layer (one per scheduler)."""

    #: Lets ``find_busiest_group`` route to the bulk path without an
    #: isinstance check against this module (BalancePass carries False).
    vectorized = True

    __slots__ = (
        "sched", "ops", "now", "_n", "_bulk", "_loads", "_nrs", "_dirty",
        "_dirty_list", "_loads_at", "_version", "_div_ref",
        "_div_epoch", "_gidx", "_gstats", "_designated", "_desig_by_cpu",
        "_domains", "_sanitize", "_use_min", "_scratch_folds",
        "_grp_dirty", "_slot_grps", "_gate", "_gate_arm", "_gate_tok",
    )

    def __init__(self, sched: "Scheduler"):
        self.sched = sched
        self.ops = vec.make_ops(sched.features.vec_backend)
        n = len(sched.cpus)
        self._n = n
        self._bulk = self.ops.bulk_min
        self.now = -1
        #: Exact load objects as returned by each queue's ``load(now)``
        #: -- a plain list on every backend, because an idle queue's
        #: load is the *int* zero and the digest distinguishes int from
        #: float fields (see the object-exactness note in
        #: :mod:`repro.sched.vec`).
        self._loads: List[float] = [0.0] * n
        self._nrs: List[int] = [0] * n
        #: Slots whose queue mutated since their last resample.  The
        #: flag array dedups; the list makes the drain proportional to
        #: the churn, not the machine size.
        self._dirty = [False] * n
        self._dirty_list: List[int] = []
        #: Timestamp every non-dirty load slot is valid at (-1 = none).
        self._loads_at = -1
        #: Fold version: bumped by every mutation/epoch invalidation, so
        #: a (now, version) pair keys the group-stats memos.
        self._version = 0
        self._div_ref = sched.divisor_epoch
        self._div_epoch = self._div_ref.value
        #: id(group) -> gather plan; id(group) -> flat fold-memo entry
        #: (see module constants); id(group) -> (group, winner);
        #: id(domain) -> plan.
        self._gidx: Dict[int, _GroupEntry] = {}
        self._gstats: Dict[int, List[object]] = {}
        self._designated: Dict[int, Tuple["SchedGroup", int]] = {}
        #: Per-CPU reverse index of the election memo: the id of every
        #: group whose memoized winner read this CPU's idle flag.  An
        #: idle<->busy transition invalidates exactly those entries
        #: (dict-as-ordered-set so re-registration stays idempotent).
        self._desig_by_cpu: List[Dict[int, bool]] = [{} for _ in range(n)]
        self._domains: Dict[int, _DomainCache] = {}
        #: Reused fold-slot buffer for find_busiest: the per-call list
        #: was the only bulk-path allocation left on the steady state
        #: (the hot-path-alloc analyzer's top per-call site).  The
        #: buffer never escapes: every slot it holds is either a memo
        #: entry owned by ``_gstats`` or a fresh fold that ``_fold_entry``
        #: already registered there.
        self._scratch_folds: List[List[object]] = []
        #: Per-group dirty counter: ``id(group) -> count``, bumped by
        #: every mirror rewrite of any member slot (identity check --
        #: the queues' load memo returns the *same object* while nothing
        #: changed).  Fold memos record the count at fold time (slot
        #: ``_F_DIRTY``); counts never decrease, so an equal count at a
        #: later (now, version) proves every input object unchanged and
        #: revalidates the fold in O(1) -- the old per-member
        #: generation-sum probe paid O(group) per probe, which was the
        #: top scalar-residue line on soak64.
        self._grp_dirty: Dict[int, int] = {}
        #: Reverse index for the counters: every registered group
        #: containing the slot (built with the gather plans, dropped on
        #: hotplug with them).
        self._slot_grps: List[List["SchedGroup"]] = [[] for _ in range(n)]
        #: Per-CPU periodic-balance gate: the earliest ``next_balance``
        #: deadline among the levels this CPU currently wins at its
        #: cached plan.  ``gate > now`` proves the whole domain walk is
        #: a no-op (no due level the CPU would act on), so the walk is
        #: skipped wholesale.  A gate is live only while its arming
        #: token (below) matches the global flip token; 0 = due either
        #: way, forcing one real walk which re-arms the gate.
        self._gate: List[int] = [0] * n
        #: Token each gate was armed at.  Elections read idle flags, so
        #: *any* idle<->busy flip may promote some CPU to winner of an
        #: already-due level; bumping one global token invalidates every
        #: gate in O(1) instead of walking reverse watch lists (whose
        #: zero-loops cost more than the gates saved under flip churn).
        self._gate_arm: List[int] = [-1] * n
        #: The global flip token.  Also serves the mid-walk hazard: a
        #: walk snapshots it on entry and its final stamp is refused if
        #: the token moved (the walk's own migrations flip idle states),
        #: and the NOHZ due-sweep recomputes its due list when the token
        #: moves under it.
        self._gate_tok = 0
        self._sanitize = sched.features.sanitize_coherence
        self._use_min = sched.features.fix_group_imbalance

    # -- coherence ---------------------------------------------------------

    def begin(self, now: int) -> "VecState":
        """Start (or join) a pass at ``now``; returns self for chaining."""
        self.now = now
        return self

    def mark_dirty(self, cpu_id: int) -> None:
        """A load-affecting mutation happened on this CPU's queue."""
        if not self._dirty[cpu_id]:
            self._dirty[cpu_id] = True
            self._dirty_list.append(cpu_id)
        self._version += 1

    def mark_idle_change(self, cpu_id: int) -> None:
        """This CPU crossed the idle<->busy boundary.

        Wired next to the queue's ``idle_epoch.bump()`` sites.  Elections
        read only idle/online flags, so instead of dropping the whole
        election memo on the (global) idle epoch -- which sleeper churn
        bumps thousands of times a second -- only the entries whose mask
        includes this CPU are dropped, via the reverse index.
        """
        bucket = self._desig_by_cpu[cpu_id]
        if bucket:
            designated = self._designated
            for gid in bucket:
                designated.pop(gid, None)
            bucket.clear()
        self._gate_tok += 1

    def on_topology_change(self) -> None:
        """Hotplug rebuilt the domains: drop every interned index/memo."""
        self._gidx.clear()
        self._gstats.clear()
        self._designated.clear()
        for bucket in self._desig_by_cpu:
            bucket.clear()
        self._domains.clear()
        self._loads_at = -1
        self._version += 1
        self._grp_dirty.clear()
        for lst in self._slot_grps:
            del lst[:]
        self._gate_tok += 1

    def _check_epochs(self) -> None:
        # Mirrors BalancePass._refresh, re-checked per lookup: divisor
        # bumps re-weight loads without runqueue events (idle traffic is
        # handled precisely, per CPU, by mark_idle_change).
        div = self._div_ref.value
        if div != self._div_epoch:
            self._div_epoch = div
            self._loads_at = -1
            self._version += 1

    def _sync(self) -> None:
        """Bring the (load, nr) mirrors current for ``now``.

        A new timestamp stales every load sample at once (loads decay
        with time), so the sweep resamples the whole machine through the
        queues' own memoized ``load(now)`` -- the exact floats the
        scalar path reads.  At an already-synced timestamp only the
        dirty slots are drained.
        """
        now = self.now
        loads = self._loads
        nrs = self._nrs
        slot_grps = self._slot_grps
        grp_dirty = self._grp_dirty
        if self._loads_at != now:
            for cpu in self.sched.cpus:
                rq = cpu.rq
                i = rq.cpu_id
                # Identity check: the queue's load memo carries its value
                # across timestamps while provably time-invariant, so a
                # slot whose mirrored *object* is unchanged dirties no
                # fold memo over it.
                v = rq.load(now)
                if v is not loads[i]:
                    loads[i] = v
                    for g in slot_grps[i]:
                        grp_dirty[id(g)] += 1
                nr = rq._nr_running
                if nr != nrs[i]:
                    nrs[i] = nr
                    for g in slot_grps[i]:
                        grp_dirty[id(g)] += 1
            self._loads_at = now
            if self._dirty_list:
                for i in self._dirty_list:
                    self._dirty[i] = False
                self._dirty_list.clear()
        elif self._dirty_list:
            cpus = self.sched.cpus
            for i in self._dirty_list:
                rq = cpus[i].rq
                v = rq.load(now)
                if v is not loads[i]:
                    loads[i] = v
                    for g in slot_grps[i]:
                        grp_dirty[id(g)] += 1
                nr = rq._nr_running
                if nr != nrs[i]:
                    nrs[i] = nr
                    for g in slot_grps[i]:
                        grp_dirty[id(g)] += 1
                self._dirty[i] = False
            self._dirty_list.clear()

    # -- gather plans ------------------------------------------------------

    def _group_entry(self, group: "SchedGroup") -> _GroupEntry:
        entry = self._gidx.get(id(group))
        if entry is None:
            cpus = tuple(
                c for c in group.sorted_cpus() if self.sched.cpus[c].online
            )
            entry = (group, cpus, len(cpus))
            self._gidx[id(group)] = entry
            # Register the group with each member slot's reverse index
            # so mirror rewrites bump its dirty counter; id reuse is
            # safe because the index holds the group itself (and _gidx
            # keeps it alive until hotplug clears both maps together).
            self._grp_dirty[id(group)] = 0
            for c in cpus:
                self._slot_grps[c].append(group)
        return entry

    def _domain_cache(self, domain: "SchedDomain") -> _DomainCache:
        entries: List[_GroupEntry] = []
        examined: List[int] = []
        local_slot: Dict[int, int] = {}
        for group in domain.groups:
            entry = self._group_entry(group)
            if not entry[1]:
                continue  # no online member: the scalar path skips it too
            slot = len(entries)
            entries.append(entry)
            examined.extend(entry[1])
            for c in group.sorted_cpus():
                if c not in local_slot:
                    local_slot[c] = slot
        cache = _DomainCache(domain, entries, tuple(examined), local_slot)
        self._domains[id(domain)] = cache
        return cache

    # -- the BalancePass interface ----------------------------------------

    def group_stats(self, group: "SchedGroup") -> Optional[GroupStats]:
        """Memoized bulk fold of one group's statistics at ``now``."""
        self._check_epochs()
        now = self.now
        m = self._gstats.get(id(group))
        if m is not None and m[1] == now and m[2] == self._version:
            stats = self._materialize(m)
            if self._sanitize:
                verify_group_stats(
                    group,
                    stats,
                    _fold_group_stats(self.sched, group, now, None),
                )
            return stats
        if self._loads_at != now or self._dirty_list:
            self._sync()
        entry = self._group_entry(group)
        if not entry[1]:
            return None
        # The fold carries its own cross-timestamp second chance (the
        # generation-sum probe in _fold_entry), so this "miss" may be a
        # revalidated memo; the sanitizer cross-checks it either way.
        stats = self._materialize(self._fold_entry(entry))
        if self._sanitize:
            verify_group_stats(
                group,
                stats,
                _fold_group_stats(self.sched, group, now, None),
            )
        return stats

    def _fold_entry(self, entry: _GroupEntry) -> List[object]:
        """Fold one (nonempty) group into a fresh memo entry.

        The six reductions use the exact expressions -- and, for the
        float side, the exact sequential op order and element-object
        results -- of ``_fold_group_stats``; the leading ``0 +`` of the
        builtin ``sum`` is dropped, which is value- *and type*-exact
        because queue loads are never negative zero.  Narrow groups
        fold in-frame (one pass, no helper frames); machine-scale ones
        go through the backend kernel.
        """
        group, cpus, k = entry
        d = self._grp_dirty[id(group)]
        prev = self._gstats.get(id(group))
        if prev is not None:
            # Second chance across timestamps: the (now, version) stamp
            # went stale, but the group's dirty counter is monotone, so
            # an equal count -- taken after the sync brought the mirror
            # current -- proves every input object unchanged and the
            # memoized reductions still exact.  Re-stamp the entry in
            # place (the BalancePass epoch re-stamp idiom) instead of
            # refolding.
            if d == prev[_F_DIRTY]:
                prev[1] = self.now
                prev[2] = self._version
                return prev
        loads = self._loads
        nrs = self._nrs
        c = cpus[0]
        v = loads[c]
        nr = nrs[c]
        if k == 1:
            m: List[object] = [
                group, self.now, self._version,
                v, v, v, nr, nr, nr, None, cpus, 1, d,
            ]
        elif k < self._bulk:
            ls = v
            lmn = v
            lmx = v
            ns = nr
            nmn = nr
            nmx = nr
            j = 1
            while j < k:
                c = cpus[j]
                v = loads[c]
                ls = ls + v
                if v < lmn:
                    lmn = v
                elif v > lmx:
                    lmx = v
                nr = nrs[c]
                ns = ns + nr
                if nr < nmn:
                    nmn = nr
                elif nr > nmx:
                    nmx = nr
                j += 1
            m = [
                group, self.now, self._version,
                ls, lmn, lmx, ns, nmn, nmx, None, cpus, k, d,
            ]
        else:
            ls, lmn, lmx, ns, nmn, nmx = self.ops.fold_group(
                loads, nrs, cpus
            )
            m = [
                group, self.now, self._version,
                ls, lmn, lmx, ns, nmn, nmx, None, cpus, k, d,
            ]
        self._gstats[id(group)] = m
        return m

    def _materialize(self, m: List[object]) -> GroupStats:
        """The GroupStats of one fold-memo entry, built at most once."""
        stats = m[_F_STATS]
        if stats is None:
            k = m[11]
            # Same expressions (and float-op order) as _fold_group_stats.
            stats = GroupStats(
                group=m[0],  # type: ignore[arg-type]
                cpus=m[10],  # type: ignore[arg-type]
                avg_load=m[3] / k,  # type: ignore[operator]
                min_load=m[4],  # type: ignore[arg-type]
                max_load=m[5],  # type: ignore[arg-type]
                nr_running=m[6],  # type: ignore[arg-type]
                capacity=k,  # type: ignore[arg-type]
                min_nr=m[7],  # type: ignore[arg-type]
                max_nr=m[8],  # type: ignore[arg-type]
            )
            m[_F_STATS] = stats
        return stats  # type: ignore[return-value]

    def _singleton_stats(self, entry: _GroupEntry, c: int) -> GroupStats:
        """GroupStats of a one-CPU group, built without memo traffic.

        ``v / 1`` reproduces the generic ``sum([v]) / len`` average
        exactly; the remaining fields are the member's own samples.
        """
        v = self._loads[c]
        nr = self._nrs[c]
        # Intentional per-call churn on the two-singleton fast path: the
        # scalar consumer's interface requires a GroupStats, and memoizing
        # a singleton's stats costs more than building them (one object,
        # no fold).  Retiring the GroupStats bridge entirely is the
        # residue ranking's next item, not this PR.
        return GroupStats(  # repro: noqa[hot-path-alloc]
            group=entry[0],
            cpus=entry[1],
            avg_load=v / 1,
            min_load=v,
            max_load=v,
            nr_running=nr,
            capacity=1,
            min_nr=nr,
            max_nr=nr,
        )

    def designated_for(self, group: "SchedGroup") -> int:
        """Memoized designated-balancer election for one local group.

        Valid until a mask member crosses the idle<->busy boundary
        (:meth:`mark_idle_change`) or hotplug rebuilds the topology --
        the only inputs an election reads.
        """
        # Memo probe first: the common caller (a due periodic-balance
        # level) hits it thousands of times between invalidations.
        entry = self._designated.get(id(group))
        if entry is not None:
            if self._sanitize:
                verify_designated(
                    group, entry[1], _elect_designated(self.sched, group)
                )
            return entry[1]
        mask = group.sorted_balance_mask()
        if len(mask) == 1:
            # One-CPU masks elect themselves; no memo traffic needed
            # (and the plan-cached periodic path resolves these inline).
            only = mask[0]
            return only if self.sched.cpus[only].online else -1
        winner = _elect_designated(self.sched, group)
        self._designated[id(group)] = (group, winner)
        by_cpu = self._desig_by_cpu
        for c in mask:
            by_cpu[c][id(group)] = True
        return winner

    # -- periodic-balance gate ---------------------------------------------

    def gated(self, cpu_id: int, now: int) -> bool:
        """True when this CPU's whole domain walk is provably a no-op.

        The gate holds the earliest ``next_balance`` deadline among the
        levels this CPU currently wins, stamped by its last real walk.
        While the gate is live (armed at the current flip token) and
        sits in the future, no level is both due and won, and a walk
        that attempts nothing emits no events, stamps no deadline, and
        moves no task -- so skipping it wholesale is digest-invisible.
        Election shifts that could promote the CPU to winner of an
        already-due level come only from idle<->busy churn or hotplug;
        both bump the flip token, disarming every gate in O(1).
        """
        return (
            self._gate_arm[cpu_id] == self._gate_tok
            and self._gate[cpu_id] > now
        )

    def gate_token(self) -> int:
        """The global flip token; snapshot before a walk (see set_gate)."""
        return self._gate_tok

    def set_gate(self, cpu_id: int, stamp: int, tok: int) -> None:
        """Arm the walk's earliest next deadline for this CPU.

        Refused if the token moved since ``tok`` was read: the walk's
        own migrations can flip idle states that re-elect this very
        CPU, and the walk's deadline is stale the moment they do.
        """
        if self._gate_tok == tok:
            self._gate[cpu_id] = stamp
            self._gate_arm[cpu_id] = tok

    def balance_due(self, now: int) -> List[int]:
        """CPU ids whose gate expired or is disarmed, ascending.

        One two-array reduction over the deadline and arming-token
        mirrors -- "which CPUs need balancing now" without touching the
        CPUs that provably do not.
        """
        return self.ops.due_cpus(
            self._gate, self._gate_arm, self._gate_tok, now
        )

    # -- bulk busiest-group selection --------------------------------------

    def find_busiest(
        self, domain: "SchedDomain", dst_cpu: int, need_local: bool = True
    ) -> Tuple[Optional[GroupStats], Optional[GroupStats], Tuple[int, ...]]:
        """(busiest, local, examined) for one balancing attempt.

        ``need_local=False`` (an inert probe) skips materializing the
        local GroupStats on *balanced* outcomes, where the caller
        consumes it only for the probe record; a found busiest group
        always returns both stats.

        Decision-identical to the scalar ``find_busiest_group`` body:
        same local-group rule (first nonempty group containing the
        destination), same overloaded > imbalanced > any tier order with
        first-max-wins ties, same imbalance-ratio threshold expression.

        (The selection itself is deliberately *not* memoized: the
        designated-balancer rule already guarantees at most one CPU per
        (domain, local group) balances at any timestamp, so a selection
        memo can never hit -- only the group folds underneath repeat,
        and those carry the fold memo.)

        The body is deliberately flat: the epoch check, the mirror
        sync gate, the per-group fold-memo probes, and the three-tier
        selection all run in this one frame.  The selection compares
        raw memo slots and materializes GroupStats objects only for
        the (at most two) groups actually returned.
        """
        # Inline _check_epochs (divisor only; idle invalidation is
        # per-CPU via mark_idle_change).
        div = self._div_ref.value
        if div != self._div_epoch:
            self._div_epoch = div
            self._loads_at = -1
            self._version += 1
        cache = self._domains.get(id(domain))
        if cache is None:
            cache = self._domain_cache(domain)
        if self._sanitize:
            busiest, local = self._select_checked(
                cache, cache.local_slot.get(dst_cpu, -1)
            )
            return busiest, local, cache.examined
        now = self.now
        if self._loads_at != now or self._dirty_list:
            self._sync()
        use_min = self._use_min
        loads = self._loads
        pair = cache.pair
        if pair is not None:
            # Two one-CPU groups: the three-tier loop always selects
            # the non-local group (a singleton is never `imbalanced`;
            # the any-group tier seeds it even at metric zero), so the
            # decision collapses to the threshold compare.  ``v / 1``
            # reproduces the generic ``sum([v]) / len`` average exactly
            # (IEEE division by one is exact; the int zero of an idle
            # queue becomes the same 0.0).
            c0, c1 = pair
            if dst_cpu == c0:
                lc, oc, li, oi = c0, c1, 0, 1
            elif dst_cpu == c1:
                lc, oc, li, oi = c1, c0, 1, 0
            else:
                return None, None, cache.examined
            if use_min:
                best_metric = loads[oc]
                local_metric = loads[lc]
            else:
                best_metric = loads[oc] / 1
                local_metric = loads[lc] / 1
            if best_metric <= local_metric * cache.ratio:
                if need_local:
                    return (
                        None,
                        self._singleton_stats(cache.entries[li], lc),
                        cache.examined,
                    )
                return None, None, cache.examined
            return (
                self._singleton_stats(cache.entries[oi], oc),
                self._singleton_stats(cache.entries[li], lc),
                cache.examined,
            )
        version = self._version
        gstats = self._gstats
        folds = self._scratch_folds
        del folds[:]
        append = folds.append
        for entry in cache.entries:
            m = gstats.get(id(entry[0]))
            if m is not None and m[1] == now and m[2] == version:
                append(m)
            else:
                # May still revalidate in place: _fold_entry's own
                # generation-sum probe catches stale-stamp-same-inputs
                # entries before paying for a refold.
                append(self._fold_entry(entry))
        local_idx = cache.local_slot.get(dst_cpu, -1)
        if local_idx < 0:
            return None, None, cache.examined
        local_m = folds[local_idx]
        n_slots = len(folds)
        if n_slots < 2:
            if need_local:
                return None, self._materialize(local_m), cache.examined
            return None, None, cache.examined
        # Three-tier selection (overloaded > imbalanced > any), first
        # max wins -- the scalar best_of chain over raw memo slots.
        best = -1
        best_metric = 0.0
        for tier in (0, 1, 2):
            i = 0
            while i < n_slots:
                if i != local_idx:
                    m = folds[i]
                    if tier == 0:
                        if m[6] <= m[11]:  # not overloaded
                            i += 1
                            continue
                    elif tier == 1:
                        if m[8] - m[7] < 2:  # not imbalanced
                            i += 1
                            continue
                    metric = m[4] if use_min else m[3] / m[11]
                    if best < 0 or metric > best_metric:
                        best = i
                        best_metric = metric
                i += 1
            if best >= 0:
                break
        if best < 0:
            if need_local:
                return None, self._materialize(local_m), cache.examined
            return None, None, cache.examined
        local_metric = (
            local_m[4] if use_min else local_m[3] / local_m[11]
        )
        if best_metric <= local_metric * cache.ratio:
            if need_local:
                return None, self._materialize(local_m), cache.examined
            return None, None, cache.examined
        return (
            self._materialize(folds[best]),
            self._materialize(local_m),
            cache.examined,
        )

    def _select_checked(
        self, cache: _DomainCache, local_idx: int
    ) -> Tuple[Optional[GroupStats], Optional[GroupStats]]:
        """Sanitizer-mode selection: every fold verified via group_stats.

        Runs the same three tiers over materialized GroupStats so each
        group passes through :meth:`group_stats`' cross-check against a
        from-scratch fold.
        """
        stats_list = [self.group_stats(entry[0]) for entry in cache.entries]
        if local_idx < 0:
            return None, None
        local = stats_list[local_idx]
        if len(stats_list) < 2:
            return None, local
        use_min = self._use_min
        best: Optional[GroupStats] = None
        best_metric = 0.0
        for tier in (0, 1, 2):
            for i, stats in enumerate(stats_list):
                if i == local_idx or stats is None:
                    continue
                if tier == 0 and not stats.overloaded:
                    continue
                if tier == 1 and not stats.imbalanced:
                    continue
                metric = stats.min_load if use_min else stats.avg_load
                if best is None or metric > best_metric:
                    best = stats
                    best_metric = metric
            if best is not None:
                break
        if best is None or local is None:
            return None, local
        local_metric = local.min_load if use_min else local.avg_load
        if best_metric <= local_metric * cache.ratio:
            return None, local
        return best, local

    # -- introspection -----------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """The refreshed struct-of-arrays mirror, as plain lists.

        The vruntime floor is sampled here (it advances without epoch
        traffic, by design); loads/nr come from the coherent buffers.
        """
        self._check_epochs()
        self._sync()
        sched = self.sched
        nrs = list(self._nrs)
        return {
            "backend": self.ops.name,
            "now": self.now,
            "load": [float(v) for v in self._loads],
            "nr_running": nrs,
            "vruntime_floor": [c.rq.min_vruntime for c in sched.cpus],
            "idle": [n == 0 for n in nrs],
            "online": [c.online for c in sched.cpus],
            "epochs": {
                "load": sched.load_epoch.value,
                "idle": sched.idle_epoch.value,
                "divisor": self._div_epoch,
                "version": self._version,
            },
        }

    def __repr__(self) -> str:
        return (
            f"VecState(backend={self.ops.name}, cpus={self._n}, "
            f"now={self.now}us, version={self._version})"
        )

"""CFS core policy: timeslices, vruntime accounting, preemption.

This is the paper's Section 2.1 -- the part of CFS that is "very simple":
the scheduler defines a target latency interval, divides it among runnable
threads proportionally to weight, charges running threads vruntime
(runtime / weight), and preempts when the running thread has exceeded its
slice or a smaller-vruntime thread is waiting.
"""

from __future__ import annotations

from typing import Optional

from repro.sched.features import SchedFeatures
from repro.sched.runqueue import RunQueue
from repro.sched.task import Task
from repro.sched.weights import vruntime_delta


def sched_period_us(features: SchedFeatures, nr_running: int) -> int:
    """The interval within which every runnable thread runs once.

    ``max(sched_latency, nr_running * min_granularity)`` -- with few
    threads the target latency holds; with many, each still gets the
    minimum granularity.
    """
    if nr_running <= 0:
        return features.sched_latency_us
    return max(
        features.sched_latency_us,
        nr_running * features.min_granularity_us,
    )


def timeslice_us(features: SchedFeatures, task: Task, rq: RunQueue) -> int:
    """The wall-clock slice ``task`` may run before the tick preempts it.

    The period is divided proportionally to weight:
    ``period * task.weight / total_weight``.
    """
    total_weight = rq.total_weight()
    if total_weight <= 0:
        return features.sched_latency_us
    period = sched_period_us(features, rq.nr_running)
    slice_us = (period * task.weight) // total_weight
    return max(slice_us, features.min_granularity_us)


def account_runtime(task: Task, now: int, exec_time_us: int) -> None:
    """Charge ``exec_time_us`` of execution to a task.

    Updates vruntime (weight-scaled), the utilization tracker, and raw
    runtime statistics.  Spin time is accounted separately by the executor.
    """
    if exec_time_us < 0:
        raise ValueError(f"negative exec time {exec_time_us}")
    if exec_time_us == 0:
        task.tracker.update(now, was_running=True)
        return
    task.vruntime += vruntime_delta(exec_time_us, task.weight)
    task.stats.total_runtime_us += exec_time_us
    task.tracker.update(now, was_running=True)


def should_preempt_at_tick(
    features: SchedFeatures,
    rq: RunQueue,
    curr: Task,
    ran_us: int,
) -> bool:
    """Tick-time preemption check (``check_preempt_tick``).

    Preempt when the current task has consumed its slice, or when it has run
    at least the minimum granularity and a waiting thread's vruntime is more
    than the wakeup granularity behind.
    """
    waiting = rq.pick_next()
    if waiting is None:
        return False
    if ran_us >= timeslice_us(features, curr, rq):
        return True
    if ran_us < features.min_granularity_us:
        return False
    return curr.vruntime > waiting.vruntime + features.wakeup_granularity_us


def should_preempt_on_wakeup(
    features: SchedFeatures,
    curr: Optional[Task],
    woken: Task,
) -> bool:
    """Wakeup preemption check (``check_preempt_wakeup``).

    A freshly-woken thread preempts the running one when its vruntime is
    smaller by more than the wakeup granularity.
    """
    if curr is None:
        return True
    return curr.vruntime > woken.vruntime + features.wakeup_granularity_us

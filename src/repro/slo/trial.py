"""Orchestrator trial functions behind the SLO scenario registry.

Two trial kinds cover the registry's needs:

* :func:`bug_slo_trial` re-runs one of the paper's minimal bug scenarios
  (:func:`repro.experiments.scenarios.build_bug_scenario`) with an
  observability session attached and folds the run into SLO metrics.
* :func:`mix_slo_trial` builds a machine from a named topology preset,
  spawns a declarative workload mix (``module:function`` task-spec
  factories such as :func:`hog` and :func:`sleeper`), and measures the
  same metrics -- scenarios that are pure data, no Python.

Both run inside pool workers, so everything is rebuilt from the picklable
:class:`~repro.perf.orchestrator.TrialSpec`; nothing at module level is
mutable (the ``orchestrator-fork-safety`` lint rule now covers
``repro.slo``).  With the ``record`` param set, the scheduler event
stream rides back as the result's artifact for the replay layer -- such
specs must opt out of the result cache.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional, Tuple

from repro.experiments.harness import schedule_digest, system_stats
from repro.experiments.scenarios import build_bug_scenario
from repro.obs.session import ObsSession
from repro.obs.tracepoints import TracepointRegistry
from repro.perf.orchestrator import TrialResult, TrialSpec, build_features
from repro.sched.features import SchedFeatures
from repro.sim.system import System
from repro.sim.timebase import MS
from repro.slo.report import collect_slo_metrics
from repro.stats.metrics import IdleOverloadSampler
from repro.topology import amd_bulldozer_64, flat_smp, single_node, two_nodes
from repro.topology.presets import ring_numa
from repro.topology.machine import MachineTopology
from repro.viz.events import TraceBuffer, TraceProbe
from repro.workloads.base import Program, Run, Sleep, TaskSpec

#: Orchestrator references to this module's trial functions.
BUG_TRIAL_KIND = "repro.slo.trial:bug_slo_trial"
MIX_TRIAL_KIND = "repro.slo.trial:mix_slo_trial"

#: Default latency deadline (us) when a scenario does not declare one;
#: ``2**k - 1`` so the log-bucket miss-rate is exact (see Histogram docs).
DEFAULT_LATENCY_DEADLINE_US = 1023

#: Registry-addressable topology presets (read-only).
TOPOLOGIES: Dict[str, Callable[[], MachineTopology]] = {
    "amd_bulldozer_64": amd_bulldozer_64,
    "two_nodes_4": lambda: two_nodes(cores_per_node=4),
    "two_nodes_8": lambda: two_nodes(cores_per_node=8),
    "single_node_4": lambda: single_node(cores=4),
    "flat_smp_8": lambda: flat_smp(cores=8),
    "ring_numa_4x2": lambda: ring_numa(nodes=4, cores_per_node=2),
}


def topology_factory(name: str) -> Callable[[], MachineTopology]:
    """Resolve a registry topology name to its preset factory."""
    try:
        return TOPOLOGIES[name]
    except KeyError:
        raise ValueError(
            f"unknown topology {name!r}; expected one of "
            f"{', '.join(sorted(TOPOLOGIES))}"
        ) from None


# -- workload factories (referenced from TOML as module:function) ------------


def hog(name: str, params: Mapping[str, str]) -> TaskSpec:
    """An always-runnable CPU hog; ``run_ms`` sets the burst length."""
    run_us = int(params.get("run_ms", "5")) * MS

    def factory() -> Program:
        def program() -> Program:
            while True:
                yield Run(run_us)

        return program()

    return TaskSpec(name, factory)


def sleeper(name: str, params: Mapping[str, str]) -> TaskSpec:
    """A run/sleep cycler; ``run_ms``/``sleep_ms`` shape the duty cycle."""
    run_us = int(params.get("run_ms", "1")) * MS
    sleep_us = int(params.get("sleep_ms", "2")) * MS

    def factory() -> Program:
        def program() -> Program:
            while True:
                yield Run(run_us)
                yield Sleep(sleep_us)

        return program()

    return TaskSpec(name, factory)


# -- workload-mix wire format ------------------------------------------------

#: One compiled mix entry: (factory reference, count, parent-cpu stride,
#: factory params).
MixEntry = Tuple[str, int, int, Tuple[Tuple[str, str], ...]]


def encode_mix(entries: List[MixEntry]) -> str:
    """Serialize a workload mix into one canonical spec-param string."""
    parts: List[str] = []
    for ref, count, stride, params in entries:
        text = f"{ref}*{count}@{stride}"
        if params:
            text += "?" + ",".join(f"{k}={v}" for k, v in sorted(params))
        parts.append(text)
    return ";".join(parts)


def decode_mix(text: str) -> List[MixEntry]:
    """Invert :func:`encode_mix`."""
    entries: List[MixEntry] = []
    for part in text.split(";"):
        if not part:
            continue
        head, _, query = part.partition("?")
        ref_count, _, stride_text = head.partition("@")
        ref, _, count_text = ref_count.partition("*")
        params: List[Tuple[str, str]] = []
        if query:
            for pair in query.split(","):
                key, _, value = pair.partition("=")
                params.append((key, value))
        entries.append(
            (ref, int(count_text), int(stride_text), tuple(params))
        )
    return entries


def resolve_workload(ref: str) -> Callable[[str, Mapping[str, str]], TaskSpec]:
    """Import a ``module:function`` workload factory reference."""
    from repro.perf.orchestrator import resolve_kind

    return resolve_kind(ref)  # type: ignore[return-value]


# -- shared plumbing ---------------------------------------------------------


def _apply_tokens(
    features: SchedFeatures, tokens: Tuple[str, ...]
) -> SchedFeatures:
    """Apply spec feature tokens on top of an existing feature set."""
    for token in tokens:
        if token.startswith("fix:"):
            features = features.with_fixes(token[len("fix:"):])
        elif token == "no_autogroup":
            features = features.without_autogroup()
        elif token == "v43":
            features = features.with_v43_load_metric()
        elif token == "fastpath_off":
            features = features.with_fastpath(False)
        else:
            raise ValueError(f"unknown feature token {token!r}")
    return features


def _duration_us(spec: TrialSpec) -> int:
    duration_ms = float(spec.param("duration_ms", "1000"))  # type: ignore[arg-type]
    return max(MS, int(duration_ms * spec.scale) * MS)


def _deadline_us(spec: TrialSpec) -> int:
    return int(
        spec.param(
            "latency_deadline_us", str(DEFAULT_LATENCY_DEADLINE_US)
        )  # type: ignore[arg-type]
    )


def _record_probe(spec: TrialSpec) -> Optional[TraceProbe]:
    """The replay layer's trace probe, when the spec asks for a recording.

    Load samples are excluded (they are floats; the replay diff hashes
    and compares integer/string fields only, like the bench digests).
    """
    if spec.param("record") != "1":
        return None
    return TraceProbe(buffer=TraceBuffer(capacity=2_000_000),
                      record_load=False)


def _result(
    spec: TrialSpec,
    system: System,
    obs: ObsSession,
    idle_overload_fraction: float,
    probe: Optional[TraceProbe],
    extra_row: Mapping[str, object],
) -> TrialResult:
    obs.close()
    metrics = collect_slo_metrics(
        obs.recorder, idle_overload_fraction, _deadline_us(spec)
    )
    row: Dict[str, object] = dict(extra_row)
    row.update(metrics.to_json())
    return TrialResult(
        row=row,
        schedule_digest=schedule_digest(system),
        stats=system_stats(system),
        artifact=probe.buffer if probe is not None else None,
    )


# -- trial functions ---------------------------------------------------------


def bug_slo_trial(spec: TrialSpec) -> TrialResult:
    """One paper-bug scenario run, folded into SLO metrics.

    Params: ``bug`` (canonical name), ``variant`` (buggy|fixed),
    ``duration_ms``, ``latency_deadline_us``, ``record``.
    """
    bug = spec.param("bug")
    if bug is None:
        raise ValueError("bug_slo_trial spec needs a 'bug' param")
    variant = spec.param("variant", "buggy")
    assert variant is not None
    probe = _record_probe(spec)
    holder: Dict[str, ObsSession] = {}

    def instrument(system: System) -> None:
        holder["obs"] = ObsSession.attach_to(
            system, trace=False, registry=TracepointRegistry()
        )
        if probe is not None:
            system.attach_probe(probe)

    tokens = spec.features

    scenario = build_bug_scenario(
        bug,
        variant,
        seed=spec.seed,
        instrument=instrument,
        features_transform=(
            (lambda f: _apply_tokens(f, tokens)) if tokens else None
        ),
    )
    scenario.run(_duration_us(spec))
    return _result(
        spec,
        scenario.system,
        holder["obs"],
        scenario.sampler.violation_fraction,
        probe,
        {"scenario": spec.scenario, "variant": variant, "seed": spec.seed},
    )


def mix_slo_trial(spec: TrialSpec) -> TrialResult:
    """A declarative workload mix on a named topology preset.

    Params: ``topology`` (a :data:`TOPOLOGIES` key), ``mix`` (see
    :func:`encode_mix`), ``duration_ms``, ``latency_deadline_us``,
    ``record``.
    """
    topology_name = spec.param("topology")
    mix_text = spec.param("mix")
    if topology_name is None or mix_text is None:
        raise ValueError(
            "mix_slo_trial spec needs 'topology' and 'mix' params"
        )
    topology = topology_factory(topology_name)()
    features = build_features(spec.features)
    system = System(topology, features, seed=spec.seed)
    sampler = IdleOverloadSampler()
    sampler.attach(system)
    obs = ObsSession.attach_to(
        system, trace=False, registry=TracepointRegistry()
    )
    probe = _record_probe(spec)
    if probe is not None:
        system.attach_probe(probe)

    num_cpus = topology.num_cpus
    for ref, count, stride, params in decode_mix(mix_text):
        factory = resolve_workload(ref)
        base = ref.rsplit(":", 1)[-1]
        param_map = dict(params)
        for i in range(count):
            system.spawn(
                factory(f"{base}{i}", param_map),
                parent_cpu=(i * stride) % num_cpus,
            )
    system.run_for(_duration_us(spec))
    return _result(
        spec,
        system,
        obs,
        sampler.violation_fraction,
        probe,
        {"scenario": spec.scenario, "variant": "base", "seed": spec.seed},
    )

"""Minimal TOML loading for scenario specs.

Python 3.11+ ships :mod:`tomllib`; the CI matrix still runs 3.9, and the
repository vendors nothing, so this module falls back to a small parser
covering exactly the subset the scenario schema uses: ``[table]`` /
``[[array-of-tables]]`` headers, bare-key assignments, strings, integers,
floats, booleans, and single-line arrays of those scalars.  The fallback
is *not* a general TOML parser -- tests assert it agrees with
:mod:`tomllib` on every shipped scenario file, which is the contract
that matters.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

try:  # Python >= 3.11
    import tomllib as _tomllib
except ImportError:  # pragma: no cover - exercised on the 3.9 CI leg
    _tomllib = None

PathLike = Union[str, Path]

_BARE_KEY = re.compile(r"^[A-Za-z0-9_-]+$")


class TOMLError(ValueError):
    """A scenario file is not valid (subset-)TOML."""


def _strip_comment(line: str) -> str:
    """Drop a ``#`` comment, honoring ``#`` inside quoted strings."""
    out: List[str] = []
    quote: Optional[str] = None
    for ch in line:
        if quote is not None:
            out.append(ch)
            if ch == quote:
                quote = None
        elif ch in ("'", '"'):
            quote = ch
            out.append(ch)
        elif ch == "#":
            break
        else:
            out.append(ch)
    return "".join(out).strip()


def _parse_scalar(text: str, lineno: int) -> Any:
    text = text.strip()
    if not text:
        raise TOMLError(f"line {lineno}: empty value")
    if text.startswith('"') and text.endswith('"') and len(text) >= 2:
        body = text[1:-1]
        return body.replace('\\"', '"').replace("\\\\", "\\")
    if text.startswith("'") and text.endswith("'") and len(text) >= 2:
        return text[1:-1]
    if text == "true":
        return True
    if text == "false":
        return False
    try:
        return int(text, 10)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        raise TOMLError(f"line {lineno}: unsupported value {text!r}") from None


def _split_array_items(body: str, lineno: int) -> List[str]:
    items: List[str] = []
    depth = 0
    quote: Optional[str] = None
    current: List[str] = []
    for ch in body:
        if quote is not None:
            current.append(ch)
            if ch == quote:
                quote = None
        elif ch in ("'", '"'):
            quote = ch
            current.append(ch)
        elif ch == "[":
            depth += 1
            current.append(ch)
        elif ch == "]":
            depth -= 1
            current.append(ch)
        elif ch == "," and depth == 0:
            items.append("".join(current))
            current = []
        else:
            current.append(ch)
    if quote is not None or depth != 0:
        raise TOMLError(f"line {lineno}: unterminated array")
    tail = "".join(current).strip()
    if tail:
        items.append(tail)
    return [item.strip() for item in items if item.strip()]


def _parse_value(text: str, lineno: int) -> Any:
    text = text.strip()
    if text.startswith("[") and text.endswith("]"):
        return [
            _parse_value(item, lineno)
            for item in _split_array_items(text[1:-1], lineno)
        ]
    return _parse_scalar(text, lineno)


def _table_path(header: str, lineno: int) -> Tuple[str, ...]:
    parts = tuple(p.strip() for p in header.split("."))
    if not parts or any(not _BARE_KEY.match(p) for p in parts):
        raise TOMLError(f"line {lineno}: bad table name [{header}]")
    return parts


def _descend(root: Dict[str, Any], path: Tuple[str, ...], lineno: int) -> Dict[str, Any]:
    node: Any = root
    for part in path:
        if isinstance(node, list):
            node = node[-1]
        child = node.setdefault(part, {})
        node = child
    if isinstance(node, list):
        node = node[-1]
    if not isinstance(node, dict):
        raise TOMLError(f"line {lineno}: {'.'.join(path)} is not a table")
    return node


def _parse_fallback(text: str) -> Dict[str, Any]:
    root: Dict[str, Any] = {}
    current = root
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = _strip_comment(raw)
        if not line:
            continue
        if line.startswith("[[") and line.endswith("]]"):
            path = _table_path(line[2:-2], lineno)
            parent = _descend(root, path[:-1], lineno)
            entries = parent.setdefault(path[-1], [])
            if not isinstance(entries, list):
                raise TOMLError(
                    f"line {lineno}: {path[-1]} is already a non-array table"
                )
            entries.append({})
            current = entries[-1]
        elif line.startswith("[") and line.endswith("]"):
            path = _table_path(line[1:-1], lineno)
            current = _descend(root, path, lineno)
        elif "=" in line:
            key, _, value = line.partition("=")
            key = key.strip()
            if not _BARE_KEY.match(key):
                raise TOMLError(f"line {lineno}: bad key {key!r}")
            if key in current:
                raise TOMLError(f"line {lineno}: duplicate key {key!r}")
            current[key] = _parse_value(value, lineno)
        else:
            raise TOMLError(f"line {lineno}: cannot parse {raw.strip()!r}")
    return root


def parse_toml(text: str) -> Dict[str, Any]:
    """Parse TOML text (tomllib when available, subset fallback otherwise)."""
    if _tomllib is not None:
        try:
            return _tomllib.loads(text)
        except _tomllib.TOMLDecodeError as exc:
            raise TOMLError(str(exc)) from None
    return _parse_fallback(text)


def parse_toml_fallback(text: str) -> Dict[str, Any]:
    """Parse with the subset parser unconditionally (for parity tests)."""
    return _parse_fallback(text)


def load_toml(path: PathLike) -> Dict[str, Any]:
    """Read and parse one TOML file."""
    return parse_toml(Path(path).read_text(encoding="utf-8"))

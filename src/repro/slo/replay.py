"""Trace recording and replay regression-diffing.

``record`` runs one compiled trial spec with the scheduler event stream
captured and writes it to a versioned JSONL file; ``replay`` re-drives
the *same spec* through the engine (rebuilt from the recording's header,
exactly as a pool worker would) and diffs the fresh run against the
recording on three levels:

1. the schedule digest (the orchestrator's equivalence witness),
2. the SLO metrics row (percentiles, jitter, miss rate, density),
3. the event stream itself, event by event, to name the **first
   divergent event** -- the thing a digest mismatch alone cannot do.

File format (version 1): line 1 is a header object carrying the format
version, the spec's canonical identity, the schedule digest, the SLO
row, and the event count; every following line is one serialized
scheduler event.  Events are canonicalized exactly like the bench
digests: float-valued fields are dropped (they are derived load numbers,
not schedule facts) and frozensets become sorted lists, so a recording
compares bytewise across hosts.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.perf.orchestrator import TrialResult, TrialSpec, resolve_kind
from repro.slo.registry import record_spec
from repro.viz.events import TraceBuffer

PathLike = Union[str, Path]

FORMAT_NAME = "repro-slo-trace"
FORMAT_VERSION = 1

#: Keys of the SLO row compared between a recording and its replay.
_METRIC_KEYS = (
    "wakeup_p50_us",
    "wakeup_p99_us",
    "wakeup_p999_us",
    "jitter_us",
    "deadline_miss_rate",
    "idle_overload_fraction",
    "samples",
)


def serialize_event(event: object) -> Dict[str, object]:
    """One trace record as a canonical JSON-able mapping.

    Mirrors the bench digests (:func:`repro.perf.bench._digest_records`):
    float fields are dropped, frozensets become sorted lists, so the
    serialized stream is stable across float formatting and libm
    differences between hosts.
    """
    out: Dict[str, object] = {"type": type(event).__name__}
    for name, value in sorted(vars(event).items()):
        if isinstance(value, float):
            continue
        if isinstance(value, frozenset):
            value = sorted(value)
        out[name] = value
    return out


def serialize_buffer(buffer: TraceBuffer) -> List[Dict[str, object]]:
    return [serialize_event(event) for event in buffer]


def spec_from_canonical(data: Dict[str, Any]) -> TrialSpec:
    """Rebuild a :class:`TrialSpec` from its ``canonical()`` mapping."""
    return TrialSpec(
        kind=str(data["kind"]),
        scenario=str(data["scenario"]),
        seed=int(data["seed"]),
        features=tuple(data.get("features", ())),
        scale=float(data["scale"]),
        deadline_us=int(data.get("deadline_us", 0)),
        params=tuple(sorted(
            (str(k), str(v)) for k, v in data.get("params", {}).items()
        )),
        cache=False,
    )


def run_recording(spec: TrialSpec) -> Tuple[TrialResult, List[Dict[str, object]]]:
    """Execute one spec with recording forced on; returns (result, events)."""
    recording = record_spec(spec)
    result = resolve_kind(recording.kind)(recording)
    buffer = result.artifact
    if not isinstance(buffer, TraceBuffer):
        raise ValueError(
            f"trial kind {recording.kind!r} returned no trace buffer "
            "artifact; it does not support recording"
        )
    if buffer.dropped:
        raise ValueError(
            f"trace buffer overflowed ({buffer.dropped} events dropped); "
            "shrink the scenario before recording"
        )
    return result, serialize_buffer(buffer)


def write_trace(
    path: PathLike,
    spec: TrialSpec,
    result: TrialResult,
    events: List[Dict[str, object]],
) -> None:
    """Write one recording as versioned JSONL."""
    header = {
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        "spec": spec.canonical(),
        "schedule_digest": result.schedule_digest,
        "slo": {k: result.row[k] for k in _METRIC_KEYS},
        "events": len(events),
    }
    with Path(path).open("w", encoding="utf-8") as fh:
        fh.write(json.dumps(header, sort_keys=True) + "\n")
        for event in events:
            fh.write(json.dumps(event, sort_keys=True) + "\n")


def record_trace(spec: TrialSpec, path: PathLike) -> TrialResult:
    """Record one trial spec's run to ``path``; returns the trial result."""
    result, events = run_recording(spec)
    write_trace(path, spec, result, events)
    return result


@dataclass
class RecordedTrace:
    """One parsed recording."""

    header: Dict[str, Any]
    events: List[Dict[str, object]]

    @property
    def spec(self) -> TrialSpec:
        return spec_from_canonical(self.header["spec"])

    @property
    def schedule_digest(self) -> str:
        return str(self.header["schedule_digest"])


def read_trace(path: PathLike) -> RecordedTrace:
    """Parse a recording, validating format name and version."""
    lines = Path(path).read_text(encoding="utf-8").splitlines()
    if not lines:
        raise ValueError(f"{path}: empty trace file")
    header = json.loads(lines[0])
    if header.get("format") != FORMAT_NAME:
        raise ValueError(f"{path}: not a {FORMAT_NAME} file")
    if header.get("version") != FORMAT_VERSION:
        raise ValueError(
            f"{path}: format version {header.get('version')!r} "
            f"(this build reads version {FORMAT_VERSION})"
        )
    events = [json.loads(line) for line in lines[1:] if line.strip()]
    if header.get("events") != len(events):
        raise ValueError(
            f"{path}: header promises {header.get('events')} events, "
            f"file has {len(events)} (truncated recording?)"
        )
    return RecordedTrace(header=header, events=events)


@dataclass
class ReplayDiff:
    """The three-level diff of one recording against a fresh replay."""

    path: str
    scenario: str
    digest_match: bool
    #: ``metric -> (recorded, replayed)`` for every differing SLO field.
    metric_deltas: Dict[str, Tuple[object, object]] = field(
        default_factory=dict
    )
    #: Index of the first differing event (None when streams agree).
    first_divergence: Optional[int] = None
    recorded_event: Optional[Dict[str, object]] = None
    replayed_event: Optional[Dict[str, object]] = None
    recorded_events: int = 0
    replayed_events: int = 0

    @property
    def divergent(self) -> bool:
        return (
            not self.digest_match
            or bool(self.metric_deltas)
            or self.first_divergence is not None
        )

    def format(self) -> str:
        lines = [
            f"{self.path} [{self.scenario}]: "
            + ("DIVERGED" if self.divergent else "identical")
        ]
        if not self.digest_match:
            lines.append("  schedule digest mismatch")
        for name, (recorded, replayed) in sorted(self.metric_deltas.items()):
            lines.append(
                f"  slo.{name}: recorded {recorded!r} != replayed "
                f"{replayed!r}"
            )
        if self.first_divergence is not None:
            lines.append(
                f"  first divergent event: #{self.first_divergence} "
                f"(recorded {self.recorded_events} events, replayed "
                f"{self.replayed_events})"
            )
            if self.recorded_event is not None:
                lines.append(f"    recorded: {self.recorded_event}")
            if self.replayed_event is not None:
                lines.append(f"    replayed: {self.replayed_event}")
        return "\n".join(lines)

    def to_json(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "scenario": self.scenario,
            "divergent": self.divergent,
            "digest_match": self.digest_match,
            "metric_deltas": {
                k: {"recorded": a, "replayed": b}
                for k, (a, b) in self.metric_deltas.items()
            },
            "first_divergence": self.first_divergence,
            "recorded_events": self.recorded_events,
            "replayed_events": self.replayed_events,
        }


def diff_events(
    recorded: List[Dict[str, object]],
    replayed: List[Dict[str, object]],
) -> Optional[int]:
    """Index of the first differing event; None when identical."""
    for i, (a, b) in enumerate(zip(recorded, replayed)):
        if a != b:
            return i
    if len(recorded) != len(replayed):
        return min(len(recorded), len(replayed))
    return None


def replay_trace(path: PathLike) -> ReplayDiff:
    """Re-drive one recording through the engine and diff the two runs."""
    trace = read_trace(path)
    spec = trace.spec
    result, events = run_recording(spec)

    metric_deltas: Dict[str, Tuple[object, object]] = {}
    recorded_slo = trace.header.get("slo", {})
    for key in _METRIC_KEYS:
        recorded = recorded_slo.get(key)
        replayed = result.row.get(key)
        if recorded != replayed:
            metric_deltas[key] = (recorded, replayed)

    divergence = diff_events(trace.events, events)
    recorded_event: Optional[Dict[str, object]] = None
    replayed_event: Optional[Dict[str, object]] = None
    if divergence is not None:
        if divergence < len(trace.events):
            recorded_event = trace.events[divergence]
        if divergence < len(events):
            replayed_event = events[divergence]
    return ReplayDiff(
        path=str(path),
        scenario=spec.scenario,
        digest_match=result.schedule_digest == trace.schedule_digest,
        metric_deltas=metric_deltas,
        first_divergence=divergence,
        recorded_event=recorded_event,
        replayed_event=replayed_event,
        recorded_events=len(trace.events),
        replayed_events=len(events),
    )


def trace_filename(spec: TrialSpec) -> str:
    """The conventional recording filename for one compiled trial spec."""
    variant = spec.param("variant", "base")
    return f"{spec.scenario}__{variant}__s{spec.seed}.trace.jsonl"

"""SLO metrics, thresholds, and pass/fail reporting.

A scenario's service level is judged on four numbers, all tail-focused
(the paper's bugs are invisible to averages):

* wakeup-to-run latency percentiles (p50 / p99 / p99.9) from the obs
  layer's log-bucketed histogram -- estimates are within the documented
  2x bound (see :class:`repro.obs.metrics.Histogram`);
* scheduling *jitter*: the exact standard deviation of per-task gaps
  between consecutive switch-ins (the histogram keeps a running sum of
  squares, so this is not bucket-approximated);
* deadline-miss rate: the fraction of wakeups whose latency exceeded the
  scenario's latency deadline (exact when the deadline is ``2**k - 1``);
* idle-while-overloaded density: the fraction of sampled ticks that
  violated the work-conservation invariant, straight from
  :class:`repro.stats.metrics.IdleOverloadSampler`.

Thresholds are declarative and live in the scenario spec, *outside* the
orchestrator's :class:`~repro.perf.orchestrator.TrialSpec` identity, so
cached trial metrics survive threshold edits: verdicts are recomputed
parent-side on every run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.obs.recorder import MetricsRecorder

#: (threshold attribute, metric attribute, short label) per SLO check.
_CHECKS: Tuple[Tuple[str, str, str], ...] = (
    ("max_p50_us", "wakeup_p50_us", "p50"),
    ("max_p99_us", "wakeup_p99_us", "p99"),
    ("max_p999_us", "wakeup_p999_us", "p99.9"),
    ("max_jitter_us", "jitter_us", "jitter"),
    ("max_miss_rate", "deadline_miss_rate", "miss-rate"),
    ("max_idle_overload", "idle_overload_fraction", "idle-overload"),
)


@dataclass(frozen=True)
class SLOThresholds:
    """Declarative upper bounds; ``None`` means "not part of this SLO"."""

    max_p50_us: Optional[float] = None
    max_p99_us: Optional[float] = None
    max_p999_us: Optional[float] = None
    max_jitter_us: Optional[float] = None
    max_miss_rate: Optional[float] = None
    max_idle_overload: Optional[float] = None

    @classmethod
    def from_mapping(cls, data: Mapping[str, object]) -> "SLOThresholds":
        known = {f for f, _, _ in _CHECKS}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown SLO threshold(s): {', '.join(sorted(unknown))} "
                f"(known: {', '.join(sorted(known))})"
            )
        values: Dict[str, float] = {}
        for key, value in data.items():
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise ValueError(f"SLO threshold {key} must be a number")
            values[key] = float(value)
        return cls(**values)

    def to_json(self) -> Dict[str, float]:
        return {
            name: getattr(self, name)
            for name, _, _ in _CHECKS
            if getattr(self, name) is not None
        }


@dataclass(frozen=True)
class SLOMetrics:
    """The measured service level of one trial (or a worst-case fold)."""

    wakeup_p50_us: float
    wakeup_p99_us: float
    wakeup_p999_us: float
    jitter_us: float
    deadline_miss_rate: float
    idle_overload_fraction: float
    samples: int

    def to_json(self) -> Dict[str, object]:
        return {
            "wakeup_p50_us": self.wakeup_p50_us,
            "wakeup_p99_us": self.wakeup_p99_us,
            "wakeup_p999_us": self.wakeup_p999_us,
            "jitter_us": round(self.jitter_us, 3),
            "deadline_miss_rate": round(self.deadline_miss_rate, 6),
            "idle_overload_fraction": round(self.idle_overload_fraction, 6),
            "samples": self.samples,
        }

    @classmethod
    def from_row(cls, row: Mapping[str, object]) -> "SLOMetrics":
        """Rebuild from a trial-result row (the cache round-trip)."""
        return cls(
            wakeup_p50_us=float(row["wakeup_p50_us"]),  # type: ignore[arg-type]
            wakeup_p99_us=float(row["wakeup_p99_us"]),  # type: ignore[arg-type]
            wakeup_p999_us=float(row["wakeup_p999_us"]),  # type: ignore[arg-type]
            jitter_us=float(row["jitter_us"]),  # type: ignore[arg-type]
            deadline_miss_rate=float(row["deadline_miss_rate"]),  # type: ignore[arg-type]
            idle_overload_fraction=float(row["idle_overload_fraction"]),  # type: ignore[arg-type]
            samples=int(row["samples"]),  # type: ignore[arg-type]
        )

    @classmethod
    def worst_of(cls, metrics: Sequence["SLOMetrics"]) -> "SLOMetrics":
        """Pointwise worst case over seeds: the SLO judges the worst run."""
        if not metrics:
            raise ValueError("worst_of needs at least one metrics sample")
        return cls(
            wakeup_p50_us=max(m.wakeup_p50_us for m in metrics),
            wakeup_p99_us=max(m.wakeup_p99_us for m in metrics),
            wakeup_p999_us=max(m.wakeup_p999_us for m in metrics),
            jitter_us=max(m.jitter_us for m in metrics),
            deadline_miss_rate=max(m.deadline_miss_rate for m in metrics),
            idle_overload_fraction=max(
                m.idle_overload_fraction for m in metrics
            ),
            samples=sum(m.samples for m in metrics),
        )


def collect_slo_metrics(
    recorder: MetricsRecorder,
    idle_overload_fraction: float,
    latency_deadline_us: int,
) -> SLOMetrics:
    """Fold a finished run's recorder into one :class:`SLOMetrics`.

    The idle-overload density comes in as a plain float because the
    sampler publishes on the *global* tracepoint bus while per-trial
    recorders listen on private registries -- the trial hands the
    sampler's own ``violation_fraction`` over directly.
    """
    latency = recorder.wakeup_latency
    return SLOMetrics(
        wakeup_p50_us=latency.percentile(50),
        wakeup_p99_us=latency.percentile(99),
        wakeup_p999_us=latency.percentile(99.9),
        jitter_us=recorder.jitter_us(),
        deadline_miss_rate=latency.fraction_above(latency_deadline_us),
        idle_overload_fraction=idle_overload_fraction,
        samples=latency.count(),
    )


@dataclass(frozen=True)
class SLOVerdict:
    """The outcome of judging one metrics set against one threshold set."""

    passed: bool
    #: ``"p99 4096us > 2000us"``-style description per violated bound.
    failures: Tuple[str, ...] = ()

    def to_json(self) -> Dict[str, object]:
        return {"passed": self.passed, "failures": list(self.failures)}


def evaluate(metrics: SLOMetrics, thresholds: SLOThresholds) -> SLOVerdict:
    """Judge measured metrics against declarative bounds."""
    failures: List[str] = []
    for bound_name, metric_name, label in _CHECKS:
        bound = getattr(thresholds, bound_name)
        if bound is None:
            continue
        value = getattr(metrics, metric_name)
        if value > bound:
            failures.append(f"{label} {value:g} > {bound:g}")
    return SLOVerdict(passed=not failures, failures=tuple(failures))


@dataclass
class ScenarioReport:
    """One scenario variant's measured trials and their verdict."""

    scenario: str
    variant: str
    thresholds: SLOThresholds
    #: Per-seed metrics, in seed order.
    per_seed: List[Tuple[int, SLOMetrics]] = field(default_factory=list)
    schedule_digests: List[str] = field(default_factory=list)

    @property
    def key(self) -> str:
        return f"{self.scenario}/{self.variant}"

    @property
    def worst(self) -> SLOMetrics:
        return SLOMetrics.worst_of([m for _, m in self.per_seed])

    @property
    def verdict(self) -> SLOVerdict:
        return evaluate(self.worst, self.thresholds)

    def to_json(self) -> Dict[str, object]:
        return {
            "scenario": self.scenario,
            "variant": self.variant,
            "thresholds": self.thresholds.to_json(),
            "seeds": {
                str(seed): metrics.to_json()
                for seed, metrics in self.per_seed
            },
            "worst": self.worst.to_json(),
            "verdict": self.verdict.to_json(),
            "schedule_digests": list(self.schedule_digests),
        }


@dataclass
class SLOReport:
    """Every scenario variant's report, in registry order."""

    scenarios: List[ScenarioReport] = field(default_factory=list)

    def verdicts(self) -> Dict[str, bool]:
        """``scenario/variant -> passed`` (the baseline-file payload)."""
        return {r.key: r.verdict.passed for r in self.scenarios}

    def to_json(self) -> Dict[str, object]:
        return {
            "version": 1,
            "scenarios": [r.to_json() for r in self.scenarios],
            "verdicts": self.verdicts(),
        }

    def render(self) -> str:
        """An aligned text table, one row per scenario variant."""
        header = (
            "scenario", "variant", "p50(us)", "p99(us)", "p99.9(us)",
            "jitter(us)", "miss-rate", "idle-ovl", "verdict",
        )
        rows: List[Tuple[str, ...]] = [header]
        for report in self.scenarios:
            worst = report.worst
            verdict = report.verdict
            rows.append((
                report.scenario,
                report.variant,
                f"{worst.wakeup_p50_us:.0f}",
                f"{worst.wakeup_p99_us:.0f}",
                f"{worst.wakeup_p999_us:.0f}",
                f"{worst.jitter_us:.0f}",
                f"{worst.deadline_miss_rate:.2%}",
                f"{worst.idle_overload_fraction:.2%}",
                "PASS" if verdict.passed else "FAIL",
            ))
        widths = [max(len(r[i]) for r in rows) for i in range(len(header))]
        lines = [
            "  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip()
            for row in rows
        ]
        for report in self.scenarios:
            for failure in report.verdict.failures:
                lines.append(f"  FAIL {report.key}: {failure}")
        return "\n".join(lines)
